"""Ablation benchmarks for design choices called out in DESIGN.md.

- **Solver caching**: the environment's equality set changes rarely, so
  checking memoizes one congruence solver per distinct set. The ablation
  rebuilds the solver on every query.
- **Algorithm specialization**: dispatch cost of `overload` versus a direct
  call to the selected alternative.
- **Direct interpreter vs translation**: evaluating a program natively
  versus translating and running the System F image.
"""

import pytest

from repro.fg import interpret
from repro.fg.env import Env
from repro.fg.typecheck import Checker
from repro.syntax import parse_fg
from repro.systemf import evaluate as f_evaluate

ASSOC_HEAVY = r"""
concept Iterator<Iter> {
  types elt;
  next : fn(Iter) -> Iter;
  curr : fn(Iter) -> elt;
  at_end : fn(Iter) -> bool;
} in
concept Monoid<t> { op : fn(t, t) -> t; id : t; } in
let accumulate = /\Iter where Iterator<Iter>, Monoid<Iterator<Iter>.elt>.
  fix (\a : fn(Iter) -> Iterator<Iter>.elt. \it : Iter.
    if Iterator<Iter>.at_end(it) then Monoid<Iterator<Iter>.elt>.id
    else Monoid<Iterator<Iter>.elt>.op(
           Iterator<Iter>.curr(it), a(Iterator<Iter>.next(it)))) in
model Iterator<list int> {
  types elt = int;
  next = \ls : list int. cdr[int](ls);
  curr = \ls : list int. car[int](ls);
  at_end = \ls : list int. null[int](ls);
} in
model Monoid<int> { op = iadd; id = 0; } in
(accumulate[list int](cons[int](1, cons[int](2, nil[int]))),
 accumulate[list int](cons[int](3, nil[int])),
 accumulate[list int](nil[int]))
"""


class TestSolverCacheAblation:
    def test_with_cache(self, benchmark):
        term = parse_fg(ASSOC_HEAVY)
        benchmark(lambda: Checker().check(term, Env.initial()))

    def test_without_cache(self, benchmark):
        term = parse_fg(ASSOC_HEAVY)
        benchmark(
            lambda: Checker(use_solver_cache=False).check(term, Env.initial())
        )


SPECIALIZED = r"""
concept Iterator<I> { next : fn(I) -> I; } in
concept RA<I> { refines Iterator<I>; jump : fn(I, int) -> I; } in
overload adv {
  /\I where Iterator<I>. \it : I, n : int.
    (fix (\go : fn(I, int) -> I. \j : I, k : int.
      if ile(k, 0) then j else go(Iterator<I>.next(j), isub(k, 1))))(it, n);
  /\I where RA<I>. \it : I, n : int. RA<I>.jump(it, n);
} in
model Iterator<int> { next = \p : int. iadd(p, 1); } in
model RA<int> { jump = \p : int, n : int. iadd(p, n); } in
adv[int](0, 5)
"""

DIRECT_ALTERNATIVE = r"""
concept Iterator<I> { next : fn(I) -> I; } in
concept RA<I> { refines Iterator<I>; jump : fn(I, int) -> I; } in
let adv = /\I where RA<I>. \it : I, n : int. RA<I>.jump(it, n) in
model Iterator<int> { next = \p : int. iadd(p, 1); } in
model RA<int> { jump = \p : int, n : int. iadd(p, n); } in
adv[int](0, 5)
"""


class TestSpecializationDispatch:
    def test_overload_dispatch(self, benchmark):
        from repro import extensions as ext

        term = parse_fg(SPECIALIZED)
        benchmark(lambda: ext.typecheck(term))

    def test_direct_call_baseline(self, benchmark):
        from repro import extensions as ext

        term = parse_fg(DIRECT_ALTERNATIVE)
        benchmark(lambda: ext.typecheck(term))


class TestInterpreterVsTranslation:
    def test_translate_then_run(self, benchmark):
        term = parse_fg(ASSOC_HEAVY)
        sf = Checker().check(term, Env.initial())[1]
        assert benchmark(lambda: f_evaluate(sf)) == (3, 3, 0)

    def test_direct_interpretation(self, benchmark):
        term = parse_fg(ASSOC_HEAVY)
        assert benchmark(lambda: interpret(term)) == (3, 3, 0)
