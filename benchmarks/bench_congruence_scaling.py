"""Experiment CC (section 5): congruence-closure scaling.

The paper leans on Nelson & Oppen's O(n log n) congruence closure for type
equality.  This bench sweeps the number of merged equalities and the depth
of type terms, asserting near-linear growth (the 'shape': doubling the
input should far less than quadruple the time).
"""

import pytest

from repro.fg import ast as G
from repro.fg.congruence import CongruenceSolver


def _chain_equalities(n: int):
    """a0 = a1 = ... = an, plus congruent structure above each."""
    out = []
    for i in range(n):
        out.append((G.TVar(f"a{i}"), G.TVar(f"a{i + 1}")))
    return out


def _assoc_equalities(n: int):
    """Fresh vars equated to associated types over a shared chain."""
    out = []
    for i in range(n):
        out.append(
            (G.TVar(f"e{i}"), G.TAssoc("It", (G.TVar(f"a{i % 8}"),), "elt"))
        )
    return out


def _deep_type(depth: int, leaf: G.FGType) -> G.FGType:
    t = leaf
    for _ in range(depth):
        t = G.TList(G.TFn((t,), t))
    return t


class TestMergeScaling:
    @pytest.mark.parametrize("n", [64, 256, 1024])
    def test_merge_chain(self, benchmark, n):
        eqs = _chain_equalities(n)

        def run():
            s = CongruenceSolver()
            for left, right in eqs:
                s.merge(left, right)
            return s

        s = benchmark(run)
        assert s.equal(G.TVar("a0"), G.TVar(f"a{n}"))

    @pytest.mark.parametrize("n", [64, 256, 1024])
    def test_merge_assoc_terms(self, benchmark, n):
        eqs = _assoc_equalities(n)

        def run():
            s = CongruenceSolver()
            for left, right in eqs:
                s.merge(left, right)
            return s

        benchmark(run)

    @pytest.mark.parametrize("depth", [8, 32, 128])
    def test_intern_deep_terms(self, benchmark, depth):
        t = _deep_type(depth, G.TVar("a"))

        def run():
            s = CongruenceSolver()
            s.merge(t, G.TVar("x"))
            return s.equal(G.TVar("x"), t)

        assert benchmark(run)


class TestNearLinearShape:
    def test_chain_growth_subquadratic(self):
        import time

        def cost(n: int) -> float:
            eqs = _chain_equalities(n)
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                s = CongruenceSolver()
                for left, right in eqs:
                    s.merge(left, right)
                best = min(best, time.perf_counter() - start)
            return best

        t1, t2 = cost(256), cost(1024)
        # 4x input; allow generous constant, reject quadratic (16x).
        assert t2 < t1 * 12, (t1, t2)

    def test_representative_after_many_merges(self, benchmark):
        s = CongruenceSolver()
        for left, right in _chain_equalities(512):
            s.merge(left, right)
        s.merge(G.TVar("a0"), G.INT)
        result = benchmark(lambda: s.representative(G.TVar("a400")))
        assert result == G.INT
