"""Experiment X1 (section 6): cost of the extension features.

Measures checking/elaboration for named models + use, parameterized-model
instantiation (including recursive resolution through nested list types),
and default-member elaboration — the ablation question being what each
extension adds over the core MDL rule.
"""

import pytest

from repro import extensions as ext
from repro.syntax import parse_fg

MONOID = r"""
concept Monoid<t> { op : fn(t, t) -> t; id : t; } in
let mconcat = /\t where Monoid<t>.
  fix (\mc : fn(list t) -> t. \ls : list t.
    if null[t](ls) then Monoid<t>.id
    else Monoid<t>.op(car[t](ls), mc(cdr[t](ls)))) in
"""

PLAIN_MODEL = MONOID + r"""
model Monoid<int> { op = iadd; id = 0; } in
mconcat[int](cons[int](1, cons[int](2, nil[int])))
"""

NAMED_MODEL = MONOID + r"""
model m = Monoid<int> { op = iadd; id = 0; } in
use m in mconcat[int](cons[int](1, cons[int](2, nil[int])))
"""

PARAM_MODEL = MONOID + r"""
model Monoid<int> { op = iadd; id = 0; } in
model forall t where Monoid<t>. Monoid<list t> {
  op = fix (\app : fn(list t, list t) -> list t.
    \a : list t, b : list t.
      if null[t](a) then b
      else cons[t](car[t](a), app(cdr[t](a), b)));
  id = nil[t];
} in
"""

DEFAULTS = r"""
concept Ord<t> {
  lt  : fn(t, t) -> bool;
  gt  : fn(t, t) -> bool = \x : t, y : t. Ord<t>.lt(y, x);
  lte : fn(t, t) -> bool = \x : t, y : t. bnot(Ord<t>.gt(x, y));
  gte : fn(t, t) -> bool = \x : t, y : t. bnot(Ord<t>.lt(x, y));
} in
model Ord<int> { lt = ilt; } in
(Ord<int>.gt(1, 2), Ord<int>.lte(2, 2))
"""


def _check(src: str):
    return ext.typecheck(parse_fg(src))


class TestAblation:
    def test_baseline_plain_model(self, benchmark):
        term = parse_fg(PLAIN_MODEL)
        benchmark(lambda: ext.typecheck(term))

    def test_named_model_and_use(self, benchmark):
        term = parse_fg(NAMED_MODEL)
        benchmark(lambda: ext.typecheck(term))

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_param_model_instantiation_depth(self, benchmark, depth):
        """Resolving Monoid<list^depth int> recurses through the family."""
        ty = "int"
        val = "cons[int](1, nil[int])"
        for _ in range(depth):
            val = f"cons[list {ty}]({val}, nil[list {ty}])"
            ty = f"list {ty}"
        term = parse_fg(PARAM_MODEL + f"mconcat[{ty}]({val})")
        benchmark(lambda: ext.typecheck(term))

    def test_defaults_elaboration(self, benchmark):
        term = parse_fg(DEFAULTS)
        benchmark(lambda: ext.typecheck(term))

    def test_extension_checker_on_core_program(self, benchmark):
        """ExtChecker should not tax programs that use no extensions."""
        term = parse_fg(PLAIN_MODEL)
        benchmark(lambda: ext.typecheck(term))
