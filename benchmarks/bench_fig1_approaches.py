"""Experiment F1 (Figure 1): ``square`` across the five languages.

The paper's Figure 1 is a qualitative comparison; the quantitative question
this bench answers is what each approach's machinery costs: checking
(conformance / instance resolution / structural match / by-name lookup /
model lookup + translation) and running (vtable dispatch / dictionary
passing / direct ops).

Regenerates: the five-way Figure 1 row of EXPERIMENTS.md.
"""

import pytest

from repro.approaches import byname as D
from repro.approaches import structural as C
from repro.approaches import subtyping as A
from repro.approaches import typeclasses as B
from repro.approaches.figure1 import (
    FG_SQUARE_SOURCE,
    byname_program,
    structural_program,
    subtyping_program,
    typeclasses_program,
)


class TestCheckSquare:
    """Typechecking cost of Figure 1 per language."""

    def test_check_subtyping(self, benchmark):
        program = subtyping_program()
        assert benchmark(lambda: A.check(program)) == A.INT

    def test_check_typeclasses(self, benchmark):
        program = typeclasses_program()
        assert benchmark(lambda: B.check(program)) == B.INT

    def test_check_structural(self, benchmark):
        program = structural_program()
        assert benchmark(lambda: C.check(program)) == C.INT

    def test_check_byname(self, benchmark):
        program = byname_program()
        assert benchmark(lambda: D.check(program)) == D.INT

    def test_check_fg(self, benchmark):
        from repro.fg import typecheck
        from repro.syntax import parse_fg

        term = parse_fg(FG_SQUARE_SOURCE)
        benchmark(lambda: typecheck(term))


class TestRunSquare:
    """End-to-end (check + evaluate) cost of Figure 1 per language."""

    def test_run_subtyping(self, benchmark):
        program = subtyping_program()
        assert benchmark(lambda: A.run(program)) == 16

    def test_run_typeclasses(self, benchmark):
        program = typeclasses_program()
        assert benchmark(lambda: B.run(program)) == 16

    def test_run_structural(self, benchmark):
        program = structural_program()
        assert benchmark(lambda: C.run(program)) == 16

    def test_run_byname(self, benchmark):
        program = byname_program()
        assert benchmark(lambda: D.run(program)) == 16

    def test_run_fg(self, benchmark):
        from repro import fg_run

        assert benchmark(lambda: fg_run(FG_SQUARE_SOURCE)) == 16


class TestComparisonTable:
    def test_verify_full_table(self, benchmark):
        """Cost of running every probe in the comparison table."""
        from repro.approaches.comparison import verify_table

        rows = benchmark(verify_table)
        assert len(rows) >= 9
