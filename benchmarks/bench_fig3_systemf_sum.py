"""Experiment F3 (Figure 3): the higher-order ``sum`` in plain System F.

Figure 3 is the paper's baseline: generic programming *without* concepts,
threading each operation by hand.  The bench measures the System F
substrate — typechecking the polymorphic sum and evaluating it over growing
lists — and compares the hand-threaded version against the F_G accumulate's
translated dictionary-passing form on the same input (who wins: they should
be within a small constant of each other, dictionary projection being a few
extra tuple indexings per element).
"""

import pytest

from repro.syntax import parse_f, parse_fg
from repro.systemf import evaluate as f_evaluate
from repro.systemf import type_of as f_type_of
from repro.fg import typecheck as fg_typecheck


def _int_list_src(n: int) -> str:
    out = "nil[int]"
    for i in reversed(range(n)):
        out = f"cons[int]({i}, {out})"
    return out


def _figure3(n: int) -> str:
    return rf"""
    let sum = /\t. fix (\s : fn(list t, fn(t, t) -> t, t) -> t.
      \ls : list t, add : fn(t, t) -> t, zero : t.
        if null[t](ls) then zero
        else add(car[t](ls), s(cdr[t](ls), add, zero))) in
    sum[int]({_int_list_src(n)}, iadd, 0)
    """


def _figure5(n: int) -> str:
    return rf"""
    concept Semigroup<t> {{ binary_op : fn(t, t) -> t; }} in
    concept Monoid<t> {{ refines Semigroup<t>; identity_elt : t; }} in
    let accumulate = /\t where Monoid<t>.
      fix (\accum : fn(list t) -> t.
        \ls : list t.
          if null[t](ls) then Monoid<t>.identity_elt
          else Monoid<t>.binary_op(car[t](ls), accum(cdr[t](ls)))) in
    model Semigroup<int> {{ binary_op = iadd; }} in
    model Monoid<int> {{ identity_elt = 0; }} in
    accumulate[int]({_int_list_src(n)})
    """


class TestFigure3Baseline:
    def test_typecheck_sum(self, benchmark):
        term = parse_f(_figure3(8))
        benchmark(lambda: f_type_of(term))

    @pytest.mark.parametrize("n", [8, 64, 256])
    def test_evaluate_sum(self, benchmark, n):
        term = parse_f(_figure3(n))
        f_type_of(term)
        result = benchmark(lambda: f_evaluate(term))
        assert result == n * (n - 1) // 2


class TestHandThreadedVsDictionaries:
    """The crossover question: explicit operation arguments (Figure 3)
    versus translated dictionary passing (Figure 5) on identical input."""

    @pytest.mark.parametrize("n", [64, 256])
    def test_hand_threaded(self, benchmark, n):
        term = parse_f(_figure3(n))
        f_type_of(term)
        assert benchmark(lambda: f_evaluate(term)) == n * (n - 1) // 2

    @pytest.mark.parametrize("n", [64, 256])
    def test_dictionary_passing(self, benchmark, n):
        _, sf = fg_typecheck(parse_fg(_figure5(n)))
        assert benchmark(lambda: f_evaluate(sf)) == n * (n - 1) // 2
