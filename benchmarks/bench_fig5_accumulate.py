"""Experiment F5 (Figure 5): the generic ``accumulate`` pipeline costs.

Breaks the F_G pipeline into stages — parse, typecheck+translate, System F
re-check (the Theorem 1 verifier), evaluate — over the Figure 5 program, and
sweeps list length for the evaluation stage.
"""

import pytest

from repro.fg import typecheck as fg_typecheck
from repro.fg import verify_translation
from repro.syntax import parse_fg
from repro.systemf import evaluate as f_evaluate
from repro.systemf import type_of as f_type_of


def _int_list_src(n: int) -> str:
    out = "nil[int]"
    for i in reversed(range(n)):
        out = f"cons[int]({i}, {out})"
    return out


def figure5(n: int = 4) -> str:
    return rf"""
    concept Semigroup<t> {{ binary_op : fn(t, t) -> t; }} in
    concept Monoid<t> {{ refines Semigroup<t>; identity_elt : t; }} in
    let accumulate = /\t where Monoid<t>.
      fix (\accum : fn(list t) -> t.
        \ls : list t.
          if null[t](ls) then Monoid<t>.identity_elt
          else Monoid<t>.binary_op(car[t](ls), accum(cdr[t](ls)))) in
    model Semigroup<int> {{ binary_op = iadd; }} in
    model Monoid<int> {{ identity_elt = 0; }} in
    accumulate[int]({_int_list_src(n)})
    """


class TestPipelineStages:
    def test_parse(self, benchmark):
        src = figure5()
        term = benchmark(lambda: parse_fg(src))
        assert term is not None

    def test_typecheck_translate(self, benchmark):
        term = parse_fg(figure5())
        fg_type, sf = benchmark(lambda: fg_typecheck(term))
        assert sf is not None

    def test_systemf_recheck(self, benchmark):
        _, sf = fg_typecheck(parse_fg(figure5()))
        benchmark(lambda: f_type_of(sf))

    def test_full_theorem_verification(self, benchmark):
        term = parse_fg(figure5())
        benchmark(lambda: verify_translation(term))

    @pytest.mark.parametrize("n", [16, 128, 512])
    def test_evaluate(self, benchmark, n):
        _, sf = fg_typecheck(parse_fg(figure5(n)))
        assert benchmark(lambda: f_evaluate(sf)) == n * (n - 1) // 2


class TestPreludeScale:
    """Checking the full prelude: a library-sized program through the
    typechecker (the scalability story behind lexically scoped concepts)."""

    def test_check_whole_prelude(self, benchmark):
        from repro.prelude import parse

        term = parse("accumulate[int](range(1, 4))")
        benchmark(lambda: fg_typecheck(term))
