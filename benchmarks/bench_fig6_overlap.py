"""Experiment F6 (Figure 6): cost of scoped, overlapping models.

Sweeps the number of overlapping scopes (distinct local Monoid models, each
instantiating ``accumulate``) to show model lookup stays local — checking
cost grows linearly in the number of scopes, not quadratically, because each
scope consults its own innermost model.
"""

import pytest

from repro.fg import typecheck as fg_typecheck
from repro.syntax import parse_fg
from repro.systemf import evaluate as f_evaluate

_HEADER = r"""
concept Semigroup<t> { binary_op : fn(t, t) -> t; } in
concept Monoid<t> { refines Semigroup<t>; identity_elt : t; } in
let accumulate = /\t where Monoid<t>.
  fix (\accum : fn(list t) -> t.
    \ls : list t.
      if null[t](ls) then Monoid<t>.identity_elt
      else Monoid<t>.binary_op(car[t](ls), accum(cdr[t](ls)))) in
let ls = cons[int](1, cons[int](2, cons[int](3, nil[int]))) in
"""

_OPS = ["iadd", "imult", "imax", "imin"]


def overlapping(n_scopes: int) -> str:
    parts = [_HEADER]
    names = []
    for i in range(n_scopes):
        op = _OPS[i % len(_OPS)]
        parts.append(
            f"let f{i} =\n"
            f"  model Semigroup<int> {{ binary_op = {op}; }} in\n"
            f"  model Monoid<int> {{ identity_elt = {i}; }} in\n"
            f"  accumulate[int] in"
        )
        names.append(f"f{i}(ls)")
    parts.append("(" + ", ".join(names) + ")")
    return "\n".join(parts)


class TestOverlappingScopes:
    @pytest.mark.parametrize("n", [2, 8, 32])
    def test_check_overlapping_models(self, benchmark, n):
        term = parse_fg(overlapping(n))
        benchmark(lambda: fg_typecheck(term))

    def test_figure6_end_to_end(self, benchmark):
        term = parse_fg(overlapping(2))
        _, sf = fg_typecheck(term)
        result = benchmark(lambda: f_evaluate(sf))
        assert result == (6, 6)

    def test_scaling_is_roughly_linear(self):
        """Checking 32 scopes should cost far less than 16x checking 2
        (i.e. the lookup is not quadratic in visible models)."""
        import time

        def cost(n: int) -> float:
            term = parse_fg(overlapping(n))
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                fg_typecheck(term)
                best = min(best, time.perf_counter() - start)
            return best

        small, large = cost(2), cost(32)
        assert large < small * 64, (small, large)
