"""Experiment F7 (Figure 7): dictionary representation costs.

Figure 7 nests dictionaries along concept refinement: a member of the k-th
ancestor costs k tuple projections.  This bench sweeps refinement depth and
measures (a) checking/translation cost and (b) the runtime cost of member
access through the nested tuples — the 'shape' claim is linear growth in
depth with small constants.
"""

import pytest

from repro.fg import typecheck as fg_typecheck
from repro.syntax import parse_fg
from repro.systemf import evaluate as f_evaluate


def refinement_chain(depth: int, calls: int = 50) -> str:
    """C0 <- C1 <- ... <- C_depth, then repeatedly access C0's member
    through the deepest concept."""
    parts = ["concept C0<t> { op0 : fn(t, t) -> t; } in"]
    for i in range(1, depth + 1):
        parts.append(
            f"concept C{i}<t> {{ refines C{i - 1}<t>; op{i} : t; }} in"
        )
    parts.append("model C0<int> { op0 = iadd; } in")
    for i in range(1, depth + 1):
        parts.append(f"model C{i}<int> {{ op{i} = {i}; }} in")
    # A chain of additions through the deepest concept's inherited member.
    expr = "0"
    for _ in range(calls):
        expr = f"C{depth}<int>.op0({expr}, 1)"
    parts.append(expr)
    return "\n".join(parts)


class TestRefinementDepth:
    @pytest.mark.parametrize("depth", [1, 4, 16])
    def test_check_deep_refinement(self, benchmark, depth):
        term = parse_fg(refinement_chain(depth, calls=5))
        benchmark(lambda: fg_typecheck(term))

    @pytest.mark.parametrize("depth", [1, 4, 16])
    def test_member_access_through_depth(self, benchmark, depth):
        term = parse_fg(refinement_chain(depth, calls=50))
        _, sf = fg_typecheck(term)
        assert benchmark(lambda: f_evaluate(sf)) == 50


class TestDictionaryVsDirect:
    """Dictionary projection overhead versus calling the primitive
    directly — the constant factor Figure 7's representation costs."""

    def _sum_chain(self, op_expr: str, calls: int = 200) -> str:
        expr = "0"
        for _ in range(calls):
            expr = f"{op_expr}({expr}, 1)"
        return expr

    def test_direct_primitive(self, benchmark):
        term = parse_fg(self._sum_chain("iadd"))
        _, sf = fg_typecheck(term)
        assert benchmark(lambda: f_evaluate(sf)) == 200

    def test_through_dictionary(self, benchmark):
        src = (
            "concept C<t> { op : fn(t, t) -> t; } in"
            " model C<int> { op = iadd; } in "
            + self._sum_chain("C<int>.op")
        )
        term = parse_fg(src)
        _, sf = fg_typecheck(term)
        assert benchmark(lambda: f_evaluate(sf)) == 200

    def test_through_nested_dictionary(self, benchmark):
        src = (
            "concept B<t> { op : fn(t, t) -> t; } in"
            " concept C<t> { refines B<t>; } in"
            " model B<int> { op = iadd; } in"
            " model C<int> { } in "
            + self._sum_chain("C<int>.op")
        )
        term = parse_fg(src)
        _, sf = fg_typecheck(term)
        assert benchmark(lambda: f_evaluate(sf)) == 200
