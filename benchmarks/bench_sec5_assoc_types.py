"""Experiment S5 (section 5): associated types and same-type constraints.

Measures the cost the section 5 machinery adds: elaborating where clauses
with associated-type slots, deciding same-type constraints through the
congruence solver, and running the translated ``merge`` — plus a sweep over
the number of iterator constraints (each adds a fresh slot and dictionary).
"""

import pytest

from repro.fg import typecheck as fg_typecheck
from repro.fg import verify_translation
from repro.syntax import parse_fg
from repro.systemf import evaluate as f_evaluate

ITER = r"""
concept Iterator<Iter> {
  types elt;
  next : fn(Iter) -> Iter;
  curr : fn(Iter) -> elt;
  at_end : fn(Iter) -> bool;
} in
"""

LIST_INT = r"""
model Iterator<list int> {
  types elt = int;
  next = \ls : list int. cdr[int](ls);
  curr = \ls : list int. car[int](ls);
  at_end = \ls : list int. null[int](ls);
} in
"""


def _range_src(lo: int, hi: int) -> str:
    out = "nil[int]"
    for i in reversed(range(lo, hi)):
        out = f"cons[int]({i}, {out})"
    return out


MERGE = ITER + r"""
concept OutputIterator<Out, t> { put : fn(Out, t) -> Out; } in
concept LessThanComparable<t> { less : fn(t, t) -> bool; } in
let copy = /\Iter, Out where Iterator<Iter>, OutputIterator<Out, Iterator<Iter>.elt>.
  fix (\cp : fn(Iter, Out) -> Out.
    \it : Iter, out : Out.
      if Iterator<Iter>.at_end(it) then out
      else cp(Iterator<Iter>.next(it),
              OutputIterator<Out, Iterator<Iter>.elt>.put(out, Iterator<Iter>.curr(it)))) in
let merge = /\Iter1, Iter2, Out
    where Iterator<Iter1>, Iterator<Iter2>,
          OutputIterator<Out, Iterator<Iter1>.elt>,
          LessThanComparable<Iterator<Iter1>.elt>;
          Iterator<Iter1>.elt == Iterator<Iter2>.elt.
  fix (\m : fn(Iter1, Iter2, Out) -> Out.
    \i1 : Iter1, i2 : Iter2, out : Out.
      if Iterator<Iter1>.at_end(i1) then copy[Iter2, Out](i2, out)
      else if Iterator<Iter2>.at_end(i2) then copy[Iter1, Out](i1, out)
      else if LessThanComparable<Iterator<Iter1>.elt>.less(
                Iterator<Iter1>.curr(i1), Iterator<Iter2>.curr(i2))
      then m(Iterator<Iter1>.next(i1), i2,
             OutputIterator<Out, Iterator<Iter1>.elt>.put(out, Iterator<Iter1>.curr(i1)))
      else m(i1, Iterator<Iter2>.next(i2),
             OutputIterator<Out, Iterator<Iter1>.elt>.put(out, Iterator<Iter2>.curr(i2)))) in
""" + LIST_INT + r"""
model OutputIterator<list int, int> {
  put = \out : list int, x : int. cons[int](x, out);
} in
model LessThanComparable<int> { less = ilt; } in
"""


class TestMerge:
    def test_check_merge(self, benchmark):
        src = MERGE + "merge[list int, list int, list int](nil[int], nil[int], nil[int])"
        term = parse_fg(src)
        benchmark(lambda: fg_typecheck(term))

    def test_verify_merge(self, benchmark):
        src = MERGE + "merge[list int, list int, list int](nil[int], nil[int], nil[int])"
        term = parse_fg(src)
        benchmark(lambda: verify_translation(term))

    @pytest.mark.parametrize("n", [16, 64])
    def test_run_merge(self, benchmark, n):
        src = MERGE + (
            f"merge[list int, list int, list int]"
            f"({_range_src(0, n)}, {_range_src(1, n + 1)}, nil[int])"
        )
        _, sf = fg_typecheck(parse_fg(src))
        result = benchmark(lambda: f_evaluate(sf))
        assert len(result) == 2 * n


class TestAssocSlotSweep:
    """Each additional iterator constraint adds one associated-type slot
    and one dictionary parameter; elaboration cost should grow linearly."""

    def _many_iterators(self, k: int) -> str:
        vars_ = ", ".join(f"I{i}" for i in range(k))
        reqs = ", ".join(f"Iterator<I{i}>" for i in range(k))
        sames = "; " + ", ".join(
            f"Iterator<I0>.elt == Iterator<I{i}>.elt" for i in range(1, k)
        ) if k > 1 else ""
        params = ", ".join(f"x{i} : I{i}" for i in range(k))
        tyargs = ", ".join("list int" for _ in range(k))
        args = ", ".join(_range_src(0, 1) for _ in range(k))
        return (
            ITER
            + LIST_INT
            + f"let f = /\\{vars_} where {reqs}{sames}."
            + f" \\{params}. Iterator<I0>.curr(x0) in"
            + f" f[{tyargs}]({args})"
        )

    @pytest.mark.parametrize("k", [1, 4, 8])
    def test_check_k_iterators(self, benchmark, k):
        term = parse_fg(self._many_iterators(k))
        benchmark(lambda: fg_typecheck(term))
