"""Experiment ISO: isolation-wall overhead, subprocess vs worker pool.

Times the same ``check_batch`` run over the ``examples/fg`` corpus under
the two process-isolation modes.  The subprocess wall pays one
interpreter spawn per attempt; the pool spawns ``pool_workers``
prelude-warmed processes once per batch and reuses them, so the delta is
the pool's whole value proposition in one paired row
(``fg bench --compare`` pairs by name across records).

Rounds are pinned low via ``pedantic`` — every round forks real
processes, and the medians differ by integer factors, not jitter.
"""

from pathlib import Path

from repro.service import BatchPolicy, RetryPolicy, check_batch

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "fg"


def _corpus():
    return [
        (path.name, path.read_text())
        for path in sorted(EXAMPLES.glob("*.fg"))
    ]


def _policy(**overrides):
    return BatchPolicy(
        jobs=2, deadline_ms=30_000.0,
        retry=RetryPolicy(max_retries=0), **overrides,
    )


class TestIsolationWall:
    def test_batch_isolate_subprocess(self, benchmark):
        items = _corpus()
        report = benchmark.pedantic(
            check_batch, args=(items, _policy(isolate="subprocess")),
            rounds=5, iterations=1, warmup_rounds=1,
        )
        assert report.exit_code == 0

    def test_batch_isolate_pool(self, benchmark):
        items = _corpus()
        report = benchmark.pedantic(
            check_batch, args=(items, _policy(isolate="pool",
                                              pool_workers=2)),
            rounds=5, iterations=1, warmup_rounds=1,
        )
        assert report.exit_code == 0
        assert report.pool["respawns"] == 0
