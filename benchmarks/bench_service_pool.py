"""Experiment ISO: isolation-wall overhead, subprocess vs pool vs daemon.

Times the same ``check_batch`` run over the ``examples/fg`` corpus under
the two process-isolation modes, plus the same corpus through a warm
``fg serve`` daemon.  The subprocess wall pays one interpreter spawn per
attempt; the pool spawns ``pool_workers`` prelude-warmed processes once
per batch and reuses them; the daemon keeps that pool alive *across*
batches, so ``serve.warm_request`` measures the fully amortized
steady-state cost — the three rows are the whole isolation trade-off
(``fg bench --compare`` pairs by name across records).

Rounds are pinned low via ``pedantic`` — every round forks real
processes, and the medians differ by integer factors, not jitter.
"""

import os
import tempfile
import threading
from pathlib import Path

from repro.service import (
    BatchPolicy,
    RetryPolicy,
    ServeOptions,
    Server,
    check_batch,
    check_remote,
    request_shutdown,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "fg"


def _corpus():
    return [
        (path.name, path.read_text())
        for path in sorted(EXAMPLES.glob("*.fg"))
    ]


def _policy(**overrides):
    return BatchPolicy(
        jobs=2, deadline_ms=30_000.0,
        retry=RetryPolicy(max_retries=0), **overrides,
    )


class TestIsolationWall:
    def test_batch_isolate_subprocess(self, benchmark):
        items = _corpus()
        report = benchmark.pedantic(
            check_batch, args=(items, _policy(isolate="subprocess")),
            rounds=5, iterations=1, warmup_rounds=1,
        )
        assert report.exit_code == 0

    def test_batch_isolate_pool(self, benchmark):
        items = _corpus()
        report = benchmark.pedantic(
            check_batch, args=(items, _policy(isolate="pool",
                                              pool_workers=2)),
            rounds=5, iterations=1, warmup_rounds=1,
        )
        assert report.exit_code == 0
        assert report.pool["respawns"] == 0

    def test_batch_pool_governed(self, benchmark):
        # Same pool batch with the memory governor armed: rlimit applied
        # at spawn, RSS sampled on every heartbeat, recycle thresholds
        # set far above real usage so no recycle fires.  The delta
        # against ``test_batch_isolate_pool`` is pure governor overhead.
        items = _corpus()
        report = benchmark.pedantic(
            check_batch,
            args=(items, _policy(
                isolate="pool", pool_workers=2,
                max_worker_mem_mb=1024.0, recycle_rss_mb=4096.0,
            )),
            rounds=5, iterations=1, warmup_rounds=1,
        )
        assert report.exit_code == 0
        assert report.pool["recycles"] == 0
        assert report.pool["respawns"] == 0

    def test_serve_warm_request(self, benchmark):
        items = _corpus()
        # Short /tmp prefix: AF_UNIX paths are length-limited.
        with tempfile.TemporaryDirectory(prefix="fgbp", dir="/tmp") as tmp:
            server = Server(
                _policy(isolate="pool", pool_workers=2),
                ServeOptions(socket_path=os.path.join(tmp, "fg.sock")),
            )
            thread = threading.Thread(target=server.serve, daemon=True)
            thread.start()
            assert server.ready.wait(30.0)
            try:
                def request():
                    response = check_remote(
                        server.options.socket_path, items,
                    )
                    assert response["type"] == "report"
                    return response

                response = benchmark.pedantic(
                    request, rounds=5, iterations=1, warmup_rounds=1,
                )
                assert response["exit_code"] == 0
            finally:
                request_shutdown(server.options.socket_path)
                thread.join(timeout=30.0)
