"""Experiments T1/T2: the executable metatheory at scale.

The paper proves translation-preserves-typing in Isabelle; our verifier
re-typechecks every translated program with the independent System F
checker.  This bench measures the verifier over programs of growing size
(number of concepts + generic functions), the reproduction of the theorems'
practical cost.
"""

import pytest

from repro.fg import verify_translation
from repro.syntax import parse_fg

_OPS = ["iadd", "imult", "imax", "imin"]


def synthetic_program(n_concepts: int) -> str:
    """n concepts, each refined once, modeled at int, and exercised."""
    parts = []
    for i in range(n_concepts):
        parts.append(f"concept C{i}<t> {{ op{i} : fn(t, t) -> t; }} in")
        parts.append(
            f"concept D{i}<t> {{ refines C{i}<t>; unit{i} : t; }} in"
        )
    for i in range(n_concepts):
        parts.append(
            f"let f{i} = /\\t where D{i}<t>."
            f" \\x : t. C{i}<t>.op{i}(x, D{i}<t>.unit{i}) in"
        )
    for i in range(n_concepts):
        parts.append(f"model C{i}<int> {{ op{i} = {_OPS[i % 4]}; }} in")
        parts.append(f"model D{i}<int> {{ unit{i} = {i}; }} in")
    calls = ", ".join(f"f{i}[int]({i})" for i in range(n_concepts))
    parts.append(f"({calls})" if n_concepts > 1 else calls)
    return "\n".join(parts)


class TestTheoremVerification:
    @pytest.mark.parametrize("n", [1, 4, 16])
    def test_verify_n_concepts(self, benchmark, n):
        term = parse_fg(synthetic_program(n))
        benchmark(lambda: verify_translation(term))

    def test_verify_section5_program(self, benchmark):
        src = r"""
        concept Iterator<Iter> {
          types elt;
          next : fn(Iter) -> Iter;
          curr : fn(Iter) -> elt;
          at_end : fn(Iter) -> bool;
        } in
        concept Monoid<t> { op : fn(t, t) -> t; id : t; } in
        let accumulate = /\Iter where Iterator<Iter>, Monoid<Iterator<Iter>.elt>.
          fix (\a : fn(Iter) -> Iterator<Iter>.elt. \it : Iter.
            if Iterator<Iter>.at_end(it) then Monoid<Iterator<Iter>.elt>.id
            else Monoid<Iterator<Iter>.elt>.op(
                   Iterator<Iter>.curr(it), a(Iterator<Iter>.next(it)))) in
        model Iterator<list int> {
          types elt = int;
          next = \ls : list int. cdr[int](ls);
          curr = \ls : list int. car[int](ls);
          at_end = \ls : list int. null[int](ls);
        } in
        model Monoid<int> { op = iadd; id = 0; } in
        accumulate[list int](cons[int](1, cons[int](2, nil[int])))
        """
        term = parse_fg(src)
        benchmark(lambda: verify_translation(term))
