"""Benchmark fixtures: pre-parsed programs shared across benchmark files.

After a benchmark session, :func:`pytest_sessionfinish` writes
``BENCH_pr3.json`` at the repo root: per-benchmark wall-time statistics
(from pytest-benchmark, when it ran) plus one instrumented
``check_source`` run of the Figure 5 program, whose metrics snapshot
records what the pipeline *did* (model lookups, congruence work, eval
steps) alongside how long it took.
"""

import json
import sys
from pathlib import Path

import pytest

sys.setrecursionlimit(50_000)

_BENCH_OUT = Path(__file__).resolve().parent.parent / "BENCH_pr3.json"


@pytest.fixture(scope="session")
def prelude_source():
    from repro.prelude import PRELUDE

    return PRELUDE


def _benchmark_rows(session):
    """Per-benchmark wall-time stats, defensively extracted."""
    rows = []
    bench_session = getattr(session.config, "_benchmarksession", None)
    for bench in getattr(bench_session, "benchmarks", ()) or ():
        try:
            stats = bench.stats
            rows.append({
                "name": bench.name,
                "group": bench.group,
                "rounds": stats.rounds,
                "mean_s": stats.mean,
                "median_s": stats.median,
                "stddev_s": stats.stddev,
                "min_s": stats.min,
                "max_s": stats.max,
            })
        except Exception:  # noqa: BLE001 — stats shape varies by plugin
            continue
    return rows


def _instrumented_snapshot():
    """One observed Figure 5 pipeline run: timings + metrics snapshot."""
    from repro.observability import (
        ExplainLog, Instrumentation, MetricsRegistry, Tracer,
    )
    from repro.pipeline import check_source

    from bench_fig5_accumulate import figure5

    inst = Instrumentation(
        tracer=Tracer(), metrics=MetricsRegistry(), explain=ExplainLog()
    )
    outcome = check_source(
        figure5(64), evaluate=True, verify=True, instrumentation=inst
    )
    return {
        "program": "figure5(n=64)",
        "ok": outcome.ok,
        "stats": outcome.stats,
        "spans": len(inst.tracer),
        "model_resolutions": len(outcome.explain),
    }


def pytest_sessionfinish(session, exitstatus):
    try:
        payload = {
            "pr": 3,
            "benchmarks": _benchmark_rows(session),
            "instrumented_run": _instrumented_snapshot(),
        }
        _BENCH_OUT.write_text(json.dumps(payload, indent=2) + "\n")
    except Exception as err:  # noqa: BLE001 — never fail the session
        print(f"benchmarks/conftest: could not write {_BENCH_OUT}: {err}",
              file=sys.stderr)
