"""Benchmark fixtures: pre-parsed programs shared across benchmark files.

After a benchmark session, :func:`pytest_sessionfinish` writes a versioned
bench record (``BENCH_<tag>.json``, tag from ``$BENCH_TAG`` or today's
date) at the repo root via :mod:`repro.observability.regress` — the same
writer ``fg bench`` uses, so the two artifacts cannot drift.  The record
holds per-benchmark wall-time statistics (from pytest-benchmark, when it
ran), the daemon telemetry rows (``serve.warm_request`` traced vs.
untraced plus ``serve.stats_request``, timed against a live pool-backed
daemon), plus one instrumented ``check_source`` run of the Figure 5
program:
its metrics snapshot records what the pipeline *did* (model lookups,
congruence work, eval steps), the profiler records where the time went,
and the memory accountant records peak bytes per stage.  ``fg bench
--compare`` turns two such records into a regression verdict (the CI perf
gate).

Recursion headroom is scoped (``resource_scope``), never a module-level
``sys.setrecursionlimit`` — PR 1 removed every permanent limit bump.
"""

import os
import sys
import time
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent


def _bench_tag() -> str:
    return os.environ.get("BENCH_TAG") or time.strftime("%Y%m%d")


@pytest.fixture(autouse=True)
def _recursion_headroom():
    """Scoped stack headroom for deep-input benchmarks (512-element cons
    chains recurse through the parser); restored after every test."""
    from repro.diagnostics.limits import scoped_recursion_limit

    with scoped_recursion_limit(50_000):
        yield


@pytest.fixture(scope="session")
def prelude_source():
    from repro.prelude import PRELUDE

    return PRELUDE


def _benchmark_rows(session):
    """Per-benchmark wall-time stats, defensively extracted."""
    rows = []
    bench_session = getattr(session.config, "_benchmarksession", None)
    for bench in getattr(bench_session, "benchmarks", ()) or ():
        try:
            stats = bench.stats
            rows.append({
                "name": bench.name,
                "group": bench.group,
                "rounds": stats.rounds,
                "mean_s": stats.mean,
                "median_s": stats.median,
                "stddev_s": stats.stddev,
                "min_s": stats.min,
                "max_s": stats.max,
            })
        except Exception:  # noqa: BLE001 — stats shape varies by plugin
            continue
    return rows


def _instrumented_snapshot():
    """One fully observed Figure 5 run: metrics + profile + peak memory."""
    from repro.diagnostics.limits import resource_scope
    from repro.observability import (
        ExplainLog, Instrumentation, MemoryAccountant, MetricsRegistry,
        Tracer, profile_tracer,
    )
    from repro.pipeline import check_source

    from bench_fig5_accumulate import figure5

    inst = Instrumentation(
        tracer=Tracer(), metrics=MetricsRegistry(), explain=ExplainLog(),
        memory=MemoryAccountant(),
    )
    # Scoped recursion headroom for the deep cons chain (no process-wide
    # setrecursionlimit side effect).
    with resource_scope():
        outcome = check_source(
            figure5(64), evaluate=True, verify=True, instrumentation=inst
        )
    return {
        "ok": outcome.ok,
        "metrics": outcome.stats,
        "profile": profile_tracer(inst.tracer).to_json(),
        "memory_peak_kb": inst.memory.peaks_kb(),
        "spans": len(inst.tracer),
        "model_resolutions": len(outcome.explain),
    }


def _serve_rows():
    """Daemon telemetry rows (``serve.warm_request`` traced vs. untraced,
    ``serve.stats_request``) so the committed record prices the PR-8
    observability surface alongside the pytest-benchmark rows."""
    from repro.observability.regress import serve_benchmark_rows

    try:
        return serve_benchmark_rows(rounds=3)
    except Exception as err:  # noqa: BLE001 — sandboxes without AF_UNIX
        print(f"benchmarks/conftest: serve rows skipped: {err}",
              file=sys.stderr)
        return []


def _flightrec_rows():
    """``flightrec.overhead`` vs ``flightrec.baseline_ring0``: the
    always-on flight recorder priced against a ring-0 baseline, pinned
    by the same perf gate as every other row."""
    from repro.observability.regress import flightrec_benchmark_rows

    try:
        return flightrec_benchmark_rows(rounds=5)
    except Exception as err:  # noqa: BLE001 — never fail the session
        print(f"benchmarks/conftest: flightrec rows skipped: {err}",
              file=sys.stderr)
        return []


def pytest_sessionfinish(session, exitstatus):
    from repro.observability.regress import (
        build_record, record_path, write_record,
    )

    tag = _bench_tag()
    try:
        snapshot = _instrumented_snapshot()
        record = build_record(
            tag,
            _benchmark_rows(session) + _serve_rows() + _flightrec_rows(),
            metrics=snapshot["metrics"],
            profile=snapshot["profile"],
            memory_peak_kb=snapshot["memory_peak_kb"],
            extra={
                "instrumented_run": {
                    "program": "figure5(n=64)",
                    "ok": snapshot["ok"],
                    "spans": snapshot["spans"],
                    "model_resolutions": snapshot["model_resolutions"],
                },
            },
        )
        write_record(record, record_path(tag, _ROOT))
    except Exception as err:  # noqa: BLE001 — never fail the session
        print(
            f"benchmarks/conftest: could not write BENCH_{tag}.json: {err}",
            file=sys.stderr,
        )
