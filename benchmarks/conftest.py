"""Benchmark fixtures: pre-parsed programs shared across benchmark files."""

import sys

import pytest

sys.setrecursionlimit(50_000)


@pytest.fixture(scope="session")
def prelude_source():
    from repro.prelude import PRELUDE

    return PRELUDE
