"""An algebraic concept hierarchy in F_G: the Stepanov program.

The generic-programming lineage the paper belongs to started from algebra
(Kapur, Musser & Stepanov's "Operators and algebraic structures", cited as
[25]): organize algorithms around the weakest algebraic structure that makes
them correct.  This example builds the tower

    Semigroup -> Monoid -> Group          (additive structure)
    Semigroup -> Monoid                   (multiplicative structure)
    Semiring = both monoids combined

as F_G concepts, and writes two classic generic algorithms against them:

- ``power`` by repeated squaring, needing only a Monoid — O(log n)
  multiplications;
- Horner polynomial evaluation, needing a Semiring.

Both run at ``int``; ``power`` also runs at a *matrix-like* 2x2 structure
(tuples of ints) to compute Fibonacci numbers — the standard demonstration
that the algorithm really is generic.

Run with::

    python examples/algebra.py
"""

from repro import fg_run, fg_verify

PROGRAM = r"""
// --- the algebraic tower ---------------------------------------------------
concept Semigroup<t> { op : fn(t, t) -> t; } in
concept Monoid<t> { refines Semigroup<t>; id : t; } in
concept Group<t> { refines Monoid<t>; inverse : fn(t) -> t; } in
// A Semiring packages two monoids over one carrier; F_G has single-model-
// per-concept lookup, so we express it with its own members (the standard
// encoding when one type models a concept two ways).
concept Semiring<t> {
  add : fn(t, t) -> t;
  zero : t;
  mul : fn(t, t) -> t;
  one : t;
} in

// --- generic algorithms ---------------------------------------------------
// Russian-peasant power: O(log n) Monoid operations.
let power = /\t where Monoid<t>.
  fix (\pw : fn(t, int) -> t.
    \x : t, n : int.
      if ile(n, 0) then Monoid<t>.id
      else if ieq(imod(n, 2), 1)
      then Semigroup<t>.op(x, pw(Semigroup<t>.op(x, x), idiv(n, 2)))
      else pw(Semigroup<t>.op(x, x), idiv(n, 2))) in

// Horner evaluation of a polynomial given by its coefficient list
// [a0, a1, a2, ...] at a point x: a0 + x*(a1 + x*(a2 + ...)).
let horner = /\t where Semiring<t>.
  \x : t.
    fix (\h : fn(list t) -> t.
      \coeffs : list t.
        if null[t](coeffs) then Semiring<t>.zero
        else Semiring<t>.add(
               car[t](coeffs),
               Semiring<t>.mul(x, h(cdr[t](coeffs))))) in

// --- models at int -----------------------------------------------------------
model Semigroup<int> { op = imult; } in
model Monoid<int> { id = 1; } in
model Semiring<int> { add = iadd; zero = 0; mul = imult; one = 1; } in

// --- a 2x2 integer matrix as a multiplicative monoid --------------------------
// Matrices are tuples (a, b, c, d) = [[a, b], [c, d]].
type mat = (int * int * int * int) in
model Semigroup<mat> {
  op = \m : mat, n : mat.
    ( iadd(imult((nth m 0), (nth n 0)), imult((nth m 1), (nth n 2))),
      iadd(imult((nth m 0), (nth n 1)), imult((nth m 1), (nth n 3))),
      iadd(imult((nth m 2), (nth n 0)), imult((nth m 3), (nth n 2))),
      iadd(imult((nth m 2), (nth n 1)), imult((nth m 3), (nth n 3))) );
} in
model Monoid<mat> { id = (1, 0, 0, 1); } in

// fib(n) is the top-right entry of [[1,1],[1,0]]^n.
let fib = \n : int. (nth power[mat]((1, 1, 1, 0), n) 1) in

( power[int](2, 10),                                  // 1024
  horner[int](3)(cons[int](1, cons[int](2, cons[int](1, nil[int])))),
                                                      // 1 + 2*3 + 1*9 = 16
  fib(10),                                            // 55
  fib(20) )                                           // 6765
"""


def main() -> None:
    print("== Generic algebra in F_G ==")
    p, h, f10, f20 = fg_run(PROGRAM)
    print(f"  power[int](2, 10)                 = {p}")
    print(f"  horner[int](3) on 1 + 2x + x^2    = {h}")
    print(f"  fib(10) via matrix power[mat]     = {f10}")
    print(f"  fib(20) via matrix power[mat]     = {f20}")
    assert (p, h, f10, f20) == (1024, 16, 55, 6765)
    fg_verify(PROGRAM)
    print("  translation verified against System F: OK")


if __name__ == "__main__":
    main()
