"""A tour of the section 6 extensions: named models, parameterized models,
concept-member defaults, and nested requirements.

The paper lists these as important features omitted from the core for space;
this library implements them on top of core F_G (nested requirements live in
the core since they reuse the refinement machinery).

Run with::

    python examples/extensions_tour.py
"""

from repro import extensions as ext
from repro import fg_run

NAMED_MODELS = r"""
// Named models (Kahl & Scheffczyk): declared under a name, adopted with
// `use` -- the clean way to manage overlap.
concept Monoid<t> { op : fn(t, t) -> t; id : t; } in
let mconcat = /\t where Monoid<t>.
  fix (\mc : fn(list t) -> t. \ls : list t.
    if null[t](ls) then Monoid<t>.id
    else Monoid<t>.op(car[t](ls), mc(cdr[t](ls)))) in
model sum = Monoid<int> { op = iadd; id = 0; } in
model prod = Monoid<int> { op = imult; id = 1; } in
model max = Monoid<int> { op = imax; id = -1000000; } in
let ls = cons[int](3, cons[int](5, cons[int](2, nil[int]))) in
(use sum in mconcat[int](ls),
 use prod in mconcat[int](ls),
 use max in mconcat[int](ls))
"""

PARAM_MODELS = r"""
// Parameterized models (Haskell's parameterized instances): one declaration
// makes list t a Monoid for EVERY t, recursively.
concept Monoid<t> { op : fn(t, t) -> t; id : t; } in
let mconcat = /\t where Monoid<t>.
  fix (\mc : fn(list t) -> t. \ls : list t.
    if null[t](ls) then Monoid<t>.id
    else Monoid<t>.op(car[t](ls), mc(cdr[t](ls)))) in
model forall t. Monoid<list t> {
  op = fix (\app : fn(list t, list t) -> list t.
    \a : list t, b : list t.
      if null[t](a) then b
      else cons[t](car[t](a), app(cdr[t](a), b)));
  id = nil[t];
} in
// Flatten a list of lists -- Monoid<list int> is found by instantiating
// the family at t = int.
mconcat[list int](
  cons[list int](cons[int](1, cons[int](2, nil[int])),
    cons[list int](cons[int](3, nil[int]),
      cons[list int](nil[int], nil[list int]))))
"""

DEFAULTS = r"""
// Concept-member defaults: a rich interface from a few operations.
concept Ord<t> {
  lt  : fn(t, t) -> bool;
  gt  : fn(t, t) -> bool = \x : t, y : t. Ord<t>.lt(y, x);
  lte : fn(t, t) -> bool = \x : t, y : t. bnot(Ord<t>.gt(x, y));
  gte : fn(t, t) -> bool = \x : t, y : t. bnot(Ord<t>.lt(x, y));
} in
model Ord<int> { lt = ilt; } in     // one member, four operations
(Ord<int>.lt(1, 2), Ord<int>.gt(1, 2), Ord<int>.lte(2, 2), Ord<int>.gte(1, 2))
"""

SPECIALIZATION = r"""
// Algorithm specialization: `advance` dispatches on the iterator category
// expressed in the where clause -- linear stepping for forward iterators,
// O(1) for random access (the paper's motivating case, section 6).
concept Iterator<I> {
  next : fn(I) -> I;
} in
concept RandomAccessIterator<I> {
  refines Iterator<I>;
  advance_by : fn(I, int) -> I;
} in
overload advance {
  /\I where Iterator<I>. \it : I, n : int.
    (fix (\go : fn(I, int) -> I. \j : I, k : int.
      if ile(k, 0) then j else go(Iterator<I>.next(j), isub(k, 1))))(it, n);
  /\I where RandomAccessIterator<I>. \it : I, n : int.
    RandomAccessIterator<I>.advance_by(it, n);
} in
model Iterator<list int> { next = \l : list int. cdr[int](l); } in
model Iterator<int> { next = \p : int. iadd(p, 1); } in
model RandomAccessIterator<int> { advance_by = \p : int, n : int. iadd(p, n); } in
( car[int](advance[list int](cons[int](1, cons[int](2, cons[int](3, nil[int]))), 2)),
  advance[int](100, 7) )
"""

NESTED_REQUIREMENTS = r"""
// Nested requirements (core F_G here): a Container's iterator type must
// itself model Iterator, so generic code gets that model for free.
concept Iterator<I> {
  types elt;
  next : fn(I) -> I;
  curr : fn(I) -> elt;
  at_end : fn(I) -> bool;
} in
concept Container<X> {
  types iterator;
  require Iterator<iterator>;
  begin : fn(X) -> iterator;
} in
let first = /\C where Container<C>.
  \c : C. Iterator<Container<C>.iterator>.curr(Container<C>.begin(c)) in
model Iterator<list int> {
  types elt = int;
  next = \ls : list int. cdr[int](ls);
  curr = \ls : list int. car[int](ls);
  at_end = \ls : list int. null[int](ls);
} in
model Container<list int> {
  types iterator = list int;
  begin = \c : list int. c;
} in
first[list int](cons[int](42, cons[int](7, nil[int])))
"""


def main() -> None:
    print("== Named models + use ==")
    print(f"  (sum, product, max) of [3, 5, 2] = {ext.run(NAMED_MODELS)}")

    print("\n== Parameterized models ==")
    print(f"  mconcat [[1,2],[3],[]] = {ext.run(PARAM_MODELS)}")

    print("\n== Concept-member defaults ==")
    print(f"  (lt, gt, lte, gte) probes = {ext.run(DEFAULTS)}")

    print("\n== Algorithm specialization ==")
    linear, random_access = ext.run(SPECIALIZATION)
    print(f"  advance list-iterator by 2   = {linear} (linear stepping)")
    print(f"  advance 'pointer' 100 by 7   = {random_access} (O(1) alt)")

    print("\n== Nested requirements (core F_G) ==")
    print(f"  first of [42, 7] = {fg_run(NESTED_REQUIREMENTS)}")


if __name__ == "__main__":
    main()
