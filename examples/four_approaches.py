"""Figure 1, live: `square` in the four pre-existing approaches and in F_G.

Runs the paper's Figure 1 example in all five mini-languages —

  (a) subtype bounds        (Java-like, F-bounded generics + vtables)
  (b) type classes          (Haskell-like, global instances + dictionaries)
  (c) structural matching   (CLU-like type sets, explicit instantiation)
  (d) by-name lookup        (Cforall-like specs over free functions)
  (fg) concepts             (the paper's answer)

— then prints the executable feature-comparison table, with each verdict
backed by a probe program (a run that succeeds, or a rejection with the
characteristic error).

Run with::

    python examples/four_approaches.py
"""

from repro.approaches.comparison import format_table, verify_table
from repro.approaches.figure1 import run_all


def main() -> None:
    print("== Figure 1: square(4) in five languages ==\n")
    for language, value in run_all().items():
        print(f"  {language:<12} square(4) = {value}")

    print("\n== Feature comparison (probes verified at run time) ==\n")
    rows = verify_table()
    print(format_table(rows))

    print("\nEvery cell above is backed by a probe: 'yes' rows ran a")
    print("program exercising the feature; '-' rows demonstrated the")
    print("characteristic rejection (e.g. Haskell's overlapping-instances")
    print("error for the scoped-conformance row, paper section 3.2).")


if __name__ == "__main__":
    main()
