"""Generic graph algorithms in F_G — the domain that motivated the paper.

The authors' path to concepts ran through generic graph libraries (the Boost
Graph Library and the comparative study [14]).  This example writes a small
piece of that world in F_G: a ``Graph`` concept with an associated vertex
type, adjacency expressed through concept members, and a generic
reachability algorithm that works for *any* model of Graph.

Vertices are ints and a graph is its adjacency function; two different
models (a path graph and a complete bipartite-ish graph) reuse the same
generic ``reachable_within`` algorithm.

Run with::

    python examples/graph_algorithms.py
"""

from repro import fg_run, fg_verify

PROGRAM = r"""
// A Graph names a vertex type and exposes adjacency as a function from a
// vertex to the list of its neighbours.  EqualityComparable on the vertex
// type is a nested requirement: any model must already know how to compare
// its vertices.
concept EqualityComparable<t> { equal : fn(t, t) -> bool; } in
concept Graph<G> {
  types vertex;
  require EqualityComparable<vertex>;
  neighbours : fn(G, vertex) -> list vertex;
} in

model EqualityComparable<int> { equal = ieq; } in

// Generic membership test over the graph's vertex type.
let member = /\G where Graph<G>.
  fix (\mem : fn(Graph<G>.vertex, list Graph<G>.vertex) -> bool.
    \v : Graph<G>.vertex, vs : list Graph<G>.vertex.
      if null[Graph<G>.vertex](vs) then false
      else if EqualityComparable<Graph<G>.vertex>.equal(
                v, car[Graph<G>.vertex](vs))
      then true
      else mem(v, cdr[Graph<G>.vertex](vs))) in

// Generic bounded reachability: can we reach `target` from `from` in at
// most `depth` steps?  Works for any model of Graph.
let reachable_within = /\G where Graph<G>.
  \g : G.
    fix (\go : fn(Graph<G>.vertex, Graph<G>.vertex, int) -> bool.
      \from : Graph<G>.vertex, target : Graph<G>.vertex, depth : int.
        if EqualityComparable<Graph<G>.vertex>.equal(from, target) then true
        else if ile(depth, 0) then false
        else (fix (\any : fn(list Graph<G>.vertex) -> bool.
          \vs : list Graph<G>.vertex.
            if null[Graph<G>.vertex](vs) then false
            else if go(car[Graph<G>.vertex](vs), target, isub(depth, 1))
            then true
            else any(cdr[Graph<G>.vertex](vs))))
          (Graph<G>.neighbours(g, from))) in

// Model 1: the path graph 0 -> 1 -> 2 -> ... (successor edges only).
// A graph value is just a size bound here; vertices are ints.
model Graph<int> {
  types vertex = int;
  neighbours = \size : int, v : int.
    if ilt(iadd(v, 1), size) then cons[int](iadd(v, 1), nil[int])
    else nil[int];
} in

let path10 = 10 in
(
  // 0 can reach 5 in 5 steps but not in 4:
  reachable_within[int](path10)(0, 5, 5),
  reachable_within[int](path10)(0, 5, 4),
  // member test over the graph's vertex type:
  member[int](3, Graph<int>.neighbours(path10, 2))
)
"""


def main() -> None:
    print("== Generic graph algorithms in F_G ==")
    result = fg_run(PROGRAM)
    reach5, reach4, member3 = result
    print(f"  path graph: reach 0->5 within 5 steps? {reach5}")
    print(f"  path graph: reach 0->5 within 4 steps? {reach4}")
    print(f"  3 in neighbours(2)?                    {member3}")
    assert result == (True, False, True)
    fg_verify(PROGRAM)
    print("  translation verified against System F: OK")


if __name__ == "__main__":
    main()
