"""Associated types and same-type constraints: the section 5 iterator story.

Shows why associated types matter (the element type of an iterator is
determined by the model, not passed as an extra type parameter), and why
same-type constraints are "vital" (the paper's word) the moment an algorithm
consumes two iterators — ``merge`` needs both element types to coincide.

Uses the prelude's Iterator / OutputIterator / LessThanComparable concepts
and its generic ``accumulate_iter``, ``copy``, ``count``, and ``merge``.

Run with::

    python examples/iterators.py
"""

from repro import prelude
from repro.diagnostics.errors import TypeError_
from repro.fg import pretty_type


def show(title: str, program: str) -> None:
    value = prelude.run(program)
    print(f"  {title:<46} => {value}")


def main() -> None:
    print("== Generic algorithms over iterators (paper section 5) ==\n")
    show("count the range [0, 10)", "count[list int](range(0, 10))")
    show(
        "accumulate_iter over [1, 5)",
        "accumulate_iter[list int](range(1, 5))",
    )
    show(
        "copy into an output iterator (reversed)",
        "copy[list int, list int](range(0, 5), nil[int])",
    )
    show(
        "merge two sorted ranges",
        "reverse_int(merge[list int, list int, list int]"
        "(range(0, 6), range(3, 9), nil[int]), nil[int])",
    )
    show(
        "min_element",
        "min_element[list int](cons[int](4, cons[int](1, cons[int](3, nil[int]))))",
    )

    print("\n== The associated type resolves through the model ==")
    t = prelude.type_of(r"(\x : Iterator<list int>.elt. x)")
    print(f"  \\x : Iterator<list int>.elt. x   :   {pretty_type(t)}")

    print("\n== Same-type constraints are checked at instantiation ==")
    # merge requires Iterator<Iter1>.elt == Iterator<Iter2>.elt; a bool
    # iterator against an int iterator must be rejected.
    bad = """
    model Iterator<list bool> {
      types elt = bool;
      next = \\ls : list bool. cdr[bool](ls);
      curr = \\ls : list bool. car[bool](ls);
      at_end = \\ls : list bool. null[bool](ls);
    } in
    merge[list int, list bool, list int](range(0, 3), nil[bool], nil[int])
    """
    try:
        prelude.typecheck(bad)
        raise AssertionError("expected a same-type violation")
    except TypeError_ as err:
        print(f"  rejected as expected:\n    {err.message}")


if __name__ == "__main__":
    main()
