"""Quickstart: concepts, models, and generic functions in F_G.

Walks the paper's running example (sections 3-4): the Semigroup/Monoid
concept hierarchy, the generic ``accumulate`` (Figure 5), intentionally
overlapping scoped models (Figure 6), and the dictionary-passing translation
to System F (Figure 7).

Run with::

    python examples/quickstart.py
"""

from repro import fg_check, fg_pretty_type, fg_run, fg_translate, fg_verify
from repro.systemf import pretty_term

FIGURE_5 = r"""
// A Semigroup is a type with an associative binary operation.
concept Semigroup<t> { binary_op : fn(t, t) -> t; } in
// A Monoid refines Semigroup with an identity element.
concept Monoid<t> { refines Semigroup<t>; identity_elt : t; } in

// The generic accumulate of Figure 5: folds any list of monoid elements.
let accumulate = /\t where Monoid<t>.
  fix (\accum : fn(list t) -> t.
    \ls : list t.
      if null[t](ls) then Monoid<t>.identity_elt
      else Monoid<t>.binary_op(car[t](ls), accum(cdr[t](ls)))) in

// Figure 6: int models Monoid in two different ways, in separate scopes.
let sum =
  model Semigroup<int> { binary_op = iadd; } in
  model Monoid<int> { identity_elt = 0; } in
  accumulate[int] in
let product =
  model Semigroup<int> { binary_op = imult; } in
  model Monoid<int> { identity_elt = 1; } in
  accumulate[int] in

let ls = cons[int](1, cons[int](2, cons[int](3, cons[int](4, nil[int])))) in
(sum(ls), product(ls))
"""


def main() -> None:
    print("== The F_G program (Figures 5 and 6) ==")
    print(FIGURE_5)

    fg_type = fg_check(FIGURE_5)
    print("== Its F_G type ==")
    print(f"  {fg_pretty_type(fg_type)}")

    value = fg_run(FIGURE_5)
    print("\n== Evaluating (sum, product) of [1, 2, 3, 4] ==")
    print(f"  {value}")
    assert value == (10, 24)

    print("\n== Dictionary-passing translation to System F (Figure 7) ==")
    print(pretty_term(fg_translate(FIGURE_5)))

    fg_verify(FIGURE_5)
    print("\n== Theorem 1 check: the translation re-typechecks in System F ==")
    print("  OK")


if __name__ == "__main__":
    main()
