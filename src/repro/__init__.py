"""Reproduction of *Essential Language Support for Generic Programming*
(Siek & Lumsdaine, PLDI 2005).

This library implements System F_G — System F extended with concepts,
models, where clauses, associated types, and same-type constraints — with a
type-preserving dictionary-passing translation to System F, plus the four
comparison mini-languages of the paper's Figure 1.

Quick start::

    from repro import fg_run, fg_check

    program = '''
    concept Magma<t> { op : fn(t, t) -> t; } in
    let twice = /\\\\t where Magma<t>. \\\\x : t. Magma<t>.op(x, x) in
    model Magma<int> { op = iadd; } in
    twice[int](21)
    '''
    fg_run(program)      # => 42
    fg_check(program)    # => the F_G type, 'int'

Subpackages:

- :mod:`repro.fg` — the F_G language (the paper's contribution),
- :mod:`repro.systemf` — the System F substrate and translation target,
- :mod:`repro.syntax` — concrete syntax for both languages,
- :mod:`repro.prelude` — a standard concept library,
- :mod:`repro.approaches` — Figure 1's four pre-existing approaches,
- :mod:`repro.extensions` — the section 6 extensions (named and
  parameterized models, member defaults, nested requirements).
"""

from repro.fg import (
    evaluate as _fg_evaluate,
    translate as _fg_translate,
    typecheck as _fg_typecheck,
    verify_translation as _fg_verify,
)
from repro.fg.pretty import pretty_term as fg_pretty_term
from repro.fg.pretty import pretty_type as fg_pretty_type
from repro.syntax import parse_f, parse_fg
from repro.systemf import evaluate as f_evaluate
from repro.systemf import pretty_term as f_pretty_term
from repro.systemf import pretty_type as f_pretty_type
from repro.systemf import type_of as f_type_of

__version__ = "1.0.0"


def fg_check(program: str, use_prelude: bool = False):
    """Typecheck an F_G source program; returns its F_G type."""
    term = _parse(program, use_prelude)
    fg_type, _ = _fg_typecheck(term)
    return fg_type


def fg_translate(program: str, use_prelude: bool = False):
    """Translate an F_G source program to a System F term."""
    return _fg_translate(_parse(program, use_prelude))


def fg_run(program: str, use_prelude: bool = False):
    """Typecheck, translate, and evaluate an F_G source program."""
    return _fg_evaluate(_parse(program, use_prelude))


def fg_verify(program: str, use_prelude: bool = False):
    """Run the executable Theorem 1/2 check on an F_G source program."""
    return _fg_verify(_parse(program, use_prelude))


def fg_check_all(program: str, use_prelude: bool = False, **options):
    """Fault-tolerant check of F_G source; returns a :class:`CheckOutcome`.

    Unlike :func:`fg_check` this never raises a diagnostic: syntax and type
    errors are collected in ``outcome.report`` (parser resynchronization,
    typechecker recovery).  Keyword options are those of
    :func:`repro.pipeline.check_source`.
    """
    from repro.pipeline import check_source

    return check_source(program, prelude=use_prelude, **options)


def _parse(program: str, use_prelude: bool):
    if use_prelude:
        from repro import prelude

        return prelude.parse(program)
    return parse_fg(program)


__all__ = [
    "__version__",
    "f_evaluate",
    "f_pretty_term",
    "f_pretty_type",
    "f_type_of",
    "fg_check",
    "fg_check_all",
    "fg_pretty_term",
    "fg_pretty_type",
    "fg_run",
    "fg_translate",
    "fg_verify",
    "parse_f",
    "parse_fg",
]
