"""The four pre-existing approaches to generic programming (paper Figure 1).

Each submodule is a self-contained mini-language — abstract syntax,
typechecker, and evaluator — faithful to the approach it illustrates:

- :mod:`repro.approaches.subtyping` — subtype bounds on type parameters,
  F-bounded generics with vtable dispatch (Java / C# / Eiffel style);
- :mod:`repro.approaches.typeclasses` — type classes with *global* instance
  declarations and dictionary passing (Haskell style);
- :mod:`repro.approaches.structural` — structurally matched type sets with
  explicit instantiation (CLU style);
- :mod:`repro.approaches.byname` — by-name operation lookup against
  free-standing functions (Cforall / C++ style).

:mod:`repro.approaches.figure1` encodes Figure 1's ``square`` example in all
four, and :mod:`repro.approaches.comparison` reproduces the qualitative
comparison the paper builds on (Garcia et al., OOPSLA 2003) as runnable
probes.
"""

from repro.approaches import byname, structural, subtyping, typeclasses

__all__ = ["byname", "structural", "subtyping", "typeclasses"]
