"""By-name operation lookup (paper Figure 1d): a Cforall-like mini-language.

A *spec* names the function signatures a type parameter must support
(``spec number(type U) { U mult(U, U); }``); a ``forall`` function asserts
specs over its parameters (``forall(type T | number(T)) T square(T x)``).
Operations are **free-standing, overloadable functions**: declaring ``int
mult(int x, int y)`` anywhere makes ``int`` usable with ``number`` — the
compiler satisfies each assertion by searching the visible functions for one
with the required *name and signature*.  Instantiation is implicit (type
arguments inferred from the call).

This captures the C++/Cforall flavor the paper describes: retroactive
(a type qualifies as soon as someone writes the right function) but
name-based and unscoped — there is no semantic grouping, and two unrelated
functions that happen to share a name and signature are indistinguishable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.diagnostics.errors import EvalError, TypeError_

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    pass


@dataclass(frozen=True)
class TInt(Type):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class TBool(Type):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class TVar(Type):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TNamed(Type):
    """A user-declared opaque struct type."""

    name: str

    def __str__(self) -> str:
        return self.name


INT = TInt()
BOOL = TBool()


@dataclass(frozen=True)
class FnSig:
    """A required function signature inside a spec."""

    name: str
    params: Tuple[Type, ...]
    ret: Type

    def __str__(self) -> str:
        return f"{self.ret} {self.name}({', '.join(map(str, self.params))})"


def substitute(t: Type, subst: Dict[str, Type]) -> Type:
    if isinstance(t, TVar):
        return subst.get(t.name, t)
    return t


def substitute_sig(sig: FnSig, subst: Dict[str, Type]) -> FnSig:
    return FnSig(
        sig.name,
        tuple(substitute(p, subst) for p in sig.params),
        substitute(sig.ret, subst),
    )


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Spec:
    """``spec name(type param) { sigs }``."""

    name: str
    param: str
    sigs: Tuple[FnSig, ...]


@dataclass(frozen=True)
class Assertion:
    """``spec_name(tyvar)`` after the ``|`` in a forall."""

    spec: str
    tyvar: str


@dataclass(frozen=True)
class FuncDecl:
    """A free-standing (overloadable) monomorphic function."""

    name: str
    params: Tuple[Tuple[str, Type], ...]
    ret: Type
    body: Optional["Expr"] = None
    builtin: Optional[str] = None

    @property
    def signature(self) -> FnSig:
        return FnSig(self.name, tuple(t for _, t in self.params), self.ret)


@dataclass(frozen=True)
class ForallFunc:
    """``forall(type T | spec(T)) Ret name(params) { body }``."""

    name: str
    type_params: Tuple[str, ...]
    assertions: Tuple[Assertion, ...]
    params: Tuple[Tuple[str, Type], ...]
    ret: Type
    body: "Expr"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Var(Expr):
    name: str


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class Call(Expr):
    """``name(args)`` — may hit an overloaded function, a spec operation
    (inside a forall body), or a forall function (implicitly instantiated)."""

    name: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Let(Expr):
    name: str
    bound: Expr
    body: Expr


@dataclass(frozen=True)
class If(Expr):
    cond: Expr
    then: Expr
    else_: Expr


@dataclass(frozen=True)
class Program:
    specs: Tuple[Spec, ...] = ()
    functions: Tuple[FuncDecl, ...] = ()
    foralls: Tuple[ForallFunc, ...] = ()
    main: Expr = IntLit(0)


#: Builtin free functions available to every program.
BUILTINS: Tuple[FuncDecl, ...] = (
    FuncDecl("add", (("a", INT), ("b", INT)), INT, builtin="add"),
    FuncDecl("sub", (("a", INT), ("b", INT)), INT, builtin="sub"),
    FuncDecl("lt", (("a", INT), ("b", INT)), BOOL, builtin="lt"),
    FuncDecl("eq", (("a", INT), ("b", INT)), BOOL, builtin="eq"),
)

_BUILTIN_IMPLS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "lt": lambda a, b: a < b,
    "eq": lambda a, b: a == b,
}


# ---------------------------------------------------------------------------
# Typechecking
# ---------------------------------------------------------------------------


class Checker:
    """Typechecker with by-name overload resolution and spec assertions."""

    def __init__(self, program: Program):
        self.program = program
        self.specs = {s.name: s for s in program.specs}
        if len(self.specs) != len(program.specs):
            raise TypeError_("duplicate spec declaration")
        self.functions: Dict[str, List[FuncDecl]] = {}
        for func in BUILTINS + program.functions:
            bucket = self.functions.setdefault(func.name, [])
            for existing in bucket:
                if existing.signature == func.signature:
                    raise TypeError_(
                        f"duplicate overload {func.signature}"
                    )
            bucket.append(func)
        self.foralls = {f.name: f for f in program.foralls}
        if len(self.foralls) != len(program.foralls):
            raise TypeError_("duplicate forall function")
        # Records (Call-node id -> resolution) for the interpreter.
        self.resolutions: Dict[int, tuple] = {}

    # -- by-name lookup -----------------------------------------------------

    def find_function(self, sig: FnSig) -> FuncDecl:
        """The by-name lookup: a visible function with this exact signature."""
        for func in self.functions.get(sig.name, ()):
            if func.signature == sig:
                return func
        raise TypeError_(
            f"no function matching {sig} (by-name lookup failed)"
        )

    def check_program(self) -> Type:
        for func in self.program.functions:
            self._check_function(func)
        for forall in self.program.foralls:
            self._check_forall(forall)
        return self.check_expr(self.program.main, {}, None)

    def _check_function(self, func: FuncDecl) -> None:
        if func.body is None:
            if func.builtin is None:
                raise TypeError_(
                    f"function '{func.name}' has neither body nor builtin"
                )
            return
        scope = dict(func.params)
        actual = self.check_expr(func.body, scope, None)
        if actual != func.ret:
            raise TypeError_(
                f"function '{func.name}' returns {actual}, "
                f"declared {func.ret}"
            )

    def _check_forall(self, forall: ForallFunc) -> None:
        tyvars = frozenset(forall.type_params)
        if len(tyvars) != len(forall.type_params):
            raise TypeError_(f"duplicate type parameter in '{forall.name}'")
        for assertion in forall.assertions:
            if assertion.spec not in self.specs:
                raise TypeError_(f"unknown spec '{assertion.spec}'")
            if assertion.tyvar not in tyvars:
                raise TypeError_(
                    f"assertion on unknown type parameter "
                    f"'{assertion.tyvar}'"
                )
        scope = dict(forall.params)
        actual = self.check_expr(forall.body, scope, forall)
        if actual != forall.ret:
            raise TypeError_(
                f"forall '{forall.name}' returns {actual}, "
                f"declared {forall.ret}"
            )

    # -- expressions ---------------------------------------------------------

    def check_expr(
        self,
        expr: Expr,
        scope: Dict[str, Type],
        enclosing: Optional[ForallFunc],
    ) -> Type:
        if isinstance(expr, Var):
            if expr.name not in scope:
                raise TypeError_(f"unbound variable '{expr.name}'")
            return scope[expr.name]
        if isinstance(expr, IntLit):
            return INT
        if isinstance(expr, BoolLit):
            return BOOL
        if isinstance(expr, Call):
            return self._check_call(expr, scope, enclosing)
        if isinstance(expr, Let):
            bound = self.check_expr(expr.bound, scope, enclosing)
            inner = dict(scope)
            inner[expr.name] = bound
            return self.check_expr(expr.body, inner, enclosing)
        if isinstance(expr, If):
            cond = self.check_expr(expr.cond, scope, enclosing)
            if cond != BOOL:
                raise TypeError_(f"if condition has type {cond}")
            then = self.check_expr(expr.then, scope, enclosing)
            else_ = self.check_expr(expr.else_, scope, enclosing)
            if then != else_:
                raise TypeError_(f"if branches disagree: {then} vs {else_}")
            return then
        raise AssertionError(f"unknown expression: {expr!r}")

    def _spec_signatures(
        self, enclosing: Optional[ForallFunc]
    ) -> List[FnSig]:
        """Signatures the enclosing forall's assertions bring into scope."""
        if enclosing is None:
            return []
        out = []
        for assertion in enclosing.assertions:
            spec = self.specs[assertion.spec]
            subst = {spec.param: TVar(assertion.tyvar)}
            out.extend(substitute_sig(s, subst) for s in spec.sigs)
        return out

    def _check_call(self, expr, scope, enclosing) -> Type:
        arg_types = [self.check_expr(a, scope, enclosing) for a in expr.args]
        # 1. A spec operation of the enclosing forall?
        for sig in self._spec_signatures(enclosing):
            if sig.name == expr.name and list(sig.params) == arg_types:
                self.resolutions[id(expr)] = ("spec", sig)
                return sig.ret
        # 2. A forall function, implicitly instantiated?
        forall = self.foralls.get(expr.name)
        if forall is not None:
            subst = self._infer(forall, arg_types)
            # Satisfy each assertion by by-name lookup at the inferred type.
            bindings: List[Tuple[FnSig, FnSig]] = []
            for assertion in forall.assertions:
                spec = self.specs[assertion.spec]
                actual = subst[assertion.tyvar]
                inner = {spec.param: actual}
                for sig in spec.sigs:
                    required = substitute_sig(sig, inner)
                    if isinstance(actual, TVar):
                        # Instantiated at an enclosing type parameter: the
                        # enclosing assertions must provide the operation.
                        if required not in self._spec_signatures(enclosing):
                            raise TypeError_(
                                f"assertion {assertion.spec}({actual}) not "
                                f"satisfiable: {required} not in scope"
                            )
                        bindings.append((substitute_sig(sig, {spec.param: TVar(assertion.tyvar)}), required))
                    else:
                        self.find_function(required)
                        bindings.append((substitute_sig(sig, {spec.param: TVar(assertion.tyvar)}), required))
            self.resolutions[id(expr)] = ("forall", forall.name, subst, bindings)
            expected = [substitute(t, subst) for _, t in forall.params]
            if arg_types != expected:
                raise TypeError_(
                    f"forall '{forall.name}' expects {expected}, "
                    f"got {arg_types}"
                )
            return substitute(forall.ret, subst)
        # 3. A plain overloaded function: match on argument types.
        candidates = [
            f
            for f in self.functions.get(expr.name, ())
            if list(t for _, t in f.params) == arg_types
        ]
        if len(candidates) == 1:
            self.resolutions[id(expr)] = ("plain", candidates[0])
            return candidates[0].ret
        if len(candidates) > 1:
            raise TypeError_(f"ambiguous call to '{expr.name}'")
        raise TypeError_(
            f"no function '{expr.name}' matching argument types "
            f"({', '.join(map(str, arg_types))})"
        )

    def _infer(self, forall: ForallFunc, arg_types) -> Dict[str, Type]:
        if len(arg_types) != len(forall.params):
            raise TypeError_(f"forall '{forall.name}' arity mismatch")
        subst: Dict[str, Type] = {}
        for (_, declared), actual in zip(forall.params, arg_types):
            if isinstance(declared, TVar) and declared.name in forall.type_params:
                prev = subst.get(declared.name)
                if prev is None:
                    subst[declared.name] = actual
                elif prev != actual:
                    raise TypeError_(
                        f"conflicting inference for '{declared.name}'"
                    )
            elif declared != actual:
                raise TypeError_(
                    f"cannot match {declared} against {actual}"
                )
        for name in forall.type_params:
            if name not in subst:
                raise TypeError_(
                    f"cannot infer type argument '{name}' for "
                    f"'{forall.name}'"
                )
        return subst


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


class Interpreter:
    """Evaluator replaying the checker's by-name resolutions.

    A forall call carries an *operation environment*: the concrete functions
    selected for each spec signature, passed down so the body's calls to
    spec operations hit the right overloads.
    """

    def __init__(self, program: Program, checker: Checker):
        self.program = program
        self.checker = checker

    def run(self):
        return self.eval(self.program.main, {}, {})

    def _call_func(self, func: FuncDecl, args, ops):
        if func.builtin is not None:
            return _BUILTIN_IMPLS[func.builtin](*args)
        scope = {n: v for (n, _), v in zip(func.params, args)}
        return self.eval(func.body, scope, {})

    def eval(self, expr: Expr, env: Dict[str, object], ops: Dict[FnSig, object]):
        if isinstance(expr, Var):
            if expr.name not in env:
                raise EvalError(f"unbound variable '{expr.name}'")
            return env[expr.name]
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, BoolLit):
            return expr.value
        if isinstance(expr, Call):
            args = [self.eval(a, env, ops) for a in expr.args]
            resolution = self.checker.resolutions.get(id(expr))
            if resolution is None:
                raise EvalError(f"unresolved call to '{expr.name}'")
            if resolution[0] == "spec":
                _, sig = resolution
                func = ops.get(sig)
                if func is None:
                    raise EvalError(f"no operation bound for {sig}")
                return self._call_with(func, args, ops)
            if resolution[0] == "plain":
                return self._call_func(resolution[1], args, ops)
            _, name, _, bindings = resolution
            forall = self.checker.foralls[name]
            new_ops: Dict[FnSig, object] = {}
            for formal_sig, required in bindings:
                candidate = ops.get(required)
                if candidate is None:
                    candidate = self.checker.find_function(required)
                new_ops[formal_sig] = candidate
            scope = {n: v for (n, _), v in zip(forall.params, args)}
            return self.eval(forall.body, scope, new_ops)
        if isinstance(expr, Let):
            bound = self.eval(expr.bound, env, ops)
            inner = dict(env)
            inner[expr.name] = bound
            return self.eval(expr.body, inner, ops)
        if isinstance(expr, If):
            branch = expr.then if self.eval(expr.cond, env, ops) else expr.else_
            return self.eval(branch, env, ops)
        raise AssertionError(f"unknown expression: {expr!r}")

    def _call_with(self, func, args, ops):
        if isinstance(func, FuncDecl):
            return self._call_func(func, args, ops)
        raise EvalError(f"cannot call {func!r}")


def check(program: Program) -> Type:
    """Typecheck ``program``; returns the type of ``main``."""
    return Checker(program).check_program()


def run(program: Program):
    """Typecheck and evaluate ``program``."""
    checker = Checker(program)
    checker.check_program()
    return Interpreter(program, checker).run()
