"""The qualitative comparison behind the paper, as *runnable probes*.

The paper's motivation (sections 1-2, building on Garcia et al., OOPSLA
2003) is a feature comparison of the four pre-existing approaches against
concepts.  This module reproduces that comparison as an executable table:
each row is a language capability, each cell a verdict, and — wherever the
mini-languages can demonstrate it — a probe that *runs* and confirms the
verdict (a program that typechecks and computes, or one that is rejected
with the characteristic error).

``build_table()`` returns the rows; ``verify_table()`` runs every probe and
raises if any verdict is not actually exhibited by the implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.diagnostics.errors import TypeError_

LANGUAGES = ("subtyping", "typeclasses", "structural", "byname", "fg")


@dataclass
class FeatureRow:
    """One comparison row: a capability, per-language verdicts, and probes."""

    feature: str
    description: str
    support: Dict[str, bool]
    probes: Dict[str, Callable[[], bool]] = field(default_factory=dict)

    def verify(self) -> Dict[str, bool]:
        """Run every probe; returns per-language results (must all be True)."""
        return {lang: probe() for lang, probe in self.probes.items()}


def _expect_type_error(thunk: Callable[[], object]) -> bool:
    try:
        thunk()
    except TypeError_:
        return True
    return False


# ---------------------------------------------------------------------------
# Probes
# ---------------------------------------------------------------------------


def _probe_fg_scoped_models() -> bool:
    """Figure 6: overlapping monoids coexist in separate lexical scopes."""
    from repro import fg_run
    from repro.prelude import run

    result = run(
        """
        let product =
          model Semigroup<int> { binary_op = imult; } in
          model Monoid<int> { identity_elt = 1; } in
          accumulate[int] in
        (accumulate[int](range(1, 5)), product(range(1, 5)))
        """
    )
    return result == (10, 24)


def _probe_typeclasses_overlap_rejected() -> bool:
    """Haskell rejects a second ``Number Int`` instance (section 3.2)."""
    from repro.approaches import typeclasses as B
    from repro.approaches.figure1 import typeclasses_program

    base = typeclasses_program()
    second = B.InstanceDecl("Number", B.INT, (("mult", B.Var("primMulInt")),))
    overlapping = B.Program(
        classes=base.classes,
        instances=base.instances + (second,),
        functions=base.functions,
        main=base.main,
    )
    return _expect_type_error(lambda: B.check(overlapping))


def _probe_subtyping_not_retroactive() -> bool:
    """A class lacking an implements-clause never satisfies the bound,
    even with a structurally perfect ``mult``."""
    from repro.approaches import subtyping as A
    from repro.approaches.figure1 import subtyping_program

    base = subtyping_program()
    outsider = A.ClassDecl(
        "Outsider",
        implements=(),  # structurally fine, nominally unrelated
        fields=(("value", A.INT),),
        methods=(
            A.Method(
                "mult",
                (("x", A.TName("Outsider")),),
                A.TName("Outsider"),
                A.New(
                    "Outsider",
                    (
                        A.PrimOp(
                            "mul",
                            (
                                A.FieldAccess(A.Var("this"), "value"),
                                A.FieldAccess(A.Var("x"), "value"),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )
    program = A.Program(
        interfaces=base.interfaces,
        classes=base.classes + (outsider,),
        functions=base.functions,
        main=A.Call("square", (A.New("Outsider", (A.IntLit(4),)),)),
    )
    return _expect_type_error(lambda: A.check(program))


def _probe_typeclasses_retroactive() -> bool:
    """Any type gains class membership by a later instance declaration."""
    from repro.approaches import typeclasses as B
    from repro.approaches.figure1 import typeclasses_program

    return B.run(typeclasses_program()) == 16


def _probe_structural_admits_accidental_match() -> bool:
    """Structural matching admits any cluster with a same-shaped ``mul`` —
    membership is not semantic."""
    from repro.approaches import structural as C
    from repro.approaches.figure1 import structural_program

    base = structural_program()
    # A 'matrix dimension' cluster whose `mul` happens to have the right
    # shape; CLU admits it into `number` with no declaration of intent.
    accidental = C.Cluster(
        "dim",
        (
            C.ClusterOp(
                "mul",
                (("a", C.TCluster("dim")), ("b", C.TCluster("dim"))),
                C.TCluster("dim"),
                body=C.Var("a"),
            ),
        ),
    )
    program = C.Program(
        type_sets=base.type_sets,
        clusters=(accidental,),
        procs=base.procs,
        main=base.main,
    )
    checker = C.Checker(program)
    checker.check_membership(C.TCluster("dim"), "number")
    return True


def _probe_structural_explicit_instantiation() -> bool:
    """CLU procs demand explicit type arguments (``square[int]``)."""
    from repro.approaches import structural as C
    from repro.approaches.figure1 import structural_program

    base = structural_program()
    missing = C.Program(
        type_sets=base.type_sets,
        procs=base.procs,
        main=C.ProcCall("square", (), (C.IntLit(4),)),
    )
    return _expect_type_error(lambda: C.check(missing))


def _probe_byname_retroactive() -> bool:
    """Declaring ``int mult(int, int)`` anywhere makes int usable."""
    from repro.approaches import byname as D
    from repro.approaches.figure1 import byname_program

    return D.run(byname_program()) == 16


def _probe_byname_requires_function() -> bool:
    """Without a visible ``mult`` at the right signature the call fails."""
    from repro.approaches import byname as D
    from repro.approaches.figure1 import byname_program

    base = byname_program()
    without_mult = D.Program(
        specs=base.specs,
        functions=(),  # no `mult` for int anywhere
        foralls=base.foralls,
        main=base.main,
    )
    return _expect_type_error(lambda: D.check(without_mult))


def _probe_fg_multi_type_constraint() -> bool:
    """F_G concepts constrain *groups* of types (OutputIterator<Out, t>)."""
    from repro.prelude import run

    return run("reverse_int(copy[list int, list int](range(0, 3), nil[int]), nil[int])") == [0, 1, 2]


def _probe_fg_associated_types() -> bool:
    """F_G: associated types + same-type constraints (the merge example)."""
    from repro.prelude import run

    result = run(
        "reverse_int(merge[list int, list int, list int]"
        "(range(0, 3), range(1, 4), nil[int]), nil[int])"
    )
    return result == [0, 1, 1, 2, 2, 3]


def _probe_fg_refinement() -> bool:
    """Concept composition by refinement (Monoid refines Semigroup)."""
    from repro.prelude import run

    return run("Monoid<int>.binary_op(20, 22)") == 42


def _probe_subtyping_square() -> bool:
    from repro.approaches import subtyping as A
    from repro.approaches.figure1 import subtyping_program

    return A.run(subtyping_program()) == 16


def _probe_structural_square() -> bool:
    from repro.approaches import structural as C
    from repro.approaches.figure1 import structural_program

    return C.run(structural_program()) == 16


# ---------------------------------------------------------------------------
# The table
# ---------------------------------------------------------------------------


def build_table() -> Tuple[FeatureRow, ...]:
    """The comparison table, with probes attached where demonstrable."""
    return (
        FeatureRow(
            "generic-algorithms",
            "Figure 1's square can be written and reused",
            {lang: True for lang in LANGUAGES},
            {
                "subtyping": _probe_subtyping_square,
                "typeclasses": _probe_typeclasses_retroactive,
                "structural": _probe_structural_square,
                "byname": _probe_byname_retroactive,
                "fg": lambda: __import__("repro").fg_run(
                    __import__(
                        "repro.approaches.figure1", fromlist=["FG_SQUARE_SOURCE"]
                    ).FG_SQUARE_SOURCE
                )
                == 16,
            },
        ),
        FeatureRow(
            "retroactive-modeling",
            "an existing type can be made to conform after the fact",
            {
                "subtyping": False,
                "typeclasses": True,
                "structural": True,
                "byname": True,
                "fg": True,
            },
            {
                "subtyping": _probe_subtyping_not_retroactive,
                "typeclasses": _probe_typeclasses_retroactive,
                "structural": _probe_structural_admits_accidental_match,
                "byname": _probe_byname_retroactive,
                "fg": _probe_fg_refinement,
            },
        ),
        FeatureRow(
            "semantic-conformance",
            "conformance is a declared intent, not a structural accident",
            {
                "subtyping": True,
                "typeclasses": True,
                "structural": False,
                "byname": False,
                "fg": True,
            },
            {
                "structural": _probe_structural_admits_accidental_match,
                "byname": _probe_byname_requires_function,
            },
        ),
        FeatureRow(
            "scoped-conformance",
            "overlapping conformance declarations in separate scopes "
            "(paper Figure 6)",
            {
                "subtyping": False,
                "typeclasses": False,
                "structural": False,
                "byname": False,
                "fg": True,
            },
            {
                "typeclasses": _probe_typeclasses_overlap_rejected,
                "fg": _probe_fg_scoped_models,
            },
        ),
        FeatureRow(
            "multi-type-constraints",
            "one constraint over a group of types (section 2)",
            {
                "subtyping": False,
                "typeclasses": False,
                "structural": False,
                "byname": False,
                "fg": True,
            },
            {"fg": _probe_fg_multi_type_constraint},
        ),
        FeatureRow(
            "associated-types",
            "types that vary per model without extra type parameters "
            "(section 5)",
            {
                "subtyping": False,
                "typeclasses": False,
                "structural": False,
                "byname": False,
                "fg": True,
            },
            {"fg": _probe_fg_associated_types},
        ),
        FeatureRow(
            "same-type-constraints",
            "equate associated types across constraints (section 5)",
            {
                "subtyping": False,
                "typeclasses": False,
                "structural": False,
                "byname": False,
                "fg": True,
            },
            {"fg": _probe_fg_associated_types},
        ),
        FeatureRow(
            "constraint-composition",
            "build new constraints from old (refinement; CLU cannot "
            "compose type sets, section 2)",
            {
                "subtyping": False,
                "typeclasses": False,
                "structural": False,
                "byname": False,
                "fg": True,
            },
            {"fg": _probe_fg_refinement},
        ),
        FeatureRow(
            "implicit-instantiation",
            "type arguments inferred at call sites (future work for F_G, "
            "section 6)",
            {
                "subtyping": True,
                "typeclasses": True,
                "structural": False,
                "byname": True,
                "fg": False,
            },
            {"structural": _probe_structural_explicit_instantiation},
        ),
    )


def verify_table() -> Tuple[FeatureRow, ...]:
    """Run every probe in the table; raise if any verdict is undemonstrated."""
    rows = build_table()
    for row in rows:
        results = row.verify()
        failed = [lang for lang, ok in results.items() if not ok]
        if failed:
            raise AssertionError(
                f"comparison row '{row.feature}': probes failed for "
                f"{', '.join(failed)}"
            )
    return rows


def format_table(rows=None) -> str:
    """Render the comparison as the paper-style feature matrix."""
    rows = rows if rows is not None else build_table()
    header = ["feature"] + list(LANGUAGES)
    widths = [max(len(header[0]), max(len(r.feature) for r in rows))] + [
        max(len(lang), 3) for lang in LANGUAGES
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        cells = [row.feature.ljust(widths[0])]
        for lang, width in zip(LANGUAGES, widths[1:]):
            cells.append(("yes" if row.support[lang] else "-").ljust(width))
        lines.append("  ".join(cells))
    return "\n".join(lines)
