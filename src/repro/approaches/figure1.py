"""The paper's Figure 1, executable: ``square`` in all four approaches.

Each builder returns a checked program computing ``square(4) == 16``; the
F_G version (Figure 1 would be incomplete without the paper's own answer) is
provided as source text for :func:`repro.fg_run`.
"""

from __future__ import annotations

from repro.approaches import byname as D
from repro.approaches import structural as C
from repro.approaches import subtyping as A
from repro.approaches import typeclasses as B

# ---------------------------------------------------------------------------
# (a) Subtype bounds — Java
# ---------------------------------------------------------------------------


def subtyping_program() -> A.Program:
    """``interface Number<U>``, ``class BigInt implements Number<BigInt>``,
    ``<T extends Number<T>> T square(T x)``, ``square(BigInt(4))``."""
    number = A.Interface(
        "Number",
        ("U",),
        (A.MethodSig("mult", (A.TVar("U"),), A.TVar("U")),),
    )
    bigint = A.ClassDecl(
        "BigInt",
        implements=(A.TName("Number", (A.TName("BigInt"),)),),
        fields=(("value", A.INT),),
        methods=(
            A.Method(
                "mult",
                (("x", A.TName("BigInt")),),
                A.TName("BigInt"),
                A.New(
                    "BigInt",
                    (
                        A.PrimOp(
                            "mul",
                            (
                                A.FieldAccess(A.Var("this"), "value"),
                                A.FieldAccess(A.Var("x"), "value"),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )
    square = A.GenericFunc(
        "square",
        type_params=(A.TypeParam("T", A.TName("Number", (A.TVar("T"),))),),
        params=(("x", A.TVar("T")),),
        ret=A.TVar("T"),
        body=A.MethodCall(A.Var("x"), "mult", (A.Var("x"),)),
    )
    return A.Program(
        interfaces=(number,),
        classes=(bigint,),
        functions=(square,),
        main=A.FieldAccess(
            A.Call("square", (A.New("BigInt", (A.IntLit(4),)),)), "value"
        ),
    )


# ---------------------------------------------------------------------------
# (b) Type classes — Haskell
# ---------------------------------------------------------------------------


def typeclasses_program() -> B.Program:
    """``class Number u where mult``, ``instance Number Int``,
    ``square :: Number t => t -> t``, ``square (4 :: Int)``."""
    number = B.ClassDecl(
        "Number",
        "u",
        (("mult", B.TFn((B.TVar("u"), B.TVar("u")), B.TVar("u"))),),
    )
    # `mult = (*)` — express the primitive as a checked wrapper function.
    int_instance = B.InstanceDecl(
        "Number",
        B.INT,
        (("mult", B.Var("primMulInt")),),
    )
    prim_mul = B.FuncDecl(
        "primMulInt",
        type_params=(),
        constraints=(),
        params=(("a", B.INT), ("b", B.INT)),
        ret=B.INT,
        body=B.PrimOp("mul", (B.Var("a"), B.Var("b"))),
    )
    square = B.FuncDecl(
        "square",
        type_params=("t",),
        constraints=(B.Constraint("Number", "t"),),
        params=(("x", B.TVar("t")),),
        ret=B.TVar("t"),
        body=B.Call(B.MethodRef("mult"), (B.Var("x"), B.Var("x"))),
    )
    return B.Program(
        classes=(number,),
        instances=(int_instance,),
        functions=(prim_mul, square),
        main=B.Call(B.Var("square"), (B.IntLit(4),)),
    )


# ---------------------------------------------------------------------------
# (c) Structural matching — CLU
# ---------------------------------------------------------------------------


def structural_program() -> C.Program:
    """``number = { u | u has mul }``, ``square = proc[t] where t in number``,
    explicitly instantiated at ``int``."""
    number = C.TypeSet(
        "number",
        "u",
        (("mul", C.ProcType((C.TVar("u"), C.TVar("u")), C.TVar("u"))),),
    )
    square = C.Proc(
        "square",
        type_params=("t",),
        where=(C.WhereClause("t", "number"),),
        params=(("a", C.TVar("t")),),
        ret=C.TVar("t"),
        body=C.OpCall(C.TVar("t"), "mul", (C.Var("a"), C.Var("a"))),
    )
    return C.Program(
        type_sets=(number,),
        procs=(square,),
        main=C.ProcCall("square", (C.INT,), (C.IntLit(4),)),
    )


# ---------------------------------------------------------------------------
# (d) By-name operation lookup — Cforall
# ---------------------------------------------------------------------------


def byname_program() -> D.Program:
    """``spec number(type U) { U mult(U, U); }``, ``forall(type T |
    number(T)) T square(T x)``, and a free-standing ``int mult(int, int)``."""
    number = D.Spec(
        "number",
        "U",
        (D.FnSig("mult", (D.TVar("U"), D.TVar("U")), D.TVar("U")),),
    )
    mult_int = D.FuncDecl(
        "mult",
        (("x", D.INT), ("y", D.INT)),
        D.INT,
        builtin="mul",
    )
    square = D.ForallFunc(
        "square",
        type_params=("T",),
        assertions=(D.Assertion("number", "T"),),
        params=(("x", D.TVar("T")),),
        ret=D.TVar("T"),
        body=D.Call("mult", (D.Var("x"), D.Var("x"))),
    )
    return D.Program(
        specs=(number,),
        functions=(mult_int,),
        foralls=(square,),
        main=D.Call("square", (D.IntLit(4),)),
    )


# ---------------------------------------------------------------------------
# The paper's own answer: F_G
# ---------------------------------------------------------------------------

#: Figure 1 in F_G itself (concepts + models + where clause).
FG_SQUARE_SOURCE = r"""
concept Number<u> { mult : fn(u, u) -> u; } in
let square = /\t where Number<t>. \x : t. Number<t>.mult(x, x) in
model Number<int> { mult = imult; } in
square[int](4)
"""


def run_all() -> dict:
    """Run Figure 1 in all five languages; every entry should be 16."""
    from repro import fg_run

    return {
        "subtyping": A.run(subtyping_program()),
        "typeclasses": B.run(typeclasses_program()),
        "structural": C.run(structural_program()),
        "byname": D.run(byname_program()),
        "fg": fg_run(FG_SQUARE_SOURCE),
    }
