"""Structural matching (paper Figure 1c): a CLU-like mini-language.

Constraints are *type sets* defined structurally: a type set names the
operations a type must have (``number = { u | u has mul: proctype (u,u)
returns (u) }``); any type whose *cluster* supplies operations with the
required signatures belongs — no conformance declaration.  Polymorphic
procedures carry ``where`` clauses over their type parameters and are
**explicitly instantiated** (``square[int]``), at which point the structural
check runs.  Operations are invoked with CLU's ``t$op`` syntax, modeled here
by :class:`OpCall`.

The characteristic differences from F_G fall out: membership is structural
(a type with an accidentally matching ``mul`` is admitted), there is no way
to compose type sets by refinement, and no associated types exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.diagnostics.errors import EvalError, TypeError_

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    pass


@dataclass(frozen=True)
class TInt(Type):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class TBool(Type):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class TVar(Type):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TCluster(Type):
    """A user-defined cluster (abstract data type) by name."""

    name: str

    def __str__(self) -> str:
        return self.name


INT = TInt()
BOOL = TBool()


@dataclass(frozen=True)
class ProcType:
    """``proctype (args) returns (ret)``."""

    params: Tuple[Type, ...]
    ret: Type

    def __str__(self) -> str:
        return f"proctype ({', '.join(map(str, self.params))}) returns ({self.ret})"


def substitute(t: Type, subst: Dict[str, Type]) -> Type:
    if isinstance(t, TVar):
        return subst.get(t.name, t)
    return t


def substitute_proc(p: ProcType, subst: Dict[str, Type]) -> ProcType:
    return ProcType(
        tuple(substitute(x, subst) for x in p.params),
        substitute(p.ret, subst),
    )


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TypeSet:
    """``name = { var | var has op: proctype..., ... }`` — purely structural."""

    name: str
    var: str
    required_ops: Tuple[Tuple[str, ProcType], ...]


@dataclass(frozen=True)
class ClusterOp:
    """A (possibly builtin) operation of a cluster."""

    name: str
    params: Tuple[Tuple[str, Type], ...]
    ret: Type
    body: Optional["Expr"] = None  # None marks a builtin
    builtin: Optional[str] = None


@dataclass(frozen=True)
class Cluster:
    """A cluster: a named type together with its operation table."""

    name: str
    ops: Tuple[ClusterOp, ...]


@dataclass(frozen=True)
class WhereClause:
    """``where t in number`` — the type variable must belong to the type set."""

    tyvar: str
    type_set: str


@dataclass(frozen=True)
class Proc:
    """``name = proc[t, ...](params) returns (ret) where clauses body``."""

    name: str
    type_params: Tuple[str, ...]
    where: Tuple[WhereClause, ...]
    params: Tuple[Tuple[str, Type], ...]
    ret: Type
    body: "Expr"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Var(Expr):
    name: str


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class OpCall(Expr):
    """CLU's ``t$op(args)``: the operation named ``op`` of type ``type``."""

    type: Type
    op: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class ProcCall(Expr):
    """``name[type-args](args)`` — instantiation is explicit."""

    proc: str
    type_args: Tuple[Type, ...]
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Let(Expr):
    name: str
    bound: Expr
    body: Expr


@dataclass(frozen=True)
class If(Expr):
    cond: Expr
    then: Expr
    else_: Expr


@dataclass(frozen=True)
class Program:
    type_sets: Tuple[TypeSet, ...] = ()
    clusters: Tuple[Cluster, ...] = ()
    procs: Tuple[Proc, ...] = ()
    main: Expr = IntLit(0)


#: The built-in ``int`` cluster: CLU's int has static operations for
#: arithmetic; ``mul``'s presence is what admits int into Figure 1c's
#: ``number`` type set.
INT_CLUSTER = Cluster(
    "int",
    (
        ClusterOp("add", (("a", INT), ("b", INT)), INT, builtin="add"),
        ClusterOp("sub", (("a", INT), ("b", INT)), INT, builtin="sub"),
        ClusterOp("mul", (("a", INT), ("b", INT)), INT, builtin="mul"),
        ClusterOp("lt", (("a", INT), ("b", INT)), BOOL, builtin="lt"),
        ClusterOp("equal", (("a", INT), ("b", INT)), BOOL, builtin="equal"),
    ),
)

BOOL_CLUSTER = Cluster(
    "bool",
    (
        ClusterOp("and", (("a", BOOL), ("b", BOOL)), BOOL, builtin="and"),
        ClusterOp("or", (("a", BOOL), ("b", BOOL)), BOOL, builtin="or"),
        ClusterOp("not", (("a", BOOL),), BOOL, builtin="not"),
    ),
)

_BUILTIN_IMPLS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "lt": lambda a, b: a < b,
    "equal": lambda a, b: a == b,
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
    "not": lambda a: not a,
}


# ---------------------------------------------------------------------------
# Typechecking
# ---------------------------------------------------------------------------


class Checker:
    """Typechecker: structural where-clause matching at explicit instantiation."""

    def __init__(self, program: Program):
        self.program = program
        self.type_sets = {s.name: s for s in program.type_sets}
        self.clusters: Dict[str, Cluster] = {
            "int": INT_CLUSTER,
            "bool": BOOL_CLUSTER,
        }
        for cluster in program.clusters:
            if cluster.name in self.clusters:
                raise TypeError_(f"duplicate cluster '{cluster.name}'")
            self.clusters[cluster.name] = cluster
        self.procs = {p.name: p for p in program.procs}
        if len(self.procs) != len(program.procs):
            raise TypeError_("duplicate proc declaration")

    def cluster_of(self, t: Type) -> Cluster:
        if isinstance(t, TInt):
            return INT_CLUSTER
        if isinstance(t, TBool):
            return BOOL_CLUSTER
        if isinstance(t, TCluster):
            cluster = self.clusters.get(t.name)
            if cluster is None:
                raise TypeError_(f"unknown cluster '{t.name}'")
            return cluster
        raise TypeError_(f"type {t} has no cluster")

    def check_membership(self, t: Type, set_name: str) -> None:
        """The structural check: ``t``'s cluster must supply every required op.

        Required signatures are instantiated with ``t`` for the set's own
        variable; matching is by name *and* full signature.
        """
        type_set = self.type_sets.get(set_name)
        if type_set is None:
            raise TypeError_(f"unknown type set '{set_name}'")
        cluster = self.cluster_of(t)
        ops = {op.name: op for op in cluster.ops}
        subst = {type_set.var: t}
        for name, required in type_set.required_ops:
            required_at_t = substitute_proc(required, subst)
            op = ops.get(name)
            if op is None:
                raise TypeError_(
                    f"type {t} is not in type set '{set_name}': cluster "
                    f"'{cluster.name}' has no operation '{name}'"
                )
            actual = ProcType(tuple(pt for _, pt in op.params), op.ret)
            if actual != required_at_t:
                raise TypeError_(
                    f"type {t} is not in type set '{set_name}': operation "
                    f"'{name}' has signature {actual}, required "
                    f"{required_at_t}"
                )

    def check_program(self) -> Type:
        for cluster in self.program.clusters:
            self._check_cluster(cluster)
        for proc in self.program.procs:
            self._check_proc(proc)
        return self.check_expr(self.program.main, {}, frozenset(), ())

    def _check_cluster(self, cluster: Cluster) -> None:
        for op in cluster.ops:
            if op.body is None and op.builtin is None:
                raise TypeError_(
                    f"operation '{op.name}' of cluster '{cluster.name}' "
                    "has neither body nor builtin"
                )
            if op.body is not None:
                scope = dict(op.params)
                actual = self.check_expr(op.body, scope, frozenset(), ())
                if actual != op.ret:
                    raise TypeError_(
                        f"operation '{cluster.name}${op.name}' returns "
                        f"{actual}, declared {op.ret}"
                    )

    def _check_proc(self, proc: Proc) -> None:
        tyvars = frozenset(proc.type_params)
        if len(tyvars) != len(proc.type_params):
            raise TypeError_(f"duplicate type parameter in '{proc.name}'")
        for clause in proc.where:
            if clause.tyvar not in tyvars:
                raise TypeError_(
                    f"where clause on unknown type parameter "
                    f"'{clause.tyvar}'"
                )
            if clause.type_set not in self.type_sets:
                raise TypeError_(f"unknown type set '{clause.type_set}'")
        scope = dict(proc.params)
        actual = self.check_expr(proc.body, scope, tyvars, proc.where)
        if actual != proc.ret:
            raise TypeError_(
                f"proc '{proc.name}' returns {actual}, declared {proc.ret}"
            )

    def check_expr(
        self,
        expr: Expr,
        scope: Dict[str, Type],
        tyvars: frozenset,
        where: Tuple[WhereClause, ...],
    ) -> Type:
        if isinstance(expr, Var):
            if expr.name not in scope:
                raise TypeError_(f"unbound variable '{expr.name}'")
            return scope[expr.name]
        if isinstance(expr, IntLit):
            return INT
        if isinstance(expr, BoolLit):
            return BOOL
        if isinstance(expr, OpCall):
            return self._check_opcall(expr, scope, tyvars, where)
        if isinstance(expr, ProcCall):
            return self._check_proccall(expr, scope, tyvars, where)
        if isinstance(expr, Let):
            bound = self.check_expr(expr.bound, scope, tyvars, where)
            inner = dict(scope)
            inner[expr.name] = bound
            return self.check_expr(expr.body, inner, tyvars, where)
        if isinstance(expr, If):
            cond = self.check_expr(expr.cond, scope, tyvars, where)
            if cond != BOOL:
                raise TypeError_(f"if condition has type {cond}")
            then = self.check_expr(expr.then, scope, tyvars, where)
            else_ = self.check_expr(expr.else_, scope, tyvars, where)
            if then != else_:
                raise TypeError_(f"if branches disagree: {then} vs {else_}")
            return then
        raise AssertionError(f"unknown expression: {expr!r}")

    def _op_signature(
        self, t: Type, op_name: str, tyvars: frozenset,
        where: Tuple[WhereClause, ...],
    ) -> ProcType:
        """The signature of ``t$op``: from a where clause if ``t`` is a
        variable, from the cluster otherwise."""
        if isinstance(t, TVar):
            if t.name not in tyvars:
                raise TypeError_(f"unknown type parameter '{t.name}'")
            for clause in where:
                if clause.tyvar != t.name:
                    continue
                type_set = self.type_sets[clause.type_set]
                for name, sig in type_set.required_ops:
                    if name == op_name:
                        return substitute_proc(sig, {type_set.var: t})
            raise TypeError_(
                f"no where clause gives '{t.name}' an operation "
                f"'{op_name}'"
            )
        cluster = self.cluster_of(t)
        for op in cluster.ops:
            if op.name == op_name:
                return ProcType(tuple(pt for _, pt in op.params), op.ret)
        raise TypeError_(
            f"cluster '{cluster.name}' has no operation '{op_name}'"
        )

    def _check_opcall(self, expr, scope, tyvars, where) -> Type:
        sig = self._op_signature(expr.type, expr.op, tyvars, where)
        if len(expr.args) != len(sig.params):
            raise TypeError_(f"operation '{expr.op}' arity mismatch")
        for arg, expected in zip(expr.args, sig.params):
            actual = self.check_expr(arg, scope, tyvars, where)
            if actual != expected:
                raise TypeError_(
                    f"operation '{expr.op}' expects {expected}, got {actual}"
                )
        return sig.ret

    def _check_proccall(self, expr, scope, tyvars, where) -> Type:
        proc = self.procs.get(expr.proc)
        if proc is None:
            raise TypeError_(f"unknown proc '{expr.proc}'")
        if len(expr.type_args) != len(proc.type_params):
            raise TypeError_(
                f"proc '{proc.name}' expects {len(proc.type_params)} type "
                f"argument(s), got {len(expr.type_args)}"
            )
        subst = dict(zip(proc.type_params, expr.type_args))
        # The structural check happens at instantiation: every where clause
        # must hold for the supplied type arguments.
        for clause in proc.where:
            target = subst[clause.tyvar]
            if isinstance(target, TVar):
                # Instantiating with an enclosing type parameter: it must
                # carry a clause for the same type set.
                ok = any(
                    c.tyvar == target.name and c.type_set == clause.type_set
                    for c in where
                )
                if not ok:
                    raise TypeError_(
                        f"type parameter '{target.name}' is not known to be "
                        f"in type set '{clause.type_set}'"
                    )
            else:
                self.check_membership(target, clause.type_set)
        if len(expr.args) != len(proc.params):
            raise TypeError_(f"proc '{proc.name}' arity mismatch")
        for arg, (_, declared) in zip(expr.args, proc.params):
            actual = self.check_expr(arg, scope, tyvars, where)
            expected = substitute(declared, subst)
            if actual != expected:
                raise TypeError_(
                    f"proc '{proc.name}' expects {expected}, got {actual}"
                )
        return substitute(proc.ret, subst)


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


class Interpreter:
    """Evaluator; type arguments are passed so ``t$op`` resolves per instance."""

    def __init__(self, program: Program, checker: Checker):
        self.program = program
        self.checker = checker

    def run(self):
        return self.eval(self.program.main, {}, {})

    def eval(self, expr: Expr, env: Dict[str, object], tyenv: Dict[str, Type]):
        if isinstance(expr, Var):
            if expr.name not in env:
                raise EvalError(f"unbound variable '{expr.name}'")
            return env[expr.name]
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, BoolLit):
            return expr.value
        if isinstance(expr, OpCall):
            t = substitute(expr.type, tyenv)
            cluster = self.checker.cluster_of(t)
            op = next((o for o in cluster.ops if o.name == expr.op), None)
            if op is None:
                raise EvalError(
                    f"cluster '{cluster.name}' has no operation '{expr.op}'"
                )
            args = [self.eval(a, env, tyenv) for a in expr.args]
            if op.builtin is not None:
                return _BUILTIN_IMPLS[op.builtin](*args)
            scope = {n: v for (n, _), v in zip(op.params, args)}
            return self.eval(op.body, scope, {})
        if isinstance(expr, ProcCall):
            proc = self.checker.procs[expr.proc]
            actual_types = tuple(substitute(t, tyenv) for t in expr.type_args)
            args = [self.eval(a, env, tyenv) for a in expr.args]
            scope = {n: v for (n, _), v in zip(proc.params, args)}
            inner_tyenv = dict(zip(proc.type_params, actual_types))
            return self.eval(proc.body, scope, inner_tyenv)
        if isinstance(expr, Let):
            bound = self.eval(expr.bound, env, tyenv)
            inner = dict(env)
            inner[expr.name] = bound
            return self.eval(expr.body, inner, tyenv)
        if isinstance(expr, If):
            branch = expr.then if self.eval(expr.cond, env, tyenv) else expr.else_
            return self.eval(branch, env, tyenv)
        raise AssertionError(f"unknown expression: {expr!r}")


def check(program: Program) -> Type:
    """Typecheck ``program``; returns the type of ``main``."""
    return Checker(program).check_program()


def run(program: Program):
    """Typecheck and evaluate ``program``."""
    checker = Checker(program)
    checker.check_program()
    return Interpreter(program, checker).run()
