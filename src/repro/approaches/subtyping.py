"""Subtype bounds (paper Figure 1a): a Java-like mini-language.

Generic functions constrain type parameters by *subtyping*: ``<T extends
Number<T>> T square(T x)``.  Objects carry their operations in a virtual
table, so a value passed to a generic function brings the implementation
with it.  This module implements:

- generic interfaces and classes (``class BigInt implements Number<BigInt>``),
- F-bounded polymorphism (the bound may mention the parameter itself,
  Canning et al. 1989, which Figure 1a uses),
- type-argument inference at call sites by first-order matching,
- vtable-dispatched evaluation.

The known limitations the paper attributes to this approach fall out
naturally and are exercised in the tests and comparison module: conformance
is fixed at class-definition time (no retroactive modeling), there are no
associated types, and constraints on *groups* of types cannot be expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.diagnostics.errors import EvalError, TypeError_

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """Base class of types in the subtyping mini-language."""


@dataclass(frozen=True)
class TInt(Type):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class TBool(Type):
    def __str__(self) -> str:
        return "boolean"


@dataclass(frozen=True)
class TVar(Type):
    """A generic-method type parameter."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TName(Type):
    """A class or interface type, possibly with type arguments."""

    name: str
    args: Tuple[Type, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}<{', '.join(map(str, self.args))}>"


INT = TInt()
BOOL = TBool()


def substitute(t: Type, subst: Dict[str, Type]) -> Type:
    if isinstance(t, TVar):
        return subst.get(t.name, t)
    if isinstance(t, TName):
        return TName(t.name, tuple(substitute(a, subst) for a in t.args))
    return t


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MethodSig:
    """A method signature inside an interface."""

    name: str
    params: Tuple[Type, ...]
    ret: Type


@dataclass(frozen=True)
class Interface:
    """``interface Name<params> { sigs }``."""

    name: str
    params: Tuple[str, ...]
    methods: Tuple[MethodSig, ...]


@dataclass(frozen=True)
class Method:
    """A concrete method: signature plus body (params are named)."""

    name: str
    params: Tuple[Tuple[str, Type], ...]
    ret: Type
    body: "Expr"


@dataclass(frozen=True)
class ClassDecl:
    """``class Name implements I<...> { fields; methods }``.

    Conformance is *nominal and closed*: the implements clause is the only
    way a class enters an interface's subtype set.
    """

    name: str
    implements: Tuple[TName, ...]
    fields: Tuple[Tuple[str, Type], ...]
    methods: Tuple[Method, ...]


@dataclass(frozen=True)
class TypeParam:
    """A generic-function type parameter with an optional ``extends`` bound."""

    name: str
    bound: Optional[TName] = None


@dataclass(frozen=True)
class GenericFunc:
    """``<T extends Bound> Ret name(params) { body }``."""

    name: str
    type_params: Tuple[TypeParam, ...]
    params: Tuple[Tuple[str, Type], ...]
    ret: Type
    body: "Expr"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Var(Expr):
    name: str


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class New(Expr):
    """``new ClassName(args)``."""

    class_name: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class FieldAccess(Expr):
    obj: Expr
    field: str


@dataclass(frozen=True)
class MethodCall(Expr):
    """``obj.method(args)`` — virtual dispatch."""

    obj: Expr
    method: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Call(Expr):
    """A generic-function call; type arguments are inferred when omitted."""

    func: str
    args: Tuple[Expr, ...]
    type_args: Optional[Tuple[Type, ...]] = None


@dataclass(frozen=True)
class PrimOp(Expr):
    """Integer primitives: ``add``, ``mul``, ``lt``, ``eq``."""

    op: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Let(Expr):
    name: str
    bound: Expr
    body: Expr


@dataclass(frozen=True)
class If(Expr):
    cond: Expr
    then: Expr
    else_: Expr


@dataclass(frozen=True)
class Program:
    """A whole program: declarations plus a main expression."""

    interfaces: Tuple[Interface, ...] = ()
    classes: Tuple[ClassDecl, ...] = ()
    functions: Tuple[GenericFunc, ...] = ()
    main: Expr = IntLit(0)


_PRIM_SIGS = {
    "add": ((INT, INT), INT),
    "sub": ((INT, INT), INT),
    "mul": ((INT, INT), INT),
    "lt": ((INT, INT), BOOL),
    "eq": ((INT, INT), BOOL),
}

_PRIM_IMPLS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "lt": lambda a, b: a < b,
    "eq": lambda a, b: a == b,
}


# ---------------------------------------------------------------------------
# Typechecking
# ---------------------------------------------------------------------------


class Checker:
    """Typechecker: nominal subtyping with F-bounded generic functions."""

    def __init__(self, program: Program):
        self.program = program
        self.interfaces = {i.name: i for i in program.interfaces}
        self.classes = {c.name: c for c in program.classes}
        self.functions = {f.name: f for f in program.functions}
        dup = (
            set(self.interfaces) & set(self.classes)
            or len(self.interfaces) + len(self.classes) + len(self.functions)
            != len(program.interfaces)
            + len(program.classes)
            + len(program.functions)
        )
        if dup:
            raise TypeError_("duplicate top-level declaration")

    # -- subtyping -------------------------------------------------------

    def is_subtype(self, sub: Type, sup: Type) -> bool:
        """``sub <: sup``: reflexive, plus implements-clauses (no variance)."""
        if sub == sup:
            return True
        if isinstance(sub, TName) and sub.name in self.classes:
            cls = self.classes[sub.name]
            return any(iface == sup for iface in cls.implements)
        return False

    def check_type(self, t: Type, tyvars: frozenset) -> None:
        if isinstance(t, TVar):
            if t.name not in tyvars:
                raise TypeError_(f"unknown type parameter '{t.name}'")
            return
        if isinstance(t, TName):
            if t.name in self.interfaces:
                expected = len(self.interfaces[t.name].params)
            elif t.name in self.classes:
                expected = 0
            else:
                raise TypeError_(f"unknown type '{t.name}'")
            if len(t.args) != expected:
                raise TypeError_(
                    f"'{t.name}' expects {expected} type argument(s), "
                    f"got {len(t.args)}"
                )
            for a in t.args:
                self.check_type(a, tyvars)

    # -- interface conformance ---------------------------------------------

    def check_program(self) -> Type:
        """Check every declaration, then the main expression; returns its type."""
        for cls in self.program.classes:
            self._check_class(cls)
        for func in self.program.functions:
            self._check_function(func)
        return self.check_expr(self.program.main, {}, frozenset())

    def _interface_methods(self, iface_type: TName) -> List[MethodSig]:
        iface = self.interfaces.get(iface_type.name)
        if iface is None:
            raise TypeError_(f"unknown interface '{iface_type.name}'")
        if len(iface.params) != len(iface_type.args):
            raise TypeError_(
                f"interface {iface.name} expects {len(iface.params)} "
                f"argument(s)"
            )
        subst = dict(zip(iface.params, iface_type.args))
        return [
            MethodSig(
                m.name,
                tuple(substitute(p, subst) for p in m.params),
                substitute(m.ret, subst),
            )
            for m in iface.methods
        ]

    def _check_class(self, cls: ClassDecl) -> None:
        methods = {m.name: m for m in cls.methods}
        if len(methods) != len(cls.methods):
            raise TypeError_(f"duplicate method in class {cls.name}")
        for _, t in cls.fields:
            self.check_type(t, frozenset())
        for iface_type in cls.implements:
            for sig in self._interface_methods(iface_type):
                impl = methods.get(sig.name)
                if impl is None:
                    raise TypeError_(
                        f"class {cls.name} does not implement "
                        f"{iface_type}.{sig.name}"
                    )
                impl_params = tuple(t for _, t in impl.params)
                if impl_params != sig.params or impl.ret != sig.ret:
                    raise TypeError_(
                        f"class {cls.name} implements {sig.name} at the "
                        f"wrong signature"
                    )
        this_type = TName(cls.name)
        for method in cls.methods:
            scope: Dict[str, Type] = {"this": this_type}
            for name, t in cls.fields:
                self.check_type(t, frozenset())
            for name, t in method.params:
                self.check_type(t, frozenset())
                scope[name] = t
            body_type = self.check_expr(method.body, scope, frozenset())
            if not self.is_subtype(body_type, method.ret):
                raise TypeError_(
                    f"method {cls.name}.{method.name} returns {body_type}, "
                    f"declared {method.ret}"
                )

    def _check_function(self, func: GenericFunc) -> None:
        tyvars = frozenset(tp.name for tp in func.type_params)
        if len(tyvars) != len(func.type_params):
            raise TypeError_(f"duplicate type parameter in {func.name}")
        for tp in func.type_params:
            if tp.bound is not None:
                self.check_type(tp.bound, tyvars)
        scope: Dict[str, Type] = {}
        for name, t in func.params:
            self.check_type(t, tyvars)
            scope[name] = t
        self.check_type(func.ret, tyvars)
        bounds = {
            tp.name: tp.bound for tp in func.type_params if tp.bound is not None
        }
        body_type = self.check_expr(func.body, scope, tyvars, bounds)
        if not self._subtype_under(body_type, func.ret, tyvars):
            raise TypeError_(
                f"function {func.name} returns {body_type}, declared {func.ret}"
            )

    def _subtype_under(self, sub: Type, sup: Type, tyvars: frozenset) -> bool:
        if sub == sup:
            return True
        return self.is_subtype(sub, sup)

    # -- expressions ----------------------------------------------------------

    def check_expr(
        self, expr: Expr, scope: Dict[str, Type], tyvars: frozenset,
        bounds: Optional[Dict[str, TName]] = None,
    ) -> Type:
        bounds = bounds or {}
        if isinstance(expr, Var):
            if expr.name not in scope:
                raise TypeError_(f"unbound variable '{expr.name}'")
            return scope[expr.name]
        if isinstance(expr, IntLit):
            return INT
        if isinstance(expr, BoolLit):
            return BOOL
        if isinstance(expr, PrimOp):
            if expr.op not in _PRIM_SIGS:
                raise TypeError_(f"unknown primitive '{expr.op}'")
            param_types, ret = _PRIM_SIGS[expr.op]
            if len(expr.args) != len(param_types):
                raise TypeError_(f"primitive '{expr.op}' arity mismatch")
            for arg, expected in zip(expr.args, param_types):
                actual = self.check_expr(arg, scope, tyvars, bounds)
                if actual != expected:
                    raise TypeError_(
                        f"primitive '{expr.op}' expects {expected}, "
                        f"got {actual}"
                    )
            return ret
        if isinstance(expr, New):
            cls = self.classes.get(expr.class_name)
            if cls is None:
                raise TypeError_(f"unknown class '{expr.class_name}'")
            if len(expr.args) != len(cls.fields):
                raise TypeError_(
                    f"constructor {cls.name} expects {len(cls.fields)} "
                    f"argument(s)"
                )
            for arg, (_, ftype) in zip(expr.args, cls.fields):
                actual = self.check_expr(arg, scope, tyvars, bounds)
                if not self.is_subtype(actual, ftype):
                    raise TypeError_(
                        f"constructor {cls.name}: expected {ftype}, "
                        f"got {actual}"
                    )
            return TName(cls.name)
        if isinstance(expr, FieldAccess):
            obj_type = self.check_expr(expr.obj, scope, tyvars, bounds)
            if isinstance(obj_type, TName) and obj_type.name in self.classes:
                for name, t in self.classes[obj_type.name].fields:
                    if name == expr.field:
                        return t
            raise TypeError_(f"no field '{expr.field}' on {obj_type}")
        if isinstance(expr, MethodCall):
            obj_type = self.check_expr(expr.obj, scope, tyvars, bounds)
            sig = self._method_signature(obj_type, expr.method, bounds)
            if len(expr.args) != len(sig.params):
                raise TypeError_(f"method '{expr.method}' arity mismatch")
            for arg, expected in zip(expr.args, sig.params):
                actual = self.check_expr(arg, scope, tyvars, bounds)
                if not self._subtype_under(actual, expected, tyvars):
                    raise TypeError_(
                        f"method '{expr.method}': expected {expected}, "
                        f"got {actual}"
                    )
            return sig.ret
        if isinstance(expr, Call):
            return self._check_call(expr, scope, tyvars, bounds)
        if isinstance(expr, Let):
            bound_type = self.check_expr(expr.bound, scope, tyvars, bounds)
            inner = dict(scope)
            inner[expr.name] = bound_type
            return self.check_expr(expr.body, inner, tyvars, bounds)
        if isinstance(expr, If):
            cond = self.check_expr(expr.cond, scope, tyvars, bounds)
            if cond != BOOL:
                raise TypeError_(f"if condition has type {cond}")
            then = self.check_expr(expr.then, scope, tyvars, bounds)
            else_ = self.check_expr(expr.else_, scope, tyvars, bounds)
            if then != else_:
                raise TypeError_(f"if branches disagree: {then} vs {else_}")
            return then
        raise AssertionError(f"unknown expression: {expr!r}")

    def _method_signature(
        self, obj_type: Type, method: str, bounds: Dict[str, TName]
    ) -> MethodSig:
        """Find ``method`` on a class, interface, or bounded type variable."""
        if isinstance(obj_type, TVar):
            bound = bounds.get(obj_type.name)
            if bound is None:
                raise TypeError_(
                    f"type parameter '{obj_type.name}' has no bound; "
                    f"cannot call '{method}' on it"
                )
            obj_type = bound
        if isinstance(obj_type, TName) and obj_type.name in self.classes:
            cls = self.classes[obj_type.name]
            for m in cls.methods:
                if m.name == method:
                    return MethodSig(
                        m.name, tuple(t for _, t in m.params), m.ret
                    )
            raise TypeError_(f"no method '{method}' on class {cls.name}")
        if isinstance(obj_type, TName) and obj_type.name in self.interfaces:
            for sig in self._interface_methods(obj_type):
                if sig.name == method:
                    return sig
            raise TypeError_(f"no method '{method}' on interface {obj_type}")
        raise TypeError_(f"cannot call '{method}' on {obj_type}")

    def _check_call(
        self,
        expr: Call,
        scope: Dict[str, Type],
        tyvars: frozenset,
        bounds: Dict[str, TName],
    ) -> Type:
        func = self.functions.get(expr.func)
        if func is None:
            raise TypeError_(f"unknown function '{expr.func}'")
        if len(expr.args) != len(func.params):
            raise TypeError_(f"function '{func.name}' arity mismatch")
        arg_types = [
            self.check_expr(a, scope, tyvars, bounds) for a in expr.args
        ]
        if expr.type_args is not None:
            if len(expr.type_args) != len(func.type_params):
                raise TypeError_(
                    f"function '{func.name}' expects "
                    f"{len(func.type_params)} type argument(s)"
                )
            subst = {
                tp.name: ta
                for tp, ta in zip(func.type_params, expr.type_args)
            }
        else:
            subst = self._infer_type_args(func, arg_types)
        # Bounds: each actual must be a subtype of the substituted bound
        # (F-bounded: the bound may mention the parameter being checked).
        for tp in func.type_params:
            if tp.bound is not None:
                actual = subst[tp.name]
                bound = substitute(tp.bound, subst)
                if not self.is_subtype(actual, bound):
                    raise TypeError_(
                        f"type argument {actual} for '{tp.name}' does not "
                        f"satisfy bound {bound}"
                    )
        for actual, (_, declared) in zip(arg_types, func.params):
            expected = substitute(declared, subst)
            if not self._subtype_under(actual, expected, tyvars):
                raise TypeError_(
                    f"call to '{func.name}': expected {expected}, "
                    f"got {actual}"
                )
        return substitute(func.ret, subst)

    def _infer_type_args(
        self, func: GenericFunc, arg_types: List[Type]
    ) -> Dict[str, Type]:
        """First-order matching of declared parameter types against actuals."""
        subst: Dict[str, Type] = {}

        def match(declared: Type, actual: Type) -> None:
            if isinstance(declared, TVar):
                prev = subst.get(declared.name)
                if prev is None:
                    subst[declared.name] = actual
                elif prev != actual:
                    raise TypeError_(
                        f"conflicting inference for '{declared.name}': "
                        f"{prev} vs {actual}"
                    )
                return
            if isinstance(declared, TName) and isinstance(actual, TName):
                if declared.name == actual.name and len(declared.args) == len(
                    actual.args
                ):
                    for d, a in zip(declared.args, actual.args):
                        match(d, a)
                    return
            if declared == actual:
                return
            # Try the actual's implements-clauses (upcast before matching).
            if isinstance(actual, TName) and actual.name in self.classes:
                for iface in self.classes[actual.name].implements:
                    try:
                        match(declared, iface)
                        return
                    except TypeError_:
                        continue
            raise TypeError_(
                f"cannot match declared {declared} against actual {actual}"
            )

        for (_, declared), actual in zip(func.params, arg_types):
            match(declared, actual)
        for tp in func.type_params:
            if tp.name not in subst:
                raise TypeError_(
                    f"cannot infer type argument '{tp.name}' for "
                    f"'{func.name}'"
                )
        return subst

# ---------------------------------------------------------------------------
# Evaluation (vtable dispatch)
# ---------------------------------------------------------------------------


@dataclass
class ObjectValue:
    """A runtime object: class name, field values, and its vtable.

    The vtable is how the subtyping approach connects operations to generic
    code: every object carries its methods (paper section 1, "objects passed
    to the generic function must carry along the necessary operations").
    """

    class_name: str
    fields: Dict[str, object]
    vtable: Dict[str, Method] = field(default_factory=dict)


class Interpreter:
    """Evaluator for checked programs."""

    def __init__(self, program: Program):
        self.program = program
        self.classes = {c.name: c for c in program.classes}
        self.functions = {f.name: f for f in program.functions}

    def run(self):
        return self.eval(self.program.main, {})

    def eval(self, expr: Expr, env: Dict[str, object]):
        if isinstance(expr, Var):
            if expr.name not in env:
                raise EvalError(f"unbound variable '{expr.name}'")
            return env[expr.name]
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, BoolLit):
            return expr.value
        if isinstance(expr, PrimOp):
            args = [self.eval(a, env) for a in expr.args]
            return _PRIM_IMPLS[expr.op](*args)
        if isinstance(expr, New):
            cls = self.classes[expr.class_name]
            values = [self.eval(a, env) for a in expr.args]
            return ObjectValue(
                cls.name,
                {name: v for (name, _), v in zip(cls.fields, values)},
                {m.name: m for m in cls.methods},
            )
        if isinstance(expr, FieldAccess):
            obj = self.eval(expr.obj, env)
            if not isinstance(obj, ObjectValue):
                raise EvalError(f"field access on non-object {obj!r}")
            return obj.fields[expr.field]
        if isinstance(expr, MethodCall):
            obj = self.eval(expr.obj, env)
            if not isinstance(obj, ObjectValue):
                raise EvalError(f"method call on non-object {obj!r}")
            method = obj.vtable.get(expr.method)
            if method is None:
                raise EvalError(
                    f"no method '{expr.method}' on {obj.class_name}"
                )
            args = [self.eval(a, env) for a in expr.args]
            scope: Dict[str, object] = {"this": obj}
            scope.update(
                {name: v for (name, _), v in zip(method.params, args)}
            )
            return self.eval(method.body, scope)
        if isinstance(expr, Call):
            func = self.functions[expr.func]
            args = [self.eval(a, env) for a in expr.args]
            scope = {name: v for (name, _), v in zip(func.params, args)}
            return self.eval(func.body, scope)
        if isinstance(expr, Let):
            bound = self.eval(expr.bound, env)
            inner = dict(env)
            inner[expr.name] = bound
            return self.eval(expr.body, inner)
        if isinstance(expr, If):
            return self.eval(
                expr.then if self.eval(expr.cond, env) else expr.else_, env
            )
        raise AssertionError(f"unknown expression: {expr!r}")


def check(program: Program) -> Type:
    """Typecheck ``program`` (declarations, generic bodies, main)."""
    return Checker(program).check_program()


def run(program: Program):
    """Typecheck and evaluate ``program``."""
    check(program)
    return Interpreter(program).run()
