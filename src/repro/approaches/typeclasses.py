"""Type classes (paper Figure 1b): a Haskell-like mini-language.

A class declares required operations over one type parameter; an *instance*
declares that a type belongs to the class and supplies implementations.
Instances live in a single **global** table — the critical contrast with
F_G's lexically scoped models: declaring two instances of the same class at
the same type is rejected as *overlapping*, which is exactly what makes the
paper's Figure 6 (scoped ``sum``/``product`` monoids) inexpressible here
(section 3.2).

Generic functions carry class constraints on their type parameters;
evaluation is by dictionary passing, with instance dictionaries resolved at
each (explicit or inferred) instantiation — mirroring Hall et al.'s
"Type classes in Haskell" translation that the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.diagnostics.errors import EvalError, TypeError_

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """Base class of types."""


@dataclass(frozen=True)
class TInt(Type):
    def __str__(self) -> str:
        return "Int"


@dataclass(frozen=True)
class TBool(Type):
    def __str__(self) -> str:
        return "Bool"


@dataclass(frozen=True)
class TVar(Type):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TList(Type):
    elem: Type

    def __str__(self) -> str:
        return f"[{self.elem}]"


@dataclass(frozen=True)
class TFn(Type):
    params: Tuple[Type, ...]
    ret: Type

    def __str__(self) -> str:
        return f"({', '.join(map(str, self.params))}) -> {self.ret}"


INT = TInt()
BOOL = TBool()


def substitute(t: Type, subst: Dict[str, Type]) -> Type:
    if isinstance(t, TVar):
        return subst.get(t.name, t)
    if isinstance(t, TList):
        return TList(substitute(t.elem, subst))
    if isinstance(t, TFn):
        return TFn(
            tuple(substitute(p, subst) for p in t.params),
            substitute(t.ret, subst),
        )
    return t


def head_name(t: Type) -> str:
    """The outermost constructor name of an instance head type."""
    if isinstance(t, TInt):
        return "Int"
    if isinstance(t, TBool):
        return "Bool"
    if isinstance(t, TList):
        return "List"
    if isinstance(t, TFn):
        return "Fn"
    raise TypeError_(f"type {t} cannot head an instance declaration")


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClassDecl:
    """``class Name u where methods`` — method types mention ``param``."""

    name: str
    param: str
    methods: Tuple[Tuple[str, Type], ...]


@dataclass(frozen=True)
class InstanceDecl:
    """``instance Name Head where impls``.

    ``head`` must be a non-variable type; its outermost constructor is the
    instance key (Haskell's restriction), which is what makes the table
    global and overlap detection a matter of comparing heads.
    """

    class_name: str
    head: Type
    impls: Tuple[Tuple[str, "Expr"], ...]


@dataclass(frozen=True)
class Constraint:
    """``ClassName tyvar`` on the left of ``=>``."""

    class_name: str
    tyvar: str


@dataclass(frozen=True)
class FuncDecl:
    """``name :: constraints => params -> ret``, with named parameters."""

    name: str
    type_params: Tuple[str, ...]
    constraints: Tuple[Constraint, ...]
    params: Tuple[Tuple[str, Type], ...]
    ret: Type
    body: "Expr"
    recursive: bool = False


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Var(Expr):
    name: str


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class MethodRef(Expr):
    """A reference to a class method such as ``mult``.

    Inside a generic function the method resolves against the constraint
    dictionary; at a concrete type it resolves against the instance table.
    ``at_type`` pins the class parameter when it cannot be inferred.
    """

    method: str
    at_type: Optional[Type] = None


@dataclass(frozen=True)
class Call(Expr):
    """Call a top-level function, a class method, or a local function value."""

    fn: Expr
    args: Tuple[Expr, ...]
    type_args: Optional[Tuple[Type, ...]] = None


@dataclass(frozen=True)
class PrimOp(Expr):
    op: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Let(Expr):
    name: str
    bound: Expr
    body: Expr


@dataclass(frozen=True)
class If(Expr):
    cond: Expr
    then: Expr
    else_: Expr


@dataclass(frozen=True)
class ListLit(Expr):
    items: Tuple[Expr, ...]
    elem_type: Type


@dataclass(frozen=True)
class Program:
    classes: Tuple[ClassDecl, ...] = ()
    instances: Tuple[InstanceDecl, ...] = ()
    functions: Tuple[FuncDecl, ...] = ()
    main: Expr = IntLit(0)


_PRIMS = {
    "add": (TFn((INT, INT), INT), lambda a, b: a + b),
    "sub": (TFn((INT, INT), INT), lambda a, b: a - b),
    "mul": (TFn((INT, INT), INT), lambda a, b: a * b),
    "lt": (TFn((INT, INT), BOOL), lambda a, b: a < b),
    "eq": (TFn((INT, INT), BOOL), lambda a, b: a == b),
}


# ---------------------------------------------------------------------------
# The global instance table
# ---------------------------------------------------------------------------


class InstanceTable:
    """The program-wide instance table.

    Keyed by ``(class name, head constructor)``.  Re-registering a key
    raises the overlapping-instances error — Haskell's behavior, and the
    behavior the paper contrasts with F_G's scoped models (section 3.2:
    "instance declarations implicitly leak out of a module").
    """

    def __init__(self):
        self._table: Dict[Tuple[str, str], InstanceDecl] = {}

    def add(self, inst: InstanceDecl) -> None:
        key = (inst.class_name, head_name(inst.head))
        if key in self._table:
            raise TypeError_(
                f"overlapping instances: duplicate instance "
                f"{inst.class_name} {inst.head} (instances are global; "
                f"see paper section 3.2)"
            )
        self._table[key] = inst

    def lookup(self, class_name: str, t: Type) -> InstanceDecl:
        inst = self._table.get((class_name, head_name(t)))
        if inst is None:
            raise TypeError_(f"no instance for {class_name} {t}")
        return inst


# ---------------------------------------------------------------------------
# Typechecking
# ---------------------------------------------------------------------------


class Checker:
    """Typechecker with dictionary-style constraint resolution."""

    def __init__(self, program: Program):
        self.program = program
        # Static dispatch decisions, keyed by Call-node identity; the
        # interpreter replays them instead of re-dispatching dynamically
        # (type classes are resolved at compile time).
        self.resolutions: Dict[int, tuple] = {}
        self.classes = {c.name: c for c in program.classes}
        if len(self.classes) != len(program.classes):
            raise TypeError_("duplicate class declaration")
        # Haskell restriction the paper calls out: two classes in the same
        # module may not share a method name (unlike F_G concepts).
        self.method_owner: Dict[str, ClassDecl] = {}
        for cls in program.classes:
            for method, _ in cls.methods:
                if method in self.method_owner:
                    raise TypeError_(
                        f"method '{method}' declared in two classes "
                        f"({self.method_owner[method].name} and {cls.name}); "
                        "class methods share one global namespace"
                    )
                self.method_owner[method] = cls
        self.instances = InstanceTable()
        for inst in program.instances:
            self._check_instance_shape(inst)
            self.instances.add(inst)
        self.functions = {f.name: f for f in program.functions}
        if len(self.functions) != len(program.functions):
            raise TypeError_("duplicate function declaration")

    def _check_instance_shape(self, inst: InstanceDecl) -> None:
        cls = self.classes.get(inst.class_name)
        if cls is None:
            raise TypeError_(f"instance of unknown class '{inst.class_name}'")
        provided = {name for name, _ in inst.impls}
        required = {name for name, _ in cls.methods}
        if provided != required:
            raise TypeError_(
                f"instance {cls.name} {inst.head} must define exactly "
                f"{sorted(required)}, got {sorted(provided)}"
            )

    def check_program(self) -> Type:
        for inst in self.program.instances:
            self._check_instance_bodies(inst)
        for func in self.program.functions:
            self._check_function(func)
        return self.infer(self.program.main, {}, ())

    def _check_instance_bodies(self, inst: InstanceDecl) -> None:
        cls = self.classes[inst.class_name]
        subst = {cls.param: inst.head}
        impls = dict(inst.impls)
        for name, declared in cls.methods:
            expected = substitute(declared, subst)
            actual = self.infer(impls[name], {}, ())
            if actual != expected:
                raise TypeError_(
                    f"instance {cls.name} {inst.head}: method '{name}' has "
                    f"type {actual}, expected {expected}"
                )

    def _check_function(self, func: FuncDecl) -> None:
        for constraint in func.constraints:
            if constraint.class_name not in self.classes:
                raise TypeError_(
                    f"unknown class '{constraint.class_name}' in constraint"
                )
            if constraint.tyvar not in func.type_params:
                raise TypeError_(
                    f"constraint on unknown type variable "
                    f"'{constraint.tyvar}'"
                )
        scope: Dict[str, Type] = dict(func.params)
        if func.recursive:
            scope[func.name] = TFn(
                tuple(t for _, t in func.params), func.ret
            )
        body_type = self.infer(func.body, scope, func.constraints)
        if body_type != func.ret:
            raise TypeError_(
                f"function '{func.name}' returns {body_type}, "
                f"declared {func.ret}"
            )

    # -- inference ---------------------------------------------------------

    def infer(
        self,
        expr: Expr,
        scope: Dict[str, Type],
        constraints: Tuple[Constraint, ...],
    ) -> Type:
        if isinstance(expr, Var):
            if expr.name in scope:
                return scope[expr.name]
            func = self.functions.get(expr.name)
            if func is not None and not func.type_params:
                return TFn(tuple(t for _, t in func.params), func.ret)
            raise TypeError_(f"unbound variable '{expr.name}'")
        if isinstance(expr, IntLit):
            return INT
        if isinstance(expr, BoolLit):
            return BOOL
        if isinstance(expr, ListLit):
            for item in expr.items:
                actual = self.infer(item, scope, constraints)
                if actual != expr.elem_type:
                    raise TypeError_(
                        f"list element has type {actual}, "
                        f"expected {expr.elem_type}"
                    )
            return TList(expr.elem_type)
        if isinstance(expr, PrimOp):
            if expr.op not in _PRIMS:
                raise TypeError_(f"unknown primitive '{expr.op}'")
            sig, _ = _PRIMS[expr.op]
            if len(expr.args) != len(sig.params):
                raise TypeError_(f"primitive '{expr.op}' arity mismatch")
            for arg, expected in zip(expr.args, sig.params):
                actual = self.infer(arg, scope, constraints)
                if actual != expected:
                    raise TypeError_(
                        f"primitive '{expr.op}' expects {expected}, "
                        f"got {actual}"
                    )
            return sig.ret
        if isinstance(expr, MethodRef):
            return self._method_type(expr, scope, constraints)
        if isinstance(expr, Call):
            return self._infer_call(expr, scope, constraints)
        if isinstance(expr, Let):
            bound = self.infer(expr.bound, scope, constraints)
            inner = dict(scope)
            inner[expr.name] = bound
            return self.infer(expr.body, inner, constraints)
        if isinstance(expr, If):
            cond = self.infer(expr.cond, scope, constraints)
            if cond != BOOL:
                raise TypeError_(f"if condition has type {cond}")
            then = self.infer(expr.then, scope, constraints)
            else_ = self.infer(expr.else_, scope, constraints)
            if then != else_:
                raise TypeError_(f"if branches disagree: {then} vs {else_}")
            return then
        raise AssertionError(f"unknown expression: {expr!r}")

    def _method_type(
        self,
        expr: MethodRef,
        scope: Dict[str, Type],
        constraints: Tuple[Constraint, ...],
    ) -> Type:
        cls = self.method_owner.get(expr.method)
        if cls is None:
            raise TypeError_(f"unknown class method '{expr.method}'")
        declared = dict(cls.methods)[expr.method]
        if expr.at_type is not None:
            at = expr.at_type
            if isinstance(at, TVar):
                if not any(
                    c.class_name == cls.name and c.tyvar == at.name
                    for c in constraints
                ):
                    raise TypeError_(
                        f"no constraint {cls.name} {at.name} in scope for "
                        f"method '{expr.method}'"
                    )
            else:
                self.instances.lookup(cls.name, at)
            return substitute(declared, {cls.param: at})
        raise TypeError_(
            f"method '{expr.method}' needs a type annotation here "
            "(use MethodRef(..., at_type=...) or call it with arguments)"
        )

    def _infer_call(
        self,
        expr: Call,
        scope: Dict[str, Type],
        constraints: Tuple[Constraint, ...],
    ) -> Type:
        arg_types = [self.infer(a, scope, constraints) for a in expr.args]
        # Class-method call: infer the class parameter from the arguments.
        if isinstance(expr.fn, MethodRef):
            cls = self.method_owner.get(expr.fn.method)
            if cls is None:
                raise TypeError_(f"unknown class method '{expr.fn.method}'")
            declared = dict(cls.methods)[expr.fn.method]
            if not isinstance(declared, TFn):
                raise TypeError_(
                    f"class method '{expr.fn.method}' is not a function"
                )
            if expr.fn.at_type is not None:
                at = expr.fn.at_type
            else:
                subst = self._match_params(
                    declared.params, arg_types, (cls.param,), expr.fn.method
                )
                at = subst[cls.param]
            resolved = MethodRef(expr.fn.method, at_type=at)
            fn_type = self._method_type(resolved, scope, constraints)
            assert isinstance(fn_type, TFn)
            self._check_args(fn_type, arg_types, expr.fn.method)
            self.resolutions[id(expr)] = ("method", cls.name, at)
            return fn_type.ret
        # Generic top-level function call.
        if isinstance(expr.fn, Var) and expr.fn.name in self.functions \
                and expr.fn.name not in scope:
            func = self.functions[expr.fn.name]
            declared_params = tuple(t for _, t in func.params)
            if expr.type_args is not None:
                if len(expr.type_args) != len(func.type_params):
                    raise TypeError_(
                        f"'{func.name}' expects {len(func.type_params)} "
                        f"type argument(s)"
                    )
                subst = dict(zip(func.type_params, expr.type_args))
            else:
                subst = self._match_params(
                    declared_params, arg_types, func.type_params, func.name
                )
            # Resolve every constraint at the instantiation.
            for constraint in func.constraints:
                at = subst[constraint.tyvar]
                self._resolve_constraint(constraint.class_name, at, constraints)
            expected = tuple(substitute(p, subst) for p in declared_params)
            self._check_args(TFn(expected, func.ret), arg_types, func.name)
            self.resolutions[id(expr)] = ("generic", func.name, subst)
            return substitute(func.ret, subst)
        # First-class function value.
        fn_type = self.infer(expr.fn, scope, constraints)
        if not isinstance(fn_type, TFn):
            raise TypeError_(f"cannot call non-function of type {fn_type}")
        self._check_args(fn_type, arg_types, "<function value>")
        return fn_type.ret

    def _resolve_constraint(
        self, class_name: str, at: Type, constraints: Tuple[Constraint, ...]
    ) -> None:
        if isinstance(at, TVar):
            if not any(
                c.class_name == class_name and c.tyvar == at.name
                for c in constraints
            ):
                raise TypeError_(
                    f"no constraint {class_name} {at.name} available"
                )
            return
        self.instances.lookup(class_name, at)

    def _check_args(self, fn_type: TFn, arg_types: List[Type], what: str):
        if len(fn_type.params) != len(arg_types):
            raise TypeError_(f"'{what}' arity mismatch")
        for i, (actual, expected) in enumerate(
            zip(arg_types, fn_type.params)
        ):
            if actual != expected:
                raise TypeError_(
                    f"'{what}' argument {i + 1} has type {actual}, "
                    f"expected {expected}"
                )

    def _match_params(self, declared, actuals, type_params, what):
        subst: Dict[str, Type] = {}

        def match(d: Type, a: Type) -> None:
            if isinstance(d, TVar) and d.name in type_params:
                prev = subst.get(d.name)
                if prev is None:
                    subst[d.name] = a
                elif prev != a:
                    raise TypeError_(
                        f"conflicting inference for '{d.name}' in "
                        f"'{what}': {prev} vs {a}"
                    )
                return
            if isinstance(d, TList) and isinstance(a, TList):
                match(d.elem, a.elem)
                return
            if isinstance(d, TFn) and isinstance(a, TFn) and len(d.params) == len(a.params):
                for dp, ap in zip(d.params, a.params):
                    match(dp, ap)
                match(d.ret, a.ret)
                return
            if d == a:
                return
            raise TypeError_(
                f"cannot match declared {d} against actual {a} in '{what}'"
            )

        if len(declared) != len(actuals):
            raise TypeError_(f"'{what}' arity mismatch")
        for d, a in zip(declared, actuals):
            match(d, a)
        for name in type_params:
            if name not in subst:
                raise TypeError_(
                    f"cannot infer type argument '{name}' for '{what}'"
                )
        return subst


# ---------------------------------------------------------------------------
# Evaluation (dictionary passing)
# ---------------------------------------------------------------------------


class _Closure:
    __slots__ = ("params", "body", "env", "interp", "constraints", "dicts")

    def __init__(self, params, body, env, interp, constraints, dicts):
        self.params = params
        self.body = body
        self.env = env
        self.interp = interp
        self.constraints = constraints
        self.dicts = dicts


class Interpreter:
    """Dictionary-passing evaluator.

    A generic function's constraints become dictionary parameters; each call
    resolves the needed instance dictionaries (from the global table or the
    enclosing function's own dictionaries) and passes them down.
    """

    def __init__(self, program: Program, checker: Checker):
        self.program = program
        self.checker = checker

    def run(self):
        return self.eval(self.program.main, {}, {})

    def _instance_dict(self, class_name: str, t: Type, dicts) -> Dict[str, object]:
        if isinstance(t, TVar):
            key = (class_name, t.name)
            if key not in dicts:
                raise EvalError(
                    f"no dictionary for {class_name} {t.name} at runtime"
                )
            return dicts[key]
        inst = self.checker.instances.lookup(class_name, t)
        return {
            name: self.eval(impl, {}, {}) for name, impl in inst.impls
        }

    def eval(self, expr: Expr, env: Dict[str, object], dicts) -> object:
        if isinstance(expr, Var):
            if expr.name in env:
                return env[expr.name]
            func = self.checker.functions.get(expr.name)
            if func is not None and not func.type_params:
                return _Closure(
                    tuple(n for n, _ in func.params), func.body, {}, self,
                    (), {},
                )
            raise EvalError(f"unbound variable '{expr.name}'")
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, BoolLit):
            return expr.value
        if isinstance(expr, ListLit):
            return [self.eval(i, env, dicts) for i in expr.items]
        if isinstance(expr, PrimOp):
            _, impl = _PRIMS[expr.op]
            return impl(*[self.eval(a, env, dicts) for a in expr.args])
        if isinstance(expr, MethodRef):
            raise EvalError(
                f"bare method reference '{expr.method}' must be called"
            )
        if isinstance(expr, Call):
            return self._eval_call(expr, env, dicts)
        if isinstance(expr, Let):
            bound = self.eval(expr.bound, env, dicts)
            inner = dict(env)
            inner[expr.name] = bound
            return self.eval(expr.body, inner, dicts)
        if isinstance(expr, If):
            branch = expr.then if self.eval(expr.cond, env, dicts) else expr.else_
            return self.eval(branch, env, dicts)
        raise AssertionError(f"unknown expression: {expr!r}")

    def _eval_call(self, expr: Call, env, dicts):
        args = [self.eval(a, env, dicts) for a in expr.args]
        resolution = self.checker.resolutions.get(id(expr))
        if resolution is not None and resolution[0] == "method":
            # Static class-method dispatch: replay the checker's decision.
            _, class_name, at = resolution
            dictionary = self._instance_dict(class_name, at, dicts)
            method_value = dictionary[expr.fn.method]  # type: ignore[union-attr]
            return self._apply(method_value, args)
        if resolution is not None and resolution[0] == "generic":
            _, func_name, subst = resolution
            func = self.checker.functions[func_name]
            new_dicts = {}
            for constraint in func.constraints:
                at = subst[constraint.tyvar]
                new_dicts[(constraint.class_name, constraint.tyvar)] = (
                    self._instance_dict(constraint.class_name, at, dicts)
                )
            scope = {n: v for (n, _), v in zip(func.params, args)}
            if func.recursive:
                scope[func.name] = _Closure(
                    tuple(n for n, _ in func.params), func.body, scope, self,
                    func.constraints, new_dicts,
                )
            return self.eval(func.body, scope, new_dicts)
        fn_value = self.eval(expr.fn, env, dicts)
        return self._apply(fn_value, args)

    def _apply(self, fn_value, args):
        if isinstance(fn_value, _Closure):
            scope = dict(fn_value.env)
            scope.update(dict(zip(fn_value.params, args)))
            return self.eval(fn_value.body, scope, fn_value.dicts)
        if callable(fn_value):
            return fn_value(*args)
        raise EvalError(f"cannot call non-function {fn_value!r}")


def check(program: Program) -> Type:
    """Typecheck ``program``; returns the type of ``main``."""
    return Checker(program).check_program()


def run(program: Program):
    """Typecheck and evaluate ``program``."""
    checker = Checker(program)
    checker.check_program()
    return Interpreter(program, checker).run()
