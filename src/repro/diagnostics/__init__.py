"""Source positions, spans, and diagnostic errors shared by every front end.

Every AST node in the System F and F_G packages carries an optional
:class:`Span`.  Errors raised by the lexer, parsers, and typecheckers are
subclasses of :class:`Diagnostic` and render with a source excerpt when the
originating source text is available.
"""

from repro.diagnostics.source import Position, Span, SourceText
from repro.diagnostics.errors import (
    Diagnostic,
    LexError,
    ParseError,
    TypeError_,
    TranslationError,
    EvalError,
)

__all__ = [
    "Position",
    "Span",
    "SourceText",
    "Diagnostic",
    "LexError",
    "ParseError",
    "TypeError_",
    "TranslationError",
    "EvalError",
]
