"""Source positions, spans, and diagnostic errors shared by every front end.

Every AST node in the System F and F_G packages carries an optional
:class:`Span`.  Errors raised by the lexer, parsers, and typecheckers are
subclasses of :class:`Diagnostic` and render with a source excerpt when the
originating source text is available.

Two sibling modules support the fault-tolerant pipeline:

- :mod:`repro.diagnostics.reporter` — accumulating multi-error reporting
  (:class:`DiagnosticReporter` / :class:`DiagnosticReport`);
- :mod:`repro.diagnostics.limits` — configurable depth/fuel budgets and
  scoped recursion guards (:class:`Limits`, :class:`ResourceLimitError`).
"""

from repro.diagnostics.source import Position, Span, SourceText
from repro.diagnostics.errors import (
    Diagnostic,
    LexError,
    ParseError,
    TypeError_,
    TranslationError,
    EvalError,
)
from repro.diagnostics.limits import (
    DEFAULT_LIMITS,
    Budget,
    DeadlineExceededError,
    Limits,
    ResourceLimitError,
    resource_scope,
    scoped_recursion_limit,
)
from repro.diagnostics.reporter import (
    DiagnosticReport,
    DiagnosticReporter,
    SEVERITIES,
    diagnostic_to_dict,
)

__all__ = [
    "Position",
    "Span",
    "SourceText",
    "Diagnostic",
    "LexError",
    "ParseError",
    "TypeError_",
    "TranslationError",
    "EvalError",
    "DEFAULT_LIMITS",
    "Budget",
    "DeadlineExceededError",
    "Limits",
    "ResourceLimitError",
    "resource_scope",
    "scoped_recursion_limit",
    "DiagnosticReport",
    "DiagnosticReporter",
    "SEVERITIES",
    "diagnostic_to_dict",
]
