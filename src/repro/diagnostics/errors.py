"""Diagnostic error hierarchy used across all language front ends."""

from __future__ import annotations

from typing import Optional

from repro.diagnostics.source import SourceText, Span


class Diagnostic(Exception):
    """Base class for positioned language-processing errors.

    Carries an optional :class:`Span` and, when the driver attaches the
    originating :class:`SourceText`, renders a caret-underlined excerpt.
    """

    kind = "error"
    #: "error", "warning", or "note"; a DiagnosticReporter may reclassify.
    severity = "error"

    def __init__(self, message: str, span: Optional[Span] = None):
        super().__init__(message)
        self.message = message
        self.span = span
        self.source: Optional[SourceText] = None

    def attach_source(self, source: SourceText) -> "Diagnostic":
        """Remember the source text so ``str(err)`` can show an excerpt."""
        self.source = source
        return self

    def __str__(self) -> str:
        parts = []
        label = self.kind if self.severity == "error" else self.severity
        if self.span is not None and self.span.filename != "<synthetic>":
            parts.append(f"{self.span}: {label}: {self.message}")
        else:
            parts.append(f"{label}: {self.message}")
        if self.source is not None and self.span is not None:
            excerpt = self.source.excerpt(self.span)
            if excerpt:
                parts.append(excerpt)
        return "\n".join(parts)


class LexError(Diagnostic):
    """Raised on malformed input at the token level."""

    kind = "lex error"


class ParseError(Diagnostic):
    """Raised on syntactically invalid input."""

    kind = "parse error"


class TypeError_(Diagnostic):
    """Raised when a program fails to typecheck.

    Named with a trailing underscore to avoid shadowing the builtin.
    """

    kind = "type error"


class TranslationError(Diagnostic):
    """Raised when F_G-to-System-F translation hits an internal inconsistency.

    A :class:`TranslationError` on a program that typechecked indicates a bug
    in this library, never in user code; the tests assert it is unreachable.
    """

    kind = "translation error"


class EvalError(Diagnostic):
    """Raised by evaluators on runtime failures (e.g. ``car`` of ``nil``)."""

    kind = "evaluation error"
