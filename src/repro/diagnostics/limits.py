"""Resource limits for the checking pipeline.

Deeply nested programs used to crash the checker and both evaluators with a
raw :class:`RecursionError`, and the evaluators worked around it by
*permanently* raising ``sys.setrecursionlimit`` — a process-wide side effect.
This module replaces both with scoped, configurable guards:

- :class:`Limits` — per-run depth/fuel budgets for typechecking, congruence
  closure, and evaluation, plus the (scoped) Python stack limit;
- :class:`Budget` — the mutable counters for one pipeline run;
- :class:`ResourceLimitError` — a :class:`Diagnostic` (so the normal error
  path reports it) raised when a budget is exhausted;
- :func:`scoped_recursion_limit` / :func:`resource_scope` — context managers
  that raise the interpreter recursion limit *and restore it*, converting
  any :class:`RecursionError` that still escapes into a
  :class:`ResourceLimitError`.

Every public entry point (parse, typecheck, evaluate, the CLI, the REPL)
runs under :func:`resource_scope`, so ``sys.getrecursionlimit()`` is
unchanged after any public API call and malformed or pathological input
surfaces as a positioned diagnostic, never a Python traceback.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

from repro.diagnostics.errors import Diagnostic


class ResourceLimitError(Diagnostic):
    """Raised when a depth or fuel budget is exhausted.

    A resource limit is a property of the *run*, not necessarily of the
    program: the same program may check fine under a larger budget.  The
    ``limit`` attribute names the budget that tripped.
    """

    kind = "resource limit"

    def __init__(self, message: str, span=None, limit: str = "depth"):
        super().__init__(message, span)
        self.limit = limit


class DeadlineExceededError(ResourceLimitError):
    """Raised when a run's wall-clock deadline expires mid-check.

    The cooperative half of deadline enforcement: :class:`Budget` polls the
    clock at its metered call sites (checker depth, evaluator fuel) and
    raises this the moment the deadline is behind us, so a slow-but-metered
    run cancels in-band with a positioned diagnostic.  The batch service's
    watchdog (:mod:`repro.service.worker`) is the preemptive backstop for
    code that never reaches a metered call site.
    """

    kind = "deadline exceeded"

    def __init__(self, message: str, span=None):
        super().__init__(message, span, limit="deadline")


@dataclass(frozen=True)
class Limits:
    """Configurable resource budgets for one checking/evaluation run.

    ``None`` disables the corresponding budget.  The defaults are generous
    enough for every realistic program while keeping pathological input
    (e.g. a 10k-deep type application) well clear of the Python stack.
    """

    #: Maximum nesting depth of the typechecker's term recursion.
    max_check_depth: Optional[int] = 4_000
    #: Maximum number of hash-consed nodes in one congruence solver.
    max_congruence_nodes: Optional[int] = 1_000_000
    #: Maximum number of evaluation steps ("fuel"); ``None`` = run forever.
    max_eval_steps: Optional[int] = None
    #: Scoped Python recursion limit used while a guarded call runs.
    python_stack_limit: int = 50_000
    #: Wall-clock deadline for one metered run, in milliseconds; ``None``
    #: disables cooperative deadline checks.  The clock starts when a
    #: :class:`Budget` is constructed from these limits.
    deadline_ms: Optional[float] = None


#: The default budgets used when a caller passes ``limits=None``.
DEFAULT_LIMITS = Limits()


class Budget:
    """Mutable counters for one run, created from a :class:`Limits`.

    The typechecker calls :meth:`enter_depth`/:meth:`leave_depth` around
    each recursive step; evaluators call :meth:`spend_fuel` once per step.
    Both raise :class:`ResourceLimitError` when the budget is exhausted.
    """

    __slots__ = ("limits", "_depth", "_fuel", "steps_taken", "peak_depth",
                 "_deadline_at", "_deadline_poll", "_deadline_hit")

    def __init__(self, limits: Optional[Limits] = None):
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        self._depth = 0
        self._fuel = self.limits.max_eval_steps
        #: Evaluation steps metered so far (observability reads this).
        self.steps_taken = 0
        #: Deepest checker nesting reached (observability reads this).
        self.peak_depth = 0
        deadline_ms = self.limits.deadline_ms
        self._deadline_at = (
            time.monotonic() + deadline_ms / 1000.0
            if deadline_ms is not None else None
        )
        self._deadline_poll = 0
        self._deadline_hit = False

    # -- wall-clock deadline ----------------------------------------------

    def check_deadline(self, span=None) -> None:
        """Raise :class:`DeadlineExceededError` once the deadline passed.

        Polls the clock every 16th metered call (cheap on the hot path);
        after the first trip, every call raises immediately so error
        recovery can't limp on past a dead deadline.
        """
        if self._deadline_at is None:
            return
        if not self._deadline_hit:
            self._deadline_poll += 1
            if self._deadline_poll & 0xF:
                return
            if time.monotonic() <= self._deadline_at:
                return
            self._deadline_hit = True
        raise DeadlineExceededError(
            f"run exceeded its {self.limits.deadline_ms}ms deadline; "
            "re-run with a larger --deadline-ms budget if this program "
            "genuinely needs more time",
            span,
        )

    # -- typechecker depth ------------------------------------------------

    def enter_depth(self, span=None) -> None:
        self.check_deadline(span)
        self._depth += 1
        if self._depth > self.peak_depth:
            self.peak_depth = self._depth
        cap = self.limits.max_check_depth
        if cap is not None and self._depth > cap:
            # Leave the counter consistent for callers that recover.
            self._depth -= 1
            raise ResourceLimitError(
                f"program nesting exceeds the checker depth limit ({cap}); "
                "re-run with a larger --depth budget if this program is "
                "genuinely this deep",
                span,
                limit="depth",
            )

    def leave_depth(self) -> None:
        self._depth -= 1

    # -- evaluator fuel ---------------------------------------------------

    def spend_fuel(self, span=None) -> None:
        self.check_deadline(span)
        self.steps_taken += 1
        if self._fuel is None:
            return
        if self._fuel <= 0:
            raise ResourceLimitError(
                f"evaluation exceeded the fuel budget "
                f"({self.limits.max_eval_steps} steps); the program may "
                "not terminate — re-run with a larger --fuel budget",
                span,
                limit="fuel",
            )
        self._fuel -= 1


@contextmanager
def scoped_recursion_limit(limit: int):
    """Raise the Python recursion limit to ``limit``; restore it on exit.

    Never *lowers* the limit (a caller may already have raised it), and
    restores the previous value even when the body raises.  The restore is
    guarded: an abandoned worker thread finishing long after its watchdog
    gave up on it only restores the limit if nobody else has changed it in
    the meantime, so a timed-out check can never clobber the budget of the
    check now running (``tests/service/test_limits_hygiene.py``).
    """
    prior = sys.getrecursionlimit()
    raised = limit > prior
    if raised:
        sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        if raised and sys.getrecursionlimit() == limit:
            sys.setrecursionlimit(prior)


@contextmanager
def resource_scope(limits: Optional[Limits] = None, span=None):
    """Run the body under a scoped stack limit; convert stack overflow.

    Any :class:`RecursionError` escaping the body — Python's stack giving
    out before an explicit depth budget tripped — is converted into a
    catchable :class:`ResourceLimitError` diagnostic.
    """
    limits = limits if limits is not None else DEFAULT_LIMITS
    with scoped_recursion_limit(limits.python_stack_limit):
        try:
            yield
        except RecursionError:
            raise ResourceLimitError(
                "program nesting exhausted the interpreter stack "
                f"(limit {limits.python_stack_limit}); the input is more "
                "deeply nested than this pipeline supports",
                span,
                limit="stack",
            ) from None
