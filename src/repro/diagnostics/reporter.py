"""Accumulating diagnostic reporting (multi-error pipelines).

The fail-fast API (``parse_fg``/``typecheck`` raising on the first
:class:`Diagnostic`) is what a library caller wants; a *tool* wants every
error in one pass, the way a production compiler front end reports them.
This module provides the collecting half:

- :class:`DiagnosticReporter` — accumulates positioned diagnostics with
  error/warning/note severities and a configurable ``max_errors`` cap;
- :class:`DiagnosticReport` — the immutable result: diagnostics in stable
  source order, with rendering and JSON projections.

The resilient parser (:func:`repro.syntax.parser_fg.parse_program_resilient`)
and the recovering checker (:func:`repro.fg.typecheck.typecheck_all`) both
write into one reporter, so a single run reports lex, parse, and type errors
together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.diagnostics.errors import Diagnostic

#: The three diagnostic severities, in decreasing order of gravity.
SEVERITIES = ("error", "warning", "note")


def _sort_key(diag: Diagnostic):
    """Stable source order: positioned diagnostics by (file, offset);
    unpositioned (and synthetic-span) diagnostics sort after them."""
    span = diag.span
    if span is None or span.filename == "<synthetic>":
        return (1, "", 0, 0)
    return (0, span.filename, span.start.offset, span.end.offset)


def diagnostic_to_dict(diag: Diagnostic) -> Dict[str, object]:
    """A machine-readable projection of one diagnostic (the CLI's --json)."""
    out: Dict[str, object] = {
        "severity": getattr(diag, "severity", "error"),
        "kind": diag.kind,
        "message": diag.message,
        "file": None,
        "line": None,
        "col": None,
    }
    if diag.span is not None and diag.span.filename != "<synthetic>":
        out["file"] = diag.span.filename
        out["line"] = diag.span.start.line
        out["col"] = diag.span.start.column
    return out


@dataclass(frozen=True)
class DiagnosticReport:
    """The outcome of a collecting run: diagnostics in stable source order."""

    diagnostics: Tuple[Diagnostic, ...]
    #: True when the error cap was hit and checking stopped early.
    truncated: bool = False

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics
            if getattr(d, "severity", "error") == "error"
        )

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics
            if getattr(d, "severity", "error") == "warning"
        )

    @property
    def notes(self) -> Tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics
            if getattr(d, "severity", "error") == "note"
        )

    @property
    def ok(self) -> bool:
        """True when the run produced no errors (warnings/notes allowed)."""
        return not self.errors

    def render(self) -> str:
        """All diagnostics, rendered the way the fail-fast path prints one."""
        parts = [str(d) for d in self.diagnostics]
        if self.truncated:
            parts.append(
                f"... too many errors, stopping after {len(self.errors)} "
                "(raise the error cap to see more)"
            )
        return "\n".join(parts)

    def to_json(self) -> List[Dict[str, object]]:
        return [diagnostic_to_dict(d) for d in self.diagnostics]

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)


@dataclass
class DiagnosticReporter:
    """Accumulates diagnostics during a resilient pipeline run.

    ``max_errors`` caps *error*-severity diagnostics; once reached,
    :attr:`at_limit` turns true and the pipeline stages stop recovering
    (warnings and notes never count against the cap).
    """

    max_errors: int = 20
    _diagnostics: List[Diagnostic] = field(default_factory=list)
    _error_count: int = 0

    def emit(self, diag: Diagnostic, severity: str = "error") -> None:
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        diag.severity = severity
        self._diagnostics.append(diag)
        if severity == "error":
            self._error_count += 1

    def error(self, diag: Diagnostic) -> None:
        self.emit(diag, "error")

    def warning(self, diag: Diagnostic) -> None:
        self.emit(diag, "warning")

    def note(self, diag: Diagnostic) -> None:
        self.emit(diag, "note")

    @property
    def error_count(self) -> int:
        return self._error_count

    @property
    def at_limit(self) -> bool:
        return self._error_count >= self.max_errors

    def finish(self) -> DiagnosticReport:
        """Freeze into a report, stably sorted into source order."""
        ordered = sorted(self._diagnostics, key=_sort_key)
        return DiagnosticReport(
            tuple(ordered), truncated=self.at_limit
        )
