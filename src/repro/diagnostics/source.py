"""Source text, positions, and spans.

The lexer produces tokens tagged with :class:`Span` values; parsers propagate
them onto AST nodes so that type errors can point back into the program text.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True, order=True)
class Position:
    """A point in a source file: 1-based line, 1-based column, 0-based offset."""

    line: int
    column: int
    offset: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Span:
    """A half-open region of source text, from ``start`` up to ``end``."""

    start: Position
    end: Position
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.start}"

    def merge(self, other: Optional["Span"]) -> "Span":
        """The smallest span covering both ``self`` and ``other``."""
        if other is None:
            return self
        start = min(self.start, other.start)
        end = max(self.end, other.end)
        return Span(start, end, self.filename)


#: Span used for synthesized nodes with no source location.
SYNTHETIC = Span(Position(0, 0, 0), Position(0, 0, 0), "<synthetic>")


@dataclass
class SourceText:
    """Program text plus an index of line-start offsets for fast lookups."""

    text: str
    filename: str = "<input>"
    _line_starts: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        starts = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                starts.append(i + 1)
        self._line_starts = starts

    def position_at(self, offset: int) -> Position:
        """The :class:`Position` of the character at byte ``offset``."""
        offset = max(0, min(offset, len(self.text)))
        line_idx = bisect.bisect_right(self._line_starts, offset) - 1
        column = offset - self._line_starts[line_idx] + 1
        return Position(line_idx + 1, column, offset)

    def span(self, start_offset: int, end_offset: int) -> Span:
        """Build a :class:`Span` from two byte offsets."""
        return Span(
            self.position_at(start_offset),
            self.position_at(end_offset),
            self.filename,
        )

    def line(self, lineno: int) -> str:
        """The text of 1-based line ``lineno``, without its newline."""
        if lineno < 1 or lineno > len(self._line_starts):
            return ""
        start = self._line_starts[lineno - 1]
        end = self.text.find("\n", start)
        if end == -1:
            end = len(self.text)
        return self.text[start:end]

    def excerpt(self, span: Span) -> str:
        """A caret-underlined excerpt of the line where ``span`` starts."""
        raw = self.line(span.start.line)
        if not raw:
            return ""
        start_col = min(span.start.column - 1, len(raw))
        # Expand tabs in both the displayed line and the caret padding so
        # the underline stays aligned however the line is indented.
        line_text = raw.expandtabs(4)
        caret_col = len(raw[:start_col].expandtabs(4))
        if span.end.line == span.start.line:
            end_col = min(span.end.column - 1, len(raw))
            width = max(1, len(raw[:end_col].expandtabs(4)) - caret_col)
        else:
            width = max(1, len(line_text) - caret_col)
        gutter = f"{span.start.line:>5} | "
        underline = " " * (len(gutter) + caret_col) + "^" * width
        return f"{gutter}{line_text}\n{underline}"
