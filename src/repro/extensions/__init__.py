"""The paper's section 6 extensions, implemented on top of core F_G.

Features:

- **named models** (``model m = C<int> { ... } in``) with scoped adoption
  (``use m in ...``) — the paper's suggested mechanism for managing
  overlapping models, after Kahl & Scheffczyk's named instances;
- **parameterized models** (``model forall t where C<t>. D<list t> { ... }``)
  — Haskell's parameterized instances, resolved by matching plus recursive
  model resolution;
- **concept-member defaults** (``member : type = default-body;``) — a rich
  interface implemented in terms of a few required operations;
- **nested requirements** live in core F_G already (``require C<assoc>;``
  inside a concept) since they reuse the refinement machinery.

Entry points mirror :mod:`repro.fg` but use :class:`ExtChecker`::

    from repro import extensions as ext
    ext.run("model m = Monoid<int> { ... } in use m in accumulate[int](...)")
"""

from typing import Optional, Tuple

from repro.diagnostics.limits import Limits, resource_scope
from repro.diagnostics.reporter import DiagnosticReport, DiagnosticReporter
from repro.extensions import ast
from repro.extensions.checker import ExtChecker
from repro.fg import ast as G
from repro.fg.env import Env
from repro.syntax import parse_fg
from repro.systemf import ast as F
from repro.systemf import evaluate as _sf_evaluate
from repro.systemf import type_of as _sf_type_of


def typecheck(
    term: G.Term,
    env: Optional[Env] = None,
    *,
    limits: Optional[Limits] = None,
    instrumentation=None,
) -> Tuple[G.FGType, F.Term]:
    """Typecheck an extended-F_G term; returns type and translation."""
    checker = ExtChecker(limits=limits, instrumentation=instrumentation)
    with resource_scope(checker.limits, getattr(term, "span", None)):
        return checker.check(term, env if env is not None else Env.initial())


def typecheck_all(
    term: G.Term,
    env: Optional[Env] = None,
    *,
    max_errors: int = 20,
    limits: Optional[Limits] = None,
    reporter: Optional[DiagnosticReporter] = None,
    instrumentation=None,
) -> Tuple[Optional[G.FGType], Optional[F.Term], DiagnosticReport]:
    """Multi-error variant of :func:`typecheck` (see
    :func:`repro.fg.typecheck.typecheck_all`)."""
    from repro.fg.typecheck import _run_collecting

    return _run_collecting(
        ExtChecker, term, env, max_errors=max_errors, limits=limits,
        reporter=reporter, instrumentation=instrumentation,
    )


def type_of(term: G.Term, env: Optional[Env] = None) -> G.FGType:
    return typecheck(term, env)[0]


def translate(term: G.Term, env: Optional[Env] = None) -> F.Term:
    return typecheck(term, env)[1]


def evaluate(term: G.Term, env: Optional[Env] = None, *, limits=None):
    """Run an extended-F_G program via its System F translation."""
    _, sf_term = typecheck(term, env, limits=limits)
    return _sf_evaluate(sf_term, limits=limits)


def verify_translation(term: G.Term, env: Optional[Env] = None):
    """Theorem 1/2 check for the extended language: re-check the image."""
    checker = ExtChecker()
    base_env = env if env is not None else Env.initial()
    with resource_scope(checker.limits, getattr(term, "span", None)):
        fg_type, sf_term = checker.check(term, base_env)
        sf_type = _sf_type_of(sf_term)
    return fg_type, sf_type


def check(program: str, use_prelude: bool = False) -> G.FGType:
    """Typecheck extended-F_G source; returns the program type."""
    return type_of(_parse(program, use_prelude))


def run(program: str, use_prelude: bool = False):
    """Typecheck, translate, and evaluate extended-F_G source."""
    return evaluate(_parse(program, use_prelude))


def verify(program: str, use_prelude: bool = False):
    """Translation-preserves-typing check on extended-F_G source."""
    return verify_translation(_parse(program, use_prelude))


def _parse(program: str, use_prelude: bool) -> G.Term:
    if use_prelude:
        from repro.prelude import wrap

        return parse_fg(wrap(program))
    return parse_fg(program)


__all__ = [
    "ExtChecker",
    "ast",
    "check",
    "evaluate",
    "run",
    "translate",
    "type_of",
    "typecheck",
    "typecheck_all",
    "verify",
    "verify_translation",
]
