"""Term forms for the section 6 extensions.

These are the features the paper names as important-but-omitted: *named
models* (Kahl & Scheffczyk 2001), *parameterized models* (Haskell's
parameterized instances), and — via :attr:`ConceptDef.defaults` on the core
AST — *defaults for concept members*.  The core checker rejects these nodes;
:class:`repro.extensions.checker.ExtChecker` gives them semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.fg.ast import ConceptReq, ModelDef, SameType, Term


@dataclass(frozen=True)
class NamedModelExpr(Term):
    """``model name = C<taus> { ... } in body``.

    The model is checked and its dictionary bound at the declaration, but it
    does **not** participate in implicit model lookup; bring it into scope
    with :class:`UseModelsExpr`.  This is the management mechanism for
    overlapping models the paper points to (section 6, "named models").
    """

    name: str = ""
    model: ModelDef = None  # type: ignore[assignment]
    body: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class UseModelsExpr(Term):
    """``use m1, m2 in body`` — adopt named models for implicit lookup."""

    names: Tuple[str, ...] = ()
    body: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class OverloadExpr(Term):
    """``overload f { alt1; alt2; ... } in body`` — algorithm specialization.

    Each alternative is a generic function; an instantiation ``f[taus]``
    selects the *most specific applicable* alternative: applicable means
    every requirement has a model in scope (and same-type constraints
    hold); more specific means its requirement closure strictly contains
    the other's.  This is the where-clause-driven dispatch the paper points
    to for iterator-category specialization (section 6, "algorithm
    specialization"; Jarvi, Willcock & Lumsdaine 2004).
    """

    name: str = ""
    alternatives: Tuple[Term, ...] = ()
    body: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ParamModelExpr(Term):
    """``model forall t... where reqs. C<taus> { ... } in body``.

    A family of models, one for each instantiation of the parameters that
    satisfies the where clause — Haskell's ``instance Monoid [a]``
    (section 6, "parameterized models").  The dictionary translates to a
    polymorphic dictionary *function*; each use applies it to the matched
    type arguments and the dictionaries its own where clause demands.
    """

    vars: Tuple[str, ...] = ()
    requirements: Tuple[ConceptReq, ...] = ()
    same_types: Tuple[SameType, ...] = ()
    model: ModelDef = None  # type: ignore[assignment]
    body: Term = None  # type: ignore[assignment]
