"""``ExtChecker``: core F_G plus the section 6 extensions.

Implements, on top of :class:`repro.fg.typecheck.Checker`:

- **named models** — checked and dictionary-bound at declaration, adopted
  into implicit lookup only under ``use`` (Kahl & Scheffczyk's named
  instances, the paper's suggested mechanism for managing overlap);
- **parameterized models** — ``model forall t where C<t>. D<list t>``;
  the dictionary becomes a polymorphic dictionary function and uses are
  resolved by first-order matching plus recursive model resolution;
- **concept-member defaults** — members a model omits are filled from the
  concept's default bodies (checked per-model, after substituting the
  model's type arguments and associated-type assignments);
- an *improvement* step for associated types: ``rep``/``equal`` resolve
  ``c<taus>.s`` through parameterized-model instances, which have no
  pre-registered equalities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.diagnostics.errors import TypeError_
from repro.extensions import ast as X
from repro.fg import ast as G
from repro.fg.concepts import assoc_slots
from repro.fg.env import Env, ModelInfo
from repro.fg.typecheck import Checker, _ErrorLimit
from repro.systemf import ast as F

_NAMED_KEY = "extensions.named_models"
_PARAM_KEY = "extensions.param_models"
_OVERLOAD_KEY = "extensions.overloads"
_MAX_RESOLUTION_DEPTH = 32


@dataclass(frozen=True)
class NamedModel:
    """A checked named model: registration payload for ``use``."""

    info: ModelInfo
    equalities: Tuple[Tuple[G.FGType, G.FGType], ...]


@dataclass(frozen=True)
class ParamModel:
    """A parameterized model declaration awaiting instantiation."""

    vars: Tuple[str, ...]
    requirements: Tuple[G.ConceptReq, ...]
    same_types: Tuple[G.SameType, ...]
    concept: str
    args: Tuple[G.FGType, ...]
    assoc_templates: Tuple[Tuple[str, G.FGType], ...]
    dict_var: str


class ExtChecker(Checker):
    """The extended checker; a drop-in replacement for :class:`Checker`."""

    ALLOW_DEFAULTS = True

    _DISPATCH = dict(Checker._DISPATCH)
    _DISPATCH.update(
        {
            "NamedModelExpr": "_check_named_model",
            "UseModelsExpr": "_check_use_models",
            "ParamModelExpr": "_check_param_model",
            "OverloadExpr": "_check_overload",
        }
    )

    def __init__(self, use_solver_cache: bool = True, reporter=None,
                 limits=None, instrumentation=None):
        super().__init__(
            use_solver_cache=use_solver_cache, reporter=reporter,
            limits=limits, instrumentation=instrumentation,
        )
        self._resolution_depth = 0
        self._improving = False

    # ------------------------------------------------------------------
    # Associated-type improvement through parameterized models
    # ------------------------------------------------------------------

    def rep(self, t: G.FGType, env: Env) -> G.FGType:
        return super().rep(self._improve(t, env), env)

    def equal(self, a: G.FGType, b: G.FGType, env: Env) -> bool:
        if super().equal(a, b, env):
            return True
        if self._improving:
            return False
        return super().equal(self._improve(a, env), self._improve(b, env), env)

    def _improve(self, t: G.FGType, env: Env) -> G.FGType:
        """Resolve associated types via model lookup, bottom-up.

        Plain models already contribute equalities, so this only gains
        information for parameterized-model instances — but it is harmless
        (and confluent) to run everywhere.
        """
        if self._improving:
            return t
        self._improving = True
        try:
            return self._improve_go(t, env, 0)
        finally:
            self._improving = False

    def _improve_go(self, t: G.FGType, env: Env, depth: int) -> G.FGType:
        if depth > _MAX_RESOLUTION_DEPTH:
            return t
        if isinstance(t, (G.TVar, G.TBase)):
            return t
        if isinstance(t, G.TList):
            return G.TList(self._improve_go(t.elem, env, depth + 1))
        if isinstance(t, G.TFn):
            return G.TFn(
                tuple(self._improve_go(p, env, depth + 1) for p in t.params),
                self._improve_go(t.result, env, depth + 1),
            )
        if isinstance(t, G.TTuple):
            return G.TTuple(
                tuple(self._improve_go(i, env, depth + 1) for i in t.items)
            )
        if isinstance(t, G.TAssoc):
            args = tuple(self._improve_go(a, env, depth + 1) for a in t.args)
            improved = G.TAssoc(t.concept, args, t.member)
            info = self.find_model(t.concept, args, env)
            if info is not None:
                assignment = info.assoc.get(t.member)
                if assignment is not None and assignment != improved:
                    return self._improve_go(assignment, env, depth + 1)
            return improved
        return t  # foralls and requirements stay as written

    # ------------------------------------------------------------------
    # Model lookup through parameterized models
    # ------------------------------------------------------------------

    def find_model(
        self, concept: str, args: Tuple[G.FGType, ...], env: Env, span=None
    ) -> Optional[ModelInfo]:
        info = super().find_model(concept, args, env, span)
        if info is not None:
            return info
        if self._resolution_depth > _MAX_RESOLUTION_DEPTH:
            return None
        param_models: Dict[str, Tuple[ParamModel, ...]] = env.extra(
            _PARAM_KEY, {}
        )
        self._resolution_depth += 1
        try:
            for pmodel in param_models.get(concept, ()):
                instance = self._instantiate_param_model(pmodel, args, env)
                if instance is not None:
                    if self._explain is not None:
                        self._explain.note(
                            f"model lookup: {concept}<"
                            f"{', '.join(map(str, args))}> resolved via "
                            f"parameterized model forall "
                            f"{', '.join(pmodel.vars)}. {pmodel.concept}<"
                            f"{', '.join(map(str, pmodel.args))}>"
                        )
                    return instance
        finally:
            self._resolution_depth -= 1
        return None

    def _instantiate_param_model(
        self, pmodel: ParamModel, target: Tuple[G.FGType, ...], env: Env
    ) -> Optional[ModelInfo]:
        if len(pmodel.args) != len(target):
            return None
        theta: Dict[str, G.FGType] = {}
        for template, actual in zip(pmodel.args, target):
            if not self._match(template, actual, set(pmodel.vars), theta, env):
                return None
        if len(theta) != len(pmodel.vars):
            return None  # underdetermined match
        # Satisfy the parameterized model's own where clause, recursively.
        dict_args: List[F.Term] = []
        for req in pmodel.requirements:
            actual_args = tuple(G.substitute(a, theta) for a in req.args)
            sub = self.find_model(req.concept, actual_args, env)
            if sub is None:
                return None
            dict_args.append(self.dict_expr(sub))
        for same in pmodel.same_types:
            if not self.equal(
                G.substitute(same.left, theta),
                G.substitute(same.right, theta),
                env,
            ):
                return None
        # Type arguments: the parameters, then one per associated-type slot
        # of the where clause, in the order the declaration's translation
        # minted fresh variables.
        tyargs = [
            self.translate_type(theta[v], env) for v in pmodel.vars
        ]
        for slot in assoc_slots(env, pmodel.requirements, theta):
            sub = self.find_model(slot.concept, slot.actual_args, env)
            if sub is None:
                return None
            assignment = sub.assoc.get(slot.assoc_name)
            if assignment is None:
                return None
            tyargs.append(self.translate_type(assignment, env))
        prebuilt: F.Term = F.TyApp(
            fn=F.Var(name=pmodel.dict_var), args=tuple(tyargs)
        )
        if pmodel.requirements:
            prebuilt = F.App(fn=prebuilt, args=tuple(dict_args))
        assoc_map = {
            s: G.substitute(template, theta)
            for s, template in pmodel.assoc_templates
        }
        return ModelInfo(
            pmodel.concept,
            target,
            pmodel.dict_var,
            (),
            assoc_map,
            prebuilt=prebuilt,
        )

    def _match(
        self,
        template: G.FGType,
        actual: G.FGType,
        vars_: set,
        theta: Dict[str, G.FGType],
        env: Env,
    ) -> bool:
        """First-order matching of a model-head template against a type."""
        actual = super().rep(actual, env)
        if isinstance(template, G.TVar) and template.name in vars_:
            prev = theta.get(template.name)
            if prev is None:
                theta[template.name] = actual
                return True
            return super().equal(prev, actual, env)
        if isinstance(template, G.TVar):
            return super().equal(template, actual, env)
        if isinstance(template, G.TBase):
            return template == actual
        if isinstance(template, G.TList) and isinstance(actual, G.TList):
            return self._match(template.elem, actual.elem, vars_, theta, env)
        if isinstance(template, G.TFn) and isinstance(actual, G.TFn):
            if len(template.params) != len(actual.params):
                return False
            return all(
                self._match(tp, ap, vars_, theta, env)
                for tp, ap in zip(template.params, actual.params)
            ) and self._match(template.result, actual.result, vars_, theta, env)
        if isinstance(template, G.TTuple) and isinstance(actual, G.TTuple):
            if len(template.items) != len(actual.items):
                return False
            return all(
                self._match(ti, ai, vars_, theta, env)
                for ti, ai in zip(template.items, actual.items)
            )
        return super().equal(template, actual, env)

    # ------------------------------------------------------------------
    # Named models
    # ------------------------------------------------------------------

    def _check_named_model(self, term: X.NamedModelExpr, env: Env):
        named: Dict[str, NamedModel] = dict(env.extra(_NAMED_KEY, {}))
        if term.name in named:
            raise TypeError_(
                f"named model '{term.name}' is already defined", term.span
            )
        if self._reporter is None:
            elaborated = self._elaborate_model(term.model, env, term.span)
        else:
            try:
                elaborated = self._elaborate_model(term.model, env, term.span)
            except TypeError_ as err:
                self._reporter.error(err)
                if self._reporter.at_limit:
                    raise _ErrorLimit() from None
                elaborated = self._poison_model(term.model, env, term.span)
                if elaborated is None:
                    return self.check(term.body, env)
        info, equalities, bindings, dictionary = elaborated
        named[term.name] = NamedModel(info, equalities)
        inner = env.with_extra(_NAMED_KEY, named)
        body_type, body_sf = self.check(term.body, inner)
        result_type = self.rep(body_type, inner)
        self.check_type_wf(result_type, env, term.span)
        out: F.Term = F.Let(
            span=term.span, name=info.dict_var, bound=dictionary, body=body_sf
        )
        for var, bound in reversed(bindings):
            out = F.Let(span=term.span, name=var, bound=bound, body=out)
        return result_type, out

    def _check_use_models(self, term: X.UseModelsExpr, env: Env):
        named: Dict[str, NamedModel] = env.extra(_NAMED_KEY, {})
        inner = env
        for name in term.names:
            entry = named.get(name)
            if entry is None:
                raise TypeError_(f"unknown named model '{name}'", term.span)
            inner = inner.add_model(entry.info)
            inner = inner.add_equalities(entry.equalities)
        body_type, body_sf = self.check(term.body, inner)
        result_type = self.rep(body_type, inner)
        self.check_type_wf(result_type, env, term.span)
        return result_type, body_sf

    # ------------------------------------------------------------------
    # Parameterized models
    # ------------------------------------------------------------------

    def _check_param_model(self, term: X.ParamModelExpr, env: Env):
        mdef = term.model
        where = self.process_where(
            term.vars, term.requirements, term.same_types, env, term.span
        )
        # The model head must mention every parameter, or instantiation
        # could never determine them.
        head_vars = set()
        for a in mdef.args:
            head_vars |= G.free_type_vars(a)
        unused = set(term.vars) - head_vars
        if unused:
            raise TypeError_(
                f"parameterized model: parameter(s) "
                f"{', '.join(sorted(unused))} do not appear in the model "
                f"head {mdef.concept}<{', '.join(map(str, mdef.args))}>",
                term.span,
            )
        info, _, bindings, dictionary = self._elaborate_model(
            mdef, where.env, term.span
        )
        dict_body: F.Term = dictionary
        for var, bound in reversed(bindings):
            dict_body = F.Let(span=term.span, name=var, bound=bound, body=dict_body)
        if term.requirements:
            dict_body = F.Lam(
                span=term.span, params=where.dict_params, body=dict_body
            )
        dict_fn = F.TyLam(
            span=term.span,
            vars=tuple(term.vars) + where.assoc_vars,
            body=dict_body,
        )
        pmodel = ParamModel(
            term.vars,
            term.requirements,
            term.same_types,
            mdef.concept,
            mdef.args,
            mdef.type_assignments,
            info.dict_var,
        )
        param_models: Dict[str, Tuple[ParamModel, ...]] = dict(
            env.extra(_PARAM_KEY, {})
        )
        param_models[mdef.concept] = (pmodel,) + param_models.get(
            mdef.concept, ()
        )
        inner = env.with_extra(_PARAM_KEY, param_models)
        body_type, body_sf = self.check(term.body, inner)
        result_type = self.rep(body_type, inner)
        self.check_type_wf(result_type, env, term.span)
        return result_type, F.Let(
            span=term.span, name=info.dict_var, bound=dict_fn, body=body_sf
        )

    # ------------------------------------------------------------------
    # Algorithm specialization (overloaded generic functions)
    # ------------------------------------------------------------------

    def _check_overload(self, term: X.OverloadExpr, env: Env):
        if not term.alternatives:
            raise TypeError_("overload needs at least one alternative",
                             term.span)
        if env.lookup_var(term.name) is not None:
            raise TypeError_(
                f"overload '{term.name}' shadows a variable", term.span
            )
        bindings: List[Tuple[str, F.Term]] = []
        alt_infos: List[Tuple[str, G.TForall]] = []
        inner = env
        for i, alt in enumerate(term.alternatives):
            alt_type, alt_sf = self.check(alt, env)
            alt_type = self.rep(alt_type, env)
            if not isinstance(alt_type, G.TForall):
                raise TypeError_(
                    f"overload alternative {i + 1} of '{term.name}' is not "
                    f"a generic function (type {alt_type})",
                    term.span,
                )
            var = self._fresh(f"{term.name}_alt{i}")
            bindings.append((var, alt_sf))
            alt_infos.append((var, alt_type))
            inner = inner.bind_var(var, alt_type)
        overloads = dict(inner.extra(_OVERLOAD_KEY, {}))
        overloads[term.name] = tuple(alt_infos)
        inner = inner.with_extra(_OVERLOAD_KEY, overloads)
        body_type, body_sf = self.check(term.body, inner)
        result_type = self.rep(body_type, inner)
        self.check_type_wf(result_type, env, term.span)
        out = body_sf
        for var, bound in reversed(bindings):
            out = F.Let(span=term.span, name=var, bound=bound, body=out)
        return result_type, out

    def _check_tyapp(self, term: G.TyApp, env: Env):
        # Specialization dispatch: an instantiation of an overload name
        # selects the most specific applicable alternative, then defers to
        # the ordinary TAPP rule on that alternative.
        if isinstance(term.fn, G.Var) and env.lookup_var(term.fn.name) is None:
            overloads = env.extra(_OVERLOAD_KEY, {}).get(term.fn.name)
            if overloads:
                var = self._select_alternative(
                    term.fn.name, overloads, term.args, env, term.span
                )
                retargeted = G.TyApp(
                    span=term.span,
                    fn=G.Var(span=term.fn.span, name=var),
                    args=term.args,
                )
                return super()._check_tyapp(retargeted, env)
        return super()._check_tyapp(term, env)

    def _select_alternative(
        self, name: str, overloads, args, env: Env, span
    ) -> str:
        for a in args:
            self.check_type_wf(a, env, span)
        applicable = []
        for var, ftype in overloads:
            if len(ftype.vars) != len(args):
                continue
            if self._alternative_applicable(ftype, args, env):
                applicable.append((var, ftype))
        if not applicable:
            raise TypeError_(
                f"no alternative of overload '{name}' is applicable at "
                f"[{', '.join(map(str, args))}] (no models satisfy any "
                "where clause)",
                span,
            )
        closures = [
            (var, self._requirement_closure(ftype, args, env))
            for var, ftype in applicable
        ]
        # Keep alternatives not strictly less specific than another.
        maximal = [
            (var, closure)
            for var, closure in closures
            if not any(
                other > closure for _, other in closures
            )
        ]
        if len(maximal) > 1:
            raise TypeError_(
                f"ambiguous overload '{name}' at "
                f"[{', '.join(map(str, args))}]: "
                f"{len(maximal)} alternatives are maximally specific",
                span,
            )
        return maximal[0][0]

    def _alternative_applicable(
        self, ftype: G.TForall, args, env: Env
    ) -> bool:
        subst = dict(zip(ftype.vars, args))
        for req in ftype.requirements:
            actual = tuple(G.substitute(a, subst) for a in req.args)
            if self.find_model(req.concept, actual, env) is None:
                return False
        for same in ftype.same_types:
            if not self.equal(
                G.substitute(same.left, subst),
                G.substitute(same.right, subst),
                env,
            ):
                return False
        return True

    def _requirement_closure(self, ftype: G.TForall, args, env: Env):
        """The set of (concept, arg-reps) reachable from the where clause —
        the specificity order is set inclusion on these closures."""
        from repro.fg.concepts import refinement_closure

        subst = dict(zip(ftype.vars, args))
        out = set()
        for req in ftype.requirements:
            actual = tuple(G.substitute(a, subst) for a in req.args)
            for concept, cargs, _ in refinement_closure(env, req.concept, actual):
                key = (
                    concept,
                    tuple(str(self.rep(a, env)) for a in cargs),
                )
                out.add(key)
        return out

    # ------------------------------------------------------------------
    # Concept-member defaults
    # ------------------------------------------------------------------

    def _elaborate_members(
        self, cdef: G.ConceptDef, mdef: G.ModelDef, subst, assigned,
        env: Env, span, dict_var: str,
    ):
        defaults = dict(cdef.defaults)
        if not defaults:
            return super()._elaborate_members(
                cdef, mdef, subst, assigned, env, span, dict_var
            )
        defs = dict(mdef.member_defs)
        if len(defs) != len(mdef.member_defs):
            raise TypeError_("duplicate member definition", span)
        declared = set(cdef.member_names())
        extra = set(defs) - declared
        if extra:
            raise TypeError_(
                f"model of {cdef.name} defines unknown member(s): "
                f"{', '.join(sorted(extra))}",
                span,
            )
        missing = declared - set(defs) - set(defaults)
        if missing:
            raise TypeError_(
                f"model of {cdef.name} lacks member(s) without defaults: "
                f"{', '.join(sorted(missing))}",
                span,
            )
        equalities = tuple(
            (G.TAssoc(cdef.name, mdef.args, s), t) for s, t in assigned.items()
        )
        bindings: List[Tuple[str, F.Term]] = []
        member_vars: Dict[str, str] = {}
        member_exprs: List[F.Term] = []
        for name, declared_type in cdef.members:
            expected = G.substitute(declared_type, subst)
            if name in defs:
                actual, sf = self.check(defs[name], env)
                source = defs[name]
            else:
                # Instantiate the default at the model's substitution and
                # check it with the in-progress model in scope (member
                # accesses hit the already-bound variables).
                body = G.substitute_term_types(defaults[name], subst)
                progress = env.add_model(
                    ModelInfo(
                        cdef.name,
                        mdef.args,
                        dict_var,
                        (),
                        assigned,
                        member_vars=dict(member_vars),
                    )
                ).add_equalities(equalities)
                actual, sf = self.check(body, progress)
                source = defaults[name]
            if not self.equal(actual, expected, env.add_equalities(equalities)):
                raise TypeError_(
                    f"member '{name}' of model {cdef.name}<"
                    f"{', '.join(map(str, mdef.args))}> has type "
                    f"{self.rep(actual, env)}, expected "
                    f"{self.rep(expected, env)}",
                    source.span or span,
                )
            var = self._fresh(f"{name}_member")
            member_vars[name] = var
            bindings.append((var, sf))
            member_exprs.append(F.Var(name=var))
        return bindings, member_exprs
