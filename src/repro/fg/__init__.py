"""System F_G: concepts, models, where clauses, associated types (the paper's
primary contribution).

Public surface:

- :mod:`repro.fg.ast` — types, terms, concept/model declarations,
- :func:`typecheck` — type-directed translation to System F,
- :func:`type_of`, :func:`translate` — the two projections of ``typecheck``,
- :func:`verify_translation` — executable Theorems 1 and 2,
- :func:`evaluate` — run a program (translate, then evaluate the System F
  image; the paper gives F_G its semantics exactly this way),
- :class:`Env` — the four-part environment Gamma (plus equalities),
- :class:`CongruenceSolver` — type equality with same-type constraints.
"""

from typing import Optional

from repro.fg import ast
from repro.fg.congruence import CongruenceSolver, solver_for_equalities
from repro.fg.env import Env, ModelInfo
from repro.fg.interp import interpret
from repro.fg.pretty import pretty_term, pretty_type
from repro.fg.typecheck import (
    Checker,
    translate,
    type_of,
    typecheck,
    typecheck_all,
    verify_translation,
)


def evaluate(term: ast.Term, env: Optional[Env] = None, *, limits=None):
    """Run an F_G program: translate to System F and evaluate the image.

    This *is* the paper's semantics for F_G — meaning is assigned by the
    translation (section 4).
    """
    from repro.systemf import evaluate as sf_evaluate

    _, sf_term = typecheck(term, env, limits=limits)
    return sf_evaluate(sf_term, limits=limits)


__all__ = [
    "Checker",
    "CongruenceSolver",
    "Env",
    "ModelInfo",
    "ast",
    "evaluate",
    "interpret",
    "pretty_term",
    "pretty_type",
    "solver_for_equalities",
    "translate",
    "type_of",
    "typecheck",
    "typecheck_all",
    "verify_translation",
]
