"""Abstract syntax of System F_G (paper Figures 4 and 11).

F_G extends System F with:

- ``concept`` expressions declaring named requirement sets with refinement,
  associated-type requirements, and same-type requirements (Fig. 11),
- ``model`` expressions establishing that particular types satisfy a
  concept, lexically scoped like ``let``,
- ``where`` clauses on type abstractions, listing concept requirements and
  same-type constraints,
- member-access terms ``c<taus>.x`` and member-access *types*
  ``c<taus>.s`` (associated types),
- ``type t = tau in e`` aliases (Fig. 11).

As with our System F, we carry the paper's informal extensions (literals,
``if``, ``fix``, ``let``, tuples) as primitive term forms so the running
examples can be written directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.diagnostics.source import Span


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FGType:
    """Base class of F_G types."""


@dataclass(frozen=True)
class TVar(FGType):
    """A type variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TBase(FGType):
    """A base type (``int`` or ``bool``)."""

    name: str

    def __str__(self) -> str:
        return self.name


#: Base types shared with System F.
INT = TBase("int")
BOOL = TBase("bool")


@dataclass(frozen=True)
class ErrorType(FGType):
    """The poison type of an ill-typed definition (error recovery).

    The multi-error checker assigns ``ERROR`` to bindings whose definitions
    failed to check; every typing rule *absorbs* it (an ``ErrorType`` equals
    any type, applying it yields ``ErrorType``, ...) so one bad definition
    does not cascade into spurious follow-on errors.  ``ErrorType`` never
    appears in fail-fast checking.
    """

    def __str__(self) -> str:
        return "<error>"


#: The singleton poison type.
ERROR = ErrorType()


@dataclass(frozen=True)
class TList(FGType):
    """The list type constructor."""

    elem: FGType

    def __str__(self) -> str:
        return f"list {self.elem}"


@dataclass(frozen=True)
class TFn(FGType):
    """A multi-parameter function type ``fn(t1, ..., tn) -> t``."""

    params: Tuple[FGType, ...]
    result: FGType

    def __str__(self) -> str:
        return f"fn({', '.join(map(str, self.params))}) -> {self.result}"


@dataclass(frozen=True)
class TTuple(FGType):
    """A product type (engineering extension, mirrors System F tuples)."""

    items: Tuple[FGType, ...]

    def __str__(self) -> str:
        if not self.items:
            return "unit"
        return "(" + " * ".join(map(str, self.items)) + ")"


@dataclass(frozen=True)
class ConceptReq(FGType):
    """A concept requirement ``c<tau1, ..., taun>`` in a where clause.

    Not itself a type that terms can inhabit; modeled as an ``FGType``
    subclass only so it can reuse the type traversal helpers.
    """

    concept: str
    args: Tuple[FGType, ...]

    def __str__(self) -> str:
        return f"{self.concept}<{', '.join(map(str, self.args))}>"


@dataclass(frozen=True)
class SameType:
    """A same-type constraint ``tau == tau'`` (paper section 5)."""

    left: FGType
    right: FGType

    def __str__(self) -> str:
        return f"{self.left} == {self.right}"


@dataclass(frozen=True)
class TForall(FGType):
    """``forall t1..tn where c<taus>, ...; tau == tau', ... . t`` (Figs. 4, 11)."""

    vars: Tuple[str, ...]
    requirements: Tuple[ConceptReq, ...]
    same_types: Tuple[SameType, ...]
    body: FGType

    def __str__(self) -> str:
        clauses = [str(r) for r in self.requirements]
        clauses += [str(s) for s in self.same_types]
        where = f" where {', '.join(clauses)}" if clauses else ""
        return f"forall {', '.join(self.vars)}{where}. {self.body}"


@dataclass(frozen=True)
class TAssoc(FGType):
    """An associated-type reference ``c<taus>.member`` (Fig. 11)."""

    concept: str
    args: Tuple[FGType, ...]
    member: str

    def __str__(self) -> str:
        return f"{self.concept}<{', '.join(map(str, self.args))}>.{self.member}"


def free_type_vars(t: FGType) -> frozenset:
    """Free type variables of an F_G type (where clauses included)."""
    if isinstance(t, TVar):
        return frozenset((t.name,))
    if isinstance(t, (TBase, ErrorType)):
        return frozenset()
    if isinstance(t, TList):
        return free_type_vars(t.elem)
    if isinstance(t, TFn):
        out = free_type_vars(t.result)
        for p in t.params:
            out |= free_type_vars(p)
        return out
    if isinstance(t, TTuple):
        out = frozenset()
        for item in t.items:
            out |= free_type_vars(item)
        return out
    if isinstance(t, ConceptReq):
        out = frozenset()
        for a in t.args:
            out |= free_type_vars(a)
        return out
    if isinstance(t, TAssoc):
        out = frozenset()
        for a in t.args:
            out |= free_type_vars(a)
        return out
    if isinstance(t, TForall):
        out = free_type_vars(t.body)
        for r in t.requirements:
            out |= free_type_vars(r)
        for s in t.same_types:
            out |= free_type_vars(s.left) | free_type_vars(s.right)
        return out - frozenset(t.vars)
    raise AssertionError(f"unknown F_G type node: {t!r}")


def concept_names(t: FGType) -> frozenset:
    """``CV(t)``: concept names occurring in where clauses / assoc types of ``t``."""
    if isinstance(t, (TVar, TBase, ErrorType)):
        return frozenset()
    if isinstance(t, TList):
        return concept_names(t.elem)
    if isinstance(t, TFn):
        out = concept_names(t.result)
        for p in t.params:
            out |= concept_names(p)
        return out
    if isinstance(t, TTuple):
        out = frozenset()
        for item in t.items:
            out |= concept_names(item)
        return out
    if isinstance(t, ConceptReq):
        out = frozenset((t.concept,))
        for a in t.args:
            out |= concept_names(a)
        return out
    if isinstance(t, TAssoc):
        out = frozenset((t.concept,))
        for a in t.args:
            out |= concept_names(a)
        return out
    if isinstance(t, TForall):
        out = concept_names(t.body)
        for r in t.requirements:
            out |= concept_names(r)
        for s in t.same_types:
            out |= concept_names(s.left) | concept_names(s.right)
        return out
    raise AssertionError(f"unknown F_G type node: {t!r}")


def substitute(t: FGType, subst) -> FGType:
    """Capture-avoiding simultaneous substitution ``[t -> tau]t``.

    ``subst`` maps type-variable names to :class:`FGType` values.
    """
    if not subst:
        return t
    if isinstance(t, TVar):
        return subst.get(t.name, t)
    if isinstance(t, (TBase, ErrorType)):
        return t
    if isinstance(t, TList):
        return TList(substitute(t.elem, subst))
    if isinstance(t, TFn):
        return TFn(
            tuple(substitute(p, subst) for p in t.params),
            substitute(t.result, subst),
        )
    if isinstance(t, TTuple):
        return TTuple(tuple(substitute(i, subst) for i in t.items))
    if isinstance(t, ConceptReq):
        return ConceptReq(t.concept, tuple(substitute(a, subst) for a in t.args))
    if isinstance(t, TAssoc):
        return TAssoc(
            t.concept, tuple(substitute(a, subst) for a in t.args), t.member
        )
    if isinstance(t, TForall):
        inner = {k: v for k, v in subst.items() if k not in t.vars}
        if not inner:
            return t
        captured = frozenset()
        for v in inner.values():
            captured |= free_type_vars(v)
        renaming = {}
        new_vars = []
        for var in t.vars:
            if var in captured:
                from repro.systemf.ast import fresh_type_var

                fresh = fresh_type_var(var.split("%")[0])
                renaming[var] = TVar(fresh)
                new_vars.append(fresh)
            else:
                new_vars.append(var)
        reqs = t.requirements
        sames = t.same_types
        body = t.body
        if renaming:
            reqs = tuple(substitute(r, renaming) for r in reqs)
            sames = tuple(
                SameType(substitute(s.left, renaming), substitute(s.right, renaming))
                for s in sames
            )
            body = substitute(body, renaming)
        return TForall(
            tuple(new_vars),
            tuple(substitute(r, inner) for r in reqs),
            tuple(
                SameType(substitute(s.left, inner), substitute(s.right, inner))
                for s in sames
            ),
            substitute(body, inner),
        )
    raise AssertionError(f"unknown F_G type node: {t!r}")


def substitute_term_types(term: "Term", subst) -> "Term":
    """Apply a type substitution to every type embedded in a term.

    Used to instantiate concept-member *defaults*, whose bodies are written
    against the concept's formal parameters; binders are term-level only, so
    no type-variable capture can occur here beyond what :func:`substitute`
    already handles.
    """
    if not subst:
        return term

    def sub_t(t: FGType) -> FGType:
        return substitute(t, subst)

    def go(e: "Term") -> "Term":
        if isinstance(e, (Var, IntLit, BoolLit)):
            return e
        if isinstance(e, Lam):
            return Lam(
                span=e.span,
                params=tuple((n, sub_t(t)) for n, t in e.params),
                body=go(e.body),
            )
        if isinstance(e, App):
            return App(span=e.span, fn=go(e.fn), args=tuple(go(a) for a in e.args))
        if isinstance(e, TyLam):
            inner = {k: v for k, v in subst.items() if k not in e.vars}
            if not inner:
                return e
            return TyLam(
                span=e.span,
                vars=e.vars,
                requirements=tuple(substitute(r, inner) for r in e.requirements),
                same_types=tuple(
                    SameType(substitute(s.left, inner), substitute(s.right, inner))
                    for s in e.same_types
                ),
                body=substitute_term_types(e.body, inner),
            )
        if isinstance(e, TyApp):
            return TyApp(
                span=e.span, fn=go(e.fn), args=tuple(sub_t(t) for t in e.args)
            )
        if isinstance(e, Let):
            return Let(span=e.span, name=e.name, bound=go(e.bound), body=go(e.body))
        if isinstance(e, Tuple_):
            return Tuple_(span=e.span, items=tuple(go(i) for i in e.items))
        if isinstance(e, Nth):
            return Nth(span=e.span, tuple_=go(e.tuple_), index=e.index)
        if isinstance(e, If):
            return If(span=e.span, cond=go(e.cond), then=go(e.then), else_=go(e.else_))
        if isinstance(e, Fix):
            return Fix(span=e.span, fn=go(e.fn))
        if isinstance(e, MemberAccess):
            return MemberAccess(
                span=e.span,
                concept=e.concept,
                args=tuple(sub_t(a) for a in e.args),
                member=e.member,
            )
        if isinstance(e, TypeAlias):
            return TypeAlias(
                span=e.span, name=e.name, aliased=sub_t(e.aliased), body=go(e.body)
            )
        # Concept/model expressions and extension nodes inside defaults are
        # rare; handle the general declaration forms conservatively.
        if isinstance(e, ConceptExpr):
            return ConceptExpr(span=e.span, concept=e.concept, body=go(e.body))
        if isinstance(e, ModelExpr):
            mdef = e.model
            new_mdef = ModelDef(
                mdef.concept,
                tuple(sub_t(a) for a in mdef.args),
                tuple((n, sub_t(t)) for n, t in mdef.type_assignments),
                tuple((n, go(d)) for n, d in mdef.member_defs),
            )
            return ModelExpr(span=e.span, model=new_mdef, body=go(e.body))
        raise AssertionError(
            f"substitute_term_types: unsupported node {type(e).__name__}"
        )

    return go(term)


# ---------------------------------------------------------------------------
# Declarations (payloads of concept/model expressions)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConceptDef:
    """The payload of ``concept c<t...> { ... }``.

    ``assoc_types`` are required nested type names; ``refines`` lists refined
    concepts (their args may mention the params and assoc names);
    ``members`` are ``name : type`` requirements; ``same_types`` are
    same-type requirements among associated types / params; ``nested`` are
    requirements on associated types (paper section 6, "nested
    requirements") — e.g. a container's iterator type must itself model
    Iterator.  Nested requirements contribute dictionary components after
    the refinements and before the members.
    """

    name: str
    params: Tuple[str, ...]
    assoc_types: Tuple[str, ...] = ()
    refines: Tuple[ConceptReq, ...] = ()
    members: Tuple[Tuple[str, FGType], ...] = ()
    same_types: Tuple[SameType, ...] = ()
    nested: Tuple[ConceptReq, ...] = ()
    #: Default member bodies (section 6 extension); keys must name members.
    #: Core F_G ignores defaults — they take effect under
    #: :mod:`repro.extensions`.
    defaults: Tuple[Tuple[str, "Term"], ...] = ()

    def member_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.members)


@dataclass(frozen=True)
class ModelDef:
    """The payload of ``model c<tau...> { ... }``.

    ``type_assignments`` give each required associated type a definition;
    ``member_defs`` give each required operation an implementation.
    """

    concept: str
    args: Tuple[FGType, ...]
    type_assignments: Tuple[Tuple[str, FGType], ...] = ()
    member_defs: Tuple[Tuple[str, "Term"], ...] = ()


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Term:
    """Base class of F_G terms."""

    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Var(Term):
    name: str = ""


@dataclass(frozen=True)
class IntLit(Term):
    value: int = 0


@dataclass(frozen=True)
class BoolLit(Term):
    value: bool = False


@dataclass(frozen=True)
class Lam(Term):
    """``\\x1:t1, ..., xn:tn. body``."""

    params: Tuple[Tuple[str, FGType], ...] = ()
    body: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class App(Term):
    fn: Term = None  # type: ignore[assignment]
    args: Tuple[Term, ...] = ()


@dataclass(frozen=True)
class TyLam(Term):
    """``/\\t... where reqs; sames. body`` — generic function (Figs. 4, 11)."""

    vars: Tuple[str, ...] = ()
    requirements: Tuple[ConceptReq, ...] = ()
    same_types: Tuple[SameType, ...] = ()
    body: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class TyApp(Term):
    """Instantiation ``e[tau...]``: triggers model lookup."""

    fn: Term = None  # type: ignore[assignment]
    args: Tuple[FGType, ...] = ()


@dataclass(frozen=True)
class Let(Term):
    name: str = ""
    bound: Term = None  # type: ignore[assignment]
    body: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Tuple_(Term):
    items: Tuple[Term, ...] = ()


@dataclass(frozen=True)
class Nth(Term):
    tuple_: Term = None  # type: ignore[assignment]
    index: int = 0


@dataclass(frozen=True)
class If(Term):
    cond: Term = None  # type: ignore[assignment]
    then: Term = None  # type: ignore[assignment]
    else_: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Fix(Term):
    fn: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ConceptExpr(Term):
    """``concept c<t...> { ... } in body`` — scoped concept declaration."""

    concept: ConceptDef = None  # type: ignore[assignment]
    body: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ModelExpr(Term):
    """``model c<tau...> { ... } in body`` — scoped model declaration."""

    model: ModelDef = None  # type: ignore[assignment]
    body: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class MemberAccess(Term):
    """``c<tau...>.x`` — extract an operation from a model (MEM rule)."""

    concept: str = ""
    args: Tuple[FGType, ...] = ()
    member: str = ""


@dataclass(frozen=True)
class TypeAlias(Term):
    """``type t = tau in body`` (Fig. 11, ALS rule)."""

    name: str = ""
    aliased: FGType = None  # type: ignore[assignment]
    body: Term = None  # type: ignore[assignment]
