"""Concept-structure helpers: the paper's ``b``, ``ba``, and the
refinement-closure walks shared by the checker and the translator.

A concept's members and associated types are declared against its formal
parameters; using them at particular type arguments requires the *qualifying
substitution* (the paper's ``ba(c, taus), t:taus``): parameters map to the
arguments and each associated-type name maps to its concept-qualified
reference ``c<taus>.s``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.diagnostics.errors import TypeError_
from repro.fg import ast as G
from repro.fg.env import Env


def concept_def(env: Env, name: str, span=None) -> G.ConceptDef:
    """Look up a concept or fail with a positioned error."""
    cdef = env.lookup_concept(name)
    if cdef is None:
        raise TypeError_(f"unknown concept '{name}'", span)
    return cdef


def check_concept_arity(cdef: G.ConceptDef, args, span=None) -> None:
    if len(cdef.params) != len(args):
        raise TypeError_(
            f"concept {cdef.name} expects {len(cdef.params)} type "
            f"argument(s), got {len(args)}",
            span,
        )


def qualifying_subst(
    cdef: G.ConceptDef, args: Tuple[G.FGType, ...]
) -> Dict[str, G.FGType]:
    """Map params to ``args`` and associated names to ``c<args>.s`` (paper's ba)."""
    subst: Dict[str, G.FGType] = dict(zip(cdef.params, args))
    for s in cdef.assoc_types:
        subst[s] = G.TAssoc(cdef.name, args, s)
    return subst


@dataclass(frozen=True)
class MemberEntry:
    """One concept member with its qualified type and dictionary path."""

    name: str
    type: G.FGType
    path: Tuple[int, ...]
    concept: str  # the concept that declares the member


def members_with_paths(
    env: Env, concept: str, args: Tuple[G.FGType, ...], path: Tuple[int, ...] = ()
) -> List[MemberEntry]:
    """The paper's ``b(c, taus, n, Gamma)``.

    Collects the members of ``concept`` and everything it refines, with
    member types qualified at ``args`` and paths into the (nested) dictionary:
    refined concepts' dictionaries occupy the first components, followed by
    the concept's own members, exactly as in Figure 7.
    """
    cdef = concept_def(env, concept)
    check_concept_arity(cdef, args)
    subst = qualifying_subst(cdef, args)
    out: List[MemberEntry] = []
    for i, req in enumerate(cdef.refines):
        refined_args = tuple(G.substitute(a, subst) for a in req.args)
        out.extend(members_with_paths(env, req.concept, refined_args, path + (i,)))
    # Nested requirements occupy dictionary slots after the refinements but
    # do not export their members through this concept — they are reached
    # via the associated type (e.g. Iterator<Container<X>.iterator>.next).
    base = len(cdef.refines) + len(cdef.nested)
    for j, (name, t) in enumerate(cdef.members):
        out.append(
            MemberEntry(name, G.substitute(t, subst), path + (base + j,), concept)
        )
    return out


def find_member(
    env: Env, concept: str, args: Tuple[G.FGType, ...], member: str, span=None
) -> MemberEntry:
    """The entry for ``concept<args>.member``; nearest declaration wins."""
    entries = members_with_paths(env, concept, args)
    # The concept's own members shadow refined ones of the same name, so
    # search the concept's own block (which comes last) first.
    for entry in reversed(entries):
        if entry.name == member:
            return entry
    raise TypeError_(
        f"concept {concept} has no member '{member}'", span
    )


def same_type_requirements(
    env: Env, concept: str, args: Tuple[G.FGType, ...]
) -> List[G.SameType]:
    """All same-type requirements of ``concept`` (and refinements), qualified."""
    cdef = concept_def(env, concept)
    check_concept_arity(cdef, args)
    subst = qualifying_subst(cdef, args)
    out: List[G.SameType] = []
    for req in cdef.refines + cdef.nested:
        refined_args = tuple(G.substitute(a, subst) for a in req.args)
        out.extend(same_type_requirements(env, req.concept, refined_args))
    for same in cdef.same_types:
        out.append(
            G.SameType(
                G.substitute(same.left, subst), G.substitute(same.right, subst)
            )
        )
    return out


@dataclass(frozen=True)
class AssocSlot:
    """One associated-type slot introduced by a where clause.

    ``formal_args`` are the concept arguments as written in the where clause
    (used for the de-duplication key, which must agree between a type
    abstraction and every instantiation of it); ``actual_args`` carry the
    instantiated arguments at a TAPP site (identical to ``formal_args`` at
    the TABS site itself).
    """

    concept: str
    formal_args: Tuple[G.FGType, ...]
    actual_args: Tuple[G.FGType, ...]
    assoc_name: str


def assoc_slots(
    env: Env,
    requirements: Tuple[G.ConceptReq, ...],
    subst: Optional[Dict[str, G.FGType]] = None,
) -> List[AssocSlot]:
    """The ordered associated-type slots of a where clause.

    Walks each requirement's refinement closure depth-first (own associated
    types first, then refinements, matching the paper's ``bm``), de-duplicated
    by ``(concept, formal arguments)`` to handle refinement diamonds
    (paper 5.2).  ``subst`` instantiates the formal arguments at a TAPP site;
    crucially, de-duplication still keys on the *formal* arguments so the slot
    list always has the same shape the TABS translation produced.
    """
    seen = set()
    slots: List[AssocSlot] = []

    def walk(concept: str, formal: Tuple[G.FGType, ...],
             actual: Tuple[G.FGType, ...]) -> None:
        key = (concept, formal)
        if key in seen:
            return
        seen.add(key)
        cdef = concept_def(env, concept)
        check_concept_arity(cdef, formal)
        for s in cdef.assoc_types:
            slots.append(AssocSlot(concept, formal, actual, s))
        formal_subst = qualifying_subst(cdef, formal)
        actual_subst = qualifying_subst(cdef, actual)
        for req in cdef.refines + cdef.nested:
            walk(
                req.concept,
                tuple(G.substitute(a, formal_subst) for a in req.args),
                tuple(G.substitute(a, actual_subst) for a in req.args),
            )

    for req in requirements:
        actual_args = (
            tuple(G.substitute(a, subst) for a in req.args) if subst else req.args
        )
        walk(req.concept, req.args, actual_args)
    return slots


def refinement_closure(
    env: Env, concept: str, args: Tuple[G.FGType, ...]
) -> List[Tuple[str, Tuple[G.FGType, ...], Tuple[int, ...]]]:
    """Every ``(concept, args, path)`` reachable by refinement, self first."""
    out = [(concept, args, ())]
    cdef = concept_def(env, concept)
    subst = qualifying_subst(cdef, args)
    for i, req in enumerate(cdef.refines + cdef.nested):
        refined_args = tuple(G.substitute(a, subst) for a in req.args)
        for name, rargs, path in refinement_closure(env, req.concept, refined_args):
            out.append((name, rargs, (i,) + path))
    return out
