"""Congruence closure for F_G type equality (paper section 5).

With same-type constraints, type equality is no longer syntactic: it is "the
congruence that includes all the type equalities in Gamma".  The paper notes
this is exactly the quantifier-free theory of equality with uninterpreted
function symbols and cites the Nelson-Oppen congruence-closure algorithm
(JACM 1980).  This module implements that algorithm over F_G type terms:

- type constructors (``list``, ``fn``, tuples) and associated-type references
  ``c<taus>.s`` are treated as uninterpreted function symbols applied to
  their component types;
- type variables and base types are constants;
- ``forall`` types are interned as opaque constants keyed by an
  alpha-canonical form (equalities never look under binders — a conservative
  choice the paper shares, since its constraints range over first-order type
  expressions).

The solver also *externalizes* canonical representatives: the translation to
System F must print one representative per equivalence class (paper 5.2:
"the translation outputs the representative for each type expression"), and
inside a generic function that representative must be the fresh type variable
minted for an associated type, never the associated-type term itself.  We
achieve this with a cost-ranked extraction: ground constructors are cheapest,
type variables next, associated-type terms effectively infinite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.diagnostics.errors import TypeError_
from repro.diagnostics.limits import ResourceLimitError
from repro.fg import ast as G

# Externalization label costs: prefer ground structure, then variables,
# and only fall back to an associated-type term when nothing else exists.
_COST_GROUND = 1
_COST_VAR = 5
_COST_ASSOC = 1_000_000
_COST_INFINITE = float("inf")


class CongruenceSolver:
    """Incremental congruence closure over F_G type terms.

    Terms are hash-consed into integer nodes; a union-find partitions nodes
    into equivalence classes; a signature table keyed by
    ``(label, class-of-child...)`` detects congruent parents when classes
    merge.  New terms may be interned after merges: signatures are computed
    against current class representatives, so congruence stays closed.
    """

    def __init__(self, max_nodes: Optional[int] = None, *,
                 metrics=None, tracer=None):
        # ``max_nodes`` bounds the hash-consed node count: a runaway
        # equality set becomes a ResourceLimitError, not a frozen process.
        # ``metrics``/``tracer`` are optional observability hooks
        # (``repro.observability``); every use is guarded so the disabled
        # path costs one load-and-branch.
        self._max_nodes = max_nodes
        self._metrics = metrics
        self._tracer = tracer
        self._labels: List[tuple] = []
        self._children: List[Tuple[int, ...]] = []
        self._uf_parent: List[int] = []
        self._uf_rank: List[int] = []
        self._use: Dict[int, List[int]] = {}
        self._members: Dict[int, List[int]] = {}
        self._sigtab: Dict[tuple, int] = {}
        self._opaque: Dict[int, G.FGType] = {}
        self._equalities: List[Tuple[G.FGType, G.FGType]] = []

    # -- union-find ---------------------------------------------------------

    def _find(self, i: int) -> int:
        if self._metrics is not None:
            self._metrics.inc("congruence.finds")
        root = i
        while self._uf_parent[root] != root:
            root = self._uf_parent[root]
        while self._uf_parent[i] != root:
            self._uf_parent[i], i = root, self._uf_parent[i]
        return root

    def _new_node(self, label: tuple, children: Tuple[int, ...]) -> int:
        i = len(self._labels)
        if self._max_nodes is not None and i >= self._max_nodes:
            raise ResourceLimitError(
                f"type-equality solver exceeded its node budget "
                f"({self._max_nodes}); the same-type constraints in scope "
                "are too large for this run's limits",
                limit="congruence",
            )
        self._labels.append(label)
        self._children.append(children)
        self._uf_parent.append(i)
        self._uf_rank.append(0)
        self._use[i] = []
        self._members[i] = [i]
        if self._metrics is not None:
            self._metrics.inc("congruence.nodes")
        return i

    # -- interning ----------------------------------------------------------

    def intern(self, t: G.FGType) -> int:
        """Intern an F_G type, returning its node id (not its class root)."""
        return self._intern(t, {})

    def _intern(self, t: G.FGType, memo: Dict[int, int]) -> int:
        # Memoize by object identity within one call: type values are
        # frozen, so a shared sub-object (e.g. the repeated parameter in
        # ``fn(t) -> t``) is interned once — without this, deeply shared
        # terms cost exponential time.
        cached = memo.get(id(t))
        if cached is not None:
            return cached
        label, child_types, opaque = _decompose(t)
        children = tuple(self._intern(c, memo) for c in child_types)
        sig = (label,) + tuple(self._find(c) for c in children)
        existing = self._sigtab.get(sig)
        if existing is not None:
            memo[id(t)] = existing
            return existing
        node = self._new_node(label, children)
        self._sigtab[sig] = node
        for child in set(self._find(c) for c in children):
            self._use[child].append(node)
        if opaque is not None:
            self._opaque[node] = opaque
        memo[id(t)] = node
        return node

    # -- merging ------------------------------------------------------------

    def merge(self, a: G.FGType, b: G.FGType) -> None:
        """Assert ``a == b`` and close under congruence."""
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            with tracer.span("congruence.merge"):
                self._merge(a, b)
        else:
            self._merge(a, b)

    def _merge(self, a: G.FGType, b: G.FGType) -> None:
        metrics = self._metrics
        self._equalities.append((a, b))
        worklist = [(self.intern(a), self.intern(b))]
        while worklist:
            x, y = worklist.pop()
            rx, ry = self._find(x), self._find(y)
            if rx == ry:
                continue
            if self._uf_rank[rx] > self._uf_rank[ry]:
                rx, ry = ry, rx
            if self._uf_rank[rx] == self._uf_rank[ry]:
                self._uf_rank[ry] += 1
            self._uf_parent[rx] = ry
            self._members[ry].extend(self._members.pop(rx))
            if metrics is not None:
                metrics.inc("congruence.unions")
                metrics.observe(
                    "congruence.class_size", len(self._members[ry])
                )
            # Re-signature every parent of the absorbed class; congruent
            # parents found in the signature table join the worklist.
            moved = self._use.pop(rx)
            for parent in moved:
                sig = (self._labels[parent],) + tuple(
                    self._find(c) for c in self._children[parent]
                )
                other = self._sigtab.get(sig)
                if other is not None and self._find(other) != self._find(parent):
                    worklist.append((parent, other))
                else:
                    self._sigtab[sig] = parent
            self._use[ry].extend(moved)

    def equal(self, a: G.FGType, b: G.FGType) -> bool:
        """Decide ``Gamma |- a = b`` under the merged equalities."""
        return self._find(self.intern(a)) == self._find(self.intern(b))

    def class_contains_error(self, t: G.FGType) -> bool:
        """True when ``t``'s equivalence class holds a recovery poison.

        Used by the checker so a type merged with :data:`~repro.fg.ast.ERROR`
        (e.g. a recovered type alias) absorbs comparison exactly like a
        syntactic poison would.
        """
        root = self._find(self.intern(t))
        return any(self._labels[n] == ("error",) for n in self._members[root])

    # -- representative extraction ------------------------------------------

    def representative(self, t: G.FGType) -> G.FGType:
        """The canonical representative of ``t``'s equivalence class.

        Deterministic: minimal externalization cost, ties broken by node
        creation order.  Raises :class:`TypeError_` if the class is only
        expressible cyclically (e.g. after merging ``t`` with ``list t``).
        """
        node = self.intern(t)
        rep = self._externalize(self._find(node), {})
        if rep is None:
            raise TypeError_(f"cyclic type equality involving {t}")
        return rep

    def _externalize(
        self, root: int, in_progress: Dict[int, bool]
    ) -> Optional[G.FGType]:
        result = self._extract(root, in_progress)
        return result[1] if result is not None else None

    def _extract(self, root: int, in_progress: Dict[int, bool]):
        """Best (cost, type) for a class root, or ``None`` on a cycle."""
        if in_progress.get(root):
            return None
        in_progress[root] = True
        best = None
        for node in sorted(self._members[root]):
            entry = self._extract_node(node, in_progress)
            if entry is None:
                continue
            if best is None or entry[0] < best[0]:
                best = entry
        in_progress[root] = False
        return best

    def _extract_node(self, node: int, in_progress: Dict[int, bool]):
        label = self._labels[node]
        kind = label[0]
        child_results = []
        cost = _label_cost(kind)
        for child in self._children[node]:
            sub = self._extract(self._find(child), in_progress)
            if sub is None:
                return None
            cost += sub[0]
            child_results.append(sub[1])
        if cost >= _COST_INFINITE:
            return None
        return (cost, _recompose(label, child_results, self._opaque.get(node)))

    @property
    def equalities(self) -> Tuple[Tuple[G.FGType, G.FGType], ...]:
        """The equalities asserted so far, in order."""
        return tuple(self._equalities)


def _label_cost(kind: str) -> float:
    if kind == "assoc":
        return _COST_ASSOC
    if kind == "var":
        return _COST_VAR
    return _COST_GROUND


def _decompose(t: G.FGType):
    """Split a type into (label, child types, opaque payload)."""
    if isinstance(t, G.TVar):
        return (("var", t.name), (), None)
    if isinstance(t, G.TBase):
        return (("base", t.name), (), None)
    if isinstance(t, G.TList):
        return (("list",), (t.elem,), None)
    if isinstance(t, G.TFn):
        return (("fn", len(t.params)), tuple(t.params) + (t.result,), None)
    if isinstance(t, G.TTuple):
        return (("tuple", len(t.items)), tuple(t.items), None)
    if isinstance(t, G.TAssoc):
        return (("assoc", t.concept, t.member, len(t.args)), tuple(t.args), None)
    if isinstance(t, G.TForall):
        return (("forall", _canonical_forall(t)), (), t)
    if isinstance(t, G.ConceptReq):
        return (("req", t.concept, len(t.args)), tuple(t.args), None)
    if isinstance(t, G.ErrorType):
        # The recovery poison is an opaque constant to the solver; the
        # checker's ``equal`` short-circuits before asking about it, this
        # case only keeps stray poisons from crashing the closure.
        return (("error",), (), None)
    raise AssertionError(f"unknown F_G type node: {t!r}")


def _recompose(label: tuple, children: List[G.FGType], opaque) -> G.FGType:
    kind = label[0]
    if kind == "var":
        return G.TVar(label[1])
    if kind == "base":
        return G.TBase(label[1])
    if kind == "list":
        return G.TList(children[0])
    if kind == "fn":
        return G.TFn(tuple(children[:-1]), children[-1])
    if kind == "tuple":
        return G.TTuple(tuple(children))
    if kind == "assoc":
        return G.TAssoc(label[1], tuple(children), label[2])
    if kind == "forall":
        assert opaque is not None
        return opaque
    if kind == "req":
        return G.ConceptReq(label[1], tuple(children))
    if kind == "error":
        return G.ERROR
    raise AssertionError(f"unknown label: {label!r}")


def _canonical_forall(t: G.TForall) -> str:
    """An alpha-canonical string for a forall type (de Bruijn binder names)."""
    renaming = {v: G.TVar(f"@{i}") for i, v in enumerate(t.vars)}
    body = G.substitute(t.body, renaming)
    reqs = tuple(G.substitute(r, renaming) for r in t.requirements)
    sames = tuple(
        G.SameType(G.substitute(s.left, renaming), G.substitute(s.right, renaming))
        for s in t.same_types
    )
    canon = G.TForall(tuple(f"@{i}" for i in range(len(t.vars))), reqs, sames, body)
    return str(canon)


def solver_for_equalities(
    equalities, max_nodes: Optional[int] = None, *,
    metrics=None, tracer=None,
) -> CongruenceSolver:
    """Build a solver containing every equality in ``equalities``."""
    solver = CongruenceSolver(max_nodes, metrics=metrics, tracer=tracer)
    if metrics is not None:
        metrics.inc("congruence.solvers")
    if tracer is not None and tracer.enabled:
        with tracer.span("congruence.build", equalities=len(tuple(equalities))):
            for left, right in equalities:
                solver.merge(left, right)
        return solver
    for left, right in equalities:
        solver.merge(left, right)
    return solver
