"""Typing environments for F_G.

The paper's Gamma has four parts (section 4): term-variable types, type
variables in scope, concept declarations (with dictionary info), and model
declarations (dictionary variable + path + associated-type assignment), and
— with section 5 — a fifth: the set of type equalities.  :class:`Env` is
immutable; every extension returns a new environment, which is exactly what
gives concepts and models their lexical scoping (the paper's headline
difference from Haskell's global instances).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.fg import ast as G
from repro.fg.congruence import CongruenceSolver, solver_for_equalities
from repro.systemf import ast as F
from repro.systemf.builtins import BUILTIN_TYPES


@dataclass(frozen=True)
class ModelInfo:
    """A model in scope: where its dictionary lives in the translation.

    ``dict_var`` names the System F variable bound to a dictionary that
    *contains* this model's dictionary at tuple ``path`` (empty for a model's
    own ``let``-bound dictionary; non-empty for models reachable through
    concept refinement, mirroring the paper's ``(d, n)`` pairs).
    ``assoc`` maps the concept's associated-type names to their assignments
    (qualified ``c<taus>.s`` references for where-clause proxy models,
    concrete types for real model declarations).

    Two optional fields serve the section 6 extensions:

    - ``member_vars`` maps member names directly to bound System F
      variables; when present, member access translates to that variable
      instead of a tuple path (used while checking concept-member defaults,
      whose dictionary is still under construction);
    - ``prebuilt`` is a complete System F expression for the dictionary
      (used for instantiations of parameterized models, whose dictionaries
      are built by applying a polymorphic dictionary function).
    """

    concept: str
    args: Tuple[G.FGType, ...]
    dict_var: str
    path: Tuple[int, ...]
    assoc: Mapping[str, G.FGType]
    member_vars: Optional[Mapping[str, str]] = None
    prebuilt: Optional[object] = None


def _sf_type_to_fg(t: F.Type) -> G.FGType:
    """Convert a (builtin) System F type to the corresponding F_G type."""
    if isinstance(t, F.TVar):
        return G.TVar(t.name)
    if isinstance(t, F.TBase):
        return G.TBase(t.name)
    if isinstance(t, F.TList):
        return G.TList(_sf_type_to_fg(t.elem))
    if isinstance(t, F.TFn):
        return G.TFn(
            tuple(_sf_type_to_fg(p) for p in t.params), _sf_type_to_fg(t.result)
        )
    if isinstance(t, F.TTuple):
        return G.TTuple(tuple(_sf_type_to_fg(i) for i in t.items))
    if isinstance(t, F.TForall):
        return G.TForall(t.vars, (), (), _sf_type_to_fg(t.body))
    raise AssertionError(f"cannot import System F type {t!r} into F_G")


#: F_G types of the builtin constants (same names as System F's).
FG_BUILTIN_TYPES: Dict[str, G.FGType] = {
    name: _sf_type_to_fg(t) for name, t in BUILTIN_TYPES.items()
}


class Env:
    """An immutable F_G typing environment (the paper's Gamma)."""

    __slots__ = (
        "_vars", "_tyvars", "_concepts", "_models", "_equalities", "_extras"
    )

    def __init__(
        self,
        vars_: Dict[str, G.FGType],
        tyvars: FrozenSet[str],
        concepts: Dict[str, G.ConceptDef],
        models: Dict[str, Tuple[ModelInfo, ...]],
        equalities: Tuple[Tuple[G.FGType, G.FGType], ...],
        extras: Optional[Dict[str, object]] = None,
    ):
        self._vars = vars_
        self._tyvars = tyvars
        self._concepts = concepts
        self._models = models
        self._equalities = equalities
        self._extras = extras if extras is not None else {}

    @classmethod
    def initial(cls) -> "Env":
        """Builtins bound; no type variables, concepts, models, or equalities."""
        return cls(dict(FG_BUILTIN_TYPES), frozenset(), {}, {}, ())

    def _clone(self, **replacements) -> "Env":
        fields = {
            "vars_": self._vars,
            "tyvars": self._tyvars,
            "concepts": self._concepts,
            "models": self._models,
            "equalities": self._equalities,
            "extras": self._extras,
        }
        fields.update(replacements)
        return Env(**fields)

    # -- term variables -------------------------------------------------

    def lookup_var(self, name: str) -> Optional[G.FGType]:
        return self._vars.get(name)

    def bind_var(self, name: str, t: G.FGType) -> "Env":
        new_vars = dict(self._vars)
        new_vars[name] = t
        return self._clone(vars_=new_vars)

    # -- type variables ---------------------------------------------------

    @property
    def tyvars(self) -> FrozenSet[str]:
        return self._tyvars

    def has_tyvar(self, name: str) -> bool:
        return name in self._tyvars

    def bind_tyvars(self, names) -> "Env":
        return self._clone(tyvars=self._tyvars | frozenset(names))

    # -- concepts ---------------------------------------------------------

    def lookup_concept(self, name: str) -> Optional[G.ConceptDef]:
        return self._concepts.get(name)

    def add_concept(self, concept: G.ConceptDef) -> "Env":
        new_concepts = dict(self._concepts)
        new_concepts[concept.name] = concept
        return self._clone(concepts=new_concepts)

    # -- models -------------------------------------------------------------

    def models_of(self, concept: str) -> Tuple[ModelInfo, ...]:
        """Models of ``concept`` in scope, innermost-first."""
        return self._models.get(concept, ())

    def add_model(self, info: ModelInfo) -> "Env":
        new_models = dict(self._models)
        new_models[info.concept] = (info,) + new_models.get(info.concept, ())
        return self._clone(models=new_models)

    # -- type equalities ------------------------------------------------------

    @property
    def equalities(self) -> Tuple[Tuple[G.FGType, G.FGType], ...]:
        return self._equalities

    def add_equality(self, left: G.FGType, right: G.FGType) -> "Env":
        return self._clone(equalities=self._equalities + ((left, right),))

    def add_equalities(self, pairs) -> "Env":
        pairs = tuple(pairs)
        if not pairs:
            return self
        return self._clone(equalities=self._equalities + pairs)

    # -- extension storage ------------------------------------------------------

    def extra(self, key: str, default=None):
        """Extension-scoped lexical data (e.g. named models)."""
        return self._extras.get(key, default)

    def with_extra(self, key: str, value) -> "Env":
        new_extras = dict(self._extras)
        new_extras[key] = value
        return self._clone(extras=new_extras)

    # -- free type variables (for the TABS freshness premise) -----------------

    def free_type_vars(self) -> FrozenSet[str]:
        """Free type variables of every binding (paper's FTV(Gamma))."""
        out = frozenset()
        for t in self._vars.values():
            out |= G.free_type_vars(t)
        for infos in self._models.values():
            for info in infos:
                for a in info.args:
                    out |= G.free_type_vars(a)
        for left, right in self._equalities:
            out |= G.free_type_vars(left) | G.free_type_vars(right)
        return out


class SolverCache:
    """Memoizes congruence solvers keyed by an environment's equality tuple.

    Environments are persistent and equalities grow monotonically within a
    scope, so many checker steps share one equality set; building the solver
    once per distinct set keeps checking near-linear in practice.
    """

    def __init__(self, max_nodes: Optional[int] = None, *,
                 metrics=None, tracer=None):
        self._cache: Dict[tuple, CongruenceSolver] = {}
        self._max_nodes = max_nodes
        self._metrics = metrics
        self._tracer = tracer

    def solver(self, env: Env) -> CongruenceSolver:
        key = env.equalities
        solver = self._cache.get(key)
        if solver is None:
            solver = solver_for_equalities(
                key, self._max_nodes,
                metrics=self._metrics, tracer=self._tracer,
            )
            self._cache[key] = solver
        elif self._metrics is not None:
            self._metrics.inc("congruence.cache_hits")
        return solver
