"""A direct big-step interpreter for F_G — independent of the translation.

The paper gives F_G its semantics *by* the System F translation (section 4);
this module provides the semantics a language implementer would build
instead: an environment-based evaluator in which models are first-class
runtime tables, where clauses are satisfied by searching the lexical model
scope at instantiation time, and member access consults the resolved model.

Its purpose here is **cross-validation**: for every well-typed program,
direct evaluation and evaluate-the-translation must agree (see
``tests/properties/test_semantics_agreement.py``).  Having two independent
implementations of model resolution (this one over runtime type values, the
checker's over open types with congruence) is a strong check on both.

The interpreter assumes its input already typechecked; it raises
:class:`EvalError` on dynamic failures only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.diagnostics.errors import EvalError
from repro.diagnostics.limits import Budget, Limits, resource_scope
from repro.fg import ast as G
from repro.systemf.builtins import PrimValue, make_prim_values


class Closure:
    __slots__ = ("params", "body", "env")

    def __init__(self, params, body, env):
        self.params = params
        self.body = body
        self.env = env

    def __repr__(self):
        return f"<closure ({', '.join(n for n, _ in self.params)})>"


class TyClosure:
    """A generic-function value: suspends the body until instantiation.

    Captures the definition-site environment; at instantiation the *use
    site* provides type arguments, and required models are looked up in the
    use site's lexical model scope (exactly the paper's instantiation
    story), then spliced into the captured environment.
    """

    __slots__ = ("vars", "requirements", "body", "env")

    def __init__(self, vars_, requirements, body, env):
        self.vars = vars_
        self.requirements = requirements
        self.body = body
        self.env = env

    def __repr__(self):
        return f"<generic [{', '.join(self.vars)}]>"


class FixThunk:
    __slots__ = ("fn_value",)

    def __init__(self, fn_value):
        self.fn_value = fn_value


class ModelValue:
    """A runtime model: evaluated members plus associated-type assignments."""

    __slots__ = ("concept", "args", "members", "assoc")

    def __init__(self, concept, args, members, assoc):
        self.concept = concept
        self.args = args           # closed F_G types
        self.members = members     # name -> value
        self.assoc = assoc         # name -> closed F_G type

    def __repr__(self):
        return f"<model {self.concept}<{', '.join(map(str, self.args))}>>"


Value = Union[int, bool, list, tuple, Closure, TyClosure, FixThunk, PrimValue]


class Env:
    """Runtime environment: variables, models (innermost first), type
    bindings (type variable -> closed type), and concept declarations."""

    __slots__ = ("_vars", "_models", "_tyenv", "_concepts", "_parent")

    def __init__(self, vars_, models, tyenv, concepts, parent=None):
        self._vars = vars_
        self._models = models
        self._tyenv = tyenv
        self._concepts = concepts
        self._parent = parent

    @classmethod
    def initial(cls) -> "Env":
        return cls(dict(make_prim_values()), {}, {}, {})

    # -- variables -------------------------------------------------------

    def lookup(self, name: str) -> Value:
        env: Optional[Env] = self
        while env is not None:
            if name in env._vars:
                return env._vars[name]
            env = env._parent
        raise EvalError(f"unbound variable at runtime: '{name}'")

    def bind(self, name: str, value: Value) -> "Env":
        return Env({name: value}, {}, {}, {}, self)

    def bind_many(self, pairs) -> "Env":
        return Env(dict(pairs), {}, {}, {}, self)

    # -- types ------------------------------------------------------------

    def resolve_type(self, t: G.FGType) -> G.FGType:
        """Close a type: substitute bound type variables, resolve
        associated types through visible models."""
        if isinstance(t, G.TVar):
            env: Optional[Env] = self
            while env is not None:
                if t.name in env._tyenv:
                    return env._tyenv[t.name]
                env = env._parent
            return t  # free (checker guarantees this cannot be consumed)
        if isinstance(t, G.TBase):
            return t
        if isinstance(t, G.TList):
            return G.TList(self.resolve_type(t.elem))
        if isinstance(t, G.TFn):
            return G.TFn(
                tuple(self.resolve_type(p) for p in t.params),
                self.resolve_type(t.result),
            )
        if isinstance(t, G.TTuple):
            return G.TTuple(tuple(self.resolve_type(i) for i in t.items))
        if isinstance(t, G.TAssoc):
            args = tuple(self.resolve_type(a) for a in t.args)
            model = self.find_model(t.concept, args)
            if model is None:
                raise EvalError(
                    f"no model of {t.concept}<"
                    f"{', '.join(map(str, args))}> at runtime"
                )
            assigned = model.assoc.get(t.member)
            if assigned is None:
                raise EvalError(
                    f"model of {t.concept} lacks associated type "
                    f"'{t.member}'"
                )
            return self.resolve_type(assigned)
        if isinstance(t, G.TForall):
            # Closed enough for runtime identity; leave as written.
            return t
        raise AssertionError(f"unknown type node: {t!r}")

    def bind_types(self, pairs) -> "Env":
        return Env({}, {}, dict(pairs), {}, self)

    # -- concepts/models --------------------------------------------------------

    def concept(self, name: str) -> G.ConceptDef:
        env: Optional[Env] = self
        while env is not None:
            if name in env._concepts:
                return env._concepts[name]
            env = env._parent
        raise EvalError(f"unknown concept at runtime: '{name}'")

    def bind_concept(self, cdef: G.ConceptDef) -> "Env":
        return Env({}, {}, {}, {cdef.name: cdef}, self)

    def bind_model(self, model: ModelValue) -> "Env":
        return Env({}, {model.concept: [model]}, {}, {}, self)

    def find_model(
        self, concept: str, args: Tuple[G.FGType, ...]
    ) -> Optional[ModelValue]:
        env: Optional[Env] = self
        while env is not None:
            for model in env._models.get(concept, ()):
                if model.args == args:
                    return model
            env = env._parent
        return None

    def iter_models(self, concept: str):
        """All models of ``concept`` visible here, innermost-first."""
        env: Optional[Env] = self
        while env is not None:
            for model in env._models.get(concept, ()):
                yield model
            env = env._parent


class Interpreter:
    """Direct evaluator for (checked) F_G terms.

    ``limits.max_eval_steps`` (when set) meters every evaluation step, so a
    diverging program stops with a :class:`ResourceLimitError` instead of
    spinning; :meth:`run` executes under a scoped (restored) recursion
    limit, so deep programs don't crash and the process-wide limit is
    untouched afterwards.
    """

    def __init__(self, limits: Optional[Limits] = None,
                 budget: Optional[Budget] = None, instrumentation=None):
        self._budget = budget if budget is not None else Budget(limits)
        # Observability (repro.observability): the explain log records
        # runtime model resolutions (phase="runtime"); metrics count
        # lookups.  Both default to off and are guarded at every use.
        self._explain = (
            instrumentation.explain if instrumentation is not None else None
        )
        self._metrics = (
            instrumentation.metrics if instrumentation is not None else None
        )

    def run(self, term: G.Term, env: Optional[Env] = None) -> Value:
        with resource_scope(self._budget.limits, getattr(term, "span", None)):
            return self.eval(term, env if env is not None else Env.initial())

    # -- model resolution (observable) -------------------------------------

    def _find_model(
        self, concept: str, args: Tuple[G.FGType, ...], env: Env
    ) -> Optional[ModelValue]:
        """``env.find_model`` plus optional metrics/explain recording."""
        if self._metrics is None and self._explain is None:
            return env.find_model(concept, args)
        if self._metrics is not None:
            self._metrics.inc("interp.model_lookups")
        if self._explain is None:
            return env.find_model(concept, args)
        candidates = list(env.iter_models(concept))
        self._explain.begin(
            concept,
            ", ".join(map(str, args)),
            scope_size=len(candidates),
            equalities_in_scope=0,
            phase="runtime",
        )
        from repro.observability.explain import ACCEPTED

        found: Optional[ModelValue] = None
        for index, model in enumerate(candidates):
            if model.args != args:
                status = "runtime type arguments are not identical"
            elif found is None:
                status = ACCEPTED
                found = model
            else:
                status = "shadowed by an inner matching model"
            self._explain.candidate(
                index, ", ".join(map(str, model.args)), status
            )
        self._explain.finish(found is not None)
        return found

    # -- application helpers ----------------------------------------------

    def apply(self, fn_value: Value, args: List[Value]) -> Value:
        while isinstance(fn_value, FixThunk):
            fn_value = self._apply_once(fn_value.fn_value, [fn_value])
        return self._apply_once(fn_value, args)

    def _apply_once(self, fn_value: Value, args: List[Value]) -> Value:
        if isinstance(fn_value, Closure):
            if len(fn_value.params) != len(args):
                raise EvalError("runtime arity mismatch")
            pairs = [
                (name, v) for (name, _), v in zip(fn_value.params, args)
            ]
            return self.eval(fn_value.body, fn_value.env.bind_many(pairs))
        if isinstance(fn_value, PrimValue):
            if fn_value.arity != len(args):
                raise EvalError(
                    f"primitive '{fn_value.name}' arity mismatch"
                )
            return fn_value.fn(*args)
        raise EvalError(f"cannot apply non-function value {fn_value!r}")

    # -- evaluation ----------------------------------------------------------

    def eval(self, term: G.Term, env: Env) -> Value:
        self._budget.spend_fuel(term.span)
        method = self._DISPATCH.get(type(term).__name__)
        if method is None:
            raise EvalError(
                f"term form '{type(term).__name__}' is not supported by "
                "the direct interpreter"
            )
        return getattr(self, method)(term, env)

    def _eval_var(self, term: G.Var, env: Env) -> Value:
        return env.lookup(term.name)

    def _eval_int(self, term: G.IntLit, env: Env) -> Value:
        return term.value

    def _eval_bool(self, term: G.BoolLit, env: Env) -> Value:
        return term.value

    def _eval_lam(self, term: G.Lam, env: Env) -> Value:
        return Closure(term.params, term.body, env)

    def _eval_app(self, term: G.App, env: Env) -> Value:
        fn_value = self.eval(term.fn, env)
        args = [self.eval(a, env) for a in term.args]
        return self.apply(fn_value, args)

    def _eval_tylam(self, term: G.TyLam, env: Env) -> Value:
        return TyClosure(term.vars, term.requirements, term.body, env)

    def _eval_tyapp(self, term: G.TyApp, env: Env) -> Value:
        fn_value = self.eval(term.fn, env)
        while isinstance(fn_value, FixThunk):
            fn_value = self._apply_once(fn_value.fn_value, [fn_value])
        if not isinstance(fn_value, TyClosure):
            if isinstance(fn_value, PrimValue):
                # Polymorphic primitives: nil[int] is the constant; others
                # erase to themselves.
                return fn_value.fn() if fn_value.arity == 0 else fn_value
            raise EvalError(
                f"cannot instantiate non-generic value {fn_value!r}"
            )
        actuals = tuple(env.resolve_type(a) for a in term.args)
        subst = dict(zip(fn_value.vars, actuals))
        # Resolve each requirement in the *use site's* model scope and
        # splice the found models into the captured environment — the
        # runtime counterpart of implicit model passing.
        inner = fn_value.env.bind_types(zip(fn_value.vars, actuals))
        for req in fn_value.requirements:
            req_args = tuple(
                env.resolve_type(G.substitute(a, subst)) for a in req.args
            )
            inner = self._splice_models(req.concept, req_args, env, inner)
        return self.eval(fn_value.body, inner)

    def _splice_models(
        self, concept: str, args: Tuple[G.FGType, ...], use_site: Env,
        inner: Env,
    ) -> Env:
        model = self._find_model(concept, args, use_site)
        if model is None:
            raise EvalError(
                f"no model of {concept}<{', '.join(map(str, args))}> "
                "at instantiation"
            )
        inner = inner.bind_model(model)
        # Refinements and nested requirements travel with the model: make
        # their models visible inside the generic function too.
        cdef = use_site.concept(concept)
        inner = inner.bind_concept(cdef)
        subst = dict(zip(cdef.params, args))
        subst.update(model.assoc)
        for req in cdef.refines + cdef.nested:
            refined_args = tuple(
                use_site.resolve_type(G.substitute(a, subst))
                for a in req.args
            )
            inner = self._splice_models(
                req.concept, refined_args, use_site, inner
            )
        return inner

    def _eval_let(self, term: G.Let, env: Env) -> Value:
        bound = self.eval(term.bound, env)
        return self.eval(term.body, env.bind(term.name, bound))

    def _eval_tuple(self, term: G.Tuple_, env: Env) -> Value:
        return tuple(self.eval(i, env) for i in term.items)

    def _eval_nth(self, term: G.Nth, env: Env) -> Value:
        value = self.eval(term.tuple_, env)
        if not isinstance(value, tuple) or not 0 <= term.index < len(value):
            raise EvalError("invalid tuple projection")
        return value[term.index]

    def _eval_if(self, term: G.If, env: Env) -> Value:
        cond = self.eval(term.cond, env)
        return self.eval(term.then if cond else term.else_, env)

    def _eval_fix(self, term: G.Fix, env: Env) -> Value:
        return FixThunk(self.eval(term.fn, env))

    def _eval_concept(self, term: G.ConceptExpr, env: Env) -> Value:
        return self.eval(term.body, env.bind_concept(term.concept))

    def _eval_model(self, term: G.ModelExpr, env: Env) -> Value:
        mdef = term.model
        cdef = env.concept(mdef.concept)
        args = tuple(env.resolve_type(a) for a in mdef.args)
        assoc = {
            s: env.resolve_type(t) for s, t in mdef.type_assignments
        }
        members = {
            name: self.eval(body, env) for name, body in mdef.member_defs
        }
        # Fill defaults for omitted members (section 6 extension).
        defined = set(members)
        subst: Dict[str, G.FGType] = dict(zip(cdef.params, args))
        subst.update(assoc)
        model = ModelValue(cdef.name, args, members, assoc)
        with_model = env.bind_model(model)
        for name, default in cdef.defaults:
            if name not in defined:
                body = G.substitute_term_types(default, subst)
                members[name] = self.eval(body, with_model)
        return self.eval(term.body, with_model)

    def _eval_member(self, term: G.MemberAccess, env: Env) -> Value:
        args = tuple(env.resolve_type(a) for a in term.args)
        model = self._find_model(term.concept, args, env)
        if model is None:
            raise EvalError(
                f"no model of {term.concept}<"
                f"{', '.join(map(str, args))}> at runtime"
            )
        if term.member in model.members:
            return model.members[term.member]
        # A refined concept's member accessed through the deriving concept.
        cdef = env.concept(term.concept)
        subst: Dict[str, G.FGType] = dict(zip(cdef.params, args))
        subst.update(model.assoc)
        for req in cdef.refines:
            refined_args = tuple(
                env.resolve_type(G.substitute(a, subst)) for a in req.args
            )
            refined = env.find_model(req.concept, refined_args)
            if refined is not None:
                try:
                    return self._eval_member(
                        G.MemberAccess(
                            concept=req.concept,
                            args=refined_args,
                            member=term.member,
                        ),
                        env,
                    )
                except EvalError:
                    continue
        raise EvalError(
            f"model of {term.concept} has no member '{term.member}'"
        )

    def _eval_alias(self, term: G.TypeAlias, env: Env) -> Value:
        resolved = env.resolve_type(term.aliased)
        return self.eval(term.body, env.bind_types(((term.name, resolved),)))

    # -- section 6 extension forms ------------------------------------------

    def _eval_named_model(self, term, env: Env) -> Value:
        # Build the model value but register it under its name only; `use`
        # adopts it into the implicit scope.
        mdef = term.model
        cdef = env.concept(mdef.concept)
        args = tuple(env.resolve_type(a) for a in mdef.args)
        assoc = {s: env.resolve_type(t) for s, t in mdef.type_assignments}
        members = {
            name: self.eval(body, env) for name, body in mdef.member_defs
        }
        model = ModelValue(cdef.name, args, members, assoc)
        subst: Dict[str, G.FGType] = dict(zip(cdef.params, args))
        subst.update(assoc)
        with_model = env.bind_model(model)
        for name, default in cdef.defaults:
            if name not in members:
                members[name] = self.eval(
                    G.substitute_term_types(default, subst), with_model
                )
        named = dict(self._named_models(env))
        named[term.name] = model
        return self.eval(term.body, env.bind("%named_models%", named))

    def _named_models(self, env: Env):
        try:
            return env.lookup("%named_models%")
        except EvalError:
            return {}

    def _eval_use_models(self, term, env: Env) -> Value:
        named = self._named_models(env)
        inner = env
        for name in term.names:
            model = named.get(name)
            if model is None:
                raise EvalError(f"unknown named model '{name}'")
            inner = inner.bind_model(model)
        return self.eval(term.body, inner)

    _DISPATCH = {
        "Var": "_eval_var",
        "IntLit": "_eval_int",
        "BoolLit": "_eval_bool",
        "Lam": "_eval_lam",
        "App": "_eval_app",
        "TyLam": "_eval_tylam",
        "TyApp": "_eval_tyapp",
        "Let": "_eval_let",
        "Tuple_": "_eval_tuple",
        "Nth": "_eval_nth",
        "If": "_eval_if",
        "Fix": "_eval_fix",
        "ConceptExpr": "_eval_concept",
        "ModelExpr": "_eval_model",
        "MemberAccess": "_eval_member",
        "TypeAlias": "_eval_alias",
        "NamedModelExpr": "_eval_named_model",
        "UseModelsExpr": "_eval_use_models",
    }


def interpret(
    term: G.Term, *, limits: Optional[Limits] = None, instrumentation=None
) -> Value:
    """Directly evaluate a (well-typed) F_G term."""
    return Interpreter(limits=limits, instrumentation=instrumentation).run(term)
