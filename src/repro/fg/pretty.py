"""Pretty printer for F_G types and terms (round-trips through the parser)."""

from __future__ import annotations

from repro.fg import ast as G


def pretty_type(t: G.FGType) -> str:
    """Render an F_G type as concrete syntax."""
    return _ptype(t)


def _ptype(t: G.FGType) -> str:
    if isinstance(t, (G.TVar, G.TBase)):
        return t.name
    if isinstance(t, G.TList):
        return f"list {_ptype_atom(t.elem)}"
    if isinstance(t, G.TFn):
        return f"fn({', '.join(_ptype(p) for p in t.params)}) -> {_ptype(t.result)}"
    if isinstance(t, G.TTuple):
        if not t.items:
            return "unit"
        if len(t.items) == 1:
            return f"({_ptype_atom(t.items[0])} *)"
        return "(" + " * ".join(_ptype_atom(i) for i in t.items) + ")"
    if isinstance(t, G.TAssoc):
        return f"{t.concept}<{', '.join(_ptype(a) for a in t.args)}>.{t.member}"
    if isinstance(t, G.ConceptReq):
        return f"{t.concept}<{', '.join(_ptype(a) for a in t.args)}>"
    if isinstance(t, G.TForall):
        clauses = [_ptype(r) for r in t.requirements]
        clauses += [f"{_ptype(s.left)} == {_ptype(s.right)}" for s in t.same_types]
        where = f" where {', '.join(clauses)}" if clauses else ""
        return f"forall {', '.join(t.vars)}{where}. {_ptype(t.body)}"
    raise AssertionError(f"unknown F_G type node: {t!r}")


def _ptype_atom(t: G.FGType) -> str:
    if isinstance(t, (G.TVar, G.TBase, G.TTuple, G.TAssoc, G.TList)):
        return _ptype(t)
    return f"({_ptype(t)})"


def pretty_term(term: G.Term, indent: int = 0) -> str:
    """Render an F_G term as concrete syntax."""
    return _pterm(term, indent)


def _pterm(term: G.Term, ind: int) -> str:
    pad = "  " * ind
    if isinstance(term, G.Var):
        return term.name
    if isinstance(term, G.IntLit):
        return str(term.value)
    if isinstance(term, G.BoolLit):
        return "true" if term.value else "false"
    if isinstance(term, G.Lam):
        params = ", ".join(f"{n} : {_ptype(t)}" for n, t in term.params)
        return f"(\\{params}. {_pterm(term.body, ind)})"
    if isinstance(term, G.App):
        args = ", ".join(_pterm(a, ind) for a in term.args)
        return f"{_pterm_atom(term.fn, ind)}({args})"
    if isinstance(term, G.TyLam):
        clauses = [_ptype(r) for r in term.requirements]
        clauses += [
            f"{_ptype(s.left)} == {_ptype(s.right)}" for s in term.same_types
        ]
        where = f" where {', '.join(clauses)}" if clauses else ""
        return f"(/\\{', '.join(term.vars)}{where}. {_pterm(term.body, ind)})"
    if isinstance(term, G.TyApp):
        args = ", ".join(_ptype(a) for a in term.args)
        return f"{_pterm_atom(term.fn, ind)}[{args}]"
    if isinstance(term, G.Let):
        return (
            f"let {term.name} = {_pterm(term.bound, ind + 1)} in\n"
            f"{pad}{_pterm(term.body, ind)}"
        )
    if isinstance(term, G.Tuple_):
        items = ", ".join(_pterm(i, ind) for i in term.items)
        return f"({items},)" if len(term.items) == 1 else f"({items})"
    if isinstance(term, G.Nth):
        return f"(nth {_pterm_atom(term.tuple_, ind)} {term.index})"
    if isinstance(term, G.If):
        return (
            f"if {_pterm(term.cond, ind)} "
            f"then {_pterm(term.then, ind)} "
            f"else {_pterm(term.else_, ind)}"
        )
    if isinstance(term, G.Fix):
        return f"fix {_pterm_atom(term.fn, ind)}"
    if isinstance(term, G.ConceptExpr):
        return f"{_pconcept(term.concept, ind)} in\n{pad}{_pterm(term.body, ind)}"
    if isinstance(term, G.ModelExpr):
        return f"{_pmodel(term.model, ind)} in\n{pad}{_pterm(term.body, ind)}"
    if isinstance(term, G.MemberAccess):
        args = ", ".join(_ptype(a) for a in term.args)
        return f"{term.concept}<{args}>.{term.member}"
    if isinstance(term, G.TypeAlias):
        return (
            f"type {term.name} = {_ptype(term.aliased)} in\n"
            f"{pad}{_pterm(term.body, ind)}"
        )
    ext = _pterm_extension(term, ind)
    if ext is not None:
        return ext
    raise AssertionError(f"unknown F_G term node: {term!r}")


def _pterm_extension(term: G.Term, ind: int):
    """Render the section 6 extension forms (late import avoids a cycle)."""
    from repro.extensions import ast as X

    pad = "  " * ind
    if isinstance(term, X.NamedModelExpr):
        model = _pmodel(term.model, ind)
        header = model.replace("model ", f"model {term.name} = ", 1)
        return f"{header} in\n{pad}{_pterm(term.body, ind)}"
    if isinstance(term, X.UseModelsExpr):
        return f"use {', '.join(term.names)} in\n{pad}{_pterm(term.body, ind)}"
    if isinstance(term, X.ParamModelExpr):
        clauses = [_ptype(r) for r in term.requirements]
        clauses += [
            f"{_ptype(s.left)} == {_ptype(s.right)}" for s in term.same_types
        ]
        where = f" where {', '.join(clauses)}" if clauses else ""
        model = _pmodel(term.model, ind)
        header = model.replace(
            "model ", f"model forall {', '.join(term.vars)}{where}. ", 1
        )
        return f"{header} in\n{pad}{_pterm(term.body, ind)}"
    if isinstance(term, X.OverloadExpr):
        inner = "  " * (ind + 1)
        alts = "\n".join(
            f"{inner}{_pterm(alt, ind + 1)};" for alt in term.alternatives
        )
        return (
            f"overload {term.name} {{\n{alts}\n{pad}}} in\n"
            f"{pad}{_pterm(term.body, ind)}"
        )
    return None


def _pterm_atom(term: G.Term, ind: int) -> str:
    if isinstance(
        term, (G.Var, G.IntLit, G.BoolLit, G.Tuple_, G.Nth, G.MemberAccess)
    ):
        return _pterm(term, ind)
    if isinstance(term, (G.App, G.TyApp)):
        return _pterm(term, ind)
    return f"({_pterm(term, ind)})"


def _pconcept(cdef: G.ConceptDef, ind: int) -> str:
    pad = "  " * (ind + 1)
    lines = [f"concept {cdef.name}<{', '.join(cdef.params)}> {{"]
    if cdef.assoc_types:
        lines.append(f"{pad}types {', '.join(cdef.assoc_types)};")
    for req in cdef.refines:
        lines.append(f"{pad}refines {_ptype(req)};")
    for req in cdef.nested:
        lines.append(f"{pad}require {_ptype(req)};")
    defaults = dict(cdef.defaults)
    for name, t in cdef.members:
        if name in defaults:
            lines.append(
                f"{pad}{name} : {_ptype(t)} = "
                f"{_pterm(defaults[name], ind + 1)};"
            )
        else:
            lines.append(f"{pad}{name} : {_ptype(t)};")
    for same in cdef.same_types:
        lines.append(f"{pad}require {_ptype(same.left)} == {_ptype(same.right)};")
    lines.append("  " * ind + "}")
    return "\n".join(lines)


def _pmodel(mdef: G.ModelDef, ind: int) -> str:
    pad = "  " * (ind + 1)
    args = ", ".join(_ptype(a) for a in mdef.args)
    lines = [f"model {mdef.concept}<{args}> {{"]
    for name, t in mdef.type_assignments:
        lines.append(f"{pad}types {name} = {_ptype(t)};")
    for name, term in mdef.member_defs:
        lines.append(f"{pad}{name} = {_pterm(term, ind + 1)};")
    lines.append("  " * ind + "}")
    return "\n".join(lines)
