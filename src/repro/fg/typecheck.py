"""Typechecking and translation of F_G to System F (paper Figures 8/9/12/13).

The checker is *type-directed translation*: ``check(e, env)`` returns the
F_G type of ``e`` together with its System F image, exactly as the paper's
judgement ``Gamma |- e : t ~> f``.  Dictionaries are nested tuples (Fig. 7);
where clauses become extra type parameters (one per associated-type slot)
plus dictionary parameters; member accesses become ``nth`` chains; type
equality is the congruence closure of the equalities in scope.

Theorems 1 and 2 (translation preserves well-typing) are made executable by
:func:`verify_translation`, which re-checks the produced System F term with
the independent checker in :mod:`repro.systemf.typecheck` and compares the
result against the translated F_G type.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.diagnostics.errors import Diagnostic, TypeError_
from repro.diagnostics.limits import (
    Budget,
    Limits,
    ResourceLimitError,
    resource_scope,
)
from repro.diagnostics.reporter import DiagnosticReport, DiagnosticReporter
from repro.fg import ast as G
from repro.fg.concepts import (
    assoc_slots,
    check_concept_arity,
    concept_def,
    find_member,
    members_with_paths,
    qualifying_subst,
)
from repro.fg.env import Env, ModelInfo, SolverCache
from repro.observability import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    format_span,
)
from repro.observability.explain import ACCEPTED
from repro.systemf import ast as F
from repro.systemf import typecheck as sf_typecheck


class _ErrorLimit(Exception):
    """Internal control flow: the reporter's error cap was reached."""


def _contains_error(t: G.FGType) -> bool:
    """True when the recovery poison occurs anywhere inside ``t``."""
    if isinstance(t, G.ErrorType):
        return True
    if isinstance(t, (G.TVar, G.TBase)):
        return False
    if isinstance(t, G.TList):
        return _contains_error(t.elem)
    if isinstance(t, G.TFn):
        return any(map(_contains_error, t.params)) or _contains_error(t.result)
    if isinstance(t, G.TTuple):
        return any(map(_contains_error, t.items))
    if isinstance(t, (G.TAssoc, G.ConceptReq)):
        return any(map(_contains_error, t.args))
    if isinstance(t, G.TForall):
        return (
            _contains_error(t.body)
            or any(map(_contains_error, t.requirements))
            or any(
                _contains_error(s.left) or _contains_error(s.right)
                for s in t.same_types
            )
        )
    return False


def _poison_term(span=None) -> F.Term:
    """The System F placeholder standing in for an unchecked definition."""
    return F.Tuple_(span=span, items=())


@dataclass
class WhereResult:
    """Outcome of elaborating a where clause (the paper's ``bw``)."""

    env: Env
    assoc_vars: Tuple[str, ...]
    dict_params: Tuple[Tuple[str, F.Type], ...]
    fresh_to_assoc: Dict[str, G.FGType]


class Checker:
    """A single typechecking/translation session.

    Holds the congruence-solver cache and the fresh-name supply; stateless
    with respect to user programs, so one instance can check many terms.
    """

    #: Concept-member defaults are a section 6 extension; the core checker
    #: rejects them so that core programs stay within the paper's Figure 13.
    ALLOW_DEFAULTS = False

    def __init__(
        self,
        use_solver_cache: bool = True,
        reporter: Optional[DiagnosticReporter] = None,
        limits: Optional[Limits] = None,
        instrumentation: Optional[Instrumentation] = None,
    ):
        # ``use_solver_cache=False`` rebuilds the congruence solver on every
        # query — only useful for the ablation benchmark quantifying what
        # the cache buys.
        #
        # ``reporter`` switches on multi-error *recovery*: definition-level
        # type errors are reported and replaced by the ErrorType poison
        # instead of aborting.  ``limits`` configures the resource budgets;
        # the defaults guard against pathologically deep programs.
        #
        # ``instrumentation`` switches on observability (spans, metrics,
        # the model-resolution explain log); the default is the shared
        # null bundle and every hot site guards on ``_observing``, so the
        # disabled checker does no extra work beyond a flag test.
        self.limits = limits if limits is not None else Limits()
        self._budget = Budget(self.limits)
        self._reporter = reporter
        obs = (
            instrumentation if instrumentation is not None
            else NULL_INSTRUMENTATION
        )
        self._tracer = obs.tracer
        self._metrics = obs.metrics
        self._explain = obs.explain
        self._observing = (
            obs.tracer.enabled
            or obs.metrics is not None
            or obs.explain is not None
        )
        self._solvers = (
            SolverCache(
                self.limits.max_congruence_nodes,
                metrics=self._metrics,
                tracer=self._tracer if self._tracer.enabled else None,
            )
            if use_solver_cache
            else None
        )
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # Type equality and representatives
    # ------------------------------------------------------------------

    def solver(self, env: Env):
        if self._solvers is None:
            from repro.fg.congruence import solver_for_equalities

            return solver_for_equalities(
                env.equalities, self.limits.max_congruence_nodes,
                metrics=self._metrics,
                tracer=self._tracer if self._tracer.enabled else None,
            )
        return self._solvers.solver(env)

    def rep(self, t: G.FGType, env: Env) -> G.FGType:
        """The canonical representative of ``t`` under ``env``'s equalities."""
        if isinstance(t, G.ErrorType):
            return t
        return self.solver(env).representative(t)

    def equal(self, a: G.FGType, b: G.FGType, env: Env) -> bool:
        """Decide ``env |- a = b`` (congruence of the equalities in scope).

        The recovery poison absorbs comparison: a type containing
        :class:`~repro.fg.ast.ErrorType` equals everything, so follow-on
        checks of an already-reported failure stay silent.
        """
        if _contains_error(a) or _contains_error(b):
            return True
        solver = self.solver(env)
        if solver.equal(a, b):
            return True
        # A poisoned equivalence class (e.g. a recovered type alias merged
        # with ERROR) absorbs comparison like a syntactic poison.
        return solver.class_contains_error(a) or solver.class_contains_error(b)

    def _fresh(self, base: str) -> str:
        return f"{base}%{next(self._counter)}"

    def _fresh_dict(self, concept: str) -> str:
        return f"{concept}_dict%{next(self._counter)}"

    # ------------------------------------------------------------------
    # Well-formedness of types (Figures 8 and 12, left-hand premises)
    # ------------------------------------------------------------------

    def check_type_wf(
        self, t: G.FGType, env: Env, span=None, in_decl: bool = False
    ) -> None:
        """Check that ``t`` is well-formed in ``env``.

        ``in_decl`` relaxes the associated-type rule for use inside concept
        declarations, where member types may reference associated types of
        refined concepts before any model exists.
        """
        if isinstance(t, G.ErrorType):
            return  # poison: the failure was already reported
        if isinstance(t, G.TVar):
            if not env.has_tyvar(t.name):
                raise TypeError_(f"unbound type variable '{t.name}'", span)
            return
        if isinstance(t, G.TBase):
            if t.name not in ("int", "bool"):
                raise TypeError_(f"unknown base type '{t.name}'", span)
            return
        if isinstance(t, G.TList):
            self.check_type_wf(t.elem, env, span, in_decl)
            return
        if isinstance(t, G.TFn):
            for p in t.params:
                self.check_type_wf(p, env, span, in_decl)
            self.check_type_wf(t.result, env, span, in_decl)
            return
        if isinstance(t, G.TTuple):
            for item in t.items:
                self.check_type_wf(item, env, span, in_decl)
            return
        if isinstance(t, G.TAssoc):
            cdef = concept_def(env, t.concept, span)
            check_concept_arity(cdef, t.args, span)
            if t.member not in cdef.assoc_types:
                raise TypeError_(
                    f"concept {t.concept} has no associated type "
                    f"'{t.member}'",
                    span,
                )
            for a in t.args:
                self.check_type_wf(a, env, span, in_decl)
            if not in_decl and self.find_model(
                t.concept, t.args, env, span
            ) is None:
                raise TypeError_(
                    f"no model of {t.concept}<"
                    f"{', '.join(map(str, t.args))}> in scope for associated "
                    f"type '{t.member}'",
                    span,
                )
            return
        if isinstance(t, G.TForall):
            if len(set(t.vars)) != len(t.vars):
                raise TypeError_("duplicate type parameter", span)
            inner = env.bind_tyvars(t.vars)
            for req in t.requirements:
                cdef = concept_def(inner, req.concept, span)
                check_concept_arity(cdef, req.args, span)
                for a in req.args:
                    self.check_type_wf(a, inner, span, in_decl=True)
            for same in t.same_types:
                self.check_type_wf(same.left, inner, span, in_decl=True)
                self.check_type_wf(same.right, inner, span, in_decl=True)
            self.check_type_wf(t.body, inner, span, in_decl=True)
            return
        if isinstance(t, G.ConceptReq):
            raise TypeError_(
                f"concept requirement {t} used where a type is expected", span
            )
        raise AssertionError(f"unknown F_G type node: {t!r}")

    # ------------------------------------------------------------------
    # Model lookup
    # ------------------------------------------------------------------

    def find_model(
        self, concept: str, args: Tuple[G.FGType, ...], env: Env, span=None
    ) -> Optional[ModelInfo]:
        """The innermost model of ``concept<args>`` modulo type equality.

        ``span`` (optional) only feeds the explain log's source locations;
        it never affects the result.
        """
        if self._observing:
            return self._find_model_observed(concept, args, env, span)
        for info in env.models_of(concept):
            if len(info.args) != len(args):
                continue
            if all(self.equal(a, b, env) for a, b in zip(info.args, args)):
                return info
        return None

    def _find_model_observed(
        self, concept: str, args: Tuple[G.FGType, ...], env: Env, span=None
    ) -> Optional[ModelInfo]:
        """The instrumented twin of :meth:`find_model` (same result, plus
        spans, metrics, and the explain decision log)."""
        tracer, metrics, explain = self._tracer, self._metrics, self._explain
        candidates = env.models_of(concept)
        handle = (
            tracer.span(
                "typecheck.model_lookup",
                concept=concept, candidates=len(candidates),
            )
            if tracer.enabled else None
        )
        if metrics is not None:
            metrics.inc("model_lookup.attempts")
        if explain is not None:
            explain.begin(
                concept,
                ", ".join(map(str, args)),
                scope_size=len(candidates),
                equalities_in_scope=len(env.equalities),
                location=format_span(span),
            )
        found = None
        scanned = 0
        try:
            for index, info in enumerate(candidates):
                scanned += 1
                if len(info.args) != len(args):
                    if explain is not None:
                        explain.candidate(
                            index, ", ".join(map(str, info.args)),
                            f"arity mismatch: candidate takes "
                            f"{len(info.args)} type argument(s), lookup "
                            f"supplies {len(args)}",
                        )
                    continue
                rejection = None
                for position, (have, want) in enumerate(
                    zip(info.args, args)
                ):
                    if not self.equal(have, want, env):
                        rejection = (
                            f"argument {position + 1}: "
                            f"{self.rep(want, env)} is not equal to "
                            f"{self.rep(have, env)} under the equalities "
                            "in scope"
                        )
                        break
                if rejection is None:
                    found = info
                    if explain is not None:
                        explain.candidate(
                            index, ", ".join(map(str, info.args)), ACCEPTED
                        )
                    break
                if explain is not None:
                    explain.candidate(
                        index, ", ".join(map(str, info.args)), rejection
                    )
        finally:
            if metrics is not None:
                metrics.inc("model_lookup.candidates", scanned)
                metrics.inc(
                    "model_lookup.hits" if found is not None
                    else "model_lookup.misses"
                )
                if scanned:
                    metrics.observe("model_lookup.scope_depth", scanned)
            if explain is not None:
                explain.finish(found is not None)
            if handle is not None:
                handle.__exit__(None, None, None)
        return found

    def require_model(
        self, concept: str, args: Tuple[G.FGType, ...], env: Env, span=None
    ) -> ModelInfo:
        info = self.find_model(concept, args, env, span)
        if info is None:
            raise TypeError_(
                f"no model of {concept}<{', '.join(map(str, args))}> in scope",
                span,
            )
        return info

    def dict_expr(self, info: ModelInfo) -> F.Term:
        """The System F expression for a model's dictionary: ``nth ... d``."""
        if info.prebuilt is not None:
            return info.prebuilt  # type: ignore[return-value]
        expr: F.Term = F.Var(name=info.dict_var)
        for index in info.path:
            expr = F.Nth(tuple_=expr, index=index)
        return expr

    # ------------------------------------------------------------------
    # Dictionary types (the delta of the paper's bm)
    # ------------------------------------------------------------------

    def dict_type_sf(
        self, concept: str, args: Tuple[G.FGType, ...], env: Env, span=None
    ) -> F.TTuple:
        """The System F tuple type of a dictionary for ``concept<args>``.

        Components: the refined concepts' dictionary types (in declaration
        order), then the member types, qualified at ``args`` and translated —
        so associated types appear as their current representatives (fresh
        type variables inside a generic function; concrete assignments at a
        concrete model).
        """
        cdef = concept_def(env, concept, span)
        check_concept_arity(cdef, args, span)
        subst = qualifying_subst(cdef, args)
        items: List[F.Type] = []
        for req in cdef.refines + cdef.nested:
            refined_args = tuple(G.substitute(a, subst) for a in req.args)
            items.append(self.dict_type_sf(req.concept, refined_args, env, span))
        for _, member_type in cdef.members:
            items.append(
                self.translate_type(G.substitute(member_type, subst), env, span)
            )
        return F.TTuple(tuple(items))

    # ------------------------------------------------------------------
    # Where-clause elaboration (the paper's bw/bm)
    # ------------------------------------------------------------------

    def process_where(
        self,
        vars_: Tuple[str, ...],
        requirements: Tuple[G.ConceptReq, ...],
        same_types: Tuple[G.SameType, ...],
        env: Env,
        span=None,
    ) -> WhereResult:
        """Bring a where clause into scope (paper's ``bw``).

        Binds the type parameters; for each requirement, registers proxy
        models for the concept and its refinement closure (de-duplicated
        across the whole clause), mints one fresh type variable per
        associated-type slot with the equality ``fresh = c<taus>.s``, and
        collects each concept's same-type requirements.  Explicit same-type
        constraints are merged before dictionary types are computed, so
        representatives already reflect them (the paper's ``merge`` example:
        both iterator dictionaries mention ``elt1``).
        """
        if self._observing:
            if self._metrics is not None:
                self._metrics.inc("typecheck.where_clauses")
            with self._tracer.span(
                "typecheck.where_clause",
                vars=", ".join(vars_), requirements=len(requirements),
                same_types=len(same_types),
            ):
                return self._process_where(
                    vars_, requirements, same_types, env, span
                )
        return self._process_where(vars_, requirements, same_types, env, span)

    def _process_where(
        self,
        vars_: Tuple[str, ...],
        requirements: Tuple[G.ConceptReq, ...],
        same_types: Tuple[G.SameType, ...],
        env: Env,
        span=None,
    ) -> WhereResult:
        if len(set(vars_)) != len(vars_):
            raise TypeError_("duplicate type parameter in where clause", span)
        clash = set(vars_) & env.tyvars
        if clash:
            raise TypeError_(
                f"type parameter(s) shadow enclosing scope: "
                f"{', '.join(sorted(clash))}",
                span,
            )
        free_clash = set(vars_) & env.free_type_vars()
        if free_clash:
            raise TypeError_(
                f"type parameter(s) not fresh for the environment: "
                f"{', '.join(sorted(free_clash))}",
                span,
            )
        env = env.bind_tyvars(vars_)
        seen = set()
        assoc_vars: List[str] = []
        fresh_to_assoc: Dict[str, G.FGType] = {}
        req_dict_vars: List[str] = []

        def register(concept: str, args: Tuple[G.FGType, ...],
                     dict_var: str, path: Tuple[int, ...]) -> None:
            nonlocal env
            key = (concept, args)
            if key in seen:
                return
            seen.add(key)
            if self._explain is not None:
                what = (
                    "requirement" if not path
                    else f"refinement (dictionary path {path})"
                )
                self._explain.refinement(
                    f"where-clause {what}: proxy model "
                    f"{concept}<{', '.join(map(str, args))}> registered"
                )
            cdef = concept_def(env, concept, span)
            check_concept_arity(cdef, args, span)
            assoc_map = {
                s: G.TAssoc(concept, args, s) for s in cdef.assoc_types
            }
            equalities = []
            fresh_names = []
            for s in cdef.assoc_types:
                fresh = self._fresh(s)
                fresh_names.append(fresh)
                assoc_vars.append(fresh)
                fresh_to_assoc[fresh] = G.TAssoc(concept, args, s)
                equalities.append((G.TVar(fresh), G.TAssoc(concept, args, s)))
            subst = qualifying_subst(cdef, args)
            for same in cdef.same_types:
                equalities.append(
                    (G.substitute(same.left, subst),
                     G.substitute(same.right, subst))
                )
            env = env.bind_tyvars(fresh_names)
            env = env.add_model(
                ModelInfo(concept, args, dict_var, path, assoc_map)
            )
            env = env.add_equalities(equalities)
            for i, req in enumerate(cdef.refines + cdef.nested):
                refined_args = tuple(G.substitute(a, subst) for a in req.args)
                register(req.concept, refined_args, dict_var, path + (i,))

        for req in requirements:
            cdef = concept_def(env, req.concept, span)
            check_concept_arity(cdef, req.args, span)
            for a in req.args:
                self.check_type_wf(a, env, span)
            dict_var = self._fresh_dict(req.concept)
            req_dict_vars.append(dict_var)
            register(req.concept, req.args, dict_var, ())

        for same in same_types:
            self.check_type_wf(same.left, env, span)
            self.check_type_wf(same.right, env, span)
            env = env.add_equality(same.left, same.right)

        dict_params = tuple(
            (dict_var, self.dict_type_sf(req.concept, req.args, env, span))
            for dict_var, req in zip(req_dict_vars, requirements)
        )
        return WhereResult(env, tuple(assoc_vars), dict_params, fresh_to_assoc)

    # ------------------------------------------------------------------
    # Type translation (Figures 8 and 12)
    # ------------------------------------------------------------------

    def translate_type(self, t: G.FGType, env: Env, span=None) -> F.Type:
        """Translate an F_G type to System F, via class representatives."""
        t = self.rep(t, env)
        return self._translate_rep(t, env, span)

    def _translate_rep(self, t: G.FGType, env: Env, span=None) -> F.Type:
        if isinstance(t, G.ErrorType):
            # Recovery only: the program already failed; translate the
            # poison to unit so downstream structure stays well-formed.
            return F.TTuple(())
        if isinstance(t, G.TVar):
            if not env.has_tyvar(t.name):
                raise TypeError_(f"unbound type variable '{t.name}'", span)
            return F.TVar(t.name)
        if isinstance(t, G.TBase):
            return F.TBase(t.name)
        if isinstance(t, G.TList):
            return F.TList(self.translate_type(t.elem, env, span))
        if isinstance(t, G.TFn):
            return F.TFn(
                tuple(self.translate_type(p, env, span) for p in t.params),
                self.translate_type(t.result, env, span),
            )
        if isinstance(t, G.TTuple):
            return F.TTuple(
                tuple(self.translate_type(i, env, span) for i in t.items)
            )
        if isinstance(t, G.TAssoc):
            raise TypeError_(
                f"associated type {t} cannot be resolved here "
                "(no model or constraint determines it)",
                span,
            )
        if isinstance(t, G.TForall):
            where = self.process_where(
                t.vars, t.requirements, t.same_types, env, span
            )
            body = self.translate_type(t.body, where.env, span)
            if t.requirements:
                body = F.TFn(tuple(dt for _, dt in where.dict_params), body)
            return F.TForall(tuple(t.vars) + where.assoc_vars, body)
        raise TypeError_(f"{t} is not a translatable type", span)

    # ------------------------------------------------------------------
    # Terms (Figures 9 and 13)
    # ------------------------------------------------------------------

    def check(self, term: G.Term, env: Env) -> Tuple[G.FGType, F.Term]:
        """``Gamma |- e : t ~> f`` — type and System F translation of ``term``."""
        method_name = self._DISPATCH.get(type(term).__name__)
        if method_name is None:
            raise TypeError_(
                f"term form '{type(term).__name__}' is not part of core "
                "F_G (enable repro.extensions to use it)",
                term.span,
            )
        self._budget.enter_depth(term.span)
        try:
            return getattr(self, method_name)(term, env)
        finally:
            self._budget.leave_depth()

    def _check_recover(self, term: G.Term, env: Env) -> Tuple[G.FGType, F.Term]:
        """Check a definition; in recovery mode, poison it on type error.

        This is the checker's resynchronization point: with a reporter
        installed, a :class:`TypeError_` inside a binding or declaration is
        recorded and the definition's type becomes the absorbing
        :class:`~repro.fg.ast.ErrorType`, so checking continues into the
        rest of the program.  Resource exhaustion is *not* recovered — once
        a budget trips, the run stops.
        """
        if self._reporter is None:
            return self.check(term, env)
        try:
            return self.check(term, env)
        except TypeError_ as err:
            self._reporter.error(err)
            if self._reporter.at_limit:
                raise _ErrorLimit() from None
            return G.ERROR, _poison_term(term.span)

    # -- VAR / literals ---------------------------------------------------

    def _check_var(self, term: G.Var, env: Env):
        t = env.lookup_var(term.name)
        if t is None:
            raise TypeError_(f"unbound variable '{term.name}'", term.span)
        return t, F.Var(span=term.span, name=term.name)

    def _check_int(self, term: G.IntLit, env: Env):
        return G.INT, F.IntLit(span=term.span, value=term.value)

    def _check_bool(self, term: G.BoolLit, env: Env):
        return G.BOOL, F.BoolLit(span=term.span, value=term.value)

    # -- ABS / APP ----------------------------------------------------------

    def _check_lam(self, term: G.Lam, env: Env):
        inner = env
        sf_params = []
        for name, ptype in term.params:
            self.check_type_wf(ptype, env, term.span)
            sf_params.append((name, self.translate_type(ptype, env, term.span)))
            inner = inner.bind_var(name, ptype)
        body_type, body_sf = self.check(term.body, inner)
        return (
            G.TFn(tuple(pt for _, pt in term.params), body_type),
            F.Lam(span=term.span, params=tuple(sf_params), body=body_sf),
        )

    def _check_app(self, term: G.App, env: Env):
        fn_type, fn_sf = self.check(term.fn, env)
        fn_type = self.rep(fn_type, env)
        if isinstance(fn_type, G.ErrorType):
            # Poisoned function: still check the arguments (they may hold
            # independent errors) but absorb the application itself.
            for arg in term.args:
                self.check(arg, env)
            return G.ERROR, _poison_term(term.span)
        if not isinstance(fn_type, G.TFn):
            raise TypeError_(
                f"cannot apply non-function of type {fn_type}", term.span
            )
        if len(fn_type.params) != len(term.args):
            raise TypeError_(
                f"arity mismatch: function expects {len(fn_type.params)} "
                f"argument(s), got {len(term.args)}",
                term.span,
            )
        sf_args = []
        for i, (arg, expected) in enumerate(zip(term.args, fn_type.params)):
            actual, arg_sf = self.check(arg, env)
            if not self.equal(actual, expected, env):
                raise TypeError_(
                    f"argument {i + 1} has type {self.rep(actual, env)}, "
                    f"expected {self.rep(expected, env)}",
                    arg.span or term.span,
                )
            sf_args.append(arg_sf)
        return fn_type.result, F.App(
            span=term.span, fn=fn_sf, args=tuple(sf_args)
        )

    # -- TABS / TAPP ----------------------------------------------------------

    def _check_tylam(self, term: G.TyLam, env: Env):
        if not term.vars:
            raise TypeError_("type abstraction needs parameters", term.span)
        where = self.process_where(
            term.vars, term.requirements, term.same_types, env, term.span
        )
        body_type, body_sf = self.check(term.body, where.env)
        # Re-qualify: fresh associated-type variables must not escape into
        # the forall type, whose only binders are the declared parameters.
        requalify = {
            fresh: assoc for fresh, assoc in where.fresh_to_assoc.items()
        }
        result_type = G.TForall(
            term.vars,
            term.requirements,
            term.same_types,
            G.substitute(body_type, requalify),
        )
        if term.requirements:
            body_sf = F.Lam(
                span=term.span, params=where.dict_params, body=body_sf
            )
        sf = F.TyLam(
            span=term.span,
            vars=tuple(term.vars) + where.assoc_vars,
            body=body_sf,
        )
        return result_type, sf

    def _check_tyapp(self, term: G.TyApp, env: Env):
        fn_type, fn_sf = self.check(term.fn, env)
        fn_type = self.rep(fn_type, env)
        if isinstance(fn_type, G.ErrorType):
            for a in term.args:
                self.check_type_wf(a, env, term.span)
            return G.ERROR, _poison_term(term.span)
        if not isinstance(fn_type, G.TForall):
            raise TypeError_(
                f"cannot instantiate non-generic term of type {fn_type}",
                term.span,
            )
        if len(fn_type.vars) != len(term.args):
            raise TypeError_(
                f"expected {len(fn_type.vars)} type argument(s), "
                f"got {len(term.args)}",
                term.span,
            )
        for a in term.args:
            self.check_type_wf(a, env, term.span)
        if self._metrics is not None:
            self._metrics.inc("typecheck.instantiations")
            self._metrics.inc("typecheck.substitutions", len(fn_type.vars))
        subst = dict(zip(fn_type.vars, term.args))
        sf_tyargs = [self.translate_type(a, env, term.span) for a in term.args]
        # One extra type argument per associated-type slot, in the exact
        # order the abstraction's translation minted fresh variables.
        slots = assoc_slots(env, fn_type.requirements, subst)
        for slot in slots:
            info = self.require_model(
                slot.concept, slot.actual_args, env, term.span
            )
            assigned = info.assoc.get(slot.assoc_name)
            if assigned is None:
                raise TypeError_(
                    f"model of {slot.concept} lacks associated type "
                    f"'{slot.assoc_name}'",
                    term.span,
                )
            sf_tyargs.append(self.translate_type(assigned, env, term.span))
        # Requirement dictionaries.
        dict_args = []
        for req in fn_type.requirements:
            actual = tuple(G.substitute(a, subst) for a in req.args)
            info = self.require_model(req.concept, actual, env, term.span)
            dict_args.append(self.dict_expr(info))
        # Same-type constraints must hold at the instantiation (TAPP premise).
        for same in fn_type.same_types:
            left = G.substitute(same.left, subst)
            right = G.substitute(same.right, subst)
            holds = self.equal(left, right, env)
            if self._explain is not None:
                self._explain.note(
                    f"same-type constraint consulted at instantiation: "
                    f"{left} == {right} — "
                    f"{'holds' if holds else 'VIOLATED'}"
                )
            if not holds:
                raise TypeError_(
                    f"same-type constraint violated at instantiation: "
                    f"{left} == {right} does not hold "
                    f"(left is {self.rep(left, env)}, "
                    f"right is {self.rep(right, env)})",
                    term.span,
                )
        result_type = self.rep(G.substitute(fn_type.body, subst), env)
        sf: F.Term = F.TyApp(span=term.span, fn=fn_sf, args=tuple(sf_tyargs))
        if fn_type.requirements:
            sf = F.App(span=term.span, fn=sf, args=tuple(dict_args))
        return result_type, sf

    # -- LET / tuples / control ---------------------------------------------

    def _check_let(self, term: G.Let, env: Env):
        # A ``let`` bound is a recovery boundary: in reporter mode a type
        # error in the bound poisons the binding and checking continues
        # with the body, so independent errors in later bindings surface.
        if self._observing:
            if self._metrics is not None:
                self._metrics.inc("typecheck.bindings")
            if self._tracer.enabled:
                with self._tracer.span("check.binding", name=term.name):
                    bound_type, bound_sf = self._check_recover(
                        term.bound, env
                    )
            else:
                bound_type, bound_sf = self._check_recover(term.bound, env)
        else:
            bound_type, bound_sf = self._check_recover(term.bound, env)
        body_type, body_sf = self.check(
            term.body, env.bind_var(term.name, bound_type)
        )
        return body_type, F.Let(
            span=term.span, name=term.name, bound=bound_sf, body=body_sf
        )

    def _check_tuple(self, term: G.Tuple_, env: Env):
        types = []
        terms = []
        for item in term.items:
            t, sf = self.check(item, env)
            types.append(t)
            terms.append(sf)
        return G.TTuple(tuple(types)), F.Tuple_(
            span=term.span, items=tuple(terms)
        )

    def _check_nth(self, term: G.Nth, env: Env):
        tuple_type, tuple_sf = self.check(term.tuple_, env)
        tuple_type = self.rep(tuple_type, env)
        if isinstance(tuple_type, G.ErrorType):
            return G.ERROR, _poison_term(term.span)
        if not isinstance(tuple_type, G.TTuple):
            raise TypeError_(
                f"nth applied to non-tuple of type {tuple_type}", term.span
            )
        if not 0 <= term.index < len(tuple_type.items):
            raise TypeError_(
                f"tuple index {term.index} out of range", term.span
            )
        return tuple_type.items[term.index], F.Nth(
            span=term.span, tuple_=tuple_sf, index=term.index
        )

    def _check_if(self, term: G.If, env: Env):
        cond_type, cond_sf = self.check(term.cond, env)
        if not self.equal(cond_type, G.BOOL, env):
            raise TypeError_(
                f"if condition has type {self.rep(cond_type, env)}, "
                "expected bool",
                term.span,
            )
        then_type, then_sf = self.check(term.then, env)
        else_type, else_sf = self.check(term.else_, env)
        if not self.equal(then_type, else_type, env):
            raise TypeError_(
                f"if branches disagree: {self.rep(then_type, env)} vs "
                f"{self.rep(else_type, env)}",
                term.span,
            )
        return then_type, F.If(
            span=term.span, cond=cond_sf, then=then_sf, else_=else_sf
        )

    def _check_fix(self, term: G.Fix, env: Env):
        fn_type, fn_sf = self.check(term.fn, env)
        fn_type = self.rep(fn_type, env)
        if isinstance(fn_type, G.ErrorType):
            return G.ERROR, _poison_term(term.span)
        if (
            not isinstance(fn_type, G.TFn)
            or len(fn_type.params) != 1
            or not self.equal(fn_type.params[0], fn_type.result, env)
        ):
            raise TypeError_(f"fix expects fn(A) -> A, got {fn_type}", term.span)
        result = self.rep(fn_type.result, env)
        if not isinstance(result, G.TFn):
            raise TypeError_(
                f"fix is restricted to function-typed fixpoints (got {result})",
                term.span,
            )
        return result, F.Fix(span=term.span, fn=fn_sf)

    # -- CPT: concept declaration (Figures 9 and 13) ---------------------------

    def _check_concept(self, term: G.ConceptExpr, env: Env):
        cdef = term.concept
        if self._tracer.enabled:
            with self._tracer.span("check.concept", name=cdef.name):
                return self._check_concept_inner(term, env)
        return self._check_concept_inner(term, env)

    def _check_concept_inner(self, term: G.ConceptExpr, env: Env):
        cdef = term.concept
        if self._reporter is not None:
            try:
                self._validate_concept(cdef, env, term.span)
            except TypeError_ as err:
                self._reporter.error(err)
                if self._reporter.at_limit:
                    raise _ErrorLimit() from None
                # Proceed with the (possibly ill-formed) declaration in
                # scope so uses of the concept don't cascade into
                # unknown-concept errors.
        else:
            self._validate_concept(cdef, env, term.span)
        inner = env.add_concept(cdef)
        body_type, body_sf = self.check(term.body, inner)
        body_type = self.rep(body_type, inner)
        if cdef.name in G.concept_names(body_type):
            raise TypeError_(
                f"concept '{cdef.name}' escapes its scope in the result "
                f"type {body_type}",
                term.span,
            )
        return body_type, body_sf

    def _validate_concept(self, cdef: G.ConceptDef, env: Env, span) -> None:
        if env.lookup_concept(cdef.name) is not None:
            # Lexical shadowing of concepts would make model lookups for the
            # outer concept ambiguous; reject for clarity.
            raise TypeError_(
                f"concept '{cdef.name}' is already defined in this scope",
                span,
            )
        if len(set(cdef.params)) != len(cdef.params):
            raise TypeError_("duplicate concept parameter", span)
        if len(set(cdef.assoc_types)) != len(cdef.assoc_types):
            raise TypeError_("duplicate associated-type name", span)
        if set(cdef.params) & set(cdef.assoc_types):
            raise TypeError_(
                "associated-type name clashes with concept parameter",
                span,
            )
        names = cdef.member_names()
        if len(set(names)) != len(names):
            raise TypeError_("duplicate concept member name", span)
        if cdef.defaults:
            if not self.ALLOW_DEFAULTS:
                raise TypeError_(
                    "concept-member defaults require repro.extensions",
                    span,
                )
            default_names = [n for n, _ in cdef.defaults]
            if len(set(default_names)) != len(default_names):
                raise TypeError_("duplicate member default", span)
            unknown = set(default_names) - set(names)
            if unknown:
                raise TypeError_(
                    f"default(s) for unknown member(s): "
                    f"{', '.join(sorted(unknown))}",
                    span,
                )
        decl_env = env.bind_tyvars(cdef.params + cdef.assoc_types)
        for req in cdef.refines + cdef.nested:
            refined = concept_def(env, req.concept, span)
            check_concept_arity(refined, req.args, span)
            for a in req.args:
                self.check_type_wf(a, decl_env, span, in_decl=True)
        for _, member_type in cdef.members:
            self.check_type_wf(member_type, decl_env, span, in_decl=True)
        for same in cdef.same_types:
            self.check_type_wf(same.left, decl_env, span, in_decl=True)
            self.check_type_wf(same.right, decl_env, span, in_decl=True)

    # -- MDL: model declaration (Figures 9 and 13) ------------------------------

    def _check_model(self, term: G.ModelExpr, env: Env):
        if self._tracer.enabled:
            with self._tracer.span(
                "check.model", concept=term.model.concept
            ):
                return self._check_model_inner(term, env)
        return self._check_model_inner(term, env)

    def _check_model_inner(self, term: G.ModelExpr, env: Env):
        if self._reporter is None:
            elaborated = self._elaborate_model(term.model, env, term.span)
        else:
            try:
                elaborated = self._elaborate_model(term.model, env, term.span)
            except TypeError_ as err:
                self._reporter.error(err)
                if self._reporter.at_limit:
                    raise _ErrorLimit() from None
                elaborated = self._poison_model(term.model, env, term.span)
                if elaborated is None:
                    # The concept itself is unknown; without its shape we
                    # cannot fake a model, so check the body as-is.
                    return self.check(term.body, env)
        info, equalities, bindings, dictionary = elaborated
        inner = env.add_model(info).add_equalities(equalities)
        body_type, body_sf = self.check(term.body, inner)
        # The result type must make sense outside the model's scope.
        result_type = self.rep(body_type, inner)
        self.check_type_wf(result_type, env, term.span)
        out: F.Term = F.Let(
            span=term.span, name=info.dict_var, bound=dictionary, body=body_sf
        )
        for var, bound in reversed(bindings):
            out = F.Let(span=term.span, name=var, bound=bound, body=out)
        return result_type, out

    def _poison_model(self, mdef: G.ModelDef, env: Env, span):
        """A placeholder elaboration for a model that failed to check.

        Registers the model under its declared concept and arguments with an
        empty dictionary so member accesses in the body resolve (to garbage
        the translation never runs) instead of cascading "no model in scope"
        errors.  Contributes *no* equalities: a bogus associated-type merge
        would corrupt the congruence closure for the whole scope.  Returns
        ``None`` when the concept itself is unknown.
        """
        if env.lookup_concept(mdef.concept) is None:
            return None
        info = ModelInfo(
            concept=mdef.concept,
            args=tuple(mdef.args),
            dict_var=self._fresh_dict(mdef.concept),
            path=(),
            assoc=dict(mdef.type_assignments),
        )
        return info, (), (), _poison_term(span)

    def _elaborate_model(self, mdef: G.ModelDef, env: Env, span):
        """Check a model declaration; build its dictionary.

        Returns ``(info, equalities, bindings, dictionary)``: the
        :class:`ModelInfo` to register, the associated-type equalities it
        contributes, auxiliary ``let`` bindings the dictionary needs (empty
        in core F_G; used by the defaults extension), and the dictionary
        tuple expression.
        """
        cdef = concept_def(env, mdef.concept, span)
        check_concept_arity(cdef, mdef.args, span)
        for a in mdef.args:
            self.check_type_wf(a, env, span)
        # Associated-type assignments: exactly the required set.
        assigned = dict(mdef.type_assignments)
        if len(assigned) != len(mdef.type_assignments):
            raise TypeError_("duplicate associated-type assignment", span)
        required = set(cdef.assoc_types)
        if set(assigned) != required:
            missing = required - set(assigned)
            extra = set(assigned) - required
            details = []
            if missing:
                details.append(f"missing: {', '.join(sorted(missing))}")
            if extra:
                details.append(f"unexpected: {', '.join(sorted(extra))}")
            raise TypeError_(
                f"model of {cdef.name} has wrong associated types "
                f"({'; '.join(details)})",
                span,
            )
        for _, t in mdef.type_assignments:
            self.check_type_wf(t, env, span)
        # Associated-type equalities are collected over the whole lexical
        # environment, so a shadowing model may not *reassign* an associated
        # type already fixed by a visible model — that would merge two
        # distinct types (e.g. int = bool) in the congruence.  (Overlapping
        # models that keep assignments consistent — Figure 6 — are fine.)
        if self._explain is not None:
            self._explain.note(
                f"declaration probe: does model {cdef.name}<"
                f"{', '.join(map(str, mdef.args))}> shadow a visible model? "
                "(a failed lookup here is expected)"
            )
        existing = self.find_model(cdef.name, mdef.args, env)
        if existing is not None:
            for s, new_assignment in assigned.items():
                old = existing.assoc.get(s)
                if old is None or isinstance(old, G.TAssoc):
                    continue  # proxy models carry no concrete assignment
                if not self.equal(old, new_assignment, env):
                    raise TypeError_(
                        f"model of {cdef.name}<"
                        f"{', '.join(map(str, mdef.args))}> shadows a model "
                        f"with a different assignment for associated type "
                        f"'{s}' ({old} vs {new_assignment})",
                        span,
                    )
        # The model substitution S: params to args, associated names to
        # their assignments (paper's S = taus, sigmas).
        subst: Dict[str, G.FGType] = dict(zip(cdef.params, mdef.args))
        subst.update(assigned)
        # Refinements — and nested requirements on the associated types —
        # must already be modeled in scope.
        refined_infos = []
        for req in cdef.refines + cdef.nested:
            refined_args = tuple(G.substitute(a, subst) for a in req.args)
            refined_infos.append(
                self.require_model(req.concept, refined_args, env, span)
            )
        # Same-type requirements of the concept must hold.
        for same in cdef.same_types:
            left = G.substitute(same.left, subst)
            right = G.substitute(same.right, subst)
            if not self.equal(left, right, env):
                raise TypeError_(
                    f"model of {cdef.name} violates same-type requirement "
                    f"{same.left} == {same.right} "
                    f"(instantiated: {left} vs {right})",
                    span,
                )
        dict_var = self._fresh_dict(cdef.name)
        bindings, member_exprs = self._elaborate_members(
            cdef, mdef, subst, assigned, env, span, dict_var
        )
        equalities = tuple(
            (G.TAssoc(cdef.name, mdef.args, s), t)
            for s, t in mdef.type_assignments
        )
        info = ModelInfo(cdef.name, mdef.args, dict_var, (), assigned)
        dictionary = F.Tuple_(
            span=span,
            items=tuple(self.dict_expr(i) for i in refined_infos)
            + tuple(member_exprs),
        )
        return info, equalities, bindings, dictionary

    def _elaborate_members(
        self, cdef: G.ConceptDef, mdef: G.ModelDef, subst, assigned,
        env: Env, span, dict_var: str,
    ):
        """Check member definitions; returns (bindings, tuple components).

        Core F_G requires exactly the declared member set and emits the
        checked terms directly into the dictionary tuple.  The defaults
        extension overrides this to fill in missing members.
        """
        defs = dict(mdef.member_defs)
        if len(defs) != len(mdef.member_defs):
            raise TypeError_("duplicate member definition", span)
        declared = set(cdef.member_names())
        if set(defs) != declared:
            missing = declared - set(defs)
            extra = set(defs) - declared
            details = []
            if missing:
                details.append(f"missing: {', '.join(sorted(missing))}")
            if extra:
                details.append(f"unexpected: {', '.join(sorted(extra))}")
            raise TypeError_(
                f"model of {cdef.name} has wrong members "
                f"({'; '.join(details)})",
                span,
            )
        member_sf = []
        for name, declared_type in cdef.members:
            expected = G.substitute(declared_type, subst)
            actual, sf = self.check(defs[name], env)
            if not self.equal(actual, expected, env):
                raise TypeError_(
                    f"member '{name}' of model {cdef.name}<"
                    f"{', '.join(map(str, mdef.args))}> has type "
                    f"{self.rep(actual, env)}, expected "
                    f"{self.rep(expected, env)}",
                    defs[name].span or span,
                )
            member_sf.append(sf)
        return [], member_sf

    # -- MEM: model member access ----------------------------------------------

    def _check_member(self, term: G.MemberAccess, env: Env):
        cdef = concept_def(env, term.concept, term.span)
        check_concept_arity(cdef, term.args, term.span)
        for a in term.args:
            self.check_type_wf(a, env, term.span)
        info = self.require_model(term.concept, term.args, env, term.span)
        entry = find_member(env, term.concept, term.args, term.member, term.span)
        if info.member_vars is not None:
            # Dictionary under construction (concept-member defaults): the
            # member is a directly bound variable, not a tuple component.
            if len(entry.path) > 1:
                raise TypeError_(
                    f"inside a default, access '{term.member}' through the "
                    f"concept that declares it ({entry.concept}), not "
                    f"through {term.concept}",
                    term.span,
                )
            bound = info.member_vars.get(term.member)
            if bound is None:
                raise TypeError_(
                    f"member '{term.member}' is not yet defined at this "
                    "point of the model (defaults may only use earlier "
                    "members)",
                    term.span,
                )
            return self.rep(entry.type, env), F.Var(span=term.span, name=bound)
        expr: F.Term = self.dict_expr(info)
        for index in entry.path:
            expr = F.Nth(span=term.span, tuple_=expr, index=index)
        return self.rep(entry.type, env), expr

    # -- ALS: type alias (Figure 13) ----------------------------------------------

    def _check_alias(self, term: G.TypeAlias, env: Env):
        aliased = term.aliased
        if self._reporter is None:
            if env.has_tyvar(term.name):
                raise TypeError_(
                    f"type alias '{term.name}' shadows a type variable",
                    term.span,
                )
            self.check_type_wf(aliased, env, term.span)
        else:
            try:
                if env.has_tyvar(term.name):
                    raise TypeError_(
                        f"type alias '{term.name}' shadows a type variable",
                        term.span,
                    )
                self.check_type_wf(aliased, env, term.span)
            except TypeError_ as err:
                self._reporter.error(err)
                if self._reporter.at_limit:
                    raise _ErrorLimit() from None
                # Alias the poison type instead so uses of the alias absorb
                # rather than repeat the failure.
                aliased = G.ERROR
        # Merge with the aliased type first so the alias variable never
        # becomes the class representative (it must not escape).
        inner = env.bind_tyvars((term.name,)).add_equality(
            aliased, G.TVar(term.name)
        )
        body_type, body_sf = self.check(term.body, inner)
        result_type = self.rep(body_type, inner)
        if term.name in G.free_type_vars(result_type):
            raise TypeError_(
                f"type alias '{term.name}' escapes its scope in the result "
                f"type {result_type}",
                term.span,
            )
        return result_type, body_sf

    _DISPATCH = {
        "Var": "_check_var",
        "IntLit": "_check_int",
        "BoolLit": "_check_bool",
        "Lam": "_check_lam",
        "App": "_check_app",
        "TyLam": "_check_tylam",
        "TyApp": "_check_tyapp",
        "Let": "_check_let",
        "Tuple_": "_check_tuple",
        "Nth": "_check_nth",
        "If": "_check_if",
        "Fix": "_check_fix",
        "ConceptExpr": "_check_concept",
        "ModelExpr": "_check_model",
        "MemberAccess": "_check_member",
        "TypeAlias": "_check_alias",
    }


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def typecheck(
    term: G.Term,
    env: Optional[Env] = None,
    *,
    limits: Optional[Limits] = None,
    instrumentation: Optional[Instrumentation] = None,
) -> Tuple[G.FGType, F.Term]:
    """Typecheck an F_G term; returns its type and System F translation.

    Fail-fast: raises the *first* :class:`TypeError_` encountered.  Use
    :func:`typecheck_all` to keep going and collect every diagnostic.
    ``instrumentation`` (off by default) records spans/metrics/explain —
    see :mod:`repro.observability`.
    """
    checker = Checker(limits=limits, instrumentation=instrumentation)
    with resource_scope(checker.limits, getattr(term, "span", None)):
        return checker.check(term, env if env is not None else Env.initial())


def typecheck_all(
    term: G.Term,
    env: Optional[Env] = None,
    *,
    max_errors: int = 20,
    limits: Optional[Limits] = None,
    reporter: Optional[DiagnosticReporter] = None,
    instrumentation: Optional[Instrumentation] = None,
) -> Tuple[Optional[G.FGType], Optional[F.Term], DiagnosticReport]:
    """Typecheck ``term``, recovering at binding boundaries.

    Unlike :func:`typecheck`, this does not stop at the first error: the
    checker poisons failed ``let`` bounds, model/concept/alias declarations
    with :data:`~repro.fg.ast.ERROR` and keeps going, so independent errors
    all surface in one run.  Returns ``(type, translation, report)``; the
    type and translation are ``None`` when the error unwound past every
    recovery point, and are only trustworthy when ``report.ok``.
    """
    return _run_collecting(
        Checker, term, env, max_errors=max_errors, limits=limits,
        reporter=reporter, instrumentation=instrumentation,
    )


def _run_collecting(
    checker_cls,
    term: G.Term,
    env: Optional[Env],
    *,
    max_errors: int,
    limits: Optional[Limits],
    reporter: Optional[DiagnosticReporter],
    instrumentation: Optional[Instrumentation] = None,
) -> Tuple[Optional[G.FGType], Optional[F.Term], DiagnosticReport]:
    """Shared engine behind :func:`typecheck_all` (core and extensions)."""
    if reporter is None:
        reporter = DiagnosticReporter(max_errors=max_errors)
    checker = checker_cls(
        reporter=reporter, limits=limits, instrumentation=instrumentation
    )
    base_env = env if env is not None else Env.initial()
    result_type: Optional[G.FGType] = None
    sf_term: Optional[F.Term] = None
    try:
        with resource_scope(checker.limits, getattr(term, "span", None)):
            result_type, sf_term = checker.check(term, base_env)
    except _ErrorLimit:
        pass
    except (TypeError_, ResourceLimitError) as err:
        reporter.error(err)
    if instrumentation is not None and instrumentation.metrics is not None:
        instrumentation.metrics.set_max(
            "check.peak_depth", checker._budget.peak_depth
        )
    return result_type, sf_term, reporter.finish()


def type_of(term: G.Term, env: Optional[Env] = None) -> G.FGType:
    """The F_G type of ``term``."""
    return typecheck(term, env)[0]


def translate(term: G.Term, env: Optional[Env] = None) -> F.Term:
    """The System F translation of ``term``."""
    return typecheck(term, env)[1]


def verify_translation(
    term: G.Term, env: Optional[Env] = None
) -> Tuple[G.FGType, F.Type]:
    """Executable Theorems 1 and 2: translate, then independently re-check.

    Typechecks ``term`` in F_G, translates it, runs the *System F* checker
    over the image, and confirms the System F type matches the translation
    of the F_G type.  Returns the pair of types.  Raises
    :class:`TypeError_` if any step fails — which the theorems say cannot
    happen for well-typed input.
    """
    checker = Checker()
    base_env = env if env is not None else Env.initial()
    with resource_scope(checker.limits, getattr(term, "span", None)):
        fg_type, sf_term = checker.check(term, base_env)
        sf_type = sf_typecheck.type_of(sf_term)
        expected = checker.translate_type(fg_type, base_env)
    if not F.types_equal(sf_type, expected):
        raise TypeError_(
            "translation type mismatch (Theorem 1/2 violation — library "
            f"bug): System F says {sf_type}, expected {expected}"
        )
    return fg_type, sf_type
