"""``repro.observability``: zero-dependency tracing, metrics, and explain.

The black-box problem: lexically scoped model lookup, where-clause
dictionary threading, and the congruence-closure equality procedure decide
everything interesting about an F_G program, yet a failure surfaces as one
diagnostic and a slow check surfaces as nothing at all.  This package makes
the machinery observable without touching its semantics:

- :class:`Tracer` / :class:`Span` — hierarchical, ``perf_counter_ns``-timed
  spans over every pipeline stage and the checker's fine-grained work, with
  :mod:`exporters <repro.observability.exporters>` to human text, Chrome
  ``trace_event`` JSON, and JSONL;
- :class:`MetricsRegistry` — deterministic counters/histograms (model-lookup
  attempts, congruence union/find counts, fuel, diagnostics by severity)
  snapshotted into ``CheckOutcome.stats`` and the CLI ``--json`` envelope;
- :class:`ExplainLog` — a structured decision log of every model
  resolution: candidates per scope, rejection reasons, same-type
  constraints consulted (``fg check --explain``, REPL ``:explain``);
- :func:`profile_tracer` / :class:`Profile` — the deterministic hot-path
  profiler: the (unsampled) span stream folded into an inclusive/exclusive
  time-per-callsite table with call counts (``fg profile``, ``--profile``,
  REPL ``:profile``);
- :class:`MemoryAccountant` — per-pipeline-stage peak-memory accounting
  via ``tracemalloc``;
- :mod:`regress <repro.observability.regress>` — the versioned
  ``BenchRecord`` run-record schema and the ``fg bench --compare``
  trajectory gate;
- :class:`Instrumentation` — the bundle the pipeline threads through the
  stack, with :data:`NULL_INSTRUMENTATION` as the near-free disabled
  default (null-object pattern; see docs/OBSERVABILITY.md);
- :mod:`flightrec <repro.observability.flightrec>` — the always-on
  bounded flight recorder and ``repro/crash-bundle v1`` crash forensics
  (``fg doctor``, ``fg debug bundle``; see docs/DIAGNOSTICS.md).

Everything here is standard library only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# flightrec sits below tracer/metrics/telemetry in the import graph (they
# call its record hooks), so it must be initialized first.
from repro.observability.flightrec import (
    CRASH_BUNDLE_SCHEMA,
    FlightRecorder,
    NullFlightRecorder,
    build_bundle,
    flight_recorder,
    read_bundle,
    validate_bundle,
    write_bundle,
)
from repro.observability.explain import ExplainLog, format_span
from repro.observability.exporters import (
    chrome_trace,
    chrome_trace_json,
    prometheus_text,
    render_tree,
    spans_from_jsonl,
    to_jsonl,
)
from repro.observability.telemetry import (
    OpsLog,
    ServerTelemetry,
    WindowReservoir,
    clock_offset_ns,
    fold_worker_flightrec,
    graft_spans,
    merge_worker_telemetry,
    read_ops_log,
    spans_to_wire,
)
from repro.observability.metrics import Histogram, MetricsRegistry
from repro.observability.profiler import (
    HotSpot,
    MemoryAccountant,
    Profile,
    format_profile,
    profile_tracer,
)
from repro.observability.tracer import NULL_TRACER, NullTracer, Span, Tracer


@dataclass(frozen=True)
class Instrumentation:
    """The observability bundle one pipeline run threads through the stack.

    ``tracer`` is never ``None`` (use :data:`NULL_TRACER` when disabled) so
    call sites can write ``with instr.tracer.span(...)`` unconditionally at
    moderate frequency; ``metrics`` and ``explain`` are ``None`` when
    disabled and every write site guards on that (the hot-path discipline).
    """

    tracer: object = NULL_TRACER
    metrics: Optional[MetricsRegistry] = None
    explain: Optional[ExplainLog] = None
    #: Per-stage peak-memory accounting; ``None`` (the default) never
    #: touches ``tracemalloc``.
    memory: Optional[MemoryAccountant] = None

    @classmethod
    def enabled(cls, *, trace: bool = False, metrics: bool = True,
                explain: bool = False,
                memory: bool = False) -> "Instrumentation":
        """A live bundle with the requested parts turned on."""
        return cls(
            tracer=Tracer() if trace else NULL_TRACER,
            metrics=MetricsRegistry() if metrics else None,
            explain=ExplainLog() if explain else None,
            memory=MemoryAccountant() if memory else None,
        )


#: The shared all-off bundle (the default everywhere).
NULL_INSTRUMENTATION = Instrumentation()


__all__ = [
    "CRASH_BUNDLE_SCHEMA",
    "ExplainLog",
    "FlightRecorder",
    "Histogram",
    "HotSpot",
    "Instrumentation",
    "MemoryAccountant",
    "MetricsRegistry",
    "NULL_INSTRUMENTATION",
    "NULL_TRACER",
    "NullFlightRecorder",
    "NullTracer",
    "OpsLog",
    "Profile",
    "ServerTelemetry",
    "Span",
    "Tracer",
    "WindowReservoir",
    "build_bundle",
    "chrome_trace",
    "chrome_trace_json",
    "clock_offset_ns",
    "flight_recorder",
    "fold_worker_flightrec",
    "format_profile",
    "format_span",
    "graft_spans",
    "merge_worker_telemetry",
    "profile_tracer",
    "prometheus_text",
    "read_bundle",
    "read_ops_log",
    "render_tree",
    "spans_from_jsonl",
    "spans_to_wire",
    "to_jsonl",
    "validate_bundle",
    "write_bundle",
]
