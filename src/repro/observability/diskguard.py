"""Free-space guard for the service's durable writers.

The journal, ops log, metrics file, and crash-bundle directory all grow
on a long-lived daemon; when the disk fills, each writer should degrade
loudly (ops event + health flag) instead of dying mid-write. This module
is the one shared predicate they consult. It lives in observability —
below :mod:`repro.service` in the import graph — so the flight recorder
and telemetry can use it without a layering cycle.

Advisory by design: every function swallows OS errors and answers
optimistically (``has_headroom`` returns True when it cannot tell), so a
platform without ``disk_usage`` support never loses durability.
"""

from __future__ import annotations

import os
import shutil
from typing import Optional

#: Env override for the free-space floor, in megabytes.
ENV_DISK_FLOOR_MB = "FG_DISK_FLOOR_MB"

#: Default floor: writers start degrading when the filesystem holding
#: their target has less than this much free.
DEFAULT_FLOOR_MB = 16.0


def floor_bytes() -> int:
    """The configured free-space floor in bytes."""
    raw = os.environ.get(ENV_DISK_FLOOR_MB)
    if raw:
        try:
            mb = float(raw)
            if mb >= 0:
                return int(mb * 1024 * 1024)
        except ValueError:
            pass
    return int(DEFAULT_FLOOR_MB * 1024 * 1024)


def free_bytes(path) -> Optional[int]:
    """Free bytes on the filesystem holding ``path``, or None.

    ``path`` need not exist yet — the check walks up to the nearest
    existing ancestor (the directory a writer is about to create a file
    in).
    """
    probe = os.fspath(path) if path else "."
    probe = os.path.abspath(probe)
    while probe and not os.path.exists(probe):
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    try:
        return shutil.disk_usage(probe).free
    except (OSError, ValueError):
        return None


def has_headroom(path, need_bytes: int = 0) -> bool:
    """True when writing ~``need_bytes`` at ``path`` keeps the floor.

    Optimistic on error: an unprobeable filesystem does not silence the
    durable writers.
    """
    free = free_bytes(path)
    if free is None:
        return True
    return free - int(need_bytes) >= floor_bytes()
