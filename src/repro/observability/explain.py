"""The model-resolution explain log (``fg check --explain``, REPL ``:explain``).

Lexically scoped model lookup (paper §3) and the congruence-closure equality
it runs modulo (§4–5) make "no model of C<t> in scope" genuinely hard to
debug: the answer depends on which models are visible *here*, in what order,
and on the same-type constraints currently merged.  An :class:`ExplainLog`
records every resolution the checker (or the direct interpreter) performs as
a structured :class:`Resolution` event:

- the concept and arguments being resolved (with their representatives);
- each candidate inspected, **per scope position** (0 = innermost), and the
  precise reason it was rejected — arity mismatch, or the first argument
  pair the congruence closure refused to equate;
- how many same-type equalities were in scope (consulted by every equality
  test), and refinement steps taken while registering where-clause proxies;
- the outcome: the chosen candidate, or a failure the diagnostic will report.

Rendering is failure-forward: :meth:`ExplainLog.render` shows failed
resolutions in full (that is what the user is debugging) and successful ones
in one line each; ``verbose=True`` expands everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.observability.flightrec import (
    record_resolution as _flightrec_resolution,
)

#: Candidate statuses.
ACCEPTED = "accepted"


@dataclass
class Candidate:
    """One model inspected during a resolution, at ``scope_index`` in the
    innermost-first scope chain.  ``status`` is :data:`ACCEPTED` or a
    human-readable rejection reason."""

    scope_index: int
    args: str
    status: str

    @property
    def accepted(self) -> bool:
        return self.status == ACCEPTED

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Candidate":
        return cls(
            scope_index=int(data.get("scope_index", 0)),
            args=str(data.get("args", "")),
            status=str(data.get("status", "")),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "scope_index": self.scope_index,
            "args": self.args,
            "status": self.status,
        }


@dataclass
class Resolution:
    """One model-resolution event: ``concept<args>`` looked up in a scope
    holding ``scope_size`` candidate models and ``equalities_in_scope``
    same-type equalities."""

    concept: str
    args: str
    scope_size: int
    equalities_in_scope: int
    phase: str = "typecheck"          # or "runtime" (direct interpreter)
    location: Optional[str] = None    # "file:line:col" when a span is known
    candidates: List[Candidate] = field(default_factory=list)
    resolved: bool = False
    refinements: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "concept": self.concept,
            "args": self.args,
            "phase": self.phase,
            "location": self.location,
            "scope_size": self.scope_size,
            "equalities_in_scope": self.equalities_in_scope,
            "resolved": self.resolved,
            "candidates": [c.to_dict() for c in self.candidates],
            "refinements": list(self.refinements),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Resolution":
        """Rebuild a resolution from :meth:`to_dict` output (the wire form
        worker processes ship back in result frames)."""
        return cls(
            concept=str(data.get("concept", "")),
            args=str(data.get("args", "")),
            scope_size=int(data.get("scope_size", 0)),
            equalities_in_scope=int(data.get("equalities_in_scope", 0)),
            phase=str(data.get("phase", "typecheck")),
            location=data.get("location"),
            candidates=[
                Candidate.from_dict(c) for c in data.get("candidates") or []
            ],
            resolved=bool(data.get("resolved", False)),
            refinements=[str(r) for r in data.get("refinements") or []],
        )

    def render(self) -> str:
        head = f"model lookup: {self.concept}<{self.args}>"
        if self.location:
            head += f" at {self.location}"
        lines = [head]
        lines.append(
            f"  scope: {self.scope_size} candidate model(s) of "
            f"{self.concept}; {self.equalities_in_scope} type equalit"
            f"{'y' if self.equalities_in_scope == 1 else 'ies'} consulted"
        )
        for cand in self.candidates:
            mark = "=> matched" if cand.accepted else f"rejected: {cand.status}"
            lines.append(
                f"  [scope {cand.scope_index}] model "
                f"{self.concept}<{cand.args}> — {mark}"
            )
        for note in self.refinements:
            lines.append(f"  refinement: {note}")
        if not self.resolved:
            lines.append(
                f"  => FAILED: no model of {self.concept}<{self.args}> "
                "satisfies the lookup"
            )
        return "\n".join(lines)


class ExplainLog:
    """An append-only, chronological log of resolution events and notes.

    The checker records through :meth:`begin`/:meth:`candidate`/
    :meth:`refinement`/:meth:`finish`/:meth:`note`; readers use
    :attr:`resolutions`, :meth:`failures`, :meth:`render`, or
    :meth:`to_json`.  A ``refinement`` outside any open resolution (e.g.
    where-clause proxy registration) lands as a standalone note.
    """

    __slots__ = ("entries", "_open")

    def __init__(self):
        #: Chronological entries: :class:`Resolution` objects and note strings.
        self.entries: List[object] = []
        self._open: List[Resolution] = []

    @property
    def resolutions(self) -> List[Resolution]:
        return [e for e in self.entries if isinstance(e, Resolution)]

    # -- recording (checker side) ----------------------------------------

    def begin(
        self,
        concept: str,
        args: str,
        *,
        scope_size: int,
        equalities_in_scope: int,
        phase: str = "typecheck",
        location: Optional[str] = None,
    ) -> Resolution:
        res = Resolution(
            concept=concept,
            args=args,
            scope_size=scope_size,
            equalities_in_scope=equalities_in_scope,
            phase=phase,
            location=location,
        )
        self.entries.append(res)
        self._open.append(res)
        return res

    def candidate(self, scope_index: int, args: str, status: str) -> None:
        if self._open:
            self._open[-1].candidates.append(
                Candidate(scope_index, args, status)
            )

    def refinement(self, note: str) -> None:
        if self._open:
            self._open[-1].refinements.append(note)
        else:
            self.entries.append(note)

    def note(self, text: str) -> None:
        self.entries.append(text)

    def finish(self, resolved: bool) -> None:
        if self._open:
            res = self._open.pop()
            res.resolved = resolved
            _flightrec_resolution({
                "concept": res.concept,
                "args": res.args,
                "phase": res.phase,
                "location": res.location,
                "scope_size": res.scope_size,
                "resolved": res.resolved,
            })

    def merge_json(self, entries: List[Dict[str, object]]) -> None:
        """Re-append entries exported by :meth:`to_json` in another process
        (resolutions rebuilt as :class:`Resolution`, notes as strings), so
        a coordinator log renders worker resolutions indistinguishably from
        local ones."""
        for entry in entries or []:
            if "concept" in entry:
                self.entries.append(Resolution.from_dict(entry))
            else:
                self.entries.append(str(entry.get("note", "")))

    # -- reading ----------------------------------------------------------

    def failures(self) -> Tuple[Resolution, ...]:
        return tuple(r for r in self.resolutions if not r.resolved)

    def to_json(self) -> List[Dict[str, object]]:
        return [
            e.to_dict() if isinstance(e, Resolution) else {"note": e}
            for e in self.entries
        ]

    def render(self, verbose: bool = False) -> str:
        """Failures in full; successes one line each (all full if verbose)."""
        if not self.entries:
            return "-- no model resolutions recorded"
        lines: List[str] = []
        for entry in self.entries:
            if not isinstance(entry, Resolution):
                lines.append(f"-- {entry}")
            elif verbose or not entry.resolved:
                lines.append(entry.render())
            else:
                chosen = next(
                    (c for c in entry.candidates if c.accepted), None
                )
                where = (
                    f" (scope {chosen.scope_index})" if chosen is not None
                    else ""
                )
                lines.append(
                    f"model lookup: {entry.concept}<{entry.args}> — "
                    f"resolved{where}"
                )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.resolutions)


def format_span(span) -> Optional[str]:
    """``file:line:col`` for a source span, or ``None``."""
    if span is None:
        return None
    filename = getattr(span, "filename", None)
    start = getattr(span, "start", None)
    if filename is None or start is None or filename == "<synthetic>":
        return None
    return f"{filename}:{start.line}:{start.column}"
