"""Span-tree exporters: human text, Chrome ``trace_event`` JSON, JSONL.

Three projections of one :class:`~repro.observability.tracer.Tracer`:

- :func:`render_tree` — an indented, durations-annotated tree for humans
  (``fg ... --trace`` with no file argument);
- :func:`chrome_trace` / :func:`chrome_trace_json` — the Chrome
  ``trace_event`` array format (complete ``"ph": "X"`` events), loadable in
  ``chrome://tracing`` or Perfetto (``--trace=out.json``);
- :func:`to_jsonl` — one compact JSON object per span, parent-linked, for
  ad-hoc analysis with line-oriented tools (``--trace=out.jsonl``).

All three are deterministic given a tracer with a deterministic clock.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.observability.tracer import Span, Tracer


def _attrs_str(span: Span) -> str:
    if not span.attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in span.attrs.items())
    return f" [{inner}]"


def render_tree(tracer: Tracer) -> str:
    """The span forest as indented text with millisecond durations."""
    lines: List[str] = []
    for depth, span in tracer.walk():
        dur_ms = span.duration_ns / 1e6
        lines.append(
            f"{'  ' * depth}{span.name}  {dur_ms:.3f}ms{_attrs_str(span)}"
        )
    return "\n".join(lines) if lines else "-- no spans recorded"


def _span_args(span: Span) -> Dict[str, object]:
    # Chrome's viewer requires JSON-safe args; stringify anything exotic.
    out: Dict[str, object] = {}
    for key, value in span.attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = str(value)
    return out


def _event_pid(span: Span) -> int:
    """A span grafted from a worker carries a ``pid`` attribute; use it as
    the Chrome event's process lane so Perfetto draws one track per real
    OS process.  Local spans stay on the coordinator lane (1)."""
    pid = span.attrs.get("pid")
    if isinstance(pid, int) and pid > 0:
        return pid
    return 1


def chrome_trace(tracer: Tracer) -> List[Dict[str, object]]:
    """The spans as a Chrome ``trace_event`` list (complete events)."""
    events: List[Dict[str, object]] = []
    for span in tracer.spans:
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.start_ns / 1_000,      # microseconds
            "dur": span.duration_ns / 1_000,
            "pid": _event_pid(span),
            "tid": 1,
            "args": dict(_span_args(span), span_id=span.id,
                         parent_id=span.parent_id),
        })
    return events


def chrome_trace_json(tracer: Tracer) -> str:
    """:func:`chrome_trace`, serialized (the ``--trace=FILE.json`` payload)."""
    return json.dumps({"traceEvents": chrome_trace(tracer)}, indent=2)


def to_jsonl(tracer: Tracer) -> str:
    """One JSON object per span, newline-separated, in creation order."""
    lines = []
    for span in tracer.spans:
        lines.append(json.dumps({
            "id": span.id,
            "parent": span.parent_id,
            "name": span.name,
            "start_ns": span.start_ns,
            "dur_ns": span.duration_ns,
            "attrs": _span_args(span),
        }, sort_keys=True))
    return "\n".join(lines)


def prometheus_text(stats: Dict[str, object]) -> str:
    """A daemon ``stats`` payload in Prometheus text exposition format.

    Flat numeric fields become ``fg_<name>`` gauges; the rolling
    ``latency_ms``/``queue_wait_ms`` reservoirs become one gauge family
    each with ``quantile`` labels (summary-style), so
    ``fg serve --metrics-file`` snapshots scrape cleanly.  Non-numeric and
    structural fields (worker detail lists, request type) are skipped —
    Prometheus has no place for them.
    """
    lines: List[str] = []

    def gauge(name: str, value, labels: str = "") -> None:
        if value is None:
            return
        lines.append(f"fg_{name}{labels} {float(value):g}")

    def family(name: str, help_text: str) -> None:
        lines.append(f"# HELP fg_{name} {help_text}")
        lines.append(f"# TYPE fg_{name} gauge")

    for key, help_text in (
        ("uptime_ms", "Daemon uptime in milliseconds."),
        ("served", "Requests served since boot."),
        ("shed_total", "Requests shed (overload or draining) since boot."),
        ("shed_memory", "Requests shed for memory pressure since boot."),
        ("respawns", "Worker processes respawned since boot."),
        ("recycles", "Workers gracefully recycled since boot."),
        ("rss_bytes", "Aggregate heartbeat-sampled worker RSS in bytes."),
        ("queued", "Requests waiting for the executor."),
        ("in_flight", "Requests currently executing."),
        ("workers", "Configured worker seats."),
        ("worker_utilization", "Busy worker-seconds per wall-second, 0..1."),
    ):
        if stats.get(key) is not None:
            family(key, help_text)
            gauge(key, stats[key])

    for key, help_text in (
        ("latency_ms", "Rolling request latency quantiles (ms)."),
        ("queue_wait_ms", "Rolling executor queue-wait quantiles (ms)."),
    ):
        window = stats.get(key)
        if not isinstance(window, dict):
            continue
        family(key, help_text)
        for quantile, field in (("0.5", "p50"), ("0.95", "p95"),
                                ("0.99", "p99")):
            gauge(key, window.get(field), '{quantile="%s"}' % quantile)
        family(key + "_observations", "Observations ever made.")
        gauge(key + "_observations", window.get("count"))

    return "\n".join(lines) + "\n"


def spans_from_jsonl(text: str) -> List[Dict[str, object]]:
    """Parse :func:`to_jsonl` output back into span dicts, in file order.

    The inverse projection for round-trip checks and offline analysis:
    each dict carries the exported ``id``/``parent``/``name``/``start_ns``/
    ``dur_ns``/``attrs`` fields, so the original parent/child tree can be
    reassembled from the ``parent`` links
    (``tests/observability/test_exporters_roundtrip.py``).
    """
    return [
        json.loads(line) for line in text.splitlines() if line.strip()
    ]
