"""Always-on flight recorder and ``repro/crash-bundle v1`` forensics.

Every process in the serving stack — the batch coordinator, one-shot
``--isolate=subprocess`` children, persistent pool workers, and the
``fg serve`` daemon — keeps a :class:`FlightRecorder`: four fixed-size
rings (recently *completed* spans, ops events, metric samples, and
model-resolution decisions) fed by one guarded call at each existing
hook point (``Tracer._finish``/``adopt``, ``MetricsRegistry.observe``,
``OpsLog.emit``, ``ExplainLog.finish``).  The rings are ``deque``\\ s with
``maxlen``; recording is an append of a small tuple, so the always-on
cost is bounded and allocation-free beyond the ring itself.  Capacity
comes from ``$FG_FLIGHTREC_RING`` (default 256); ``0`` disables the
rings entirely, which the digest-invariance and overhead tests use as
the recorder-off baseline.

On a fault the recorder's contents become a **crash bundle** — a
versioned JSON document (:data:`SCHEMA`) holding the rings, the journal
and ops-log tails, pool/worker state, the effective policy, the last
health snapshot, and the Python traceback.  :func:`dump` writes one
atomically into the configured bundle directory (``--crash-dir`` /
``$FG_CRASH_DIR``; the daemon defaults to ``<socket>.crash``) and is
advisory by construction: with no directory configured it returns
``None``, and it never raises.  Nothing here ever touches report JSON,
so canonical digests are recorder-invariant by construction.

Hard process death cannot run Python code, so :func:`arm` installs a
three-layer net: an ``sys.excepthook`` chain (uncaught exceptions), an
``atexit`` guard that fires only when :func:`disarm` was never reached
(ab-normal interpreter exit), and ``faulthandler`` writing native-fault
tracebacks beside the bundles.  SIGKILL defeats all three by design;
the daemon covers it by periodically persisting a live "blackbox"
bundle that survives on disk and is removed again on clean exit.

This module is standard-library only and imports nothing from
``repro`` — it sits below ``tracer``/``telemetry`` in the import graph
so the hook points can call into it without cycles.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import time
import traceback as _traceback
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

#: The crash-bundle format written by :func:`dump` / :func:`write_bundle`.
SCHEMA = "repro/crash-bundle v1"

#: Ring capacity override (``0`` disables recording).
ENV_RING = "FG_FLIGHTREC_RING"

#: Bundle directory fallback when no ``--crash-dir`` was given.
ENV_CRASH_DIR = "FG_CRASH_DIR"

#: Crash-bundle retention: :func:`dump` prunes the directory to the
#: newest this-many ``crash-*`` bundles (the ``live-*`` blackbox is never
#: pruned), so forensics on a long-lived daemon cannot fill the disk.
ENV_CRASH_KEEP = "FG_CRASH_KEEP"
DEFAULT_CRASH_KEEP = 32

DEFAULT_CAPACITY = 256

#: The fault taxonomy a bundle's ``fault.kind`` draws from.  ``dump``
#: accepts unknown kinds (forensics must never be the thing that
#: crashes), but ``fg doctor`` classifies these.
FAULT_KINDS = (
    "crash-report",        # a checked file died (CrashReport on the outcome)
    "memory",              # a worker tripped its per-worker memory budget
    "worker-lost",         # pool worker vanished mid-attempt
    "deadline-kill",       # watchdog hard-killed a worker past its deadline
    "respawn-exhausted",   # respawn budget spent; seat retired
    "daemon-exception",    # unhandled exception on the daemon's executor
    "drain-failure",       # SIGTERM drain did not finish in time
    "hard-death",          # process died without reaching a clean exit
    "manual",              # forced via fg debug bundle / the debug request
)

#: How many ring entries a worker ships back on every result frame.
WIRE_SPANS = 16
WIRE_OPS = 8


def ring_capacity_from_env(default: int = DEFAULT_CAPACITY) -> int:
    raw = os.environ.get(ENV_RING)
    if raw is None:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


class FlightRecorder:
    """Bounded rings of recent execution state, always recording.

    ``capacity == 0`` is the disabled recorder: every ``record_*`` call
    returns after one attribute load and branch, and :meth:`snapshot`
    returns empty rings.
    """

    __slots__ = ("capacity", "_spans", "_events", "_metrics",
                 "_resolutions")

    def __init__(self, capacity: Optional[int] = None):
        if capacity is None:
            capacity = ring_capacity_from_env()
        self.capacity = max(0, int(capacity))
        maxlen = self.capacity if self.capacity else 1
        self._spans: deque = deque(maxlen=maxlen)
        self._events: deque = deque(maxlen=maxlen)
        self._metrics: deque = deque(maxlen=maxlen)
        self._resolutions: deque = deque(maxlen=maxlen)

    # -- recording (hot path: one branch + one deque append) --------------

    def record_span(self, name: str, start_ns: int, end_ns: int,
                    attrs: Optional[Dict[str, object]] = None) -> None:
        if self.capacity:
            self._spans.append((name, start_ns, end_ns, attrs))

    def record_event(self, record: Dict[str, object]) -> None:
        if self.capacity:
            self._events.append(record)

    def record_metric(self, name: str, value) -> None:
        if self.capacity:
            self._metrics.append((name, value))

    def record_resolution(self, entry: Dict[str, object]) -> None:
        if self.capacity:
            self._resolutions.append(entry)

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready projection of all four rings (oldest first)."""
        if not self.capacity:
            return {"capacity": 0, "spans": [], "ops": [], "metrics": [],
                    "resolutions": []}
        return {
            "capacity": self.capacity,
            "spans": [
                {"name": name, "start_ns": start, "end_ns": end,
                 "attrs": attrs}
                for name, start, end, attrs in list(self._spans)
            ],
            "ops": list(self._events),
            "metrics": [
                {"name": name, "value": value}
                for name, value in list(self._metrics)
            ],
            "resolutions": list(self._resolutions),
        }

    def wire_tail(self, spans: int = WIRE_SPANS,
                  ops: int = WIRE_OPS) -> Optional[Dict[str, object]]:
        """The compact stanza a worker attaches to each result frame:
        the last few spans and ops events plus this process's clock so
        the supervisor can normalize timestamps (same NTP-style bracket
        PR 8 uses for grafted spans).  ``None`` when the ring is off."""
        if not self.capacity:
            return None
        snap_spans = [
            {"name": name, "start_ns": start, "end_ns": end, "attrs": attrs}
            for name, start, end, attrs in list(self._spans)[-spans:]
        ]
        return {
            "pid": os.getpid(),
            "clock_ns": time.perf_counter_ns(),
            "spans": snap_spans,
            "ops": list(self._events)[-ops:],
        }

    def clear(self) -> None:
        self._spans.clear()
        self._events.clear()
        self._metrics.clear()
        self._resolutions.clear()

    def __len__(self) -> int:
        return (len(self._spans) + len(self._events) + len(self._metrics)
                + len(self._resolutions))


class NullFlightRecorder(FlightRecorder):
    """A permanently-off recorder (ring capacity 0)."""

    def __init__(self):
        super().__init__(capacity=0)


# ---------------------------------------------------------------------------
# The process-wide recorder and bundle directory
# ---------------------------------------------------------------------------

_recorder: FlightRecorder = FlightRecorder()
_directory: Optional[str] = None


def recorder() -> FlightRecorder:
    """The process-wide always-on recorder."""
    return _recorder


def install(rec: FlightRecorder) -> FlightRecorder:
    """Swap the process-wide recorder (tests; ring-0 baselines).
    Returns the previous one so callers can restore it."""
    global _recorder
    previous = _recorder
    _recorder = rec
    return previous


def configure(directory: Optional[str]) -> None:
    """Set the bundle directory for this process's :func:`dump` calls."""
    global _directory
    _directory = directory


def bundle_directory() -> Optional[str]:
    """The effective bundle directory: explicit :func:`configure` value,
    else ``$FG_CRASH_DIR``, else ``None`` (dumps disabled)."""
    return _directory or os.environ.get(ENV_CRASH_DIR) or None


# -- module-level hook entry points (what tracer/metrics/ops/explain call) --

def record_span(name: str, start_ns: int, end_ns: int,
                attrs: Optional[Dict[str, object]] = None) -> None:
    rec = _recorder
    if rec.capacity:
        rec._spans.append((name, start_ns, end_ns, attrs))


def record_event(record: Dict[str, object]) -> None:
    rec = _recorder
    if rec.capacity:
        rec._events.append(record)


def record_metric(name: str, value) -> None:
    rec = _recorder
    if rec.capacity:
        rec._metrics.append((name, value))


def record_resolution(entry: Dict[str, object]) -> None:
    rec = _recorder
    if rec.capacity:
        rec._resolutions.append(entry)


# ---------------------------------------------------------------------------
# Crash bundles
# ---------------------------------------------------------------------------

#: Keys every valid bundle carries (``validate_bundle`` enforces these).
BUNDLE_KEYS = (
    "schema", "fault", "pid", "argv", "python", "created_ts_ms",
    "rings", "traceback", "journal_tail", "ops_tail", "pool", "policy",
    "health",
)

_dump_seq = 0


def build_bundle(
    kind: str,
    detail: Optional[Dict[str, object]] = None,
    *,
    rec: Optional[FlightRecorder] = None,
    context: Optional[Dict[str, object]] = None,
    traceback_lines: Optional[List[str]] = None,
) -> Dict[str, object]:
    """Assemble a ``repro/crash-bundle v1`` document from the recorder.

    ``context`` overlays the coordinator-side sections (``journal_tail``,
    ``ops_tail``, ``pool``, ``policy``, ``health`` — or anything else a
    dump site knows); absent sections stay at their empty defaults so
    the schema is total.
    """
    source = rec if rec is not None else _recorder
    bundle: Dict[str, object] = {
        "schema": SCHEMA,
        "fault": {"kind": kind, "detail": dict(detail or {})},
        "pid": os.getpid(),
        "argv": list(sys.argv),
        "python": sys.version.split()[0],
        "created_ts_ms": int(time.time() * 1000),
        "rings": source.snapshot(),
        "traceback": list(traceback_lines or []),
        "journal_tail": [],
        "ops_tail": [],
        "pool": None,
        "policy": None,
        "health": None,
    }
    if context:
        bundle.update(context)
    # JSON-safe by construction: ring attrs and context sections can carry
    # arbitrary objects (span attrs are caller-supplied), and a bundle must
    # survive both the framed wire (plain json.dumps) and the disk writer.
    return json.loads(json.dumps(bundle, default=str))


def validate_bundle(bundle) -> List[str]:
    """Schema check: a list of problems, empty when the bundle is valid."""
    problems: List[str] = []
    if not isinstance(bundle, dict):
        return ["bundle is not an object"]
    if bundle.get("schema") != SCHEMA:
        problems.append(
            f"schema is {bundle.get('schema')!r}, expected {SCHEMA!r}"
        )
    for key in BUNDLE_KEYS:
        if key not in bundle:
            problems.append(f"missing key {key!r}")
    fault = bundle.get("fault")
    if not isinstance(fault, dict) or not isinstance(fault.get("kind"), str):
        problems.append("fault must be an object with a string 'kind'")
    elif not fault["kind"]:
        problems.append("fault.kind must be non-empty")
    if not isinstance(bundle.get("pid"), int):
        problems.append("pid must be an integer")
    if not isinstance(bundle.get("created_ts_ms"), int):
        problems.append("created_ts_ms must be an integer")
    rings = bundle.get("rings")
    if not isinstance(rings, dict):
        problems.append("rings must be an object")
    else:
        for ring in ("spans", "ops", "metrics", "resolutions"):
            if not isinstance(rings.get(ring), list):
                problems.append(f"rings.{ring} must be a list")
    for key in ("traceback", "journal_tail", "ops_tail"):
        if key in bundle and not isinstance(bundle[key], list):
            problems.append(f"{key} must be a list")
    return problems


def write_bundle(bundle: Dict[str, object], directory: str,
                 name: Optional[str] = None) -> str:
    """Atomically write a bundle file; returns its path.

    The write goes through a same-directory temp file and ``os.replace``
    so a reader (or a SIGKILL landing mid-write) never sees a torn
    bundle — the same discipline the daemon's metrics snapshot uses.
    """
    global _dump_seq
    os.makedirs(directory, exist_ok=True)
    if name is None:
        _dump_seq += 1
        kind = bundle.get("fault", {}).get("kind", "unknown")
        name = (f"crash-{kind}-{bundle.get('pid', 0)}-"
                f"{bundle.get('created_ts_ms', 0)}-{_dump_seq}.bundle.json")
    path = os.path.join(directory, name)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(bundle, fh, indent=2, default=str)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def read_bundle(path) -> Dict[str, object]:
    with open(path) as fh:
        return json.load(fh)


def find_bundles(directory) -> List[str]:
    """All bundle files under ``directory``, oldest first."""
    try:
        names = [n for n in os.listdir(directory)
                 if n.endswith(".bundle.json")]
    except OSError:
        return []
    paths = [os.path.join(directory, n) for n in names]
    return sorted(paths, key=lambda p: (_mtime(p), p))


def latest_bundle(directory) -> Optional[str]:
    found = find_bundles(directory)
    return found[-1] if found else None


def _mtime(path: str) -> float:
    try:
        return os.stat(path).st_mtime
    except OSError:
        return 0.0


def crash_keep_from_env(default: int = DEFAULT_CRASH_KEEP) -> int:
    raw = os.environ.get(ENV_CRASH_KEEP)
    if raw is None:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def prune_bundles(directory, keep: Optional[int] = None) -> List[str]:
    """Retention: delete the oldest ``crash-*`` bundles beyond ``keep``.

    Only auto-named crash bundles are candidates — the daemon's ``live-*``
    blackbox and any explicitly named bundle survive, and ``find_bundles``
    / ``latest_bundle`` are unaffected for what remains.  Returns the
    paths removed.  Advisory: errors are swallowed per file.
    """
    if keep is None:
        keep = crash_keep_from_env()
    crash = [p for p in find_bundles(directory)
             if os.path.basename(p).startswith("crash-")]
    removed: List[str] = []
    for path in crash[:max(0, len(crash) - keep)]:
        try:
            os.remove(path)
            removed.append(path)
        except OSError:
            pass
    return removed


def dump(
    kind: str,
    detail: Optional[Dict[str, object]] = None,
    *,
    context: Optional[Dict[str, object]] = None,
    directory: Optional[str] = None,
    name: Optional[str] = None,
    traceback_lines: Optional[List[str]] = None,
) -> Optional[str]:
    """Write a crash bundle for fault ``kind``; the one call fault sites
    make.  Advisory: no configured directory → ``None``; any failure
    while assembling or writing → ``None`` (forensics never raises into
    the fault path it is documenting)."""
    target = directory or bundle_directory()
    if not target:
        return None
    try:
        from repro.observability import diskguard

        if not diskguard.has_headroom(target, need_bytes=1 << 20):
            # A full disk is exactly when bundles get written; retention
            # may have freed room, so prune first and re-check once.
            prune_bundles(target)
            if not diskguard.has_headroom(target, need_bytes=1 << 20):
                return None
        bundle = build_bundle(kind, detail, context=context,
                              traceback_lines=traceback_lines)
        path = write_bundle(bundle, target, name=name)
        prune_bundles(target)
        return path
    except Exception:  # noqa: BLE001 — advisory by contract
        return None


# ---------------------------------------------------------------------------
# Hard-death hooks
# ---------------------------------------------------------------------------

_arm_state: Dict[str, Any] = {
    "armed": False,       # hooks installed (once per process)
    "clean": True,        # disarm() reached; the atexit guard stands down
    "context_provider": None,
    "faulthandler_file": None,
}


def arm(
    directory: Optional[str] = None,
    *,
    context_provider: Optional[Callable[[], Dict[str, object]]] = None,
) -> None:
    """Install the hard-death net for this process.

    Layers: a chained ``sys.excepthook`` (uncaught exception → bundle
    with the real traceback, then the previous hook runs), an ``atexit``
    guard that dumps only if :func:`disarm` was never called, and
    ``faulthandler`` writing native-fault tracebacks to
    ``fault-<pid>.txt`` beside the bundles.  Safe to call repeatedly;
    the hooks install once."""
    if directory:
        configure(directory)
    _arm_state["context_provider"] = context_provider
    _arm_state["clean"] = False
    if _arm_state["armed"]:
        return
    _arm_state["armed"] = True

    previous_hook = sys.excepthook

    def _flightrec_excepthook(exc_type, exc, tb):
        _arm_state["clean"] = True  # the atexit guard must not double-dump
        dump(
            "hard-death",
            {"exc_type": getattr(exc_type, "__name__", str(exc_type)),
             "message": str(exc)},
            context=_armed_context(),
            traceback_lines=_traceback.format_exception(exc_type, exc, tb),
        )
        previous_hook(exc_type, exc, tb)

    sys.excepthook = _flightrec_excepthook
    atexit.register(_atexit_guard)
    try:
        import faulthandler

        target = bundle_directory()
        if target:
            os.makedirs(target, exist_ok=True)
            fh = open(os.path.join(target, f"fault-{os.getpid()}.txt"), "w")
            faulthandler.enable(file=fh)
            _arm_state["faulthandler_file"] = fh
    except Exception:  # noqa: BLE001 — the net is best-effort
        pass


def disarm() -> None:
    """Mark this process's exit as clean; the atexit guard stands down."""
    _arm_state["clean"] = True


def _armed_context() -> Optional[Dict[str, object]]:
    provider = _arm_state.get("context_provider")
    if provider is None:
        return None
    try:
        return provider()
    except Exception:  # noqa: BLE001 — context is best-effort
        return None


def _atexit_guard() -> None:
    if _arm_state["clean"]:
        return
    dump(
        "hard-death",
        {"note": "interpreter exited before a clean disarm"},
        context=_armed_context(),
        traceback_lines=_traceback.format_stack(),
    )


#: Package-level aliases (``repro.observability`` re-exports these under
#: names that stay unambiguous outside this module).
CRASH_BUNDLE_SCHEMA = SCHEMA
flight_recorder = recorder
