"""Process-local counters and histograms for the checking pipeline.

A :class:`MetricsRegistry` is a plain dictionary of named counters plus
named histograms (count/sum/min/max — enough for means without keeping
samples).  The checker, congruence solver, and evaluators increment it at
guarded call sites (``if metrics is not None``), so the disabled path costs
one attribute load and branch.

Snapshots are **deterministic**: keys are sorted and only structural
quantities go in (lookup counts, scope depths, union/find counts, fuel),
never wall-clock times — two identical runs produce identical snapshots
(``tests/observability/test_metrics.py`` enforces this).  Stage *timings*
live next to the snapshot in ``CheckOutcome.stats["timings_ms"]``, kept out
of the registry precisely so the deterministic part stays comparable.

Metric catalog (see docs/OBSERVABILITY.md for the full table):

- ``model_lookup.attempts`` / ``.hits`` / ``.misses`` — calls to the
  checker's ``find_model`` and how they ended;
- ``model_lookup.candidates`` — candidate models inspected across lookups;
- ``model_lookup.scope_depth`` (histogram) — how deep into the
  innermost-first model scope each lookup reached;
- ``congruence.solvers`` / ``.nodes`` / ``.unions`` / ``.finds`` — solver
  constructions, hash-consed nodes, union and find operations;
- ``congruence.class_size`` (histogram) — equivalence-class sizes at merge;
- ``typecheck.bindings`` / ``.where_clauses`` / ``.instantiations`` /
  ``.substitutions`` — checker progress counters;
- ``check.peak_depth``, ``eval.steps`` — budget readings;
- ``diagnostics.error`` / ``.warning`` / ``.note`` — report composition.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.observability.flightrec import record_metric as _flightrec_metric


class Histogram:
    """A streaming histogram: count, sum, min, max (no samples kept)."""

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self):
        self.count = 0
        self.sum = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: Dict[str, object]) -> None:
        """Fold another histogram's ``to_dict`` projection into this one
        (cross-process metrics merging; the mean is derived, not stored)."""
        self.count += int(other.get("count", 0) or 0)
        self.sum += other.get("sum", 0) or 0
        other_min = other.get("min")
        if other_min is not None and (self.min is None or
                                      other_min < self.min):
            self.min = other_min
        other_max = other.get("max")
        if other_max is not None and (self.max is None or
                                      other_max > self.max):
            self.max = other_max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named counters and histograms for one run (or one REPL session)."""

    __slots__ = ("_counters", "_histograms")

    def __init__(self):
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- writing ----------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_max(self, name: str, value: int) -> None:
        """Record a high-water mark (e.g. peak checker depth)."""
        if value > self._counters.get(name, 0):
            self._counters[name] = value

    def observe(self, name: str, value) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)
        _flightrec_metric(name, value)

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` from another registry (typically another
        *process*) into this one: counters add, histograms merge their
        count/sum/min/max.  This is how worker-side ``typecheck.*`` and
        ``congruence.*`` metrics reach the coordinator registry — merged at
        result time, so everything a worker completed survives its death.
        """
        for name, amount in (snapshot.get("counters") or {}).items():
            self.inc(name, int(amount))
        for name, data in (snapshot.get("histograms") or {}).items():
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.merge(data)

    # -- reading ----------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def snapshot(self) -> Dict[str, object]:
        """A deterministic, JSON-ready projection (sorted keys)."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "histograms": {
                k: self._histograms[k].to_dict()
                for k in sorted(self._histograms)
            },
        }

    def render(self) -> str:
        """Human-readable one-metric-per-line summary."""
        lines = []
        for name in sorted(self._counters):
            lines.append(f"{name:<40} {self._counters[name]}")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            lines.append(
                f"{name:<40} n={h.count} mean={h.mean:.2f} "
                f"min={h.min} max={h.max}"
            )
        return "\n".join(lines) if lines else "-- no metrics recorded"

    def __len__(self) -> int:
        return len(self._counters) + len(self._histograms)
