"""Deterministic hot-path profiling and per-stage memory accounting.

The :class:`~repro.observability.tracer.Tracer` already records *every*
span (no sampling), so a profile is a pure aggregation of the span stream:
:func:`profile_tracer` folds the tree into one row per callsite (span
name) with call counts and inclusive/exclusive times.  Because nothing is
sampled, two runs of the same program produce the same rows in the same
order — only the timing columns differ (``tests/observability/
test_profiler.py`` enforces this byte-for-byte, modulo timings).

Rows are ordered by **call count (descending), then name** — both
deterministic quantities — never by time, so the table shape is stable
across runs and machines.

:class:`MemoryAccountant` is the memory half: the pipeline wraps each
stage in :meth:`MemoryAccountant.stage`, which resets :mod:`tracemalloc`'s
peak and records the high-water mark per stage.  Like every other
instrument it is a strict opt-in: :data:`~repro.observability.
NULL_INSTRUMENTATION` carries ``memory=None`` and the disabled path never
touches ``tracemalloc`` (``tests/observability/test_overhead.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class HotSpot:
    """One aggregated callsite: every span sharing a name, folded.

    ``inclusive_ns`` sums each span's full duration; ``exclusive_ns``
    subtracts time spent in child spans, so the column answers "where did
    the time *itself* go" rather than "what was on the stack".
    """

    name: str
    calls: int
    inclusive_ns: int
    exclusive_ns: int

    @property
    def inclusive_ms(self) -> float:
        return round(self.inclusive_ns / 1e6, 3)

    @property
    def exclusive_ms(self) -> float:
        return round(self.exclusive_ns / 1e6, 3)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "calls": self.calls,
            "inclusive_ms": self.inclusive_ms,
            "exclusive_ms": self.exclusive_ms,
        }


@dataclass(frozen=True)
class Profile:
    """The aggregated hot-path table for one traced run."""

    hotspots: List[HotSpot]
    span_count: int

    @property
    def total_exclusive_ms(self) -> float:
        """Sum of exclusive time across callsites (total traced time)."""
        return round(
            sum(h.exclusive_ns for h in self.hotspots) / 1e6, 3
        )

    def to_json(self) -> Dict[str, object]:
        """JSON-ready projection (the ``"profile"`` envelope payload)."""
        return {
            "hotspots": [h.to_dict() for h in self.hotspots],
            "span_count": self.span_count,
            "total_exclusive_ms": self.total_exclusive_ms,
        }

    def render(self) -> str:
        """An aligned text table, hottest-by-call-count first."""
        if not self.hotspots:
            return "-- no spans recorded (profile needs a live tracer)"
        lines = [
            f"{'callsite':<36} {'calls':>7} {'incl ms':>10} {'excl ms':>10}"
        ]
        for h in self.hotspots:
            lines.append(
                f"{h.name:<36} {h.calls:>7} "
                f"{h.inclusive_ms:>10.3f} {h.exclusive_ms:>10.3f}"
            )
        return "\n".join(lines)


def profile_tracer(tracer) -> Profile:
    """Aggregate a tracer's span stream into a :class:`Profile`.

    Works on any object with a ``spans`` list (a :class:`Tracer` or the
    null tracer, which yields an empty profile).  Open spans contribute a
    zero duration, so profiling a tracer mid-run is safe.
    """
    calls: Dict[str, int] = {}
    inclusive: Dict[str, int] = {}
    exclusive: Dict[str, int] = {}
    spans = tracer.spans
    for span in spans:
        dur = span.duration_ns
        child_time = sum(c.duration_ns for c in span.children)
        name = span.name
        calls[name] = calls.get(name, 0) + 1
        inclusive[name] = inclusive.get(name, 0) + dur
        # Clamp: an open child inside a closed parent could push this
        # negative; exclusive time is by definition non-negative.
        exclusive[name] = exclusive.get(name, 0) + max(0, dur - child_time)
    hotspots = [
        HotSpot(name, calls[name], inclusive[name], exclusive[name])
        for name in sorted(calls, key=lambda n: (-calls[n], n))
    ]
    return Profile(hotspots=hotspots, span_count=len(spans))


class MemoryAccountant:
    """Per-stage peak-memory accounting via :mod:`tracemalloc`.

    The pipeline calls :meth:`stage` around each stage; the accountant
    resets the tracemalloc peak on entry and records the high-water mark
    on exit (keeping the max across repeated entries of the same stage
    name).  If tracemalloc was not already tracing, the accountant starts
    it for the stage and stops it afterwards, so enabling memory
    accounting for one run leaves no process-wide residue.
    """

    __slots__ = ("peaks",)

    def __init__(self):
        #: Peak traced bytes per stage name.
        self.peaks: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str):
        import tracemalloc

        started_here = not tracemalloc.is_tracing()
        if started_here:
            tracemalloc.start()
        tracemalloc.reset_peak()
        try:
            yield
        finally:
            _, peak = tracemalloc.get_traced_memory()
            prior = self.peaks.get(name)
            self.peaks[name] = peak if prior is None else max(prior, peak)
            if started_here:
                tracemalloc.stop()

    def peaks_kb(self) -> Dict[str, float]:
        """Peak KiB per stage, sorted by stage name (JSON-ready)."""
        return {
            name: round(self.peaks[name] / 1024, 1)
            for name in sorted(self.peaks)
        }

    def render(self) -> str:
        if not self.peaks:
            return "-- no memory accounted"
        return "\n".join(
            f"{name:<36} {kb:>10.1f} KiB"
            for name, kb in self.peaks_kb().items()
        )

    def __len__(self) -> int:
        return len(self.peaks)


def format_profile(profile: Profile,
                   memory: Optional[MemoryAccountant] = None) -> str:
    """The human ``fg profile`` / REPL ``:profile`` report."""
    parts = ["-- hot paths (by call count; incl = with children):",
             profile.render()]
    if memory is not None and len(memory):
        parts.append("-- peak memory by stage:")
        parts.append(memory.render())
    return "\n".join(parts)
