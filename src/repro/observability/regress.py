"""Bench-trajectory records and the performance regression gate.

``BENCH_<tag>.json`` files used to be written once and never read.  This
module gives them a versioned schema and a memory: a **bench record** is
one run's benchmark medians, deterministic metrics snapshot, hot-path
profile, and per-stage peak memory, stamped with schema/version/git
metadata; :func:`compare_records` pairs two records by benchmark name and
turns the median deltas into a verdict table (``ok`` / ``regressed`` /
``improved`` / ``new`` / ``missing``) with a noise threshold, which the
``fg bench --compare`` subcommand and the CI perf gate translate into an
exit code.

Producers of the record shape:

- ``benchmarks/conftest.py`` — the pytest-benchmark session writer;
- ``fg bench`` — :func:`run_bench_suite`, a self-contained suite over the
  paper's two algorithmic hot paths (congruence closure, §4, and
  dictionary-passing translation, §5) plus the crash-resilience fuzzer's
  per-iteration timings (:func:`fuzz_benchmark_row`);
- :func:`build_record` — the one constructor both go through, so the two
  writers cannot drift.

Everything is standard library only; the comparator never imports the
pipeline, so it stays importable in a bare CI step.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: The record format this module reads and writes.
BENCH_SCHEMA = "repro/bench-record"
BENCH_VERSION = 1

#: Default regression threshold: a benchmark median must grow past this
#: multiple of its old value to count as regressed (generous, to dodge
#: shared-runner noise).
DEFAULT_THRESHOLD = 1.5

#: Medians below this (seconds) are pure timer noise; deltas between two
#: sub-floor medians never regress.
DEFAULT_NOISE_FLOOR_S = 0.0005


def default_tag() -> str:
    """The bench tag: ``$BENCH_TAG`` if set, else today's date."""
    return os.environ.get("BENCH_TAG") or time.strftime("%Y%m%d")


def record_path(tag: str, root: Path) -> Path:
    """Where a record for ``tag`` lives under ``root``."""
    return Path(root) / f"BENCH_{tag}.json"


def git_meta() -> Dict[str, Optional[str]]:
    """Best-effort ``{"commit", "branch"}`` — ``None`` outside a checkout."""
    import subprocess

    def run(*argv: str) -> Optional[str]:
        try:
            out = subprocess.run(
                argv, capture_output=True, text=True, timeout=5,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        return out.stdout.strip() or None if out.returncode == 0 else None

    return {
        "commit": run("git", "rev-parse", "HEAD"),
        "branch": run("git", "rev-parse", "--abbrev-ref", "HEAD"),
    }


def build_record(
    tag: str,
    benchmarks: Sequence[Dict[str, object]],
    *,
    metrics: Optional[Dict[str, object]] = None,
    profile: Optional[Dict[str, object]] = None,
    memory_peak_kb: Optional[Dict[str, float]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble one versioned bench record (the only record constructor).

    ``benchmarks`` rows carry at least ``name`` and ``median_s``; rows
    without a usable median are kept (they round-trip) but the comparator
    skips them.
    """
    import platform

    record: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "version": BENCH_VERSION,
        "tag": tag,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git": git_meta(),
        "python": platform.python_version(),
        "benchmarks": list(benchmarks),
        "metrics": metrics,
        "profile": profile,
        "memory_peak_kb": memory_peak_kb,
    }
    if extra:
        record.update(extra)
    return record


def write_record(record: Dict[str, object], path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path


def load_record(path) -> Dict[str, object]:
    """Load a bench record, normalizing pre-schema (PR 3) payloads.

    The legacy ``BENCH_pr3.json`` shape (``{"pr": 3, "benchmarks": [...],
    "instrumented_run": {...}}``) is lifted into a v1 record so the gate
    can compare today's run against the committed history.  An
    unrecognizably-shaped file raises ``ValueError`` with the path.
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or "benchmarks" not in payload:
        raise ValueError(f"{path}: not a bench record (no benchmarks key)")
    if payload.get("schema") == BENCH_SCHEMA:
        version = payload.get("version")
        if version != BENCH_VERSION:
            raise ValueError(
                f"{path}: bench-record version {version!r} is not "
                f"supported (this build reads version {BENCH_VERSION})"
            )
        return payload
    # Legacy (pre-schema) payload: adapt in place.
    run = payload.get("instrumented_run") or {}
    return {
        "schema": BENCH_SCHEMA,
        "version": BENCH_VERSION,
        "tag": payload.get("tag") or f"pr{payload.get('pr', '?')}",
        "created": None,
        "git": {"commit": None, "branch": None},
        "python": None,
        "benchmarks": payload["benchmarks"],
        "metrics": run.get("stats"),
        "profile": None,
        "memory_peak_kb": None,
    }


# ---------------------------------------------------------------------------
# The comparator
# ---------------------------------------------------------------------------

#: Verdicts, in severity order for rendering.
VERDICTS = ("regressed", "missing", "new", "improved", "ok")


@dataclass(frozen=True)
class CompareRow:
    """One benchmark's pairing across two records."""

    name: str
    old_median_s: Optional[float]
    new_median_s: Optional[float]
    ratio: Optional[float]
    verdict: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "old_median_s": self.old_median_s,
            "new_median_s": self.new_median_s,
            "ratio": self.ratio,
            "verdict": self.verdict,
        }


@dataclass(frozen=True)
class Comparison:
    """The verdict table for one OLD-vs-NEW record pairing."""

    old_tag: str
    new_tag: str
    threshold: float
    noise_floor_s: float
    rows: List[CompareRow] = field(default_factory=list)

    @property
    def regressions(self) -> List[CompareRow]:
        return [r for r in self.rows if r.verdict == "regressed"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        """The gate's contract: 0 clean, 1 when anything regressed."""
        return 0 if self.ok else 1

    def to_json(self) -> Dict[str, object]:
        return {
            "old_tag": self.old_tag,
            "new_tag": self.new_tag,
            "threshold": self.threshold,
            "noise_floor_s": self.noise_floor_s,
            "ok": self.ok,
            "verdict": "ok" if self.ok else "regressed",
            "rows": [r.to_dict() for r in self.rows],
        }

    def render(self) -> str:
        """The human verdict table, worst verdicts first."""
        if not self.rows:
            return "-- no benchmarks to compare"

        def fmt_s(value: Optional[float]) -> str:
            return f"{value * 1e3:.3f}" if value is not None else "-"

        lines = [
            f"bench trajectory: {self.old_tag} -> {self.new_tag} "
            f"(threshold {self.threshold}x)",
            f"{'benchmark':<42} {'old ms':>10} {'new ms':>10} "
            f"{'ratio':>7}  verdict",
        ]
        order = {v: i for i, v in enumerate(VERDICTS)}
        for row in sorted(self.rows,
                          key=lambda r: (order[r.verdict], r.name)):
            ratio = f"{row.ratio:.2f}" if row.ratio is not None else "-"
            lines.append(
                f"{row.name:<42} {fmt_s(row.old_median_s):>10} "
                f"{fmt_s(row.new_median_s):>10} {ratio:>7}  {row.verdict}"
            )
        n_reg = len(self.regressions)
        lines.append(
            "verdict: ok" if self.ok
            else f"verdict: REGRESSED ({n_reg} benchmark"
                 f"{'s' if n_reg != 1 else ''} past {self.threshold}x)"
        )
        return "\n".join(lines)


def _medians(record: Dict[str, object]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for row in record.get("benchmarks", ()) or ():
        name, median = row.get("name"), row.get("median_s")
        if isinstance(name, str) and isinstance(median, (int, float)):
            out[name] = float(median)
    return out


def compare_records(
    old: Dict[str, object],
    new: Dict[str, object],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor_s: float = DEFAULT_NOISE_FLOOR_S,
) -> Comparison:
    """Pair two records by benchmark name and judge every median delta.

    - both medians present: ``regressed`` when ``new > old * threshold``
      *and* the new median clears the noise floor; ``improved`` when it
      shrank by the same factor; else ``ok``;
    - only in ``old``: ``missing`` (the benchmark disappeared — visible,
      but not a gate failure on its own);
    - only in ``new``: ``new`` (no history yet).
    """
    old_m, new_m = _medians(old), _medians(new)
    rows: List[CompareRow] = []
    for name in sorted(set(old_m) | set(new_m)):
        o, n = old_m.get(name), new_m.get(name)
        if o is None:
            rows.append(CompareRow(name, None, n, None, "new"))
            continue
        if n is None:
            rows.append(CompareRow(name, o, None, None, "missing"))
            continue
        ratio = (n / o) if o > 0 else None
        if (ratio is not None and ratio > threshold
                and n > noise_floor_s):
            verdict = "regressed"
        elif ratio is not None and ratio < 1 / threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        rows.append(CompareRow(name, o, n, ratio, verdict))
    return Comparison(
        old_tag=str(old.get("tag", "?")),
        new_tag=str(new.get("tag", "?")),
        threshold=threshold,
        noise_floor_s=noise_floor_s,
        rows=rows,
    )


# ---------------------------------------------------------------------------
# The built-in suite behind ``fg bench``
# ---------------------------------------------------------------------------


def _int_list_src(n: int) -> str:
    out = "nil[int]"
    for i in reversed(range(n)):
        out = f"cons[int]({i}, {out})"
    return out


def _figure5(n: int) -> str:
    """The paper's Figure 5 ``accumulate`` (dictionary-passing hot path)."""
    return rf"""
    concept Semigroup<t> {{ binary_op : fn(t, t) -> t; }} in
    concept Monoid<t> {{ refines Semigroup<t>; identity_elt : t; }} in
    let accumulate = /\t where Monoid<t>.
      fix (\accum : fn(list t) -> t.
        \ls : list t.
          if null[t](ls) then Monoid<t>.identity_elt
          else Monoid<t>.binary_op(car[t](ls), accum(cdr[t](ls)))) in
    model Semigroup<int> {{ binary_op = iadd; }} in
    model Monoid<int> {{ identity_elt = 0; }} in
    accumulate[int]({_int_list_src(n)})
    """


def _congruence_src(chains: int) -> str:
    """Same-type constraint chains: the congruence-closure hot path (§4)."""
    vars_ = [f"t{i}" for i in range(chains)]
    eqs = ", ".join(f"t{i} == t{i + 1}" for i in range(chains - 1))
    wheres = ", ".join(f"Eq<{v}>" for v in vars_)
    apps = ", ".join("int" for _ in vars_)
    return rf"""
    concept Eq<t> {{ eq : fn(t, t) -> bool; }} in
    model Eq<int> {{ eq = ieq; }} in
    let chain = /\{", ".join(vars_)} where {wheres}, {eqs}.
      \x : t0. \y : t{chains - 1}. Eq<t0>.eq(x, y) in
    chain[{apps}](1)(1)
    """


def fuzz_benchmark_row(fuzz_stats: Dict[str, object],
                       name: str = "fuzz.iteration") -> Dict[str, object]:
    """A benchmark row from :func:`repro.testing.run_fuzz` timing output.

    The fuzzer times every mutant's trip through the pipeline; its
    ``stats["timing"]`` summary feeds the same record shape as any other
    benchmark, so fuzz throughput rides the same regression gate.
    """
    timing = fuzz_stats.get("timing") or {}
    return {
        "name": name,
        "group": "fuzz",
        "rounds": fuzz_stats.get("mutants", 0),
        "mean_s": timing.get("iter_mean_s"),
        "median_s": timing.get("iter_median_s"),
        "stddev_s": timing.get("iter_stddev_s"),
        "min_s": timing.get("iter_min_s"),
        "max_s": timing.get("iter_max_s"),
    }


def _isolation_corpus() -> List[Tuple[str, str]]:
    """The ``examples/fg`` corpus for the isolation-mode comparison.

    Falls back to synthetic Figure 5 programs when the checkout's example
    directory is absent (installed-package runs), so the benchmark names
    stay stable either way.
    """
    examples = Path(__file__).resolve().parents[3] / "examples" / "fg"
    if examples.is_dir():
        items = [
            (path.name, path.read_text())
            for path in sorted(examples.glob("*.fg"))
        ]
        if items:
            return items
    return [(f"fig5_{n}.fg", _figure5(n)) for n in (4, 8, 16, 24, 32, 48)]


def isolation_benchmark_rows(
    rounds: int,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, object]]:
    """Time the same batch under subprocess vs pool isolation.

    The pair of rows is the pool's reason to exist in one number: the
    subprocess wall pays one interpreter spawn *per attempt*, the pool
    pays ``pool_workers`` spawns *per batch* and reuses the warm workers.
    Both run the ``examples/fg`` corpus with parallelism 2 and no fault
    schedule, so the delta is pure isolation overhead.
    """
    from repro.service import BatchPolicy, RetryPolicy, check_batch

    items = _isolation_corpus()
    rows: List[Dict[str, object]] = []
    for name, overrides in (
        ("batch.isolate_subprocess", {"isolate": "subprocess"}),
        ("batch.isolate_pool", {"isolate": "pool", "pool_workers": 2}),
    ):
        policy = BatchPolicy(
            jobs=2, deadline_ms=30_000.0,
            retry=RetryPolicy(max_retries=0), **overrides,
        )
        if progress:
            progress(f"bench {name} ({rounds} rounds, "
                     f"{len(items)} files)")

        def run(policy: BatchPolicy = policy) -> None:
            check_batch(items, policy)

        rows.append(_timed_row(name, "isolation", run, rounds))
    return rows


def serve_benchmark_rows(
    rounds: int,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, object]]:
    """Time a warm ``fg serve`` round trip against the isolation corpus.

    ``batch.isolate_pool`` pays ``pool_workers`` interpreter spawns *per
    batch*; the daemon pays them once per lifetime.  This row times a full
    client round trip (connect, frame, check on the already-warm pool,
    response) against the same corpus and policy, so the pair
    ``serve.warm_request`` vs ``batch.isolate_pool`` is the daemon's
    amortization argument in one comparison.  One unmeasured warm-up
    request runs first so every measured round hits warm workers.

    Three companion rows price the PR-8 telemetry: ``serve.stats_request``
    times the memory-only live-stats probe (it must stay orders of
    magnitude under a batch round trip — it is served on the accept
    loop), and ``serve.warm_request_traced`` repeats the round trip
    against a daemon with full instrumentation, so the tracing-on vs
    tracing-off delta (span shipping, clock normalization, grafting) is
    one comparison in every record.
    """
    import os
    import tempfile
    import threading

    from repro.observability import (
        Instrumentation, MetricsRegistry, Tracer,
    )
    from repro.service import (
        BatchPolicy,
        RetryPolicy,
        ServeOptions,
        Server,
        check_remote,
        request_shutdown,
        stats,
    )

    items = _isolation_corpus()
    rows: List[Dict[str, object]] = []
    for name, instrumented in (
        ("serve.warm_request", False),
        ("serve.warm_request_traced", True),
    ):
        policy = BatchPolicy(
            jobs=2, deadline_ms=30_000.0, retry=RetryPolicy(max_retries=0),
            isolate="pool", pool_workers=2,
        )
        instrumentation = (
            Instrumentation(tracer=Tracer(), metrics=MetricsRegistry())
            if instrumented else None
        )
        with tempfile.TemporaryDirectory(
            prefix="fgbench", dir="/tmp"  # AF_UNIX paths must stay short
        ) as tmp:
            options = ServeOptions(socket_path=os.path.join(tmp, "fg.sock"))
            server = Server(policy, options, instrumentation)
            thread = threading.Thread(target=server.serve, daemon=True)
            thread.start()
            if not server.ready.wait(20.0):
                raise RuntimeError("bench daemon never became ready")
            try:
                check_remote(options.socket_path, items, timeout=120.0)
                if progress:
                    progress(f"bench {name} ({rounds} rounds, "
                             f"{len(items)} files)")

                def run() -> None:
                    response = check_remote(
                        options.socket_path, items, timeout=120.0,
                    )
                    assert response.get("type") == "report", response

                rows.append(_timed_row(name, "isolation", run, rounds))
                if not instrumented:
                    stats_rounds = rounds * 10
                    if progress:
                        progress(f"bench serve.stats_request "
                                 f"({stats_rounds} rounds)")

                    def probe() -> None:
                        snapshot = stats(options.socket_path, timeout=30.0)
                        assert snapshot.get("type") == "stats", snapshot

                    rows.append(_timed_row("serve.stats_request", "serve",
                                           probe, stats_rounds))
            finally:
                request_shutdown(options.socket_path)
                thread.join(timeout=30.0)
    return rows


def flightrec_benchmark_rows(
    rounds: int,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, object]]:
    """Time an instrumented check with the flight recorder on vs ring 0.

    ``flightrec.overhead`` runs with the default ring capacity (every
    span, metric sample, and resolution lands in the recorder);
    ``flightrec.baseline_ring0`` runs the identical workload with a
    :class:`~repro.observability.flightrec.NullFlightRecorder`
    installed.  The pair pins the "near-zero overhead" claim: the
    recorder-on median rides the same 1.5x regression gate as every
    other row, against a baseline measured in the same process.
    """
    from repro.observability import (
        Instrumentation, MetricsRegistry, Tracer, flightrec,
    )
    from repro.observability.flightrec import NullFlightRecorder
    from repro.pipeline import check_source

    source = _figure5(16)

    def checked(rec) -> Callable[[], None]:
        def run() -> None:
            previous = flightrec.install(rec)
            try:
                inst = Instrumentation(
                    tracer=Tracer(), metrics=MetricsRegistry(),
                )
                outcome = check_source(
                    source, "<flightrec-bench>", instrumentation=inst,
                )
                assert outcome.ok, "flightrec bench program must check"
            finally:
                flightrec.install(previous)
        return run

    rows: List[Dict[str, object]] = []
    for name, rec in (
        ("flightrec.overhead", flightrec.FlightRecorder()),
        ("flightrec.baseline_ring0", NullFlightRecorder()),
    ):
        if progress:
            progress(f"bench {name} ({rounds} rounds)")
        rows.append(_timed_row(name, "flightrec", checked(rec), rounds))
    return rows


def _timed_row(name: str, group: str, fn: Callable[[], None],
               rounds: int) -> Dict[str, object]:
    samples: List[float] = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return {
        "name": name,
        "group": group,
        "rounds": rounds,
        "mean_s": statistics.fmean(samples),
        "median_s": statistics.median(samples),
        "stddev_s": statistics.stdev(samples) if len(samples) > 1 else 0.0,
        "min_s": min(samples),
        "max_s": max(samples),
    }


def run_bench_suite(
    *,
    rounds: int = 5,
    fuzz_mutants: int = 25,
    isolation_rounds: int = 2,
    progress: Optional[Callable[[str], None]] = None,
) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """The self-contained ``fg bench`` suite over the paper's hot paths.

    Returns ``(benchmark_rows, instrumented)`` where ``instrumented`` has
    the one fully observed run's ``metrics``/``profile``/``memory_peak_kb``
    for :func:`build_record`.  Deterministic work, wall-clock timings.
    ``isolation_rounds`` controls the subprocess-vs-pool batch comparison
    (:func:`isolation_benchmark_rows`) and the warm-daemon round trip
    (:func:`serve_benchmark_rows`); both spawn real worker processes, so
    ``0`` skips them.
    """
    from repro.diagnostics.limits import resource_scope
    from repro.observability import (
        Instrumentation, MemoryAccountant, MetricsRegistry, Tracer,
    )
    from repro.observability.profiler import profile_tracer
    from repro.pipeline import check_source
    from repro.testing import run_fuzz

    fig5_check, fig5_eval = _figure5(16), _figure5(64)
    congruence = _congruence_src(8)

    def checked(src: str, **kw) -> None:
        outcome = check_source(src, "<bench>", **kw)
        assert outcome.ok, outcome.report.render()

    cases: List[Tuple[str, str, Callable[[], None]]] = [
        ("check.fig5_accumulate", "pipeline",
         lambda: checked(fig5_check)),
        ("translate.dictionary_passing", "pipeline",
         lambda: checked(fig5_check, verify=True)),
        ("evaluate.fig5_n64", "pipeline",
         lambda: checked(fig5_eval, evaluate=True)),
        ("congruence.same_type_chain", "congruence",
         lambda: checked(congruence)),
    ]
    rows: List[Dict[str, object]] = []
    with resource_scope():
        for name, group, fn in cases:
            if progress:
                progress(f"bench {name} ({rounds} rounds)")
            rows.append(_timed_row(name, group, fn, rounds))
        rows.extend(flightrec_benchmark_rows(rounds, progress))
        if fuzz_mutants > 0:
            if progress:
                progress(f"bench fuzz.iteration ({fuzz_mutants} mutants)")
            rows.append(fuzz_benchmark_row(
                run_fuzz(mutants=fuzz_mutants, seed=0, verify=False)
            ))

        # One fully observed run: metrics + hot-path profile + memory.
        if progress:
            progress("instrumented run (profile + memory accounting)")
        inst = Instrumentation(
            tracer=Tracer(), metrics=MetricsRegistry(),
            memory=MemoryAccountant(),
        )
        outcome = check_source(
            fig5_eval, "<bench>", evaluate=True, verify=True,
            instrumentation=inst,
        )
    # Worker processes are spawned outside the resource scope: the rlimit
    # fence is per-process policy, not something to time the pool against.
    if isolation_rounds > 0:
        rows.extend(isolation_benchmark_rows(isolation_rounds, progress))
        rows.extend(serve_benchmark_rows(isolation_rounds, progress))
    instrumented = {
        "metrics": outcome.stats,
        "profile": profile_tracer(inst.tracer).to_json(),
        "memory_peak_kb": inst.memory.peaks_kb(),
    }
    return rows, instrumented
