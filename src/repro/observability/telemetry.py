"""Cross-process telemetry: wire-format span trees, clock normalization,
rolling-window reservoirs, daemon telemetry, and the operational event log.

The observability layer (tracer/metrics/explain) is process-local by
design; isolation walls (``--isolate=subprocess|pool``) would otherwise
swallow everything the worker saw.  This module is the bridge:

- :func:`spans_to_wire` serializes a worker tracer's span forest into the
  JSON-safe list a result frame carries back;
- :func:`clock_offset_ns` estimates the offset between the coordinator's
  and a worker's ``perf_counter_ns`` clocks (which share no epoch) from
  the dispatch/receive bracket, midpoint method;
- :func:`graft_spans` rebuilds a wire span forest inside the coordinator
  tracer — fresh ids, normalized timestamps, explicit parent — so a single
  Chrome trace shows daemon, supervisor, and worker work on one timeline;
- :class:`WindowReservoir` keeps the last *N* samples for rolling
  p50/p95/p99 percentiles (a daemon must answer "how slow are requests
  *lately*", not since boot);
- :class:`ServerTelemetry` aggregates per-request latency, queue wait,
  busy time, and shed counts behind one lock for the ``stats`` request;
- :class:`OpsLog` is the append-only operational event log (worker
  spawn/loss/respawn/retire, shed, drain, resume, journal rotation) with
  monotonic sequence numbers, mirrored to JSONL on disk.

None of this touches report canonicalization: telemetry rides in frames
and merges into coordinator-side instrumentation only, so byte-identical
digest guarantees (journal resume, chaos cross-round) hold by
construction.  Standard library only, like the rest of the package.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.observability import flightrec
from repro.observability.tracer import Span, Tracer


# ---------------------------------------------------------------------------
# Wire span trees and clock normalization


def spans_to_wire(tracer) -> List[Dict[str, object]]:
    """Serialize a tracer's span forest for a result frame.

    Preorder, parent-linked by the *worker's* span ids; still-open spans
    (a crash mid-stage) are closed at their own start so durations stay
    non-negative.  JSON-unsafe attribute values are stringified.
    """
    wire: List[Dict[str, object]] = []
    for span in tracer.spans:
        attrs: Dict[str, object] = {}
        for key, value in span.attrs.items():
            if isinstance(value, (str, int, float, bool)) or value is None:
                attrs[key] = value
            else:
                attrs[key] = str(value)
        wire.append({
            "id": span.id,
            "parent": span.parent_id,
            "name": span.name,
            "start_ns": span.start_ns,
            "end_ns": span.end_ns if span.end_ns is not None
                      else span.start_ns,
            "attrs": attrs,
        })
    return wire


def clock_offset_ns(send_ns: int, recv_ns: int,
                    remote_start_ns: int, remote_end_ns: int) -> int:
    """Offset mapping a worker's ``perf_counter_ns`` into coordinator time.

    ``perf_counter_ns`` has an arbitrary per-process epoch, so worker
    timestamps are meaningless on the coordinator timeline as-is.  The
    worker brackets its work with ``remote_start_ns``/``remote_end_ns``;
    the coordinator brackets the same work with dispatch ``send_ns`` and
    receive ``recv_ns``.  Aligning the two midpoints splits the transport
    cost evenly across both directions (the classic NTP assumption)::

        offset = midpoint(send, recv) - midpoint(remote_start, remote_end)

    Adding ``offset`` to any worker timestamp lands it inside the
    coordinator's dispatch..receive window, up to asymmetric queueing.
    """
    local_mid = (send_ns + recv_ns) // 2
    remote_mid = (remote_start_ns + remote_end_ns) // 2
    return local_mid - remote_mid


def graft_spans(
    tracer: Tracer,
    wire_spans: List[Dict[str, object]],
    *,
    offset_ns: int = 0,
    parent: Optional[Span] = None,
    clamp: Optional[tuple] = None,
    extra_attrs: Optional[Dict[str, object]] = None,
) -> int:
    """Rebuild a wire span forest inside ``tracer`` under ``parent``.

    Worker span ids are remapped to fresh coordinator ids (the two
    processes share no id space); ``offset_ns`` (from
    :func:`clock_offset_ns`) normalizes every timestamp, and ``clamp``
    — ``(lo_ns, hi_ns)``, typically the dispatch..receive bracket — caps
    residual clock skew so grafted spans never escape their parent
    visually.  ``extra_attrs`` (e.g. ``pid``) is merged into every
    grafted span.  Returns the number of spans grafted.
    """
    if not wire_spans:
        return 0
    by_old_id: Dict[object, Span] = {}
    grafted = 0
    for wire in wire_spans:
        start = int(wire.get("start_ns", 0)) + offset_ns
        end = int(wire.get("end_ns", wire.get("start_ns", 0))) + offset_ns
        if clamp is not None:
            lo, hi = clamp
            start = min(max(start, lo), hi)
            end = min(max(end, lo), hi)
        if end < start:
            end = start
        attrs = dict(wire.get("attrs") or {})
        if extra_attrs:
            attrs.update(extra_attrs)
        span_parent = by_old_id.get(wire.get("parent"), parent)
        span = tracer.adopt(
            str(wire.get("name", "?")), start, end,
            parent=span_parent, attrs=attrs,
        )
        by_old_id[wire.get("id")] = span
        grafted += 1
    return grafted


def merge_worker_telemetry(
    instrumentation,
    telemetry: Optional[Dict[str, object]],
    *,
    send_ns: int,
    recv_ns: int,
    span_name: str = "worker.attempt",
    parent: Optional[Span] = None,
    attrs: Optional[Dict[str, object]] = None,
) -> None:
    """Fold one result frame's telemetry into coordinator instrumentation.

    The single stitch point both isolation walls share: merge the metrics
    delta into the coordinator registry (this is how worker-side
    ``typecheck.*``/``congruence.*`` counters survive worker death — every
    *completed* task merged at result time, nothing hostage to the worker
    process), re-append explain entries, and graft the span tree under a
    synthetic ``span_name`` span covering the dispatch..receive bracket.
    """
    if not telemetry or instrumentation is None:
        return
    metrics = getattr(instrumentation, "metrics", None)
    if metrics is not None and telemetry.get("metrics"):
        metrics.merge_snapshot(telemetry["metrics"])
    explain = getattr(instrumentation, "explain", None)
    if explain is not None and telemetry.get("explain"):
        explain.merge_json(telemetry["explain"])
    tracer = getattr(instrumentation, "tracer", None)
    if tracer is None or not tracer.enabled:
        return
    span_attrs = dict(attrs or {})
    pid = telemetry.get("pid")
    if pid is not None:
        span_attrs.setdefault("pid", pid)
    attempt = tracer.adopt(
        span_name, send_ns, recv_ns, parent=parent, attrs=span_attrs,
    )
    spans = telemetry.get("spans")
    if not spans:
        return
    clock = telemetry.get("clock") or {}
    start = clock.get("start_ns")
    end = clock.get("end_ns")
    offset = (
        clock_offset_ns(send_ns, recv_ns, int(start), int(end))
        if start is not None and end is not None else 0
    )
    extra = {"pid": pid} if pid is not None else None
    graft_spans(
        tracer, spans, offset_ns=offset, parent=attempt,
        clamp=(send_ns, recv_ns), extra_attrs=extra,
    )


def fold_worker_flightrec(
    rec,
    wire: Optional[Dict[str, object]],
    *,
    send_ns: Optional[int] = None,
    recv_ns: Optional[int] = None,
) -> int:
    """Fold a worker's shipped flight-recorder tail into a coordinator
    :class:`~repro.observability.flightrec.FlightRecorder`.

    Result frames carry a ``flightrec`` stanza (last few spans and ops
    events plus the worker's ``clock_ns``); the supervisor keeps the most
    recent stanza per seat so that when the worker later dies it still
    has the dead process's final execution state.  Timestamps are
    normalized with the same midpoint bracket :func:`clock_offset_ns`
    uses for grafted spans — ``clock_ns`` was taken at ship time, so the
    dispatch..receive bracket of the frame that carried it bounds the
    worker clock sample on the coordinator timeline.  Returns the number
    of ring entries folded.
    """
    if not wire or rec is None:
        return 0
    offset = 0
    clock = wire.get("clock_ns")
    if clock is not None and send_ns is not None and recv_ns is not None:
        offset = clock_offset_ns(send_ns, recv_ns, int(clock), int(clock))
    pid = wire.get("pid")
    folded = 0
    for span in wire.get("spans") or ():
        attrs = dict(span.get("attrs") or {})
        if pid is not None:
            attrs.setdefault("worker_pid", pid)
        rec.record_span(
            str(span.get("name", "?")),
            int(span.get("start_ns", 0)) + offset,
            int(span.get("end_ns", span.get("start_ns", 0))) + offset,
            attrs,
        )
        folded += 1
    for event in wire.get("ops") or ():
        record = dict(event)
        if pid is not None:
            record.setdefault("worker_pid", pid)
        rec.record_event(record)
        folded += 1
    return folded


# ---------------------------------------------------------------------------
# Rolling-window reservoirs


class WindowReservoir:
    """The last ``capacity`` observations, with rank-based percentiles.

    A daemon that has served a million requests must answer "what is p95
    *now*", not "since boot" — a streaming count/sum/min/max histogram
    cannot forget, so stats requests read percentiles from this bounded
    ring instead.  ``observe`` is O(1); ``percentile`` sorts a copy of the
    window (bounded by ``capacity``, fine for a stats endpoint hit by
    humans and scrapers, not per-request).
    """

    __slots__ = ("_window", "count", "total")

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self._window = deque(maxlen=capacity)
        #: Observations ever made (the window only keeps the tail).
        self.count = 0
        #: Running sum of *all* observations (for lifetime means).
        self.total = 0.0

    def observe(self, value: float) -> None:
        self._window.append(float(value))
        self.count += 1
        self.total += float(value)

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile over the current window (``q`` in 0..100);
        ``None`` while the window is empty."""
        if not self._window:
            return None
        ordered = sorted(self._window)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready rolling view: window occupancy plus p50/p95/p99."""
        return {
            "count": self.count,
            "window": len(self._window),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": max(self._window) if self._window else None,
        }

    def __len__(self) -> int:
        return len(self._window)


class ServerTelemetry:
    """Thread-safe rolling telemetry for one daemon process.

    The accept loop (main thread) answers ``stats`` requests from this
    object while the executor thread feeds it, so every access takes the
    internal lock; all operations are O(window) or better and never touch
    the filesystem — the ``stats`` request cannot block the accept loop
    on anything slower than a short critical section.
    """

    def __init__(self, *, workers: int = 1, window: int = 512):
        self._lock = threading.Lock()
        self._workers = max(1, workers)
        self._started = time.monotonic()
        self.latency_ms = WindowReservoir(window)
        self.queue_wait_ms = WindowReservoir(window)
        self._busy_s = 0.0
        self._shed_total = 0
        self._respawns = 0

    def observe_request(self, *, latency_ms: float, queue_wait_ms: float,
                        busy_s: float) -> None:
        """Record one completed request (terminal response written)."""
        with self._lock:
            self.latency_ms.observe(latency_ms)
            self.queue_wait_ms.observe(queue_wait_ms)
            self._busy_s += max(0.0, busy_s)

    def record_shed(self) -> None:
        with self._lock:
            self._shed_total += 1

    def add_respawns(self, count: int) -> None:
        if count:
            with self._lock:
                self._respawns += count

    @property
    def shed_total(self) -> int:
        with self._lock:
            return self._shed_total

    @property
    def respawns(self) -> int:
        with self._lock:
            return self._respawns

    def queue_wait_p95(self) -> Optional[float]:
        with self._lock:
            return self.queue_wait_ms.percentile(95)

    def snapshot(self) -> Dict[str, object]:
        """The rolling-telemetry half of a ``stats`` payload."""
        with self._lock:
            uptime_s = max(time.monotonic() - self._started, 1e-9)
            return {
                "uptime_ms": uptime_s * 1000.0,
                "latency_ms": self.latency_ms.snapshot(),
                "queue_wait_ms": self.queue_wait_ms.snapshot(),
                "shed_total": self._shed_total,
                "respawns": self._respawns,
                # Fraction of one worker-second consumed per wall second,
                # normalized by seats: 1.0 == every worker busy always.
                "worker_utilization": min(
                    1.0, self._busy_s / (uptime_s * self._workers)
                ),
            }


# ---------------------------------------------------------------------------
# Operational event log


class OpsLog:
    """Append-only operational event log with monotonic sequence numbers.

    Every lifecycle event the daemon or pool undergoes — worker spawn,
    loss, respawn, retirement, shed, drain, resume, journal rotation —
    lands here as one record: ``{"seq", "ts_ms", "event", ...fields}``.
    ``seq`` increases by exactly 1 per event, so a consumer tailing the
    file can detect gaps.  The in-memory ring serves ``fg client events``
    without touching disk; the JSONL mirror (when ``path`` is given) is
    opened in append mode and flushed per record, mirroring the journal's
    crash discipline (minus fsync — ops telemetry is advisory, reports
    are not).
    """

    def __init__(self, path: Optional[str] = None, *, ring: int = 256,
                 max_bytes: Optional[int] = None):
        self._lock = threading.Lock()
        self._ring = deque(maxlen=ring)
        self._seq = 0
        self.path = path
        #: Rotation threshold: when the file reaches this size, it is
        #: atomically renamed to ``<path>.1`` (one backup generation) and
        #: a fresh file opened, bounding a long-lived daemon's ops-log
        #: footprint at ~2×.  ``None`` disables rotation.
        self.max_bytes = max_bytes
        self._fh = open(path, "a", encoding="utf-8") if path else None

    def _maybe_rotate_locked(self) -> bool:
        """Rotate ``path`` → ``path.1`` when past ``max_bytes``.

        Called under the lock with the record that triggered the check
        not yet written, so the triggering record — and the synthetic
        ``ops-log-rotate`` marker before it — both land in the *new*
        file.  Never raises.
        """
        if (self._fh is None or self.max_bytes is None
                or self.max_bytes <= 0):
            return False
        try:
            if self._fh.tell() < self.max_bytes:
                return False
            self._fh.close()
            os.replace(self.path, self.path + ".1")
            self._fh = open(self.path, "a", encoding="utf-8")
            return True
        except OSError:
            # Rotation failure must not kill the log; try to keep the
            # handle usable (reopen best-effort).
            if self._fh is None or self._fh.closed:
                try:
                    self._fh = open(self.path, "a", encoding="utf-8")
                except OSError:
                    self._fh = None
            return False

    def emit(self, event: str, **fields) -> Dict[str, object]:
        """Record one event; returns the record (mostly for tests)."""
        with self._lock:
            if self._maybe_rotate_locked():
                self._seq += 1
                marker = {
                    "seq": self._seq,
                    "ts_ms": int(time.time() * 1000),
                    "event": "ops-log-rotate",
                    "backup": self.path + ".1",
                    "max_bytes": self.max_bytes,
                }
                self._ring.append(marker)
                flightrec.record_event(dict(marker))
                self._write_locked(marker)
            self._seq += 1
            record = {"seq": self._seq, "ts_ms": int(time.time() * 1000),
                      "event": event}
            record.update(fields)
            self._ring.append(record)
            flightrec.record_event(dict(record))
            self._write_locked(record)
            return record

    def _write_locked(self, record: Dict[str, object]) -> None:
        if self._fh is not None:
            try:
                self._fh.write(json.dumps(record, sort_keys=True) + "\n")
                self._fh.flush()
            except OSError:
                pass  # advisory log: never fail the daemon over it

    def tail(self, n: int = 20) -> List[Dict[str, object]]:
        """The most recent ``n`` events, oldest first."""
        with self._lock:
            if n <= 0:
                return []
            return [dict(r) for r in list(self._ring)[-n:]]

    @property
    def seq(self) -> int:
        with self._lock:
            return self._seq

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None

    def __enter__(self) -> "OpsLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_ops_log(path: str) -> List[Dict[str, object]]:
    """Parse an :class:`OpsLog` JSONL file back into records, file order.

    Tolerates a corrupt tail the same way journal replay does: a
    truncated final line (the process died mid-write) or interleaved
    junk bytes are skipped, and every parseable record before and after
    them survives.  An ops log is advisory — losing one torn record must
    never lose the history around it.

    Reads across the rotation boundary: when a ``<path>.1`` backup from
    :class:`OpsLog` rotation exists, its records come first, so the
    returned history is continuous (``seq`` keeps increasing through the
    boundary).
    """
    records: List[Dict[str, object]] = []
    for source in (path + ".1", path):
        if not os.path.exists(source):
            continue
        with open(source, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn write or junk: keep the rest
                if isinstance(record, dict):
                    records.append(record)
    return records
