"""Hierarchical, timed spans for the checking pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects — one per traced
operation — with monotonic ids, parent links, and ``perf_counter_ns``
timestamps.  The pipeline wraps its stages (parse, check, verify, evaluate)
in spans; the typechecker adds fine-grained spans for per-binding checks,
where-clause satisfaction, and model lookup; the congruence module adds
closure-construction and merge spans.

Tracing must be *near-free when off*: every instrumented module holds a
tracer that is the shared :data:`NULL_TRACER` by default, whose
:meth:`~NullTracer.span` returns one reusable no-op context manager (the
null-object pattern), and the hottest call sites additionally guard on
:attr:`Tracer.enabled` so no span ever allocates on the disabled path.
``tests/observability/test_overhead.py`` enforces the budget.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, List, Optional

from repro.observability.flightrec import record_span as _flightrec_span


class Span:
    """One timed operation: name, attributes, children, and nanosecond
    timestamps.  ``end_ns`` is ``None`` while the span is still open."""

    __slots__ = ("id", "name", "parent_id", "start_ns", "end_ns", "attrs",
                 "children")

    def __init__(self, id_: int, name: str, parent_id: Optional[int],
                 start_ns: int, attrs: Dict[str, object]):
        self.id = id_
        self.name = name
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.attrs = attrs
        self.children: List["Span"] = []

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds (0 while the span is still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def __repr__(self):
        return f"<span #{self.id} {self.name!r} {self.duration_ns}ns>"


class _SpanHandle:
    """Context manager that closes one span on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._finish(self._span)


class _NullHandle:
    """The reusable no-op context manager the null tracer hands out."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class Tracer:
    """Records a tree of timed spans.

    Spans nest by dynamic scope: ``tracer.span(...)`` opens a child of the
    innermost open span (or a new root) and the returned context manager
    closes it.  Exceptions propagate — a span that ends by exception is
    closed like any other, so the recovery machinery in the checker keeps
    the tree consistent.

    ``clock`` is injectable for deterministic tests; it must return
    monotonically non-decreasing integers (nanoseconds).
    """

    enabled = True

    __slots__ = ("_clock", "_next_id", "_stack", "roots", "_spans")

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns):
        self._clock = clock
        self._next_id = 1
        self._stack: List[Span] = []
        self.roots: List[Span] = []
        self._spans: List[Span] = []

    def span(self, name: str, /, **attrs) -> _SpanHandle:
        """Open a span; use as ``with tracer.span("check", file=f):``.

        ``name`` is positional-only so a span attribute may also be
        called ``name``.
        """
        parent = self._stack[-1] if self._stack else None
        span = Span(self._next_id, name,
                    parent.id if parent is not None else None,
                    self._clock(), attrs)
        self._next_id += 1
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._spans.append(span)
        self._stack.append(span)
        return _SpanHandle(self, span)

    def adopt(self, name: str, start_ns: int, end_ns: int, *,
              parent: Optional[Span] = None,
              attrs: Optional[Dict[str, object]] = None) -> Span:
        """Record an already-timed span (cross-process telemetry stitching).

        Unlike :meth:`span`, the caller supplies both timestamps and an
        explicit ``parent`` (``None`` adopts under the innermost open span,
        or as a new root).  The open-span stack is never touched — adopted
        spans are history, not dynamic scope — so grafting a worker's span
        tree cannot disturb live ``with tracer.span(...)`` nesting.
        """
        if parent is None:
            parent = self._stack[-1] if self._stack else None
        span = Span(self._next_id, name,
                    parent.id if parent is not None else None,
                    int(start_ns), dict(attrs or {}))
        span.end_ns = int(end_ns)
        self._next_id += 1
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._spans.append(span)
        _flightrec_span(name, span.start_ns, span.end_ns, span.attrs)
        return span

    def _finish(self, span: Span) -> None:
        span.end_ns = self._clock()
        _flightrec_span(span.name, span.start_ns, span.end_ns, span.attrs)
        # Normal exits pop exactly the top; pop defensively past any spans
        # a non-local exit (error recovery) left open below this one.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                return
            if top.end_ns is None:
                top.end_ns = span.end_ns

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` (cross-process dispatch
        stamps its id on task frames as the worker's logical parent)."""
        return self._stack[-1] if self._stack else None

    @property
    def spans(self) -> List[Span]:
        """Every span recorded so far, in creation (preorder) order."""
        return list(self._spans)

    def walk(self) -> Iterator[tuple]:
        """Yield ``(depth, span)`` pairs in tree preorder."""
        def go(span: Span, depth: int):
            yield depth, span
            for child in span.children:
                yield from go(child, depth + 1)

        for root in self.roots:
            yield from go(root, 0)

    def __len__(self) -> int:
        return len(self._spans)


class NullTracer:
    """The disabled tracer: a stateless null object.

    ``span`` returns one shared no-op context manager — no allocation, no
    timestamps.  Hot call sites should additionally guard on ``enabled``
    and skip building attribute dicts entirely.
    """

    enabled = False

    __slots__ = ()

    def span(self, name: str, /, **attrs) -> _NullHandle:
        return _NULL_HANDLE

    def adopt(self, name, start_ns, end_ns, *, parent=None, attrs=None):
        return None

    @property
    def current(self):
        return None

    @property
    def roots(self):
        return []

    @property
    def spans(self):
        return []

    def walk(self):
        return iter(())

    def __len__(self) -> int:
        return 0


#: The shared disabled tracer every instrumented module defaults to.
NULL_TRACER = NullTracer()
