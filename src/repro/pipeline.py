"""The fault-tolerant checking pipeline: lex → parse → check → run.

Library entry points (:func:`repro.fg_check` etc.) are fail-fast: they raise
the first :class:`~repro.diagnostics.Diagnostic`.  Tools want the opposite —
report *every* independent problem, never crash, and stay within resource
budgets.  :func:`check_source` is that driver:

- the resilient parser resynchronizes at statement boundaries, so several
  syntax errors surface in one run;
- :func:`~repro.fg.typecheck.typecheck_all` recovers at binding boundaries
  with the :data:`~repro.fg.ast.ERROR` poison type;
- everything runs under :func:`~repro.diagnostics.resource_scope`, so deep
  or diverging input becomes a :class:`ResourceLimitError` diagnostic and
  ``sys.getrecursionlimit()`` is untouched afterwards;
- the only exceptions that escape are genuine bugs — the crash-resilience
  suite (``tests/properties/test_crash_resilience.py``) fuzzes this contract.

:func:`inject_fault` plants an artificial internal error at a named stage so
the CLI's "internal error" path (exit code 3) is testable.  Fault state is
**thread-local**: a fault injected in one thread never fires in a batch
worker running concurrently in another.  :func:`current_faults` /
:func:`install_faults` move a fault table across a thread boundary on
purpose (the batch service does this for its watchdogged workers), and
:mod:`repro.service.faults` serializes declarative fault specs across the
subprocess boundary for ``isolate="subprocess"`` workers.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.diagnostics.errors import Diagnostic
from repro.diagnostics.limits import Budget, Limits, resource_scope
from repro.diagnostics.reporter import DiagnosticReport, DiagnosticReporter
from repro.fg import ast as G
from repro.observability import Instrumentation, NULL_TRACER
from repro.systemf import ast as F

#: Pipeline stages, in order; :func:`inject_fault` targets one by name.
STAGES = ("parse", "check", "evaluate", "verify")


class _FaultState(threading.local):
    """Per-thread fault table (stage name → exception or callable)."""

    def __init__(self):
        self.faults: Dict[str, object] = {}


_FAULT_STATE = _FaultState()

_MISSING = object()


@contextmanager
def inject_fault(stage: str, exc):
    """Fire ``exc`` when *this thread's* pipeline reaches ``stage``.

    ``exc`` is either an exception instance (raised at the stage) or a
    zero-argument callable (called at the stage — the chaos harness uses
    this to inject hangs via ``time.sleep``).  State is thread-local; use
    :func:`current_faults`/:func:`install_faults` to hand a fault table to
    a worker thread.  Nested injections at the same stage restore the outer
    fault on exit.
    """
    if stage not in STAGES:
        raise ValueError(f"unknown pipeline stage: {stage!r}")
    faults = _FAULT_STATE.faults
    prior = faults.get(stage, _MISSING)
    faults[stage] = exc
    try:
        yield
    finally:
        if prior is _MISSING:
            faults.pop(stage, None)
        else:
            faults[stage] = prior


def current_faults() -> Dict[str, object]:
    """A snapshot of the calling thread's fault table (for propagation)."""
    return dict(_FAULT_STATE.faults)


@contextmanager
def install_faults(faults: Optional[Dict[str, object]]):
    """Install a whole fault table in the current thread; restore on exit.

    Worker threads (and the subprocess child entry point) run their task
    under this so faults injected by the coordinating thread — or shipped
    in a chaos schedule — fire inside the isolated worker.
    """
    if not faults:
        yield
        return
    state = _FAULT_STATE.faults
    saved = dict(state)
    state.update(faults)
    try:
        yield
    finally:
        state.clear()
        state.update(saved)


def _maybe_fault(stage: str) -> None:
    fault = _FAULT_STATE.faults.get(stage)
    if fault is None:
        return
    if isinstance(fault, BaseException):
        raise fault
    fault()


@dataclass(frozen=True)
class CheckOutcome:
    """Everything one pipeline run produced.

    ``term``/``type_``/``translation`` are best-effort partial results and
    are only trustworthy when ``ok``; ``value`` is set when evaluation was
    requested and succeeded, ``verified`` when the Theorem 1/2 re-check was
    requested and passed.
    """

    report: DiagnosticReport
    term: Optional[G.Term] = None
    type_: Optional[G.FGType] = None
    translation: Optional[F.Term] = None
    value: object = None
    evaluated: bool = False
    verified: bool = False
    #: Observability snapshot (``None`` unless instrumentation was passed):
    #: ``{"timings_ms": {stage: ms, "total": ms}, "counters": {...},
    #: "histograms": {...}}`` plus ``"memory_peak_kb"`` per stage when a
    #: :class:`~repro.observability.MemoryAccountant` was threaded through —
    #: see docs/OBSERVABILITY.md for the catalog.
    stats: Optional[Dict[str, object]] = None
    #: The :class:`~repro.observability.ExplainLog` used for this run, when
    #: explain mode was on.
    explain: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.report.ok


@contextmanager
def _stage(name: str, tracer, timings: Optional[Dict[str, float]],
           memory=None):
    """Wrap one pipeline stage in a tracer span, optional timing, and
    (when a :class:`~repro.observability.MemoryAccountant` is threaded
    through) per-stage peak-memory accounting."""
    start = time.perf_counter_ns() if timings is not None else 0
    accounting = memory.stage(name) if memory is not None else nullcontext()
    with tracer.span(f"pipeline.{name}"), accounting:
        try:
            yield
        finally:
            if timings is not None:
                elapsed = (time.perf_counter_ns() - start) / 1e6
                timings[name] = round(timings.get(name, 0.0) + elapsed, 3)


def check_source(
    text: str,
    filename: str = "<input>",
    *,
    prelude: bool = False,
    ext: bool = False,
    max_errors: int = 20,
    limits: Optional[Limits] = None,
    evaluate: bool = False,
    verify: bool = False,
    instrumentation: Optional[Instrumentation] = None,
) -> CheckOutcome:
    """Run F_G source through the fault-tolerant pipeline.

    Never raises a :class:`Diagnostic`: all of them land in the returned
    outcome's report.  Any other exception escaping this function is a bug.

    When ``instrumentation`` is passed (see :mod:`repro.observability`),
    every stage runs under a tracer span, stage wall times and checker/
    evaluator metrics are snapshotted into ``outcome.stats``, and — with
    explain mode on — model resolutions land in ``outcome.explain``.
    """
    if instrumentation is None:
        return _run_stages(
            text, filename, prelude=prelude, ext=ext, max_errors=max_errors,
            limits=limits, evaluate=evaluate, verify=verify,
            tracer=NULL_TRACER, timings=None, instrumentation=None,
        )
    timings: Dict[str, float] = {}
    tracer = instrumentation.tracer
    total_start = time.perf_counter_ns()
    with tracer.span("pipeline.check_source", filename=filename):
        outcome = _run_stages(
            text, filename, prelude=prelude, ext=ext, max_errors=max_errors,
            limits=limits, evaluate=evaluate, verify=verify,
            tracer=tracer, timings=timings, instrumentation=instrumentation,
        )
    timings["total"] = round((time.perf_counter_ns() - total_start) / 1e6, 3)
    metrics = instrumentation.metrics
    stats: Dict[str, object] = {"timings_ms": timings}
    if instrumentation.memory is not None:
        stats["memory_peak_kb"] = instrumentation.memory.peaks_kb()
    if metrics is not None:
        for diag in outcome.report.diagnostics:
            metrics.inc(
                f"diagnostics.{getattr(diag, 'severity', 'error')}"
            )
        stats.update(metrics.snapshot())
    return replace(outcome, stats=stats, explain=instrumentation.explain)


def _run_stages(
    text: str,
    filename: str,
    *,
    prelude: bool,
    ext: bool,
    max_errors: int,
    limits: Optional[Limits],
    evaluate: bool,
    verify: bool,
    tracer,
    timings: Optional[Dict[str, float]],
    instrumentation: Optional[Instrumentation],
) -> CheckOutcome:
    from repro.syntax.parser_fg import parse_program_resilient

    memory = instrumentation.memory if instrumentation is not None else None
    reporter = DiagnosticReporter(max_errors=max_errors)
    if prelude:
        from repro.prelude import wrap

        text = wrap(text)
    _maybe_fault("parse")
    try:
        # The parser recurses on nesting depth; the scope converts a stack
        # overflow on pathological input into a ResourceLimitError.
        with _stage("parse", tracer, timings, memory), \
                resource_scope(limits):
            term, _ = parse_program_resilient(
                text, filename, max_errors=max_errors, reporter=reporter
            )
    except Diagnostic as err:
        # Lexer errors surface through the reporter; this is a backstop for
        # diagnostics raised outside the resilient loop.
        reporter.error(err)
        term = None
    if term is None or not reporter.finish().ok:
        return CheckOutcome(report=reporter.finish(), term=term)

    _maybe_fault("check")
    if ext:
        from repro.extensions import typecheck_all
    else:
        from repro.fg.typecheck import typecheck_all
    with _stage("check", tracer, timings, memory):
        type_, translation, _ = typecheck_all(
            term, limits=limits, reporter=reporter,
            instrumentation=instrumentation,
        )
    outcome = CheckOutcome(
        report=reporter.finish(),
        term=term,
        type_=type_,
        translation=translation,
    )
    if not outcome.ok or translation is None:
        return outcome

    verified = False
    if verify:
        _maybe_fault("verify")
        try:
            with _stage("verify", tracer, timings, memory):
                if ext:
                    from repro.extensions import verify_translation

                    verify_translation(term)
                else:
                    from repro.fg.typecheck import verify_translation

                    verify_translation(term)
            verified = True
        except Diagnostic as err:
            reporter.error(err)
            return CheckOutcome(
                report=reporter.finish(),
                term=term,
                type_=type_,
                translation=translation,
            )

    value = None
    evaluated = False
    if evaluate:
        _maybe_fault("evaluate")
        from repro.systemf import evaluate as sf_evaluate

        budget = Budget(limits)
        metrics = (
            instrumentation.metrics if instrumentation is not None else None
        )
        try:
            with _stage("evaluate", tracer, timings, memory):
                value = sf_evaluate(translation, budget=budget)
            evaluated = True
        except Diagnostic as err:
            reporter.error(err)
            return CheckOutcome(
                report=reporter.finish(),
                term=term,
                type_=type_,
                translation=translation,
                verified=verified,
            )
        finally:
            if metrics is not None:
                metrics.inc("eval.steps", budget.steps_taken)

    return CheckOutcome(
        report=reporter.finish(),
        term=term,
        type_=type_,
        translation=translation,
        value=value,
        evaluated=evaluated,
        verified=verified,
    )
