"""Prelude loading: wrap user programs with the standard concept library.

Usage::

    from repro import prelude
    value = prelude.run("accumulate[int](range(1, 11))")   # => 55
"""

from typing import Tuple

from repro.fg import ast as G
from repro.fg import typecheck as _typecheck
from repro.prelude.source import (
    PRELUDE,
    PRELUDE_ALGORITHMS,
    PRELUDE_CONCEPTS,
    PRELUDE_HELPERS,
    PRELUDE_MODELS,
)
from repro.syntax import parse_fg
from repro.systemf import ast as F
from repro.systemf import evaluate as _sf_evaluate


def wrap(program: str) -> str:
    """Prefix ``program`` with the full prelude."""
    return PRELUDE + "\n" + program


def parse(program: str, filename: str = "<input>") -> G.Term:
    """Parse ``program`` in the scope of the prelude."""
    return parse_fg(wrap(program), filename)


def typecheck(program: str) -> Tuple[G.FGType, F.Term]:
    """Typecheck (and translate) ``program`` in the scope of the prelude."""
    return _typecheck(parse(program))


def type_of(program: str) -> G.FGType:
    """The F_G type of ``program`` under the prelude."""
    return typecheck(program)[0]


def run(program: str):
    """Typecheck, translate, and evaluate ``program`` under the prelude."""
    _, sf_term = typecheck(program)
    return _sf_evaluate(sf_term)


__all__ = [
    "PRELUDE",
    "PRELUDE_ALGORITHMS",
    "PRELUDE_CONCEPTS",
    "PRELUDE_HELPERS",
    "PRELUDE_MODELS",
    "parse",
    "run",
    "type_of",
    "typecheck",
    "wrap",
]
