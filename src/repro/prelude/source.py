"""The F_G prelude: a standard library of concepts, models, and algorithms.

Because concepts and models in F_G are *expressions* with lexical scope
(the paper's headline design point), a "library" is a prefix that wraps the
user's program.  :data:`PRELUDE` ends where the user program begins; use
:func:`repro.prelude.wrap` to combine them.

Contents mirror the paper's examples and the generic-programming canon the
paper draws on (the STL/BGL lineage): algebraic concepts (Semigroup /
Monoid / Group), comparison concepts, Figure 1's ``Number`` with ``square``,
the section 5 ``Iterator`` / ``OutputIterator`` family, and generic
algorithms (``accumulate``, ``count``, ``copy``, ``find``, ``min_element``,
``merge``) written against those concepts.
"""

PRELUDE_CONCEPTS = r"""
// --- Algebraic concepts (paper section 3) -------------------------------
concept Semigroup<t> {
  binary_op : fn(t, t) -> t;
} in
concept Monoid<t> {
  refines Semigroup<t>;
  identity_elt : t;
} in
concept Group<t> {
  refines Monoid<t>;
  inverse : fn(t) -> t;
} in
// --- Comparison concepts --------------------------------------------------
concept EqualityComparable<t> {
  equal : fn(t, t) -> bool;
} in
concept LessThanComparable<t> {
  less : fn(t, t) -> bool;
} in
// --- Figure 1's Number concept ------------------------------------------
concept Number<u> {
  mult : fn(u, u) -> u;
} in
// --- Iterator family (paper section 5) -----------------------------------
concept Iterator<Iter> {
  types elt;
  next : fn(Iter) -> Iter;
  curr : fn(Iter) -> elt;
  at_end : fn(Iter) -> bool;
} in
concept OutputIterator<Out, t> {
  put : fn(Out, t) -> Out;
} in
"""

PRELUDE_ALGORITHMS = r"""
// --- Generic algorithms ----------------------------------------------------
// Figure 1: square, for any Number.
let square = /\t where Number<t>. \x : t. Number<t>.mult(x, x) in
// Figure 5: accumulate over a list, for any Monoid.
let accumulate = /\t where Monoid<t>.
  fix (\accum : fn(list t) -> t.
    \ls : list t.
      if null[t](ls) then Monoid<t>.identity_elt
      else Monoid<t>.binary_op(car[t](ls), accum(cdr[t](ls)))) in
// Section 5: accumulate over any iterator whose element type is a Monoid.
let accumulate_iter = /\Iter where Iterator<Iter>, Monoid<Iterator<Iter>.elt>.
  fix (\accum : fn(Iter) -> Iterator<Iter>.elt.
    \it : Iter.
      if Iterator<Iter>.at_end(it) then Monoid<Iterator<Iter>.elt>.identity_elt
      else Monoid<Iterator<Iter>.elt>.binary_op(
             Iterator<Iter>.curr(it),
             accum(Iterator<Iter>.next(it)))) in
// Count the elements an iterator ranges over.
let count = /\Iter where Iterator<Iter>.
  fix (\c : fn(Iter) -> int.
    \it : Iter.
      if Iterator<Iter>.at_end(it) then 0
      else iadd(1, c(Iterator<Iter>.next(it)))) in
// Section 5.2: copy from an iterator into an output iterator.
let copy = /\Iter, Out where Iterator<Iter>, OutputIterator<Out, Iterator<Iter>.elt>.
  fix (\cp : fn(Iter, Out) -> Out.
    \it : Iter, out : Out.
      if Iterator<Iter>.at_end(it) then out
      else cp(Iterator<Iter>.next(it),
              OutputIterator<Out, Iterator<Iter>.elt>.put(out, Iterator<Iter>.curr(it)))) in
// Linear search: true iff some element equals the probe.
let contains = /\Iter where Iterator<Iter>, EqualityComparable<Iterator<Iter>.elt>.
  fix (\f : fn(Iter, Iterator<Iter>.elt) -> bool.
    \it : Iter, probe : Iterator<Iter>.elt.
      if Iterator<Iter>.at_end(it) then false
      else if EqualityComparable<Iterator<Iter>.elt>.equal(Iterator<Iter>.curr(it), probe)
      then true
      else f(Iterator<Iter>.next(it), probe)) in
// Smallest element of a non-empty range.
let min_element = /\Iter where Iterator<Iter>, LessThanComparable<Iterator<Iter>.elt>.
  fix (\m : fn(Iter) -> Iterator<Iter>.elt.
    \it : Iter.
      let first = Iterator<Iter>.curr(it) in
      let rest = Iterator<Iter>.next(it) in
      if Iterator<Iter>.at_end(rest) then first
      else let rest_min = m(rest) in
           if LessThanComparable<Iterator<Iter>.elt>.less(first, rest_min)
           then first else rest_min) in
// Section 5: merge two sorted ranges into an output iterator.
let merge = /\Iter1, Iter2, Out
    where Iterator<Iter1>, Iterator<Iter2>,
          OutputIterator<Out, Iterator<Iter1>.elt>,
          LessThanComparable<Iterator<Iter1>.elt>;
          Iterator<Iter1>.elt == Iterator<Iter2>.elt.
  fix (\m : fn(Iter1, Iter2, Out) -> Out.
    \i1 : Iter1, i2 : Iter2, out : Out.
      if Iterator<Iter1>.at_end(i1) then
        copy[Iter2, Out](i2, out)
      else if Iterator<Iter2>.at_end(i2) then
        copy[Iter1, Out](i1, out)
      else if LessThanComparable<Iterator<Iter1>.elt>.less(
                Iterator<Iter1>.curr(i1), Iterator<Iter2>.curr(i2))
      then m(Iterator<Iter1>.next(i1), i2,
             OutputIterator<Out, Iterator<Iter1>.elt>.put(out, Iterator<Iter1>.curr(i1)))
      else m(i1, Iterator<Iter2>.next(i2),
             OutputIterator<Out, Iterator<Iter1>.elt>.put(out, Iterator<Iter2>.curr(i2)))) in
"""

PRELUDE_HELPERS = r"""
// --- Plain (concept-free) list helpers -----------------------------------
let reverse_int = fix (\r : fn(list int, list int) -> list int.
  \ls : list int, acc : list int.
    if null[int](ls) then acc
    else r(cdr[int](ls), cons[int](car[int](ls), acc))) in
let range = fix (\r : fn(int, int) -> list int.
  \lo : int, hi : int.
    if ige(lo, hi) then nil[int]
    else cons[int](lo, r(iadd(lo, 1), hi))) in
let length_int = fix (\len : fn(list int) -> int.
  \ls : list int.
    if null[int](ls) then 0 else iadd(1, len(cdr[int](ls)))) in
"""

PRELUDE_MODELS = r"""
// --- Default models -------------------------------------------------------
// Integers under addition (the paper's first Monoid example).
model Semigroup<int> { binary_op = iadd; } in
model Monoid<int> { identity_elt = 0; } in
model Group<int> { inverse = ineg; } in
model EqualityComparable<int> { equal = ieq; } in
model LessThanComparable<int> { less = ilt; } in
model EqualityComparable<bool> { equal = beq; } in
model Number<int> { mult = imult; } in
// Integer lists are iterators over ints (paper section 5)...
model Iterator<list int> {
  types elt = int;
  next = \ls : list int. cdr[int](ls);
  curr = \ls : list int. car[int](ls);
  at_end = \ls : list int. null[int](ls);
} in
// ... and output iterators built by consing (results come out reversed;
// pair with reverse_int when order matters).
model OutputIterator<list int, int> {
  put = \out : list int, x : int. cons[int](x, out);
} in
"""

#: The complete prelude, ready to be prefixed onto a program.
PRELUDE = (
    PRELUDE_CONCEPTS + PRELUDE_ALGORITHMS + PRELUDE_HELPERS + PRELUDE_MODELS
)
