"""``repro.service``: the fault-isolated batch checking service.

PR 1 made one ``check_source`` call fault-tolerant; this package protects a
*batch* of them from each other.  ``check_batch(sources, policy)`` runs
many checks under a worker pool with per-task deadlines (watchdog +
cooperative cancellation), optional subprocess isolation for
interpreter-killing failures, crash containment (worker death becomes a
structured ``CrashReport`` on that file's outcome while the rest of the
batch completes), a deterministic retry policy driven by a fault taxonomy
(deadline misses and crashes are transient and retryable; type errors are
results, never retried), and a circuit breaker that quarantines an input
after N consecutive failures.  Results aggregate into a ``BatchReport``
that is byte-identical across runs modulo timing fields.

Surfaces: the ``fg batch`` subcommand (``repro.tools.cli``) with the
extended exit-code contract (4 = deadline exhaustion, 5 = partial failure),
and the chaos harness :func:`repro.testing.run_chaos`, which replays
deterministic :class:`FaultSchedule` plans and asserts the batch always
terminates, never loses a result, and reports every injected fault exactly
once.  Schemas and exit codes are documented in docs/DIAGNOSTICS.md.
"""

from repro.service.batch import check_batch
from repro.service.faults import (
    CHAOS_KINDS,
    ChaosCrash,
    FAULT_CRASH,
    FAULT_DEADLINE,
    FAULT_WORKER_LOST,
    FaultSchedule,
    FaultSpec,
    WorkerKillSpec,
    is_retryable,
)
from repro.service.policy import ISOLATION_MODES, BatchPolicy, RetryPolicy
from repro.service.pool import PoolStats, run_pool_batch
from repro.service.report import (
    EXIT_DEADLINE,
    EXIT_PARTIAL,
    AttemptRecord,
    BatchReport,
    CrashReport,
    FileOutcome,
    TIMING_FIELDS,
    VOLATILE_POOL_FIELDS,
)
from repro.service.worker import run_with_deadline

__all__ = [
    "AttemptRecord",
    "BatchPolicy",
    "BatchReport",
    "CHAOS_KINDS",
    "ChaosCrash",
    "CrashReport",
    "EXIT_DEADLINE",
    "EXIT_PARTIAL",
    "FAULT_CRASH",
    "FAULT_DEADLINE",
    "FAULT_WORKER_LOST",
    "FaultSchedule",
    "FaultSpec",
    "FileOutcome",
    "ISOLATION_MODES",
    "PoolStats",
    "RetryPolicy",
    "TIMING_FIELDS",
    "VOLATILE_POOL_FIELDS",
    "WorkerKillSpec",
    "check_batch",
    "is_retryable",
    "run_pool_batch",
    "run_with_deadline",
]
