"""``repro.service``: the fault-isolated batch checking service.

PR 1 made one ``check_source`` call fault-tolerant; this package protects a
*batch* of them from each other.  ``check_batch(sources, policy)`` runs
many checks under a worker pool with per-task deadlines (watchdog +
cooperative cancellation), optional subprocess isolation for
interpreter-killing failures, crash containment (worker death becomes a
structured ``CrashReport`` on that file's outcome while the rest of the
batch completes), a deterministic retry policy driven by a fault taxonomy
(deadline misses and crashes are transient and retryable; type errors are
results, never retried), and a circuit breaker that quarantines an input
after N consecutive failures.  Results aggregate into a ``BatchReport``
that is byte-identical across runs modulo timing fields.

Surfaces: the ``fg batch`` subcommand (``repro.tools.cli``) with the
extended exit-code contract (4 = deadline exhaustion, 5 = partial failure,
6 = overload shed by the daemon), the ``fg serve`` daemon
(:mod:`repro.service.server`) — a Unix-socket front end with bounded
admission, graceful drain, and a crash-safe request journal
(:mod:`repro.service.journal`) — its client (:mod:`repro.service.client`
/ ``fg client``), and the chaos harness :func:`repro.testing.run_chaos`,
which replays deterministic :class:`FaultSchedule` plans and asserts the
batch always terminates, never loses a result, and reports every injected
fault exactly once.  Schemas and exit codes are documented in
docs/DIAGNOSTICS.md.
"""

from repro.service.batch import check_batch
from repro.service.client import (
    ClientError,
    ConnectionLost,
    ProtocolError,
    ServerUnavailable,
    check_remote,
    debug_bundle,
    events,
    health,
    request_shutdown,
    stats,
)
from repro.service.journal import Journal, JournalError, replay
from repro.service.server import (
    ServeError,
    ServeOptions,
    Server,
    resolve_policy,
)
from repro.service.signals import (
    TERMINATION_SIGNALS,
    TerminationRequested,
    notify_on_termination,
    raise_on_termination,
)
from repro.service.faults import (
    CHAOS_KINDS,
    ChaosCrash,
    FAULT_CRASH,
    FAULT_DEADLINE,
    FAULT_MEMORY,
    FAULT_WORKER_LOST,
    FaultSchedule,
    FaultSpec,
    WorkerKillSpec,
    is_retryable,
)
from repro.service.policy import ISOLATION_MODES, BatchPolicy, RetryPolicy
from repro.service.pool import PersistentPool, PoolStats, run_pool_batch
from repro.service.report import (
    EXIT_DEADLINE,
    EXIT_OVERLOAD,
    EXIT_PARTIAL,
    AttemptRecord,
    BatchReport,
    CrashReport,
    FileOutcome,
    TIMING_FIELDS,
    VOLATILE_POOL_FIELDS,
    canonicalize,
)
from repro.service.worker import run_with_deadline

__all__ = [
    "AttemptRecord",
    "BatchPolicy",
    "BatchReport",
    "CHAOS_KINDS",
    "ChaosCrash",
    "ClientError",
    "ConnectionLost",
    "CrashReport",
    "EXIT_DEADLINE",
    "EXIT_OVERLOAD",
    "EXIT_PARTIAL",
    "FAULT_CRASH",
    "FAULT_DEADLINE",
    "FAULT_MEMORY",
    "FAULT_WORKER_LOST",
    "FaultSchedule",
    "FaultSpec",
    "FileOutcome",
    "ISOLATION_MODES",
    "Journal",
    "JournalError",
    "PersistentPool",
    "PoolStats",
    "ProtocolError",
    "RetryPolicy",
    "ServeError",
    "ServeOptions",
    "Server",
    "ServerUnavailable",
    "TERMINATION_SIGNALS",
    "TIMING_FIELDS",
    "TerminationRequested",
    "VOLATILE_POOL_FIELDS",
    "WorkerKillSpec",
    "canonicalize",
    "check_batch",
    "check_remote",
    "debug_bundle",
    "events",
    "health",
    "is_retryable",
    "notify_on_termination",
    "raise_on_termination",
    "replay",
    "request_shutdown",
    "resolve_policy",
    "run_pool_batch",
    "run_with_deadline",
    "stats",
]
