"""``check_batch``: fault-isolated batch checking with graceful degradation.

The coordinator fans a batch of sources out over a worker pool and folds
every result — clean, diagnosed, timed out, crashed, quarantined — into one
deterministic :class:`~repro.service.report.BatchReport`.  Per file, the
retry loop runs isolated attempts (:mod:`repro.service.worker`) under the
policy's deadline, classifies failures with the fault taxonomy
(:mod:`repro.service.faults`), sleeps the deterministic backoff schedule
between retries, and opens the circuit breaker after
``policy.quarantine_after`` consecutive failures so one pathological input
can't starve the batch.

Containment invariants (enforced by ``tests/service/`` and the chaos
harness): the batch always terminates, every input yields exactly one
outcome, a worker death becomes that file's ``CrashReport`` while the rest
of the batch completes, and an exception escaping *this coordinator* is by
definition a bug (the CLI maps it to exit 3 — total failure).

Observability: the coordinator — never the workers, the tracer is
single-threaded — wraps the run in a ``service.check_batch`` span, records
one ``service.file`` span per outcome in input order, and counts
``batch.*`` metrics (files/ok/diagnostics/timeouts/crashes/retries/
quarantined, plus the ``batch.attempts`` histogram).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Dict, List, Optional, Sequence, Tuple

from repro.observability import (
    Instrumentation,
    NULL_TRACER,
    merge_worker_telemetry,
)
from repro.service.faults import (
    FAULT_CRASH,
    FAULT_DEADLINE,
    FAULT_MEMORY,
    FaultSchedule,
    is_retryable,
    serialize_exception_faults,
)
from repro.service.policy import BatchPolicy
from repro.service.report import AttemptRecord, BatchReport, FileOutcome
from repro.service.worker import (
    AttemptResult,
    run_attempt_subprocess,
    run_attempt_thread,
    telemetry_request,
)

_FAULT_KIND = {
    "timeout": FAULT_DEADLINE,
    "crash": FAULT_CRASH,
    "memory": FAULT_MEMORY,
}

#: Serializes telemetry merges into the shared coordinator bundle: with
#: ``jobs > 1`` several worker threads finish attempts concurrently, and
#: neither the tracer nor the metrics registry is thread-safe on its own.
_MERGE_LOCK = threading.Lock()


def check_batch(
    sources: Sequence[Tuple[str, str]],
    policy: Optional[BatchPolicy] = None,
    *,
    instrumentation: Optional[Instrumentation] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    pool=None,
) -> BatchReport:
    """Check every ``(filename, text)`` pair under the batch policy.

    Never raises for anything the *inputs* do; see the module docstring for
    the containment contract.  ``fault_schedule`` is the chaos hook —
    declarative injected faults replayed deterministically (and shipped to
    subprocess workers as JSON).  Ambient :func:`~repro.pipeline.inject_fault`
    state from the calling thread is propagated into every worker attempt.

    ``pool`` is an optional :class:`~repro.service.pool.PersistentPool`
    (the serve daemon's): with ``isolate="pool"`` the batch borrows its
    warm workers instead of spawning and tearing down a fresh pool.
    """
    from repro.pipeline import current_faults

    policy = policy if policy is not None else BatchPolicy()
    items = list(sources)
    ambient = current_faults()
    # Callable ambient faults can't cross a process boundary; fail loudly
    # up front rather than silently dropping an injected fault.
    serialized_ambient = (
        serialize_exception_faults(ambient)
        if policy.isolate in ("subprocess", "pool") else None
    )
    tracer = (
        instrumentation.tracer if instrumentation is not None else NULL_TRACER
    )
    metrics = (
        instrumentation.metrics if instrumentation is not None else None
    )
    outcomes: List[Optional[FileOutcome]] = [None] * len(items)
    pool_stats = None
    start = time.perf_counter()
    with tracer.span(
        "service.check_batch",
        files=len(items), jobs=policy.jobs, isolate=policy.isolate,
    ):
        if policy.isolate == "pool" and pool is not None:
            outcomes, pool_stats = pool.run_batch(
                items, policy,
                schedule=fault_schedule,
                ambient=ambient,
                serialized_ambient=serialized_ambient,
                instrumentation=instrumentation,
            )
        elif policy.isolate == "pool":
            from repro.service.pool import run_pool_batch

            outcomes, pool_stats = run_pool_batch(
                items, policy,
                schedule=fault_schedule,
                ambient=ambient,
                serialized_ambient=serialized_ambient,
                tracer=tracer,
                instrumentation=instrumentation,
            )
        elif policy.jobs == 1 or len(items) <= 1:
            for index, (filename, text) in enumerate(items):
                outcomes[index] = _check_one(
                    index, filename, text, policy, ambient,
                    serialized_ambient, fault_schedule, instrumentation,
                )
        else:
            with ThreadPoolExecutor(
                max_workers=policy.jobs, thread_name_prefix="fg-batch"
            ) as pool:
                futures = {
                    pool.submit(
                        _check_one, index, filename, text, policy, ambient,
                        serialized_ambient, fault_schedule, instrumentation,
                    ): index
                    for index, (filename, text) in enumerate(items)
                }
                for future in as_completed(futures):
                    outcomes[futures[future]] = future.result()
        # Coordinator-side observability, in input order (deterministic).
        for outcome in outcomes:
            with tracer.span(
                "service.file",
                file=outcome.file, status=outcome.status,
                attempts=len(outcome.attempts),
            ):
                pass
            if metrics is not None:
                metrics.inc("batch.files")
                metrics.inc(f"batch.{outcome.status}")
                metrics.inc("batch.retries", outcome.retries)
                if outcome.quarantined:
                    metrics.inc("batch.quarantined")
                metrics.observe("batch.attempts", len(outcome.attempts))
        if metrics is not None and pool_stats is not None:
            metrics.inc("pool.workers", pool_stats.workers)
            metrics.inc("pool.spawned", pool_stats.spawned)
            metrics.inc("pool.respawns", pool_stats.respawns)
            metrics.inc("pool.worker_lost", pool_stats.worker_lost)
            metrics.inc("pool.deadline_kills", pool_stats.deadline_kills)
            metrics.inc("pool.steals", pool_stats.steals)
            metrics.inc("pool.heartbeat_misses", pool_stats.heartbeat_misses)
            metrics.inc("pool.retired", pool_stats.retired)
            metrics.inc("pool.recycles", pool_stats.recycles)
            metrics.inc("pool.rss_bytes", pool_stats.rss_bytes)
            if pool_stats.degraded:
                metrics.inc("pool.degraded")
    elapsed_ms = round((time.perf_counter() - start) * 1e3, 3)
    with_reports = [
        o for o in outcomes if o is not None and o.crash is not None
    ]
    crashed = [o for o in with_reports if o.status != "memory"]
    memory_hit = [o for o in with_reports if o.status == "memory"]
    if crashed:
        # Crash forensics for the batch coordinator: one bundle per batch
        # that saw CrashReport outcomes (advisory; no-op without a
        # configured --crash-dir / $FG_CRASH_DIR).  The recorder already
        # holds any one-shot worker rings folded at receive time.
        from repro.observability import flightrec

        flightrec.dump("crash-report", {
            "files": [o.file for o in crashed],
            "exc_types": sorted({o.crash.exc_type for o in crashed}),
        }, context={
            "policy": policy.to_json(),
            "pool": pool_stats.to_json() if pool_stats is not None else None,
        })
    if memory_hit:
        # Memory-budget trips get their own bundle kind so doctor triage
        # can distinguish "the governor contained an OOM" from a crash.
        from repro.observability import flightrec

        flightrec.dump("memory", {
            "files": [o.file for o in memory_hit],
            "max_worker_mem_mb": policy.max_worker_mem_mb,
        }, context={
            "policy": policy.to_json(),
            "pool": pool_stats.to_json() if pool_stats is not None else None,
        })
    return BatchReport(
        files=tuple(outcomes),
        policy=policy.to_json(),
        elapsed_ms=elapsed_ms,
        pool=pool_stats.to_json() if pool_stats is not None else None,
    )


def _check_one(
    index: int,
    filename: str,
    text: str,
    policy: BatchPolicy,
    ambient: Dict[str, object],
    serialized_ambient,
    schedule: Optional[FaultSchedule],
    instrumentation: Optional[Instrumentation] = None,
) -> FileOutcome:
    """The per-file retry loop: attempts → taxonomy → backoff → breaker.

    Every attempt carries the coordinator's telemetry request across the
    isolation wall and merges what the worker saw back under
    :data:`_MERGE_LOCK`, so ``--stats``/``--explain``/``--trace`` are no
    longer silently empty under ``--isolate=subprocess`` (or the thread
    wall).
    """
    telemetry = telemetry_request(instrumentation)
    check_kwargs = {
        "prelude": policy.prelude,
        "ext": policy.ext,
        "max_errors": policy.max_errors,
        "limits": policy.effective_limits(),
        "verify": policy.verify,
        "evaluate": policy.evaluate,
    }
    attempts: List[AttemptRecord] = []
    final: Optional[AttemptResult] = None
    quarantined = False
    consecutive = 0
    attempt = 0
    while True:
        specs = (
            schedule.for_attempt(index, attempt)
            if schedule is not None else ()
        )
        send_ns = time.perf_counter_ns()
        if policy.isolate == "subprocess":
            result = run_attempt_subprocess(
                text, filename, check_kwargs, serialized_ambient, specs,
                schedule.hang_s if schedule is not None else 0.5,
                policy.deadline_ms,
                telemetry=telemetry,
                max_mem_mb=policy.max_worker_mem_mb,
            )
        else:
            faults = dict(ambient)
            for spec in specs:
                faults[spec.stage] = spec.materialize(
                    schedule.hang_s if schedule is not None else 0.5
                )
            result = run_attempt_thread(
                text, filename, check_kwargs, faults, policy.deadline_ms,
                telemetry=telemetry,
            )
        if result.telemetry is not None:
            with _MERGE_LOCK:
                merge_worker_telemetry(
                    instrumentation, result.telemetry,
                    send_ns=send_ns, recv_ns=time.perf_counter_ns(),
                    span_name="service.attempt",
                    attrs={
                        "file": filename, "attempt": attempt,
                        "isolate": policy.isolate,
                    },
                )
        final = result
        injected = tuple(spec.tag for spec in specs)
        fault_kind = _FAULT_KIND.get(result.status)
        if fault_kind is None:
            attempts.append(AttemptRecord(
                attempt=attempt, status=result.status, injected=injected,
                duration_ms=result.duration_ms,
            ))
            break
        consecutive += 1
        retryable = is_retryable(fault_kind)
        breaker_open = consecutive >= policy.quarantine_after
        out_of_retries = attempt >= policy.retry.max_retries
        will_retry = retryable and not breaker_open and not out_of_retries
        backoff_ms = (
            policy.retry.backoff_ms(consecutive - 1) if will_retry else 0.0
        )
        attempts.append(AttemptRecord(
            attempt=attempt, status=result.status, fault=fault_kind,
            retryable=retryable, backoff_ms=backoff_ms, injected=injected,
            duration_ms=result.duration_ms,
        ))
        if breaker_open:
            quarantined = True
            break
        if not will_retry:
            break
        if backoff_ms > 0:
            time.sleep(backoff_ms / 1000.0)
        attempt += 1
    return FileOutcome(
        file=filename,
        index=index,
        status=final.status,
        ok=final.status == "ok",
        quarantined=quarantined,
        attempts=tuple(attempts),
        diagnostics=tuple(final.diagnostics),
        severities=dict(final.severities),
        rendered=final.rendered,
        crash=final.crash,
    )
