"""Client side of the ``fg serve`` socket protocol.

Thin and synchronous: connect, send one framed request, read framed
responses until a terminal one arrives (``accepted`` is informational —
it carries the request id and queue depth and is reported through the
optional ``on_accept`` callback).  Exceptions here are all
:class:`ClientError` subtypes so ``fg client`` can map them onto the
exit-code contract without pattern-matching message strings.
"""

from __future__ import annotations

import socket
from typing import Callable, Dict, List, Optional, Tuple

from repro.service import proto
from repro.service.server import TERMINAL_RESPONSES


class ClientError(Exception):
    """Base for everything the client can fail with."""


class ServerUnavailable(ClientError):
    """No daemon is listening on the socket path."""


class ConnectionLost(ClientError):
    """The daemon closed the connection before a terminal response."""


class ProtocolError(ClientError):
    """The daemon sent bytes the framed protocol cannot accept."""


def connect(socket_path: str, timeout: Optional[float] = None) \
        -> socket.socket:
    """Open a connection to the daemon, or raise :class:`ServerUnavailable`."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    if timeout is not None:
        sock.settimeout(timeout)
    try:
        sock.connect(socket_path)
    except OSError as exc:
        sock.close()
        raise ServerUnavailable(
            f"no daemon on {socket_path}: {exc}"
        ) from exc
    return sock


def read_response(
    sock: socket.socket,
    reader: Optional[proto.FrameReader] = None,
    on_accept: Optional[Callable[[Dict[str, object]], None]] = None,
) -> Dict[str, object]:
    """Read frames until a terminal response; returns it."""
    reader = reader if reader is not None else proto.FrameReader()
    pending: List[Dict[str, object]] = []
    while True:
        while pending:
            frame = pending.pop(0)
            kind = frame.get("type")
            if kind in TERMINAL_RESPONSES:
                return frame
            if kind == "accepted" and on_accept is not None:
                on_accept(frame)
        try:
            chunk = sock.recv(65536)
        except socket.timeout as exc:
            raise ConnectionLost("timed out waiting for response") from exc
        except OSError as exc:
            raise ConnectionLost(f"connection lost: {exc}") from exc
        if chunk == b"":
            raise ConnectionLost(
                "daemon closed the connection before responding"
            )
        try:
            pending.extend(reader.feed(chunk))
        except proto.FrameError as exc:
            raise ProtocolError(str(exc)) from exc


def roundtrip(
    socket_path: str,
    payload: Dict[str, object],
    *,
    timeout: Optional[float] = None,
    on_accept: Optional[Callable[[Dict[str, object]], None]] = None,
) -> Dict[str, object]:
    """One request, one terminal response, connection closed."""
    sock = connect(socket_path, timeout)
    try:
        sock.sendall(proto.encode_frame(payload))
        return read_response(sock, on_accept=on_accept)
    except OSError as exc:
        raise ConnectionLost(f"connection lost: {exc}") from exc
    finally:
        sock.close()


def check_remote(
    socket_path: str,
    sources: List[Tuple[str, str]],
    *,
    policy_overrides: Optional[Dict[str, object]] = None,
    schedule_json: Optional[Dict[str, object]] = None,
    timeout: Optional[float] = None,
    on_accept: Optional[Callable[[Dict[str, object]], None]] = None,
) -> Dict[str, object]:
    """Submit a batch; returns the terminal response frame
    (``report``/``overload``/``shed``/``draining``/``error``)."""
    payload: Dict[str, object] = {
        "type": "batch",
        "sources": [[name, text] for name, text in sources],
    }
    if policy_overrides:
        payload["policy"] = policy_overrides
    if schedule_json is not None:
        payload["schedule"] = schedule_json
    return roundtrip(
        socket_path, payload, timeout=timeout, on_accept=on_accept,
    )


def health(socket_path: str, timeout: Optional[float] = 5.0) \
        -> Dict[str, object]:
    """The daemon's health snapshot."""
    return roundtrip(socket_path, {"type": "health"}, timeout=timeout)


def stats(socket_path: str, timeout: Optional[float] = 5.0) \
        -> Dict[str, object]:
    """The daemon's rolling live-telemetry snapshot (latency/queue-wait
    percentiles, utilization, shed and respawn totals)."""
    return roundtrip(socket_path, {"type": "stats"}, timeout=timeout)


def events(socket_path: str, tail: int = 20,
           timeout: Optional[float] = 5.0) -> Dict[str, object]:
    """The last ``tail`` operational events (worker lifecycle, sheds,
    drain/resume, journal rotation) with monotonic sequence numbers."""
    return roundtrip(
        socket_path, {"type": "events", "tail": tail}, timeout=timeout,
    )


def debug_bundle(socket_path: str, timeout: Optional[float] = 10.0) \
        -> Dict[str, object]:
    """Force a "manual" crash bundle from a live daemon (``fg debug
    bundle``): the response carries the full bundle document and, when
    the daemon has a crash dir, the path it was written to."""
    return roundtrip(socket_path, {"type": "debug-bundle"}, timeout=timeout)


def request_shutdown(socket_path: str, timeout: Optional[float] = 5.0) \
        -> Dict[str, object]:
    """Ask the daemon to drain (socket-side SIGTERM equivalent)."""
    return roundtrip(socket_path, {"type": "shutdown"}, timeout=timeout)
