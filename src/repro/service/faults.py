"""Fault taxonomy and deterministic chaos schedules for the batch service.

Two layers:

**Taxonomy.**  An attempt that doesn't end in a report ends in a *fault*,
classified as ``"deadline"`` (the watchdog or the cooperative
:class:`~repro.diagnostics.limits.DeadlineExceededError` cut it off) or
``"crash"`` (a non-``Diagnostic`` exception escaped, or the isolated worker
died).  Both are treated as **transient** — :func:`is_retryable` — because
a deadline miss may be load and a crash may be an OOM kill; if the failure
is actually deterministic the retry loop keeps failing and the circuit
breaker quarantines the input instead of starving the batch.  Diagnostics
(type errors, parse errors) are *results*, not faults, and are never
retried.

**Chaos schedules.**  A :class:`FaultSchedule` is a declarative, fully
deterministic plan of injected faults — ``(file index × pipeline stage ×
fault kind × attempt set)`` — layered over the thread-local
:func:`repro.pipeline.inject_fault` hook.  Being plain data, a schedule
crosses the subprocess boundary as JSON, so ``isolate="subprocess"``
workers replay exactly the same faults.  The CLI accepts the compact text
form (``fg batch --chaos "1:check:crash,2:parse:hang"``) and the chaos
harness (:func:`repro.testing.run_chaos`) derives schedules from a seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

#: Fault-taxonomy kinds an attempt can fail with.  ``worker-lost`` is the
#: pool supervisor's kind: the worker *process* died (SIGKILL, OOM,
#: heartbeat silence) with the attempt in flight — transient like the
#: others, because the replacement worker usually completes the retry.
FAULT_DEADLINE = "deadline"
FAULT_CRASH = "crash"
FAULT_WORKER_LOST = "worker-lost"
#: ``"memory"`` is the governor's kind: the attempt tripped a per-worker
#: memory budget (a contained :class:`MemoryError` under an rlimit) —
#: transient, because the retry lands on a freshly recycled worker with a
#: clean heap.
FAULT_MEMORY = "memory"

#: Injectable chaos kinds: ``crash`` raises inside the stage, ``hang``
#: sleeps past the deadline, ``kill`` takes the whole worker down
#: (``os._exit`` in a subprocess; a contained ``SystemExit`` in a thread),
#: ``noise`` prints to stdout mid-stage — harmless by contract, because
#: the result channel is framed on a shielded fd; it exists to prove that.
#: ``memhog`` allocates until the worker's memory rlimit trips (raising
#: :class:`MemoryError` immediately when no rlimit is in force, so chaos
#: never eats the host's actual RAM).
CHAOS_KINDS = ("crash", "hang", "kill", "noise", "memhog")


def is_retryable(fault_kind: Optional[str]) -> bool:
    """Transient faults are worth retrying; diagnosed programs are not."""
    return fault_kind in (
        FAULT_DEADLINE, FAULT_CRASH, FAULT_WORKER_LOST, FAULT_MEMORY,
    )


class ChaosCrash(RuntimeError):
    """The exception an injected ``crash`` fault raises (identifiable, so
    tests can tell a scheduled crash from a genuine bug)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``kind`` at ``stage`` of file ``index``.

    ``attempts`` restricts firing to those attempt numbers (``None`` =
    every attempt, modelling a deterministic fault; ``frozenset({0})``
    models a transient one that a retry outruns).
    """

    index: int
    stage: str
    kind: str
    attempts: Optional[FrozenSet[int]] = None

    def __post_init__(self):
        from repro.pipeline import STAGES

        if self.stage not in STAGES:
            raise ValueError(f"unknown pipeline stage: {self.stage!r}")
        if self.kind not in CHAOS_KINDS:
            raise ValueError(f"unknown chaos kind: {self.kind!r}")
        if self.index < 0:
            raise ValueError("file index must be non-negative")

    @property
    def tag(self) -> str:
        return f"{self.stage}:{self.kind}"

    def applies(self, index: int, attempt: int) -> bool:
        if index != self.index:
            return False
        return self.attempts is None or attempt in self.attempts

    def materialize(self, hang_s: float, *, in_subprocess: bool = False):
        """The concrete fault object ``inject_fault`` installs."""
        if self.kind == "crash":
            return ChaosCrash(f"chaos: injected crash at {self.stage}")
        if self.kind == "hang":
            return lambda: time.sleep(hang_s)
        if self.kind == "noise":
            # A stray print: corrupts an unframed result-on-stdout protocol,
            # lands on stderr once the worker has shielded fd 1.
            stage = self.stage
            return lambda: print(f"chaos: stray stdout noise at {stage}")
        if self.kind == "memhog":
            # Allocate until the worker's own rlimit trips. Guarded: with
            # no finite limit in force, raise MemoryError immediately —
            # chaos must never exhaust the host's real RAM.
            stage = self.stage

            def _hog():
                from repro.service.resources import (
                    current_memory_limit_bytes,
                )

                blocks = []
                if current_memory_limit_bytes() is not None:
                    try:
                        while True:
                            blocks.append(bytearray(1 << 20))
                    except MemoryError:
                        # Free before raising so building the crash
                        # report has heap to work with, and so the
                        # traceback doesn't pin the hog.
                        del blocks[:]
                raise MemoryError(
                    f"chaos: memory exhaustion at {stage}"
                ) from None

            return _hog
        # "kill": genuine worker death when isolated; in a thread the whole
        # process is not ours to kill, so it degrades to a contained crash.
        if in_subprocess:
            import os

            return lambda: os._exit(13)
        return SystemExit(13)

    def to_json(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "stage": self.stage,
            "kind": self.kind,
            "attempts": (
                sorted(self.attempts) if self.attempts is not None else None
            ),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FaultSpec":
        attempts = data.get("attempts")
        return cls(
            index=data["index"],
            stage=data["stage"],
            kind=data["kind"],
            attempts=frozenset(attempts) if attempts is not None else None,
        )


@dataclass(frozen=True)
class WorkerKillSpec:
    """SIGKILL a pool worker at the dispatch of one (file, attempt) pair.

    Keyed to *which task is being handed out*, never to wall clock or to a
    global dispatch ordinal — both of those depend on OS scheduling, and
    the chaos harness asserts byte-identical canonical reports across
    rounds.  ``worker=None`` kills whichever worker received the dispatch
    (the fully deterministic form); an explicit slot index kills that
    worker instead, taking down whatever it happens to be running.
    """

    index: int
    attempt: int = 0
    worker: Optional[int] = None

    def __post_init__(self):
        if self.index < 0:
            raise ValueError("file index must be non-negative")
        if self.attempt < 0:
            raise ValueError("attempt must be non-negative")

    def applies(self, index: int, attempt: int) -> bool:
        return index == self.index and attempt == self.attempt

    def to_json(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "attempt": self.attempt,
            "worker": self.worker,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "WorkerKillSpec":
        return cls(
            index=data["index"],
            attempt=data.get("attempt", 0),
            worker=data.get("worker"),
        )

    @classmethod
    def parse(cls, text: str) -> "WorkerKillSpec":
        """Parse the CLI form ``INDEX[:ATTEMPT[:WORKER]]``."""
        parts = text.strip().split(":")
        if not 1 <= len(parts) <= 3:
            raise ValueError(
                f"bad kill spec {text!r}: want INDEX[:ATTEMPT[:WORKER]]"
            )
        try:
            index = int(parts[0])
            attempt = int(parts[1]) if len(parts) > 1 else 0
            worker = int(parts[2]) if len(parts) > 2 else None
        except ValueError:
            raise ValueError(
                f"bad kill spec {text!r}: fields must be integers"
            ) from None
        return cls(index=index, attempt=attempt, worker=worker)


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic set of scheduled faults plus the hang duration.

    ``kills`` only applies under ``isolate="pool"`` — the other isolation
    modes have no supervised worker to kill.
    """

    specs: Tuple[FaultSpec, ...] = ()
    #: How long an injected ``hang`` sleeps; pick it well past the deadline.
    hang_s: float = 0.5
    kills: Tuple[WorkerKillSpec, ...] = ()

    def for_attempt(self, index: int, attempt: int) -> Tuple[FaultSpec, ...]:
        """The faults that fire on this (file, attempt), stage-ordered."""
        return tuple(
            sorted(
                (s for s in self.specs if s.applies(index, attempt)),
                key=lambda s: (s.stage, s.kind),
            )
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "specs": [s.to_json() for s in self.specs],
            "hang_s": self.hang_s,
            "kills": [k.to_json() for k in self.kills],
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FaultSchedule":
        return cls(
            specs=tuple(FaultSpec.from_json(s) for s in data["specs"]),
            hang_s=data.get("hang_s", 0.5),
            kills=tuple(
                WorkerKillSpec.from_json(k) for k in data.get("kills", ())
            ),
        )

    @classmethod
    def parse(cls, text: str, *, hang_s: float = 0.5) -> "FaultSchedule":
        """Parse the CLI form: ``INDEX:STAGE:KIND[:ATTEMPTS][,...]``.

        ``ATTEMPTS`` is ``*`` (default, every attempt), one number, or an
        inclusive range ``A-B``.  Example: ``"1:check:crash:0,2:parse:hang"``.
        """
        specs: List[FaultSpec] = []
        for chunk in filter(None, (c.strip() for c in text.split(","))):
            parts = chunk.split(":")
            if len(parts) not in (3, 4):
                raise ValueError(
                    f"bad chaos spec {chunk!r}: want INDEX:STAGE:KIND"
                    "[:ATTEMPTS]"
                )
            index_s, stage, kind = parts[:3]
            try:
                index = int(index_s)
            except ValueError:
                raise ValueError(
                    f"bad chaos spec {chunk!r}: file index must be an int"
                ) from None
            attempts: Optional[FrozenSet[int]] = None
            if len(parts) == 4 and parts[3] != "*":
                spec = parts[3]
                try:
                    if "-" in spec:
                        lo, hi = spec.split("-", 1)
                        attempts = frozenset(range(int(lo), int(hi) + 1))
                    else:
                        attempts = frozenset({int(spec)})
                except ValueError:
                    raise ValueError(
                        f"bad chaos spec {chunk!r}: attempts must be N, "
                        "A-B, or *"
                    ) from None
            specs.append(FaultSpec(index, stage, kind, attempts))
        return cls(specs=tuple(specs), hang_s=hang_s)


# ---------------------------------------------------------------------------
# Ambient-fault propagation across the subprocess boundary
# ---------------------------------------------------------------------------

def serialize_exception_faults(
    faults: Dict[str, object]
) -> List[Dict[str, str]]:
    """Project a thread's fault table to JSON for a subprocess worker.

    Only exception instances cross the boundary (as type name + message);
    a callable fault has no portable representation — ship a declarative
    :class:`FaultSpec` instead.
    """
    entries: List[Dict[str, str]] = []
    for stage in sorted(faults):
        fault = faults[stage]
        if not isinstance(fault, BaseException):
            raise TypeError(
                f"cannot propagate callable fault at stage {stage!r} to a "
                "subprocess; use a FaultSchedule spec instead"
            )
        entries.append({
            "stage": stage,
            "exc_type": type(fault).__name__,
            "message": str(fault),
        })
    return entries


def deserialize_exception_faults(
    entries: List[Dict[str, str]]
) -> Dict[str, BaseException]:
    """Rebuild a fault table in the subprocess child.

    Exception types resolve from builtins; anything else becomes a
    ``RuntimeError`` carrying the original type name in its message.
    """
    import builtins

    faults: Dict[str, BaseException] = {}
    for entry in entries:
        exc_type = getattr(builtins, entry["exc_type"], None)
        if isinstance(exc_type, type) and issubclass(exc_type, BaseException):
            exc: BaseException = exc_type(entry["message"])
        else:
            exc = RuntimeError(f"{entry['exc_type']}: {entry['message']}")
        faults[entry["stage"]] = exc
    return faults
