"""Append-only crash-safe request journal for the ``fg serve`` daemon.

The daemon's durability story: every admitted request is journaled
*before* it runs and journaled again when it finishes, so a daemon that is
SIGKILLed mid-batch can be restarted with ``fg serve --resume`` and re-run
exactly the requests that never completed — and, because
:func:`repro.service.check_batch` is deterministic modulo timing, the
replayed canonical reports are byte-identical to what the uninterrupted
run would have produced.

**Record format.**  One record is ``MAGIC (4 bytes) + length (u32, big
endian) + crc32 (u32, big endian) + payload (UTF-8 JSON)``.  The magic
shares the framed protocol's invalid-UTF-8 first byte but is distinct from
the socket magic, so a journal can never be mistaken for a result stream.
Each append is a *single* ``os.write`` to an ``O_APPEND`` descriptor
followed by ``fsync``, so a record is either fully present or entirely
absent — a torn tail (the daemon died mid-write) fails its length or
checksum and is truncated away on replay.

**Record kinds** (the ``"op"`` key):

- ``begin`` — a request was admitted: carries the request id, the sources,
  the *resolved* policy echo (so replay reconstructs the identical
  :class:`~repro.service.policy.BatchPolicy`), and the optional fault
  schedule.
- ``done`` — the request's batch completed: carries the exit code, the
  canonical (timing-stripped) report, and its SHA-256 digest.
- ``cancel`` — the request will never run (client disconnected while
  queued, or its deadline expired in the queue); replay skips it.

A request with a ``begin`` but neither ``done`` nor ``cancel`` is
*unfinished* — the replay set.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Journal record preamble (first byte invalid UTF-8, like the wire magic,
#: but a distinct tag so streams and journals are never confused).
MAGIC = b"\xabFGJ"

#: Cap on one record's payload: a corrupted length prefix must fail fast.
MAX_RECORD = 64 * 1024 * 1024

_HEADER = struct.Struct(">II")  # length, crc32
_HEADER_LEN = len(MAGIC) + _HEADER.size


class JournalError(ValueError):
    """The journal cannot be opened or appended (not a corrupt-tail case —
    those are repaired silently on replay)."""


def encode_record(payload: Dict[str, object]) -> bytes:
    """Serialize one record to its on-disk form."""
    blob = json.dumps(payload, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    if len(blob) > MAX_RECORD:
        raise JournalError(
            f"journal record of {len(blob)} bytes exceeds the "
            f"{MAX_RECORD}-byte cap"
        )
    return MAGIC + _HEADER.pack(len(blob), zlib.crc32(blob)) + blob


class Journal:
    """An open journal file, append side.

    Appends are thread-safe (the daemon's admission thread journals
    ``begin``/``cancel`` while the executor thread journals ``done``) and
    durable: one write, one fsync, under one lock.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._fd = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o600
        )

    def append(self, payload: Dict[str, object]) -> None:
        data = encode_record(payload)
        with self._lock:
            if self._fd < 0:
                raise JournalError("journal is closed")
            os.write(self._fd, data)
            os.fsync(self._fd)

    def close(self) -> None:
        with self._lock:
            if self._fd >= 0:
                os.close(self._fd)
                self._fd = -1

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class Replay:
    """What :func:`replay` recovered from a journal file."""

    #: Every intact record, in append order.
    records: List[Dict[str, object]] = field(default_factory=list)
    #: Corrupt-tail bytes dropped (0 for a cleanly closed journal).
    truncated_bytes: int = 0

    @property
    def requests(self) -> Dict[int, Dict[str, Dict[str, object]]]:
        """Record kinds per request id: ``{id: {"begin": ..., ...}}``."""
        table: Dict[int, Dict[str, Dict[str, object]]] = {}
        for record in self.records:
            request = record.get("request")
            if request is None:
                continue
            table.setdefault(request, {})[record.get("op")] = record
        return table

    @property
    def unfinished(self) -> List[Dict[str, object]]:
        """``begin`` records with no ``done``/``cancel`` — the replay set,
        in admission order."""
        table = self.requests
        return [
            ops["begin"]
            for _, ops in sorted(table.items())
            if "begin" in ops and "done" not in ops and "cancel" not in ops
        ]

    @property
    def next_request_id(self) -> int:
        """The first id a resumed daemon may assign."""
        ids = [r.get("request") for r in self.records
               if isinstance(r.get("request"), int)]
        return max(ids, default=0) + 1


def replay(path: str, *, repair: bool = True) -> Replay:
    """Read every intact record; truncate a corrupt tail.

    A record is intact when its magic, length, and CRC all check out and
    the payload parses as JSON.  The first violation ends the scan: all
    bytes from that offset on are the *corrupt tail* — with ``repair=True``
    (the default) the file is truncated back to the last intact record so
    subsequent appends produce a clean journal.  A missing file replays as
    empty.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return Replay()
    records: List[Dict[str, object]] = []
    offset = 0
    while True:
        header = data[offset:offset + _HEADER_LEN]
        if len(header) < _HEADER_LEN:
            break
        if header[:len(MAGIC)] != MAGIC:
            break
        length, crc = _HEADER.unpack(header[len(MAGIC):])
        if length > MAX_RECORD:
            break
        end = offset + _HEADER_LEN + length
        blob = data[offset + _HEADER_LEN:end]
        if len(blob) < length or zlib.crc32(blob) != crc:
            break
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        records.append(payload)
        offset = end
    truncated = len(data) - offset
    if truncated and repair:
        with open(path, "r+b") as handle:
            handle.truncate(offset)
    return Replay(records=records, truncated_bytes=truncated)


def rotate(path: str) -> Optional[str]:
    """Move an existing journal aside (``<path>.bak``) and return the new
    name, or ``None`` when there was nothing to rotate.

    A daemon started *without* ``--resume`` over an existing journal must
    not silently discard its unfinished requests, nor interleave two
    daemons' histories in one file.
    """
    if not os.path.exists(path):
        return None
    backup = path + ".bak"
    os.replace(path, backup)
    return backup


def report_digest(canonical_report: str) -> str:
    """SHA-256 over a canonical report string — the identity replays are
    checked against."""
    return hashlib.sha256(canonical_report.encode("utf-8")).hexdigest()


def begin_record(
    request: int,
    sources: List[Tuple[str, str]],
    policy_json: Dict[str, object],
    schedule_json: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    return {
        "op": "begin",
        "request": request,
        "sources": [[name, text] for name, text in sources],
        "policy": policy_json,
        "schedule": schedule_json,
    }


def done_record(
    request: int,
    exit_code: int,
    canonical_report: str,
    *,
    resumed: bool = False,
) -> Dict[str, object]:
    return {
        "op": "done",
        "request": request,
        "exit_code": exit_code,
        "digest": report_digest(canonical_report),
        "report": json.loads(canonical_report),
        "resumed": resumed,
    }


def cancel_record(request: int, reason: str) -> Dict[str, object]:
    return {"op": "cancel", "request": request, "reason": reason}
