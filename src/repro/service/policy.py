"""Batch execution policy: concurrency, deadlines, retries, quarantine.

Everything here is declarative and JSON-projectable, so the policy echo in
a :class:`~repro.service.report.BatchReport` pins exactly what the run was
configured to do — part of the report's determinism surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.diagnostics.limits import DEFAULT_LIMITS, Limits

#: Worker isolation modes: ``"none"`` runs attempts on watchdogged daemon
#: threads in-process; ``"subprocess"`` gives each attempt its own
#: interpreter so even C-level faults and OOM kills are contained;
#: ``"pool"`` keeps the process-level containment but amortizes the
#: interpreter cost over a supervised pool of persistent, prelude-warmed
#: workers (:mod:`repro.service.pool`).
ISOLATION_MODES = ("none", "subprocess", "pool")


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry schedule for transient faults.

    The backoff before retry *k* (0-based) is
    ``backoff_base_ms * backoff_factor**k`` capped at ``backoff_cap_ms`` —
    a pure function of the policy, so retry records in a batch report are
    byte-identical across runs.
    """

    max_retries: int = 0
    backoff_base_ms: float = 0.0
    backoff_factor: float = 2.0
    backoff_cap_ms: float = 10_000.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_ms < 0:
            raise ValueError("backoff_base_ms must be non-negative")

    def backoff_ms(self, failure_index: int) -> float:
        """Scheduled delay after the ``failure_index``-th failed attempt."""
        if self.backoff_base_ms <= 0:
            return 0.0
        return min(
            self.backoff_base_ms * self.backoff_factor ** failure_index,
            self.backoff_cap_ms,
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "max_retries": self.max_retries,
            "backoff_base_ms": self.backoff_base_ms,
            "backoff_factor": self.backoff_factor,
            "backoff_cap_ms": self.backoff_cap_ms,
        }


@dataclass(frozen=True)
class BatchPolicy:
    """How :func:`repro.service.check_batch` runs a batch.

    ``quarantine_after`` is the circuit breaker: after that many
    *consecutive* failed attempts on one input, the breaker opens and the
    input is quarantined even if retry budget remains — one pathological
    file can delay the batch by at most ``quarantine_after`` deadlines.
    """

    jobs: int = 1
    deadline_ms: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    quarantine_after: int = 3
    isolate: str = "none"
    # Pool-mode supervision (ignored by the other isolation modes).
    pool_workers: int = 2
    max_respawns: int = 4
    heartbeat_ms: float = 100.0
    # Resource governor. These are operational knobs, not semantics:
    # report.py strips them from the canonical digest so a governed run
    # and an ungoverned run of the same batch hash identically.
    max_worker_mem_mb: Optional[float] = None
    recycle_rss_mb: Optional[float] = None
    recycle_after_tasks: Optional[int] = None
    # Per-file check_source configuration.
    prelude: bool = False
    ext: bool = False
    max_errors: int = 20
    limits: Optional[Limits] = None
    verify: bool = False
    evaluate: bool = False

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be at least 1")
        if self.isolate not in ISOLATION_MODES:
            raise ValueError(
                f"isolate must be one of {ISOLATION_MODES}, "
                f"not {self.isolate!r}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if self.pool_workers < 1:
            raise ValueError("pool_workers must be at least 1")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be non-negative")
        if self.heartbeat_ms <= 0:
            raise ValueError("heartbeat_ms must be positive")
        if self.max_worker_mem_mb is not None and self.max_worker_mem_mb <= 0:
            raise ValueError("max_worker_mem_mb must be positive")
        if self.recycle_rss_mb is not None and self.recycle_rss_mb <= 0:
            raise ValueError("recycle_rss_mb must be positive")
        if (self.recycle_after_tasks is not None
                and self.recycle_after_tasks < 1):
            raise ValueError("recycle_after_tasks must be at least 1")

    def effective_limits(self) -> Limits:
        """The per-attempt limits, with the cooperative deadline folded in."""
        from dataclasses import replace

        base = self.limits if self.limits is not None else DEFAULT_LIMITS
        if self.deadline_ms is None:
            return base
        return replace(base, deadline_ms=self.deadline_ms)

    def to_json(self) -> Dict[str, object]:
        """Project *every* field, so the report's policy echo pins the run.

        Generic on purpose: hand-picking keys is how ``deadline_ms``
        silently fell out of the ``limits`` echo once — a field added to
        this policy or to :class:`~repro.diagnostics.limits.Limits` now
        shows up here without anyone remembering to add it.
        """
        from dataclasses import asdict, fields

        blob: Dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "retry":
                blob[spec.name] = (
                    value.to_json() if value is not None else None
                )
            elif spec.name == "limits":
                blob[spec.name] = asdict(
                    value if value is not None else DEFAULT_LIMITS
                )
            else:
                blob[spec.name] = value
        return blob

    @classmethod
    def from_json(cls, blob: Dict[str, object]) -> "BatchPolicy":
        """Rebuild a policy from its :meth:`to_json` echo — exactly.

        The serve daemon's journal stores the *resolved* policy of every
        admitted request; replay after a crash reconstructs it with this,
        and ``from_json(p.to_json()).to_json() == p.to_json()`` is the
        round-trip contract that makes resumed reports byte-identical
        (pinned by ``tests/service/test_journal.py``).  Unknown keys are
        rejected loudly — a journal written by a newer policy must not
        silently replay under a truncated one.
        """
        from dataclasses import fields

        known = {spec.name for spec in fields(cls)}
        unknown = set(blob) - known
        if unknown:
            raise ValueError(
                f"unknown BatchPolicy field(s) in echo: {sorted(unknown)}"
            )
        kwargs: Dict[str, object] = dict(blob)
        if kwargs.get("retry") is not None:
            kwargs["retry"] = RetryPolicy(**kwargs["retry"])
        if kwargs.get("limits") is not None:
            kwargs["limits"] = Limits(**kwargs["limits"])
        return cls(**kwargs)
