"""Supervised persistent worker-process pool for the batch service.

``--isolate=subprocess`` (PR 5) pays for crash containment with a fresh
interpreter per attempt.  This module keeps the containment and drops the
cost: a supervisor forks ``pool_workers`` persistent children *once* (each
imports the pipeline and pre-checks the prelude at spawn, so warm attempts
skip that cost), then feeds them over the framed pipe protocol
(:mod:`repro.service.proto`) from per-worker deques with work stealing.

**Failure domains.**  A task that merely raises is contained *inside* the
worker (a structured ``"crash"`` result; the worker survives).  The
supervisor's business is process death:

- a worker that exits, is SIGKILLed, or goes heartbeat-silent is reaped;
  its in-flight task gets a ``worker-lost`` attempt (retryable under the
  normal :class:`~repro.service.policy.RetryPolicy`/quarantine taxonomy)
  and a replacement is spawned into the same slot, up to the pool-wide
  ``max_respawns`` budget;
- a worker that blows the attempt deadline is hard-killed after a grace
  window (the in-worker cooperative deadline gets first shot, because a
  self-reported timeout keeps the worker warm); either path records the
  same ``timeout``/``deadline`` attempt;
- with the respawn budget exhausted, dead slots retire (their queues are
  drained by the survivors via stealing), and when *no* worker remains the
  supervisor degrades to in-process execution — the batch completes with a
  partial-failure exit code at worst, never a hang.

**Determinism.**  Attempt records never mention which worker ran them, and
chaos worker kills are keyed to *(file index, attempt number)* at dispatch
time — not to wall clock — so canonical report digests are byte-identical
across rounds.  Scheduling-dependent counters (``steals``,
``heartbeat_misses``, ``warm_ms``) are declared volatile and stripped from
:meth:`~repro.service.report.BatchReport.canonical_json`.
"""

from __future__ import annotations

import collections
import itertools
import os
import selectors
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.observability import (
    NULL_TRACER,
    fold_worker_flightrec,
    merge_worker_telemetry,
)
from repro.observability import flightrec
from repro.service import proto
from repro.service.faults import (
    FAULT_CRASH,
    FAULT_DEADLINE,
    FAULT_MEMORY,
    FAULT_WORKER_LOST,
    FaultSchedule,
    is_retryable,
)
from repro.service.policy import BatchPolicy
from repro.service.report import AttemptRecord, CrashReport, FileOutcome
from repro.service.worker import (
    AttemptResult,
    _child_env,
    result_to_attempt,
    run_attempt_thread,
    task_payload,
    telemetry_request,
)

_FAULT_KIND = {
    "timeout": FAULT_DEADLINE,
    "crash": FAULT_CRASH,
    "memory": FAULT_MEMORY,
}

#: Monotonic suffix for trace ids: unique per supervisor within a process,
#: combined with the pid for cross-process uniqueness.  Never enters the
#: canonical report JSON, so determinism guarantees are unaffected.
_TRACE_SEQ = itertools.count(1)


def _new_trace_id() -> str:
    return f"{os.getpid():x}-{next(_TRACE_SEQ):x}"

#: Grace past the cooperative deadline before the supervisor hard-kills a
#: worker: half the deadline, floored and capped.  Wide enough that a
#: worker's self-reported timeout normally wins (keeping it warm), narrow
#: enough that a genuinely wedged worker is reaped promptly.
GRACE_FRACTION = 0.5
GRACE_MIN_MS = 50.0
GRACE_MAX_MS = 2_000.0

#: A live-but-silent worker (no heartbeat, no result) is declared lost
#: after this many heartbeat periods, with an absolute floor so a loaded
#: machine doesn't reap healthy workers.
HEARTBEAT_MISS_PERIODS = 20
HEARTBEAT_MISS_FLOOR_S = 2.0


@dataclass
class PoolStats:
    """What the supervisor did, for the report's ``pool`` block.

    ``steals``, ``heartbeat_misses``, and ``warm_ms`` depend on OS
    scheduling and are stripped from the canonical digest
    (:data:`~repro.service.report.VOLATILE_POOL_FIELDS`); everything else
    is deterministic for a given input/policy/schedule triple.
    """

    workers: int = 0
    spawned: int = 0
    respawns: int = 0
    worker_lost: int = 0
    deadline_kills: int = 0
    retired: int = 0
    degraded: bool = False
    steals: int = 0
    heartbeat_misses: int = 0
    warm_ms: float = 0.0
    #: Resource-governor counters: graceful recycles (never charged to
    #: ``max_respawns``) and the peak heartbeat-sampled worker RSS.  Both
    #: depend on OS memory accounting and heartbeat timing, so they are
    #: volatile like ``steals``.
    recycles: int = 0
    rss_bytes: int = 0

    def to_json(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "spawned": self.spawned,
            "respawns": self.respawns,
            "worker_lost": self.worker_lost,
            "deadline_kills": self.deadline_kills,
            "retired": self.retired,
            "degraded": self.degraded,
            "steals": self.steals,
            "heartbeat_misses": self.heartbeat_misses,
            "warm_ms": self.warm_ms,
            "recycles": self.recycles,
            "rss_bytes": self.rss_bytes,
        }


class _TaskState:
    """One file's retry state machine, advanced attempt by attempt.

    Mirrors the classification in ``repro.service.batch._check_one``
    exactly — same fault taxonomy, same breaker and budget arithmetic —
    so a pool report is record-for-record comparable with the other
    isolation modes.
    """

    __slots__ = ("index", "filename", "text", "home", "attempt",
                 "consecutive", "attempts", "final", "quarantined", "done",
                 "ready_at")

    def __init__(self, index: int, filename: str, text: str, home: int):
        self.index = index
        self.filename = filename
        self.text = text
        self.home = home
        self.attempt = 0
        self.consecutive = 0
        self.attempts: List[AttemptRecord] = []
        self.final: Optional[AttemptResult] = None
        self.quarantined = False
        self.done = False
        self.ready_at = 0.0  # monotonic instant this task may redispatch

    def resolve(self, result: AttemptResult, injected: Tuple[str, ...],
                policy: BatchPolicy,
                fault_override: Optional[str] = None) -> Optional[float]:
        """Fold one attempt in; returns the backoff in ms when the task
        should retry, ``None`` when it is finished."""
        self.final = result
        fault_kind = fault_override or _FAULT_KIND.get(result.status)
        if fault_kind is None:
            self.attempts.append(AttemptRecord(
                attempt=self.attempt, status=result.status,
                injected=injected, duration_ms=result.duration_ms,
            ))
            self.done = True
            return None
        self.consecutive += 1
        retryable = is_retryable(fault_kind)
        breaker_open = self.consecutive >= policy.quarantine_after
        out_of_retries = self.attempt >= policy.retry.max_retries
        will_retry = retryable and not breaker_open and not out_of_retries
        backoff_ms = (
            policy.retry.backoff_ms(self.consecutive - 1)
            if will_retry else 0.0
        )
        self.attempts.append(AttemptRecord(
            attempt=self.attempt, status=result.status, fault=fault_kind,
            retryable=retryable, backoff_ms=backoff_ms, injected=injected,
            duration_ms=result.duration_ms,
        ))
        if breaker_open:
            self.quarantined = True
            self.done = True
            return None
        if not will_retry:
            self.done = True
            return None
        self.attempt += 1
        return backoff_ms

    def outcome(self) -> FileOutcome:
        final = self.final
        return FileOutcome(
            file=self.filename,
            index=self.index,
            status=final.status,
            ok=final.status == "ok",
            quarantined=self.quarantined,
            attempts=tuple(self.attempts),
            diagnostics=tuple(final.diagnostics),
            severities=dict(final.severities),
            rendered=final.rendered,
            crash=final.crash,
        )


class _WorkerSlot:
    """A fixed seat at the pool: the process occupying it may be replaced,
    the slot index and its deque persist."""

    __slots__ = ("slot", "proc", "task_w", "result_r", "reader", "queue",
                 "current", "warmed", "last_beat", "retired", "tasks_done",
                 "last_flightrec", "last_flightrec_ns", "rss_bytes",
                 "tasks_since_spawn", "recycle_pending")

    def __init__(self, slot: int):
        self.slot = slot
        self.proc: Optional[subprocess.Popen] = None
        self.task_w = -1
        self.result_r = -1
        self.reader = proto.FrameReader()
        self.queue: collections.deque = collections.deque()
        # In-flight dispatch: (task, injected tags, dispatch instant).
        self.current: Optional[Tuple[_TaskState, Tuple[str, ...], float]] = \
            None
        # Set by the worker's hello frame.  Tasks are only dispatched to
        # warmed workers so the deadline clock never includes interpreter
        # startup or prelude warm-up time.
        self.warmed = False
        self.last_beat = 0.0
        self.retired = False
        self.tasks_done = 0
        # The occupant's most recent flight-recorder stanza (shipped on
        # every result frame) and the dispatch..receive ns bracket of the
        # frame that carried it — the dead process's black box when this
        # seat later suffers a worker-lost or deadline kill.
        self.last_flightrec: Optional[Dict[str, object]] = None
        self.last_flightrec_ns: Optional[Tuple[int, int]] = None
        # Resource-governor state for the occupant: its last self-sampled
        # RSS (from heartbeat frames), how many tasks this *process* has
        # completed (tasks_done is per-seat and survives respawns), and
        # whether the supervisor owes it a graceful recycle.
        self.rss_bytes: Optional[int] = None
        self.tasks_since_spawn = 0
        self.recycle_pending = False

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


def _init_frame(policy: BatchPolicy) -> Dict[str, object]:
    return {
        "type": "init",
        "prelude": policy.prelude,
        "ext": policy.ext,
    }


def _spawn_process(slot: _WorkerSlot, policy: BatchPolicy) -> None:
    """Spawn a worker process into the slot: pipes, child, reader state.

    Failure-path contract (the warm-up audit): if *any* step raises —
    ``os.pipe`` under fd pressure, ``Popen`` under memory pressure —
    every resource created so far is released before the exception
    propagates, so a half-spawned slot never leaks pipes or a child.
    The caller still owns sending the init frame (its error handling
    differs between the batch supervisor and the persistent pool).
    """
    task_r = task_w = result_r = result_w = -1
    proc: Optional[subprocess.Popen] = None
    try:
        task_r, task_w = os.pipe()
        result_r, result_w = os.pipe()
        argv = [sys.executable, "-m", "repro.service.subproc", "--serve",
                "--task-fd", str(task_r), "--result-fd", str(result_w),
                "--heartbeat-ms", str(policy.heartbeat_ms)]
        if policy.max_worker_mem_mb is not None:
            argv += ["--max-mem-mb", str(policy.max_worker_mem_mb)]
        proc = subprocess.Popen(
            argv,
            stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            pass_fds=(task_r, result_w),
            env=_child_env(),
        )
    except BaseException:
        for fd in (task_r, task_w, result_r, result_w):
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
        if proc is not None:
            proc.kill()
            proc.wait()
        raise
    os.close(task_r)
    os.close(result_w)
    os.set_blocking(result_r, False)
    slot.proc = proc
    slot.task_w = task_w
    slot.result_r = result_r
    slot.reader = proto.FrameReader()
    slot.warmed = False
    slot.retired = False
    slot.last_beat = time.monotonic()
    slot.rss_bytes = None
    slot.tasks_since_spawn = 0
    slot.recycle_pending = False


def _release_slot_fds(slot: _WorkerSlot) -> None:
    """Close the slot's pipe ends and reset its reader (selector handling,
    if any, is the caller's business)."""
    if slot.result_r >= 0:
        try:
            os.close(slot.result_r)
        except OSError:
            pass
        slot.result_r = -1
    if slot.task_w >= 0:
        try:
            os.close(slot.task_w)
        except OSError:
            pass
        slot.task_w = -1
    slot.reader = proto.FrameReader()


class _Supervisor:
    """Single-threaded event loop owning the worker slots.

    All I/O is non-blocking reads multiplexed through a selector; backoff
    delays are modelled as per-task ``ready_at`` instants folded into the
    select timeout, never as sleeps, so one backing-off file cannot stall
    the others.

    With ``slots`` passed in (the serve daemon's
    :class:`PersistentPool`), the supervisor *borrows* the workers: it
    registers their pipes for the duration of one batch and detaches at
    the end instead of spawning and shutting down — warm workers carry
    over to the next batch.  Losses and deadline kills are handled
    identically either way (a respawn replaces the process in the shared
    slot).
    """

    def __init__(
        self,
        items: Sequence[Tuple[str, str]],
        policy: BatchPolicy,
        *,
        schedule: Optional[FaultSchedule],
        ambient: Dict[str, object],
        serialized_ambient: List[Dict[str, str]],
        tracer,
        slots: Optional[List[_WorkerSlot]] = None,
        instrumentation=None,
        ops=None,
    ):
        self.policy = policy
        self.schedule = schedule
        self.ambient = ambient
        self.serialized_ambient = serialized_ambient
        self.instrumentation = instrumentation
        self.tracer = (
            instrumentation.tracer if instrumentation is not None else tracer
        )
        self.ops = ops
        # The telemetry stanza stamped on every dispatched task frame; the
        # per-dispatch parent-span id is added in _dispatch.
        self.trace_id = (
            _new_trace_id()
            if getattr(self.tracer, "enabled", False) else None
        )
        self._telemetry = telemetry_request(
            instrumentation, trace_id=self.trace_id,
        )
        self.hang_s = schedule.hang_s if schedule is not None else 0.5
        self.check_kwargs = {
            "prelude": policy.prelude,
            "ext": policy.ext,
            "max_errors": policy.max_errors,
            "limits": policy.effective_limits(),
            "verify": policy.verify,
            "evaluate": policy.evaluate,
        }
        if slots is None:
            n_workers = max(1, min(policy.pool_workers, len(items)))
            self.slots = [_WorkerSlot(i) for i in range(n_workers)]
            self._managed = True
        else:
            self.slots = list(slots)
            n_workers = max(1, len(self.slots))
            self._managed = False
            for slot in self.slots:
                slot.queue.clear()
                slot.current = None
        self.tasks = [
            _TaskState(index, filename, text, index % n_workers)
            for index, (filename, text) in enumerate(items)
        ]
        for task in self.tasks:
            self.slots[task.home].queue.append(task)
        self.kills = [
            [spec, False]
            for spec in (schedule.kills if schedule is not None else ())
        ]
        self.stats = PoolStats(workers=n_workers)
        self.done_count = 0
        # Worker-recycling stagger: the slot index whose graceful recycle
        # is in flight (awaiting the replacement's hello), or None.  At
        # most one seat recycles at a time, so a recycle wave can never
        # take the whole pool cold simultaneously.
        self._recycling: Optional[int] = None
        self._recycle_rss_bytes = (
            int(policy.recycle_rss_mb * 1024 * 1024)
            if policy.recycle_rss_mb is not None else None
        )
        self.sel = selectors.DefaultSelector()
        if policy.deadline_ms is not None:
            grace_ms = min(
                max(policy.deadline_ms * GRACE_FRACTION, GRACE_MIN_MS),
                GRACE_MAX_MS,
            )
            self.kill_after_s = (policy.deadline_ms + grace_ms) / 1000.0
        else:
            self.kill_after_s = None
        self.heartbeat_s = policy.heartbeat_ms / 1000.0
        self.miss_window_s = max(
            self.heartbeat_s * HEARTBEAT_MISS_PERIODS, HEARTBEAT_MISS_FLOOR_S
        )

    # -- lifecycle ----------------------------------------------------------

    def _emit(self, event: str, **fields) -> None:
        """Record one operational event when an ops log is attached."""
        if self.ops is not None:
            self.ops.emit(event, **fields)

    def _dump_crash(self, kind: str, detail: Dict[str, object],
                    slot: Optional[_WorkerSlot] = None) -> None:
        """Write a crash bundle for a pool fault (advisory; no crash dir
        configured → no-op).  The dead worker's last shipped flight ring
        is folded into the coordinator recorder first — clock-normalized
        through the dispatch..receive bracket that carried it — so the
        bundle holds the dead *process's* final spans and ops events,
        not just the supervisor's view."""
        if flightrec.bundle_directory() is None:
            return
        if slot is not None and slot.last_flightrec:
            send_ns, recv_ns = slot.last_flightrec_ns or (None, None)
            fold_worker_flightrec(
                flightrec.recorder(), slot.last_flightrec,
                send_ns=send_ns, recv_ns=recv_ns,
            )
            slot.last_flightrec = None  # folded once, never duplicated
        flightrec.dump(kind, detail, context={
            "pool": self.stats.to_json(),
            "policy": self.policy.to_json(),
            "ops_tail": self.ops.tail(50) if self.ops is not None else [],
            "workers": [
                {"slot": s.slot,
                 "pid": s.proc.pid if s.proc is not None else None,
                 "alive": s.alive, "retired": s.retired,
                 "warmed": s.warmed, "tasks_done": s.tasks_done,
                 "queued": len(s.queue),
                 "busy": s.current is not None}
                for s in self.slots
            ],
        })

    def _spawn(self, slot: _WorkerSlot) -> None:
        _spawn_process(slot, self.policy)
        self.sel.register(slot.result_r, selectors.EVENT_READ, slot)
        self.stats.spawned += 1
        self._emit("worker-spawn", slot=slot.slot, pid=slot.proc.pid)
        try:
            proto.write_frame_fd(slot.task_w, _init_frame(self.policy))
        except OSError:
            self._handle_worker_loss(slot, salvage=False)

    def _close_slot(self, slot: _WorkerSlot) -> None:
        if slot.result_r >= 0:
            try:
                self.sel.unregister(slot.result_r)
            except (KeyError, ValueError):
                pass
        _release_slot_fds(slot)

    def _reap(self, slot: _WorkerSlot) -> Optional[int]:
        if slot.proc is None:
            return None
        try:
            return slot.proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            slot.proc.kill()
            return slot.proc.wait()

    def _respawn_or_retire(self, slot: _WorkerSlot) -> None:
        if self.stats.respawns < self.policy.max_respawns:
            self.stats.respawns += 1
            self._emit("worker-respawn", slot=slot.slot)
            self._spawn(slot)
        else:
            slot.retired = True
            self.stats.retired += 1
            if self._recycling == slot.slot:
                self._recycling = None  # a retired seat can't say hello
            self._emit("worker-retire", slot=slot.slot)
            self._dump_crash("respawn-exhausted", {
                "slot": slot.slot,
                "max_respawns": self.policy.max_respawns,
            })

    # -- dispatch and stealing ---------------------------------------------

    def _next_task(self, slot: _WorkerSlot, now: float) \
            -> Optional[_TaskState]:
        for i, task in enumerate(slot.queue):
            if task.ready_at <= now:
                del slot.queue[i]
                return task
        victims = sorted(
            (s for s in self.slots if s is not slot and s.queue),
            key=lambda s: (-len(s.queue), s.slot),
        )
        for victim in victims:
            for i in range(len(victim.queue) - 1, -1, -1):
                if victim.queue[i].ready_at <= now:
                    task = victim.queue[i]
                    del victim.queue[i]
                    self.stats.steals += 1
                    return task
        return None

    def _pending_kill(self, index: int, attempt: int):
        for entry in self.kills:
            spec, fired = entry
            if not fired and spec.applies(index, attempt):
                entry[1] = True
                return spec
        return None

    def _dispatch(self, slot: _WorkerSlot, task: _TaskState) -> None:
        specs = (
            self.schedule.for_attempt(task.index, task.attempt)
            if self.schedule is not None else ()
        )
        injected = tuple(spec.tag for spec in specs)
        telemetry = self._telemetry
        if telemetry is not None and self.trace_id is not None:
            parent = self.tracer.current
            if parent is not None:
                telemetry = dict(telemetry, parent_span=parent.id)
        frame = task_payload(
            task.text, task.filename, self.check_kwargs,
            self.serialized_ambient, specs, self.hang_s,
            telemetry=telemetry,
        )
        frame["type"] = "task"
        frame["id"] = task.index
        frame["attempt"] = task.attempt
        # (task, injected tags, monotonic dispatch instant for deadlines,
        #  perf_counter_ns dispatch instant for trace stitching).
        slot.current = (task, injected, time.monotonic(),
                        time.perf_counter_ns())
        kill = self._pending_kill(task.index, task.attempt)
        try:
            proto.write_frame_fd(slot.task_w, frame)
        except OSError:
            self._handle_worker_loss(slot, salvage=False)
            return
        if kill is not None:
            target = (
                slot if kill.worker is None
                else self.slots[kill.worker % len(self.slots)]
            )
            if target.alive:
                # No salvage: the kill is keyed to this dispatch, so the
                # attempt must read worker-lost every round, even if the
                # doomed worker got a result out first.
                target.proc.kill()
                self._handle_worker_loss(target, salvage=False)

    def _maybe_recycle(self, slot: _WorkerSlot) -> bool:
        """Gracefully recycle an *idle* marked slot: polite shutdown, reap,
        respawn warm into the same seat.

        Only fires between that seat's tasks (``current is None``), so the
        in-flight attempt always finishes first and no result is lost or
        duplicated; the stagger guard keeps every other seat serving while
        one recycles.  Recycles are charged to ``stats.recycles`` — never
        to the ``max_respawns`` fault budget, because a recycle is the
        governor doing its job, not a worker loss.
        """
        if not slot.recycle_pending or self._recycling is not None:
            return False
        self._recycling = slot.slot
        self.stats.recycles += 1
        self._emit(
            "worker-recycle", slot=slot.slot,
            pid=slot.proc.pid if slot.proc is not None else None,
            rss_bytes=slot.rss_bytes, tasks=slot.tasks_since_spawn,
        )
        if slot.task_w >= 0:
            try:
                proto.write_frame_fd(slot.task_w, {"type": "shutdown"})
            except OSError:
                pass
        self._reap(slot)
        self._close_slot(slot)
        try:
            self._spawn(slot)
        except OSError:
            # The seat could not respawn right now; treat it like a loss
            # so the normal respawn/retire path (and its budget) applies.
            self._recycling = None
            self._handle_worker_loss(slot, salvage=False)
        return True

    def _fill_idle(self) -> None:
        now = time.monotonic()
        for slot in self.slots:
            if (slot.retired or not slot.alive or not slot.warmed
                    or slot.current is not None):
                continue
            if self._maybe_recycle(slot):
                continue
            task = self._next_task(slot, now)
            if task is not None:
                self._dispatch(slot, task)

    # -- attempt resolution -------------------------------------------------

    def _finish_attempt(self, task: _TaskState, result: AttemptResult,
                        injected: Tuple[str, ...],
                        fault_override: Optional[str] = None) -> None:
        if result.status == "timeout":
            # Both timeout paths — worker-cooperative and supervisor kill —
            # must produce identical records, so drop the partial report a
            # cooperative cancel may have attached.
            result = AttemptResult(
                status="timeout", duration_ms=result.duration_ms
            )
        backoff_ms = task.resolve(result, injected, self.policy,
                                  fault_override)
        if task.done:
            self.done_count += 1
            return
        task.ready_at = (
            time.monotonic() + backoff_ms / 1000.0 if backoff_ms else 0.0
        )
        # Retries go to the front of the home queue: same slot by default,
        # stealable when the home slot is busy or retired.
        self.slots[task.home].queue.appendleft(task)

    def _handle_worker_loss(self, slot: _WorkerSlot, *,
                            salvage: bool = True) -> None:
        if salvage:
            self._drain(slot, handle_eof=False)
        returncode = self._reap(slot)
        self._close_slot(slot)
        self.stats.worker_lost += 1
        self._emit("worker-lost", slot=slot.slot, returncode=returncode)
        self._dump_crash("worker-lost", {
            "slot": slot.slot,
            "returncode": returncode,
            "file": slot.current[0].filename if slot.current else None,
        }, slot=slot)
        current, slot.current = slot.current, None
        if current is not None:
            task, injected, t0, _send_ns = current
            duration_ms = round((time.monotonic() - t0) * 1e3, 3)
            result = AttemptResult(
                status="crash",
                crash=CrashReport(
                    exc_type="WorkerLost",
                    message="pool worker died mid-attempt",
                    where="pool",
                    returncode=returncode,
                ),
                duration_ms=duration_ms,
            )
            self._finish_attempt(task, result, injected,
                                 fault_override=FAULT_WORKER_LOST)
        self._respawn_or_retire(slot)

    def _deadline_kill(self, slot: _WorkerSlot) -> None:
        self._drain(slot, handle_eof=False)
        if slot.current is None:
            return  # the result raced in during the grace window
        if not slot.alive:
            self._handle_worker_loss(slot, salvage=False)
            return
        self.stats.deadline_kills += 1
        self._emit("deadline-kill", slot=slot.slot,
                   file=slot.current[0].filename)
        self._dump_crash("deadline-kill", {
            "slot": slot.slot,
            "file": slot.current[0].filename,
            "deadline_ms": self.policy.deadline_ms,
        }, slot=slot)
        slot.proc.kill()
        self._reap(slot)
        self._close_slot(slot)
        (task, injected, t0, _send_ns), slot.current = slot.current, None
        duration_ms = round((time.monotonic() - t0) * 1e3, 3)
        self._finish_attempt(
            task, AttemptResult(status="timeout", duration_ms=duration_ms),
            injected,
        )
        self._respawn_or_retire(slot)

    # -- the read side ------------------------------------------------------

    def _drain(self, slot: _WorkerSlot, *, handle_eof: bool = True) -> None:
        if slot.result_r < 0:
            return
        eof = False
        while True:
            try:
                chunk = os.read(slot.result_r, 65536)
            except BlockingIOError:
                break
            except OSError:
                eof = True
                break
            if chunk == b"":
                eof = True
                break
            try:
                for frame in slot.reader.feed(chunk):
                    self._on_frame(slot, frame)
            except proto.FrameError:
                eof = True
                break
        if eof and handle_eof:
            self._handle_worker_loss(slot, salvage=False)

    def _on_frame(self, slot: _WorkerSlot, frame: dict) -> None:
        slot.last_beat = time.monotonic()
        kind = frame.get("type")
        if kind == "hello":
            slot.warmed = True
            self.stats.warm_ms += frame.get("warm_ms") or 0.0
            if self._recycling == slot.slot:
                # The recycled seat's replacement is warm: the stagger
                # guard lifts and the next marked seat may recycle.
                self._recycling = None
        elif kind == "result":
            if slot.current is None:
                return  # stale frame from a previous dispatch; drop it
            task, injected, t0, send_ns = slot.current
            if (frame.get("id") != task.index
                    or frame.get("attempt") != task.attempt):
                return
            slot.current = None
            slot.tasks_done += 1
            slot.tasks_since_spawn += 1
            if (self.policy.recycle_after_tasks is not None
                    and slot.tasks_since_spawn
                    >= self.policy.recycle_after_tasks):
                slot.recycle_pending = True
            if frame.get("status") == "memory":
                # The worker tripped its memory budget but survived; its
                # heap high-water mark is burned, so retries must land on
                # a fresh process — mark the seat for a graceful recycle.
                slot.recycle_pending = True
                self._emit(
                    "worker-memory-fault", slot=slot.slot,
                    file=task.filename, attempt=task.attempt,
                )
                self._dump_crash("memory", {
                    "slot": slot.slot,
                    "file": task.filename,
                    "attempt": task.attempt,
                    "max_worker_mem_mb": self.policy.max_worker_mem_mb,
                }, slot=slot)
            fallback_ms = round((time.monotonic() - t0) * 1e3, 3)
            recv_ns = time.perf_counter_ns()
            if frame.get("flightrec"):
                slot.last_flightrec = frame["flightrec"]
                slot.last_flightrec_ns = (send_ns, recv_ns)
            result = result_to_attempt(
                frame, frame.get("duration_ms", fallback_ms)
            )
            # The stitch point: merge what the worker saw — spans offset
            # into this clock, metrics, explain — the moment the result
            # lands, so a later death of this worker loses nothing.
            if result.telemetry is not None:
                merge_worker_telemetry(
                    self.instrumentation, result.telemetry,
                    send_ns=send_ns, recv_ns=recv_ns,
                    span_name="pool.attempt",
                    attrs={
                        "file": task.filename, "attempt": task.attempt,
                        "slot": slot.slot,
                    },
                )
            self._finish_attempt(task, result, injected)
        elif kind == "heartbeat":
            # Heartbeats carry the worker's flight-recorder tail too, so
            # a worker that dies before its first result still has a
            # black box here.  No dispatch bracket exists for a
            # heartbeat, so its spans fold without clock normalization.
            if frame.get("flightrec"):
                slot.last_flightrec = frame["flightrec"]
                slot.last_flightrec_ns = None
            rss = frame.get("rss_bytes")
            if isinstance(rss, int) and rss > 0:
                slot.rss_bytes = rss
                if rss > self.stats.rss_bytes:
                    self.stats.rss_bytes = rss
                flightrec.record_metric("pool.rss_bytes", rss)
                if (self._recycle_rss_bytes is not None
                        and rss >= self._recycle_rss_bytes):
                    slot.recycle_pending = True
        # Unknown kinds only refresh last_beat.

    # -- watchdogs ----------------------------------------------------------

    def _check_watchdogs(self) -> None:
        now = time.monotonic()
        for slot in self.slots:
            if slot.retired or slot.proc is None:
                continue
            if (slot.current is not None and self.kill_after_s is not None
                    and now - slot.current[2] >= self.kill_after_s):
                self._deadline_kill(slot)
                continue
            if now - slot.last_beat >= self.miss_window_s:
                self.stats.heartbeat_misses += 1
                if slot.alive:
                    slot.proc.kill()
                self._handle_worker_loss(slot, salvage=True)

    def _next_timeout(self) -> float:
        now = time.monotonic()
        candidates = [self.miss_window_s]
        for slot in self.slots:
            if slot.current is not None and self.kill_after_s is not None:
                candidates.append(slot.current[2] + self.kill_after_s - now)
            for task in slot.queue:
                if task.ready_at > now:
                    candidates.append(task.ready_at - now)
        return max(0.0, min(candidates))

    # -- degradation --------------------------------------------------------

    def _drain_in_process(self) -> None:
        """Every worker is gone and the respawn budget is spent: finish the
        remaining tasks in-process, continuing each retry state machine."""
        self.stats.degraded = True
        self._emit("pool-degraded")
        for task in self.tasks:
            while not task.done:
                wait = task.ready_at - time.monotonic()
                if wait > 0:
                    time.sleep(wait)
                specs = (
                    self.schedule.for_attempt(task.index, task.attempt)
                    if self.schedule is not None else ()
                )
                injected = tuple(spec.tag for spec in specs)
                faults = dict(self.ambient)
                for spec in specs:
                    faults[spec.stage] = spec.materialize(self.hang_s)
                result = run_attempt_thread(
                    task.text, task.filename, self.check_kwargs, faults,
                    self.policy.deadline_ms,
                    telemetry=self._telemetry,
                )
                if result.telemetry is not None:
                    # In-process attempts share this clock: the worker's
                    # own bracket doubles as the dispatch..receive window.
                    clk = result.telemetry.get("clock") or {}
                    merge_worker_telemetry(
                        self.instrumentation, result.telemetry,
                        send_ns=int(clk.get("start_ns", 0)),
                        recv_ns=int(clk.get("end_ns", 0)),
                        span_name="pool.attempt",
                        attrs={
                            "file": task.filename, "attempt": task.attempt,
                            "degraded": True,
                        },
                    )
                self._finish_attempt(task, result, injected)

    # -- shutdown -----------------------------------------------------------

    def _shutdown(self) -> None:
        for slot in self.slots:
            if slot.task_w >= 0:
                try:
                    proto.write_frame_fd(slot.task_w, {"type": "shutdown"})
                except OSError:
                    pass
            self._close_slot(slot)
            if slot.proc is not None:
                try:
                    slot.proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    slot.proc.kill()
                    slot.proc.wait()
        self.sel.close()

    # -- the loop -----------------------------------------------------------

    def _attach(self) -> None:
        """Register borrowed (persistent-pool) slots with this batch's
        selector and restart their heartbeat clocks."""
        now = time.monotonic()
        for slot in self.slots:
            if slot.result_r >= 0:
                self.sel.register(slot.result_r, selectors.EVENT_READ, slot)
                slot.last_beat = now

    def _detach(self) -> None:
        """Unhook borrowed slots without killing them: the workers stay
        warm for the owner's next batch; only the selector dies."""
        for slot in self.slots:
            if slot.result_r >= 0:
                try:
                    self.sel.unregister(slot.result_r)
                except (KeyError, ValueError):
                    pass
            slot.current = None
            slot.queue.clear()
        self.sel.close()

    def run(self) -> Tuple[List[FileOutcome], PoolStats]:
        with self.tracer.span(
            "pool.supervise",
            workers=len(self.slots), tasks=len(self.tasks),
        ):
            # Spawning happens *inside* the try: if spawn k of n raises
            # (fd exhaustion, fork failure), the ``finally`` still kills
            # and reaps workers 0..k-1 instead of leaking them.
            try:
                if self._managed:
                    for slot in self.slots:
                        self._spawn(slot)
                else:
                    self._attach()
                while self.done_count < len(self.tasks):
                    if not any(
                        not s.retired and s.alive for s in self.slots
                    ):
                        self._drain_in_process()
                        break
                    self._fill_idle()
                    for key, _mask in self.sel.select(self._next_timeout()):
                        self._drain(key.data)
                    self._check_watchdogs()
            finally:
                if self._managed:
                    self._shutdown()
                else:
                    self._detach()
            for slot in self.slots:
                with self.tracer.span(
                    "pool.worker",
                    slot=slot.slot, tasks=slot.tasks_done,
                    retired=slot.retired,
                ):
                    pass
        return [task.outcome() for task in self.tasks], self.stats


def run_pool_batch(
    items: Sequence[Tuple[str, str]],
    policy: BatchPolicy,
    *,
    schedule: Optional[FaultSchedule] = None,
    ambient: Optional[Dict[str, object]] = None,
    serialized_ambient: Optional[List[Dict[str, str]]] = None,
    tracer=NULL_TRACER,
    instrumentation=None,
    ops=None,
) -> Tuple[List[FileOutcome], PoolStats]:
    """Check ``(filename, text)`` pairs on the persistent worker pool.

    Returns the outcomes in input order plus the supervisor's
    :class:`PoolStats`.  Never raises for anything the inputs or the
    workers do — the containment contract of
    :func:`repro.service.check_batch` extends here.  With
    ``instrumentation``, worker attempts run under real per-task
    instrumentation and everything they see is stitched back into the
    coordinator bundle; ``ops`` receives worker lifecycle events.
    """
    if not items:
        return [], PoolStats(workers=0)
    supervisor = _Supervisor(
        items, policy,
        schedule=schedule,
        ambient=ambient if ambient is not None else {},
        serialized_ambient=(
            serialized_ambient if serialized_ambient is not None else []
        ),
        tracer=tracer,
        instrumentation=instrumentation,
        ops=ops,
    )
    return supervisor.run()


class PersistentPool:
    """Worker slots that outlive any single batch — the warm half of the
    ``fg serve`` daemon.

    Each :meth:`run_batch` borrows the slots for one supervised batch
    (losses, deadline kills, and respawns behave exactly as in one-shot
    pool mode) and hands the surviving warm workers back.  Between
    batches :meth:`ensure` revives dead or retired seats and
    :meth:`flush` consumes idle chatter (heartbeats, late hellos) so the
    64 KiB pipe never fills while the daemon sits idle.

    The slot count is fixed at construction from ``policy.pool_workers``
    — per-request policies cannot resize the pool, which keeps the
    report's ``workers`` stat identical between a resumed replay and the
    uninterrupted run.
    """

    def __init__(self, policy: BatchPolicy, tracer=NULL_TRACER, *,
                 ops=None):
        self.policy = policy
        self.tracer = tracer
        self.ops = ops
        self.slots = [_WorkerSlot(i)
                      for i in range(max(1, policy.pool_workers))]
        self.closed = False
        #: Seats revived by :meth:`ensure` after their worker died *between*
        #: batches — mid-batch respawns are counted by each batch's
        #: :class:`PoolStats` instead; the daemon sums both for telemetry.
        self.idle_respawns = 0

    @property
    def alive_workers(self) -> int:
        return sum(1 for slot in self.slots if slot.alive)

    def worker_status(self) -> List[Dict[str, object]]:
        """Per-seat liveness for health/stats payloads (JSON-ready)."""
        return [
            {
                "slot": slot.slot,
                "alive": slot.alive,
                "retired": slot.retired,
                "pid": slot.proc.pid if slot.proc is not None else None,
                "tasks_done": slot.tasks_done,
                "rss_bytes": slot.rss_bytes,
            }
            for slot in self.slots
        ]

    def rss_bytes(self) -> int:
        """Aggregate last-sampled RSS of the live workers, in bytes.

        The serve daemon folds this into admission: requests shed under
        memory pressure instead of piling onto a pool the kernel is about
        to OOM-kill.  Workers that have not heartbeat an ``rss_bytes``
        yet contribute zero (optimistic — admission must not flap while
        the pool warms up).
        """
        return sum(
            slot.rss_bytes or 0 for slot in self.slots if slot.alive
        )

    def ensure(self) -> int:
        """Spawn a worker into every empty or dead seat; returns how many
        were (re)spawned."""
        if self.closed:
            raise RuntimeError("pool is closed")
        spawned = 0
        for slot in self.slots:
            if slot.alive:
                continue
            revival = slot.proc is not None
            if slot.proc is not None:
                try:
                    slot.proc.wait(timeout=0)
                except subprocess.TimeoutExpired:
                    slot.proc.kill()
                    slot.proc.wait()
                slot.proc = None
            _release_slot_fds(slot)
            try:
                _spawn_process(slot, self.policy)
                proto.write_frame_fd(slot.task_w, _init_frame(self.policy))
            except OSError:
                # A seat that cannot spawn right now stays empty; the
                # borrowed-slot supervisor treats it as lost and the next
                # ensure() tries again.
                continue
            spawned += 1
            if revival:
                self.idle_respawns += 1
            if self.ops is not None:
                self.ops.emit(
                    "worker-respawn" if revival else "worker-spawn",
                    slot=slot.slot, pid=slot.proc.pid,
                )
        return spawned

    def flush(self) -> None:
        """Consume idle-time frames (heartbeats, hellos) from every live
        worker.  Frames are parsed, not discarded raw: a hello that lands
        between batches must still mark its slot warmed."""
        for slot in self.slots:
            if slot.result_r < 0:
                continue
            while True:
                try:
                    chunk = os.read(slot.result_r, 65536)
                except (BlockingIOError, OSError):
                    break
                if chunk == b"":
                    break  # worker died; ensure() revives the seat
                try:
                    for frame in slot.reader.feed(chunk):
                        if frame.get("type") == "hello":
                            slot.warmed = True
                        elif frame.get("type") == "heartbeat":
                            rss = frame.get("rss_bytes")
                            if isinstance(rss, int) and rss > 0:
                                slot.rss_bytes = rss
                except proto.FrameError:
                    slot.reader = proto.FrameReader()
                    break

    def run_batch(
        self,
        items: Sequence[Tuple[str, str]],
        policy: BatchPolicy,
        *,
        schedule: Optional[FaultSchedule] = None,
        ambient: Optional[Dict[str, object]] = None,
        serialized_ambient: Optional[List[Dict[str, str]]] = None,
        instrumentation=None,
    ) -> Tuple[List[FileOutcome], PoolStats]:
        """One batch on the warm workers; same contract as
        :func:`run_pool_batch`."""
        if self.closed:
            raise RuntimeError("pool is closed")
        if not items:
            return [], PoolStats(workers=len(self.slots))
        self.ensure()
        self.flush()
        supervisor = _Supervisor(
            items, policy,
            schedule=schedule,
            ambient=ambient if ambient is not None else {},
            serialized_ambient=(
                serialized_ambient if serialized_ambient is not None else []
            ),
            tracer=self.tracer,
            slots=self.slots,
            instrumentation=instrumentation,
            ops=self.ops,
        )
        return supervisor.run()

    def close(self) -> None:
        """Shut every worker down: polite shutdown frame, bounded wait,
        then kill.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        for slot in self.slots:
            if slot.task_w >= 0:
                try:
                    proto.write_frame_fd(slot.task_w, {"type": "shutdown"})
                except OSError:
                    pass
            _release_slot_fds(slot)
            if slot.proc is not None:
                try:
                    slot.proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    slot.proc.kill()
                    slot.proc.wait()
                slot.proc = None

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
