"""Length-prefixed JSON framing for worker-process result channels.

The one-shot subprocess handshake used to be "one JSON document on
stdout", which any stray ``print`` — from checked code, from a debugging
statement left in the pipeline, from a C library — could corrupt.  This
module replaces it with a real wire protocol:

- **Frames.**  Every message is ``MAGIC (4 bytes) + length (u32, big
  endian) + payload (UTF-8 JSON)``.  The magic starts with a byte that is
  invalid UTF-8, so framed data can never be confused with accidental
  text output, and :func:`extract_frame` can resynchronize past garbage
  that landed on the channel before the frame.

- **Channel hygiene.**  Worker entry points call :func:`shield_stdout`
  first: the real stdout fd is duplicated for the protocol's private use
  and fd 1 is redirected to stderr, so *anything* that writes to stdout
  afterwards — Python or C, pipeline or checked program — lands on stderr
  instead of inside the result stream.

- **Incremental parsing.**  The pool supervisor reads many workers' result
  pipes with non-blocking I/O; :class:`FrameReader` buffers partial reads
  per pipe and yields complete frames as they arrive.

Frames are capped at :data:`MAX_FRAME` so a corrupted length prefix
surfaces as a :class:`FrameError` instead of an attempt to buffer 4 GiB.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Iterator, List, Optional, Tuple

#: Frame preamble.  The first byte (0xAB) is not valid UTF-8 anywhere in a
#: character, so framed payloads are self-distinguishing from stray text.
MAGIC = b"\xabFG1"

#: Upper bound on one frame's JSON payload (a corrupted length prefix must
#: fail fast, not allocate unboundedly).
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")
_HEADER_LEN = len(MAGIC) + _HEADER.size


class FrameError(ValueError):
    """The byte stream is not a well-formed frame sequence."""


def encode_frame(obj) -> bytes:
    """Serialize one message to its wire form."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise FrameError(f"frame payload of {len(payload)} bytes exceeds "
                         f"the {MAX_FRAME}-byte cap")
    return MAGIC + _HEADER.pack(len(payload)) + payload


def write_frame_fd(fd: int, obj) -> None:
    """Write one frame to a raw file descriptor (fully, retrying short
    writes)."""
    data = encode_frame(obj)
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def read_frame_fd(fd: int) -> Optional[dict]:
    """Blocking read of exactly one frame from a raw file descriptor.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`FrameError` on a truncated or corrupted stream.
    """
    header = _read_exact(fd, _HEADER_LEN)
    if header is None:
        return None
    if header[: len(MAGIC)] != MAGIC:
        raise FrameError(f"bad frame magic: {header[:len(MAGIC)]!r}")
    (length,) = _HEADER.unpack(header[len(MAGIC):])
    if length > MAX_FRAME:
        raise FrameError(f"frame length {length} exceeds the cap")
    payload = _read_exact(fd, length)
    if payload is None:
        raise FrameError("stream ended mid-frame")
    return _decode_payload(payload)


def _read_exact(fd: int, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` if EOF arrives before any byte,
    :class:`FrameError` if it arrives after some."""
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = os.read(fd, remaining)
        if not chunk:
            if not chunks:
                return None
            raise FrameError("stream ended mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _decode_payload(payload: bytes) -> dict:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise FrameError(f"frame payload is not JSON: {err}") from None


def extract_frame(data: bytes) -> Tuple[Optional[dict], bytes]:
    """Find and decode the first complete frame anywhere in ``data``.

    Tolerates junk before the magic (the resynchronization path for a
    channel something scribbled on).  Returns ``(message, rest)``, with
    ``message=None`` when no complete frame is present.
    """
    start = data.find(MAGIC)
    if start < 0:
        return None, data[-(len(MAGIC) - 1):] if data else b""
    data = data[start:]
    if len(data) < _HEADER_LEN:
        return None, data
    (length,) = _HEADER.unpack(data[len(MAGIC):_HEADER_LEN])
    if length > MAX_FRAME:
        raise FrameError(f"frame length {length} exceeds the cap")
    end = _HEADER_LEN + length
    if len(data) < end:
        return None, data
    return _decode_payload(data[_HEADER_LEN:end]), data[end:]


class FrameReader:
    """Incremental frame parser for one non-blocking pipe.

    Feed it whatever bytes ``os.read`` produced; it buffers partial frames
    across feeds and yields each complete message exactly once.
    """

    def __init__(self):
        self._buffer = b""

    def feed(self, data: bytes) -> Iterator[dict]:
        self._buffer += data
        while True:
            message, self._buffer = extract_frame(self._buffer)
            if message is None:
                return
            yield message

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet parseable as a complete frame."""
        return len(self._buffer)


def shield_stdout() -> int:
    """Claim the real stdout for the protocol; reroute fd 1 to stderr.

    Returns a private duplicate of the original stdout fd — the result
    channel.  After this call, any write to fd 1 / ``sys.stdout`` (a stray
    ``print`` in checked code, a C-level write) goes to stderr and cannot
    corrupt the framed result stream.
    """
    import sys

    result_fd = os.dup(1)
    os.set_inheritable(result_fd, False)
    sys.stdout.flush()
    os.dup2(2, 1)
    return result_fd
