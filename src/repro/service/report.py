"""Structured results for the batch checking service.

A batch run never loses a file's result: every input ends as exactly one
:class:`FileOutcome`, whatever happened to it — checked clean, diagnosed,
timed out, crashed, or quarantined by the circuit breaker.  Worker death is
*contained*: it becomes a :class:`CrashReport` attached to that file's
outcome while the rest of the batch completes.

The aggregate :class:`BatchReport` is **deterministic**: the same inputs,
policy, and fault schedule produce the same report, byte-for-byte, modulo
the timing fields listed in :data:`TIMING_FIELDS` —
:meth:`BatchReport.canonical_json` strips them, and the chaos harness
(:func:`repro.testing.run_chaos`) diffs the canonical bytes across runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Report schema version (bump on breaking shape changes).
SCHEMA = "repro/batch-report v1"

#: Per-file outcome statuses, in "worst wins" order for the rollup.
#: ``"memory"`` is a contained per-worker memory-budget trip — worse than
#: a timeout (the attempt died, not just ran long), better than a crash
#: (the containment wall held and the worker survived).
STATUSES = ("ok", "diagnostics", "timeout", "memory", "crash")

#: JSON keys holding measured wall-clock quantities; everything else in a
#: batch report is required to be run-to-run stable.
TIMING_FIELDS = frozenset({"duration_ms", "elapsed_ms"})

#: Pool-supervisor counters that depend on OS scheduling (who stole what,
#: whether a heartbeat squeaked in) rather than on the input/policy/chaos
#: triple; stripped from the canonical digest alongside the timing fields.
#: ``respawns``, ``worker_lost``, and ``degraded`` are *not* here — those
#: are part of the deterministic chaos contract.  ``spawned`` joined the
#: volatile set with the serve daemon's persistent pool: a warm pool runs
#: a batch with zero fresh spawns where a cold one spawns every slot, and
#: the canonical report must not depend on which daemon lifetime served
#: the request.
VOLATILE_POOL_FIELDS = frozenset(
    {"steals", "heartbeat_misses", "warm_ms", "spawned", "rss_bytes",
     "recycles"}
)

#: Resource-governor policy knobs.  They shape *how* a batch runs (memory
#: rlimits, worker recycling) but must never change *what* it reports —
#: the acceptance contract is byte-identical digests governor-on vs
#: governor-off — so they are stripped from the canonical form exactly
#: like timing.  The policy echo in :meth:`BatchPolicy.to_json` still
#: records them for humans and for journal replay.
GOVERNOR_POLICY_FIELDS = frozenset(
    {"max_worker_mem_mb", "recycle_rss_mb", "recycle_after_tasks"}
)

#: Extended exit codes for ``fg batch`` / ``fg client`` (0–3 shared with
#: the single-file contract; see docs/DIAGNOSTICS.md).
EXIT_OK = 0
EXIT_DIAGNOSTICS = 1
EXIT_DEADLINE = 4
EXIT_PARTIAL = 5
#: ``fg client`` only: the serve daemon shed the request at admission
#: (bounded queue full, or draining); the response carries a
#: deterministic ``retry_after_ms`` hint.
EXIT_OVERLOAD = 6


@dataclass(frozen=True)
class CrashReport:
    """A contained worker death, attached to the file that caused it.

    ``where`` says which containment wall caught it: ``"worker"`` (the
    in-process worker thread), ``"subprocess"`` (an isolated child died —
    ``returncode`` carries its wait status, negative for a signal kill), or
    ``"pool"`` (a persistent pool worker was lost with this attempt in
    flight; the supervisor recorded it as the ``worker-lost`` fault).
    """

    exc_type: str
    message: str
    where: str = "worker"
    traceback: Tuple[str, ...] = ()
    returncode: Optional[int] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "exc_type": self.exc_type,
            "message": self.message,
            "where": self.where,
            "traceback": list(self.traceback),
            "returncode": self.returncode,
        }


@dataclass(frozen=True)
class AttemptRecord:
    """One try at one file: how it ended and what the retry policy did next.

    ``fault`` is the taxonomy kind for failures (``"deadline"``/``"crash"``,
    ``None`` for ok/diagnosed attempts); ``backoff_ms`` is the delay the
    deterministic schedule imposed *after* this attempt (0 when this was the
    last); ``injected`` lists the chaos faults installed for this attempt
    (``"stage:kind"`` tags), so the chaos harness can assert every injected
    fault is reported exactly once.  ``duration_ms`` is a timing field.
    """

    attempt: int
    status: str
    fault: Optional[str] = None
    retryable: bool = False
    backoff_ms: float = 0.0
    injected: Tuple[str, ...] = ()
    duration_ms: float = 0.0

    def to_json(self) -> Dict[str, object]:
        return {
            "attempt": self.attempt,
            "status": self.status,
            "fault": self.fault,
            "retryable": self.retryable,
            "backoff_ms": self.backoff_ms,
            "injected": list(self.injected),
            "duration_ms": self.duration_ms,
        }


@dataclass(frozen=True)
class FileOutcome:
    """The final word on one input file.

    ``status`` is the last attempt's status; ``quarantined`` is set when the
    circuit breaker opened (N consecutive failures) before the retry budget
    ran out, so retries couldn't starve the batch.
    """

    file: str
    index: int
    status: str
    ok: bool
    quarantined: bool = False
    attempts: Tuple[AttemptRecord, ...] = ()
    diagnostics: Tuple[Dict[str, object], ...] = ()
    severities: Dict[str, int] = field(default_factory=dict)
    rendered: str = ""
    crash: Optional[CrashReport] = None

    @property
    def retries(self) -> int:
        return max(0, len(self.attempts) - 1)

    def to_json(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "index": self.index,
            "status": self.status,
            "ok": self.ok,
            "quarantined": self.quarantined,
            "attempts": [a.to_json() for a in self.attempts],
            "diagnostics": list(self.diagnostics),
            "severities": dict(self.severities),
            "rendered": self.rendered,
            "crash": self.crash.to_json() if self.crash else None,
        }


@dataclass(frozen=True)
class BatchReport:
    """Everything one batch run produced, in input order.

    The exit-code contract extends the single-file 0/1/2/3 one so partial
    failure, deadline exhaustion, and total failure are distinguishable:

    - 0 — every file checked clean;
    - 1 — the batch completed; some files have diagnostics (input errors);
    - 4 — deadline exhaustion: at least one file timed out (and none
      crashed);
    - 5 — partial failure: crash or memory-budget containment engaged for
      at least one file (usage errors stay 2 and a bug in the batch
      driver itself stays 3, both decided by the CLI).
    """

    files: Tuple[FileOutcome, ...]
    policy: Dict[str, object] = field(default_factory=dict)
    elapsed_ms: float = 0.0
    #: Pool-supervisor stats (``PoolStats.to_json()``) when the batch ran
    #: under ``isolate="pool"``; ``None`` for the other isolation modes.
    pool: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return all(f.ok for f in self.files)

    @property
    def quarantine(self) -> Tuple[str, ...]:
        return tuple(f.file for f in self.files if f.quarantined)

    @property
    def exit_code(self) -> int:
        statuses = {f.status for f in self.files}
        if "crash" in statuses or "memory" in statuses:
            return EXIT_PARTIAL
        if "timeout" in statuses:
            return EXIT_DEADLINE
        if any(f.severities.get("error") for f in self.files):
            return EXIT_DIAGNOSTICS
        return EXIT_OK

    def rollup(self) -> Dict[str, object]:
        """Counts by status plus the severity totals across every report."""
        by_status = {status: 0 for status in STATUSES}
        severities = {"error": 0, "warning": 0, "note": 0}
        retries = 0
        for outcome in self.files:
            by_status[outcome.status] = by_status.get(outcome.status, 0) + 1
            retries += outcome.retries
            for severity, count in outcome.severities.items():
                severities[severity] = severities.get(severity, 0) + count
        return {
            "files": len(self.files),
            **by_status,
            "quarantined": len(self.quarantine),
            "retries": retries,
            "severities": severities,
        }

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "policy": dict(self.policy),
            "files": [f.to_json() for f in self.files],
            "rollup": self.rollup(),
            "quarantine": list(self.quarantine),
            "exit_code": self.exit_code,
            "elapsed_ms": self.elapsed_ms,
            "pool": dict(self.pool) if self.pool is not None else None,
        }

    def canonical_json(self) -> str:
        """The determinism surface: JSON with timing and scheduling-volatile
        fields stripped."""
        return canonicalize(self.to_json())

    def render(self) -> str:
        """Human-readable per-file table + rollup (the non-JSON CLI view)."""
        lines: List[str] = []
        for outcome in self.files:
            label = outcome.status
            if outcome.status == "diagnostics":
                label = f"error({outcome.severities.get('error', 0)})"
            flags = []
            if outcome.retries:
                flags.append(f"attempts={len(outcome.attempts)}")
            if outcome.quarantined:
                flags.append("quarantined")
            suffix = ("  [" + ", ".join(flags) + "]") if flags else ""
            lines.append(f"{label:<12} {outcome.file}{suffix}")
            if outcome.crash is not None:
                lines.append(
                    f"{'':<12} contained {outcome.crash.where} crash: "
                    f"{outcome.crash.exc_type}: {outcome.crash.message}"
                )
        roll = self.rollup()
        lines.append(
            "-- rollup: "
            + " ".join(f"{k}={roll[k]}" for k in
                       ("files", "ok", "diagnostics", "timeout", "memory",
                        "crash", "quarantined", "retries"))
        )
        if self.pool is not None:
            lines.append(
                "-- pool: "
                + " ".join(f"{k}={self.pool[k]}" for k in
                           ("workers", "respawns", "worker_lost", "steals",
                            "retired", "degraded")
                           if k in self.pool)
            )
        if self.quarantine:
            lines.append("-- quarantine: " + ", ".join(self.quarantine))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.files)


_NONCANONICAL_FIELDS = (
    TIMING_FIELDS | VOLATILE_POOL_FIELDS | GOVERNOR_POLICY_FIELDS
)


def canonicalize(report_json) -> str:
    """Canonical form of an already-projected report dict.

    The serve daemon ships ``BatchReport.to_json()`` envelopes over the
    wire and into the journal; this is :meth:`BatchReport.canonical_json`
    for consumers that only hold the JSON — same stripping, same key
    order, byte-identical output.
    """
    return json.dumps(
        _strip_timings(report_json), sort_keys=True, indent=None
    )


def _strip_timings(value):
    if isinstance(value, dict):
        return {
            k: _strip_timings(v)
            for k, v in value.items()
            if k not in _NONCANONICAL_FIELDS
        }
    if isinstance(value, list):
        return [_strip_timings(v) for v in value]
    return value
