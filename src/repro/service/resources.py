"""Process resource helpers: RSS self-sampling and memory rlimits.

Both halves of the resource governor live on top of these two calls:
workers sample their own RSS into heartbeat frames (so the supervisor can
recycle bloated processes) and apply an address-space rlimit at startup
(so a pathological input trips a contained :class:`MemoryError` instead
of the kernel OOM killer).

Everything here is advisory and never raises: on platforms without
``/proc`` or the :mod:`resource` module the samplers return ``None`` and
the limiter is a no-op — the service degrades to ungoverned behaviour
rather than refusing to run.
"""

from __future__ import annotations

from typing import Optional

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

#: ``/proc/self/status`` — primary RSS source on Linux.
PROC_STATUS = "/proc/self/status"


def _rss_from_proc(path: str = PROC_STATUS) -> Optional[int]:
    """Current RSS in bytes from the ``VmRSS:`` line, or None."""
    try:
        with open(path, "rb") as handle:
            for raw in handle:
                if raw.startswith(b"VmRSS:"):
                    parts = raw.split()
                    # "VmRSS:   12345 kB"
                    if len(parts) >= 2 and parts[1].isdigit():
                        return int(parts[1]) * 1024
                    return None
    except OSError:
        return None
    return None


def _rss_from_getrusage() -> Optional[int]:
    """Peak RSS in bytes via getrusage — the portable fallback.

    ``ru_maxrss`` is kilobytes on Linux (bytes on macOS, but there
    ``/proc`` is absent and an over-estimate only recycles sooner, which
    is the safe direction for a high-water-mark governor).
    """
    if _resource is None:
        return None
    try:
        peak_kb = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    except (OSError, ValueError):
        return None
    if peak_kb <= 0:
        return None
    return int(peak_kb) * 1024


def sample_rss_bytes(proc_status: str = PROC_STATUS) -> Optional[int]:
    """Best-effort RSS of the calling process in bytes.

    Prefers the live ``VmRSS`` figure from ``/proc``; falls back to the
    ``getrusage`` high-water mark; returns ``None`` when neither source
    is available. Never raises.
    """
    rss = _rss_from_proc(proc_status)
    if rss is not None:
        return rss
    return _rss_from_getrusage()


def apply_memory_limit(mem_mb: Optional[float]) -> bool:
    """Cap this process's address space at ``mem_mb`` megabytes.

    Tries ``RLIMIT_AS`` first (covers all mappings, so allocations past
    the cap raise :class:`MemoryError` inside the interpreter), then
    ``RLIMIT_DATA`` as a fallback for kernels where ``RLIMIT_AS`` is
    unsupported. Returns True when a limit was installed. Never raises —
    a worker that cannot be governed still checks programs.
    """
    if mem_mb is None or _resource is None:
        return False
    try:
        limit = int(mem_mb * 1024 * 1024)
    except (TypeError, ValueError):
        return False
    if limit <= 0:
        return False
    for name in ("RLIMIT_AS", "RLIMIT_DATA"):
        which = getattr(_resource, name, None)
        if which is None:
            continue
        try:
            _soft, hard = _resource.getrlimit(which)
            if hard != _resource.RLIM_INFINITY and hard < limit:
                limit = hard
            _resource.setrlimit(which, (limit, hard))
            return True
        except (OSError, ValueError):
            continue
    return False


def current_memory_limit_bytes() -> Optional[int]:
    """The effective soft address-space cap, or None when unlimited.

    Used by the ``memhog`` chaos fault to refuse to allocate when no
    rlimit is in force — chaos must never eat the host's actual RAM.
    """
    if _resource is None:
        return None
    for name in ("RLIMIT_AS", "RLIMIT_DATA"):
        which = getattr(_resource, name, None)
        if which is None:
            continue
        try:
            soft, _hard = _resource.getrlimit(which)
        except (OSError, ValueError):
            continue
        if soft != _resource.RLIM_INFINITY and soft > 0:
            return int(soft)
    return None
