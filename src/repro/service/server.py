"""The ``fg serve`` daemon: a resilient socket front end for batch checking.

One long-lived process owns a :class:`~repro.service.pool.PersistentPool`
of warm workers and serves check requests over a Unix-domain stream socket
using the framed protocol from :mod:`repro.service.proto` — the same
magic, length prefix, and junk-resync rules as the worker pipes, so a
partial or hostile byte stream can never wedge the parser.

**Threading model.**  Two threads, one direction of ownership:

- the *main* thread runs a non-blocking ``selectors`` loop over the
  listener, every client connection, and a self-pipe; it owns admission
  (the bounded queue), connection lifecycle (including disconnect and
  slow-loris idle close), and all socket I/O;
- the *executor* thread pops admitted requests one at a time and runs
  :func:`~repro.service.check_batch` on the warm pool, journaling
  ``done`` records and pushing responses back through the self-pipe.

**Admission control.**  The queue is bounded (``max_queue``); a request
arriving over the bound is shed immediately with an ``overload`` response
carrying a deterministic ``retry_after_ms = retry_after_base_ms *
(queued + in_flight)`` hint — load shedding is a *policy*, not an
accident of buffer sizes.  A request whose own ``deadline_ms`` expires
while still queued is shed with a ``shed`` response (the work never
started; the journal records a ``cancel``).

**Deadline composition.**  A request may carry policy overrides including
``deadline_ms``; the effective per-task deadline is the *minimum* of the
server's configured deadline and the request's — computed once at
admission from static values, so the policy echo in the report (and hence
the canonical digest) is identical whether the request runs immediately,
queued, or replayed after a crash.

**Graceful drain.**  SIGTERM/SIGINT set a flag through
:func:`~repro.service.signals.notify_on_termination` and poke the
self-pipe.  A draining server stops admitting (``draining`` responses),
finishes every already-admitted request, flushes the responses, and exits
0.  Clients that disconnect while their request is queued get it
cancelled (journal ``cancel``); a disconnect with the request in flight
orphans it — the batch completes and is journaled, only the response is
dropped, and the pool is never poisoned mid-task.

**Crash safety.**  Every admitted request writes a journal ``begin``
before it can run and a ``done``/``cancel`` after
(:mod:`repro.service.journal`).  A SIGKILLed daemon restarted with
``--resume`` replays the journal, truncates any torn tail, and re-runs
exactly the unfinished requests; determinism of the checking stack makes
the resumed canonical reports byte-identical to the uninterrupted run.
"""

from __future__ import annotations

import collections
import json
import os
import selectors
import socket
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.observability import (
    Instrumentation,
    NULL_TRACER,
    OpsLog,
    ServerTelemetry,
    prometheus_text,
)
from repro.observability import diskguard, flightrec
from repro.service import journal as journal_mod
from repro.service import proto
from repro.service.batch import check_batch
from repro.service.faults import FaultSchedule
from repro.service.journal import (
    Journal,
    begin_record,
    cancel_record,
    done_record,
    report_digest,
)
from repro.service.policy import BatchPolicy
from repro.service.pool import PersistentPool
from repro.service.signals import notify_on_termination

#: Request frame types a client may send.
REQUEST_TYPES = (
    "batch", "health", "stats", "events", "debug-bundle", "shutdown",
)

#: Response frame types that end a request (everything except "accepted").
TERMINAL_RESPONSES = (
    "report", "overload", "shed", "draining", "error", "health", "stats",
    "events", "debug-bundle", "shutdown",
)


class ServeError(Exception):
    """The daemon cannot start (bad socket path, live sibling, ...)."""


@dataclass(frozen=True)
class ServeOptions:
    """Everything about the daemon that is not the batch policy."""

    socket_path: str
    journal_path: Optional[str] = None
    #: Admission bound: requests beyond this many queued are shed.
    max_queue: int = 8
    #: Scale for the deterministic overload hint.
    retry_after_base_ms: int = 100
    #: Slow-loris defense: a connection idle this long with no admitted
    #: request (stalled mid-frame, or never sent one) is closed.
    idle_timeout_s: float = 10.0
    #: Replay the existing journal and re-run unfinished requests before
    #: serving.  Without it, an existing journal is rotated aside.
    resume: bool = False
    #: Replay, re-run, journal, and exit without ever binding the socket
    #: (the crash-recovery verification mode used by CI).
    resume_only: bool = False
    #: Periodically write a Prometheus-text-format telemetry snapshot here
    #: (atomic tmp+rename; ``None`` disables the writer).
    metrics_file: Optional[str] = None
    #: Seconds between metrics-file snapshots.
    metrics_interval_s: float = 2.0
    #: JSONL mirror of the operational event log; defaults to
    #: ``<socket>.ops.jsonl`` next to the socket.
    ops_log_path: Optional[str] = None
    #: Crash-bundle directory for the flight recorder's forensics dumps;
    #: defaults to ``<socket>.crash`` next to the socket.
    crash_dir: Optional[str] = None
    #: Seconds between live "blackbox" bundle snapshots — the on-disk
    #: forensics record that survives a SIGKILL (removed on clean exit).
    blackbox_interval_s: float = 1.0
    #: Aggregate worker-RSS admission budget in MiB: while the pool's
    #: heartbeat-sampled RSS total is at or over this, new batch requests
    #: are shed with ``reason="memory-pressure"`` instead of piling onto
    #: a pool the kernel is about to OOM-kill.  ``None`` disables it.
    max_rss_mb: Optional[float] = None
    #: Ops-log rotation threshold in bytes (one ``.1`` backup generation);
    #: ``None`` disables rotation.
    ops_log_max_bytes: Optional[int] = None

    def effective_journal_path(self) -> str:
        return (
            self.journal_path
            if self.journal_path is not None
            else self.socket_path + ".journal"
        )

    def effective_ops_log_path(self) -> str:
        return (
            self.ops_log_path
            if self.ops_log_path is not None
            else self.socket_path + ".ops.jsonl"
        )

    def effective_crash_dir(self) -> str:
        return (
            self.crash_dir
            if self.crash_dir is not None
            else self.socket_path + ".crash"
        )


class _Conn:
    """One client connection owned by the main loop."""

    __slots__ = ("sock", "fd", "reader", "outbuf", "last_activity",
                 "requests", "closed")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.fd = sock.fileno()
        self.reader = proto.FrameReader()
        self.outbuf = b""
        self.last_activity = time.monotonic()
        #: Requests this connection is waiting on (admission through
        #: response) — the disconnect-cancellation set.
        self.requests: List["_Request"] = []
        self.closed = False


class _Request:
    """One admitted batch request, queued or in flight."""

    __slots__ = ("id", "conn", "sources", "policy", "policy_json",
                 "schedule_json", "deadline_ms", "admitted_at", "resumed")

    def __init__(self, rid: int, conn: Optional[_Conn],
                 sources: List[Tuple[str, str]], policy: BatchPolicy,
                 policy_json: Dict[str, object],
                 schedule_json: Optional[Dict[str, object]],
                 deadline_ms: Optional[float], *, resumed: bool = False):
        self.id = rid
        self.conn = conn
        self.sources = sources
        self.policy = policy
        self.policy_json = policy_json
        self.schedule_json = schedule_json
        self.deadline_ms = deadline_ms
        self.admitted_at = time.monotonic()
        self.resumed = resumed


def resolve_policy(
    base: BatchPolicy, overrides: Optional[Dict[str, object]]
) -> Tuple[BatchPolicy, Dict[str, object]]:
    """Compose the server's base policy with a request's overrides.

    Overrides are applied field-wise on top of the base policy's echo,
    except ``deadline_ms``, which composes as the *minimum* when both
    sides set one — a client can only tighten the server's deadline,
    never escape it.  Returns the resolved policy and its echo (which is
    what the journal ``begin`` record stores).
    """
    blob = base.to_json()
    if overrides:
        if not isinstance(overrides, dict):
            raise ValueError("policy overrides must be an object")
        base_deadline = blob.get("deadline_ms")
        request_deadline = overrides.get("deadline_ms")
        blob = dict(blob)
        blob.update(overrides)
        if base_deadline is not None and request_deadline is not None:
            blob["deadline_ms"] = min(base_deadline, request_deadline)
    policy = BatchPolicy.from_json(blob)
    return policy, policy.to_json()


class Server:
    """The daemon.  Construct, then :meth:`serve` (blocks until drained).

    ``serve`` returns a summary dict: requests served, requests resumed
    (id → digest), and journal-repair facts — the CLI prints it on exit.
    """

    def __init__(
        self,
        policy: BatchPolicy,
        options: ServeOptions,
        instrumentation: Optional[Instrumentation] = None,
    ):
        self.policy = policy
        self.options = options
        self.instrumentation = instrumentation
        self.tracer = (
            instrumentation.tracer if instrumentation is not None
            else NULL_TRACER
        )
        self.metrics = (
            instrumentation.metrics if instrumentation is not None else None
        )
        self.pool: Optional[PersistentPool] = None
        self.journal: Optional[Journal] = None
        # Admission queue + executor handshake.
        self.queue: collections.deque = collections.deque()
        self.cond = threading.Condition()
        self.current: Optional[_Request] = None
        self.stopping = False
        # Finished (request, response) pairs, main loop drains.
        self.results: collections.deque = collections.deque()
        self.draining = False
        self.next_id = 1
        self.served = 0
        self.resumed_digests: Dict[int, str] = {}
        self.truncated_bytes = 0
        self._started_at = 0.0
        # Rolling live telemetry (latency/queue-wait percentiles, shed and
        # respawn totals) plus the operational event log; both are created
        # here so tests can construct a Server and read them directly.
        self.telemetry = ServerTelemetry(
            workers=max(1, policy.pool_workers)
        )
        self.ops: Optional[OpsLog] = None
        #: False when the ops-log path could not be opened (satellite of
        #: the forensics work: degrading to ring-only must be *loud* —
        #: a warning event plus a health-payload flag, never silence).
        self.ops_log_writable = True
        #: False after a metrics-file snapshot failed to write; restored
        #: (with a recovery event) by the next successful snapshot.
        self.metrics_file_writable = True
        #: False after a journal append failed (full disk, yanked mount).
        #: The daemon keeps serving — responses still flow — but resume
        #: coverage is degraded, and the health payload says so.
        self.journal_writable = True
        #: False while the filesystem under the durable writers is below
        #: the diskguard floor (checked on a cadence in the main loop).
        self.disk_headroom = True
        #: Requests shed for memory pressure (subset of shed_total).
        self.shed_memory = 0
        #: Graceful worker recycles summed over every batch's pool stats.
        self.recycles = 0
        self._max_rss_bytes = (
            int(options.max_rss_mb * 1024 * 1024)
            if options.max_rss_mb is not None else None
        )
        self._disk_due = 0.0
        self._metrics_due = 0.0
        self._blackbox_due = 0.0
        self._blackbox_path: Optional[str] = None
        self._drain_logged = False
        self.sel: Optional[selectors.BaseSelector] = None
        self.listener: Optional[socket.socket] = None
        self.conns: Dict[int, _Conn] = {}
        self._wake_r = -1
        self._wake_w = -1
        #: Set once the socket is bound and listening (tests poll it).
        self.ready = threading.Event()

    def _inc(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    def _journal_append(self, record: Dict[str, object]) -> None:
        """Append to the journal, degrading *loudly* when the disk fails.

        A full disk or yanked mount must not take the daemon down — the
        response path still works — but it must not be silent either:
        one ``journal-unwritable`` event per outage, a
        ``journal_writable: false`` health flag, and a recovery event
        when appends start landing again.
        """
        if self.journal is None:
            return
        try:
            self.journal.append(record)
        except OSError as exc:
            if self.journal_writable:
                self.journal_writable = False
                if self.ops is not None:
                    self.ops.emit(
                        "journal-unwritable",
                        path=self.options.effective_journal_path(),
                        error=str(exc),
                    )
        else:
            if not self.journal_writable:
                self.journal_writable = True
                if self.ops is not None:
                    self.ops.emit(
                        "journal-recovered",
                        path=self.options.effective_journal_path(),
                    )

    # -- journal / resume ---------------------------------------------------

    def _prepare_journal(self) -> List[Dict[str, object]]:
        """Open the journal; under ``--resume`` replay it and return the
        unfinished ``begin`` records, otherwise rotate any stale file
        aside so two daemon lifetimes never interleave."""
        path = self.options.effective_journal_path()
        unfinished: List[Dict[str, object]] = []
        if self.options.resume or self.options.resume_only:
            replay = journal_mod.replay(path)
            self.truncated_bytes = replay.truncated_bytes
            unfinished = replay.unfinished
            self.next_id = replay.next_request_id
        else:
            rotated = journal_mod.rotate(path)
            if rotated is not None and self.ops is not None:
                self.ops.emit("journal-rotate", backup=rotated)
        self.journal = Journal(path)
        return unfinished

    def _replay_request(self, record: Dict[str, object]) -> _Request:
        policy = BatchPolicy.from_json(record["policy"])
        return _Request(
            record["request"], None,
            [(name, text) for name, text in record["sources"]],
            policy, record["policy"], record.get("schedule"),
            # Queue-wait deadlines do not survive a crash: the daemon was
            # down for an unknowable wall-clock span, and shedding on it
            # would make resume nondeterministic.
            None,
            resumed=True,
        )

    # -- the executor thread ------------------------------------------------

    def _run_request(self, req: _Request) -> Dict[str, object]:
        queue_wait_ms = (time.monotonic() - req.admitted_at) * 1000.0
        if req.deadline_ms is not None and queue_wait_ms > req.deadline_ms:
            self._journal_append(cancel_record(req.id, "queue-deadline"))
            self.telemetry.record_shed()
            if self.ops is not None:
                self.ops.emit("shed", reason="queue-deadline",
                              request=req.id)
            return {"type": "shed", "request": req.id,
                    "reason": "queue-deadline"}
        schedule = (
            FaultSchedule.from_json(req.schedule_json)
            if req.schedule_json else None
        )
        run_started = time.monotonic()
        with self.tracer.span(
            "server.request",
            request=req.id, files=len(req.sources), resumed=req.resumed,
        ):
            try:
                report = check_batch(
                    req.sources, req.policy,
                    instrumentation=self.instrumentation,
                    fault_schedule=schedule,
                    pool=self.pool,
                )
            except Exception as exc:  # a bug, not an input failure
                self._journal_append(cancel_record(
                    req.id, f"internal: {type(exc).__name__}: {exc}"
                ))
                flightrec.dump(
                    "daemon-exception",
                    {"request": req.id, "exc_type": type(exc).__name__,
                     "message": str(exc)},
                    context=self._crash_context(),
                    traceback_lines=traceback.format_exception(
                        type(exc), exc, exc.__traceback__,
                    ),
                )
                return {"type": "error", "request": req.id, "internal": True,
                        "message": f"{type(exc).__name__}: {exc}"}
        canonical = report.canonical_json()
        digest = report_digest(canonical)
        self._journal_append(done_record(
            req.id, report.exit_code, canonical, resumed=req.resumed,
        ))
        self.served += 1
        finished = time.monotonic()
        self.telemetry.observe_request(
            latency_ms=(finished - req.admitted_at) * 1000.0,
            queue_wait_ms=queue_wait_ms,
            busy_s=finished - run_started,
        )
        self.telemetry.add_respawns(
            int((report.pool or {}).get("respawns", 0))
        )
        self.recycles += int((report.pool or {}).get("recycles", 0))
        if req.resumed:
            self.resumed_digests[req.id] = digest
        return {
            "type": "report",
            "request": req.id,
            "exit_code": report.exit_code,
            "digest": digest,
            "report": report.to_json(),
        }

    def _executor(self) -> None:
        while True:
            with self.cond:
                while not self.queue and not self.stopping:
                    self.cond.wait()
                if self.stopping and not self.queue:
                    return
                req = self.queue.popleft()
                self.current = req
            response = self._run_request(req)
            with self.cond:
                self.current = None
            self.results.append((req, response))
            self._wake()

    # -- self-pipe ----------------------------------------------------------

    def _wake(self) -> None:
        if self._wake_w >= 0:
            try:
                os.write(self._wake_w, b"w")
            except OSError:
                pass

    def _on_signal(self, signum: int) -> None:
        # Signal context: flag + wakeup only.
        self.draining = True
        self._wake()

    # -- admission (main thread) --------------------------------------------

    def _retry_after_ms(self) -> int:
        in_flight = 1 if self.current is not None else 0
        return int(
            self.options.retry_after_base_ms * (len(self.queue) + in_flight)
        )

    def _admit(self, conn: _Conn, frame: Dict[str, object]) -> None:
        self._inc("server.requests")
        if self.draining:
            self._inc("server.shed")
            self.telemetry.record_shed()
            if self.ops is not None:
                self.ops.emit("shed", reason="draining")
            self._respond(conn, {
                "type": "draining",
                "retry_after_ms": self._retry_after_ms(),
            })
            return
        if self._max_rss_bytes is not None:
            # Drain idle heartbeat chatter first so the RSS view is
            # current, but only while the executor is provably parked
            # (empty queue, nothing in flight) — it owns the pipes
            # during a batch.
            with self.cond:
                idle = self.current is None and not self.queue
            if idle and self.pool is not None:
                self.pool.flush()
            rss = self.pool.rss_bytes() if self.pool is not None else 0
            if rss >= self._max_rss_bytes:
                self.shed_memory += 1
                self._inc("server.shed_memory")
                self.telemetry.record_shed()
                if self.ops is not None:
                    self.ops.emit("shed", reason="memory-pressure",
                                  rss_bytes=rss,
                                  max_rss_mb=self.options.max_rss_mb)
                self._respond(conn, {
                    "type": "shed",
                    "reason": "memory-pressure",
                    "retry_after_ms": self._retry_after_ms(),
                })
                return
        if len(self.queue) >= self.options.max_queue:
            self._inc("server.overload")
            self.telemetry.record_shed()
            if self.ops is not None:
                self.ops.emit("shed", reason="overload")
            self._respond(conn, {
                "type": "overload",
                "retry_after_ms": self._retry_after_ms(),
            })
            return
        try:
            raw = frame.get("sources")
            if not isinstance(raw, list) or not all(
                isinstance(pair, (list, tuple)) and len(pair) == 2
                and isinstance(pair[0], str) and isinstance(pair[1], str)
                for pair in raw
            ):
                raise ValueError("sources must be a list of [name, text]")
            sources = [(name, text) for name, text in raw]
            policy, policy_json = resolve_policy(
                self.policy, frame.get("policy")
            )
            schedule_json = frame.get("schedule")
            if schedule_json is not None:
                FaultSchedule.from_json(schedule_json)  # validate early
        except (ValueError, TypeError, KeyError) as exc:
            self._inc("server.errors")
            self._respond(conn, {"type": "error", "message": str(exc)})
            return
        rid = self.next_id
        self.next_id += 1
        req = _Request(
            rid, conn, sources, policy, policy_json, schedule_json,
            policy.deadline_ms,
        )
        self._journal_append(begin_record(
            rid, sources, policy_json, schedule_json,
        ))
        conn.requests.append(req)
        with self.cond:
            self.queue.append(req)
            self.cond.notify()
        self._inc("server.accepted")
        self._respond(conn, {"type": "accepted", "request": rid,
                             "queued": len(self.queue)})

    def _total_respawns(self) -> int:
        """Mid-batch respawns (telemetry, from pool stats) plus idle-seat
        revivals the persistent pool performed between batches."""
        idle = self.pool.idle_respawns if self.pool is not None else 0
        return self.telemetry.respawns + idle

    def _health_payload(self) -> Dict[str, object]:
        return {
            "type": "health",
            "status": "draining" if self.draining else "ok",
            "queued": len(self.queue),
            "in_flight": 1 if self.current is not None else 0,
            "workers": self.pool.alive_workers if self.pool else 0,
            "served": self.served,
            "uptime_ms": round(
                (time.monotonic() - self._started_at) * 1000.0, 3
            ),
            "queue_wait_ms_p95": self.telemetry.queue_wait_p95(),
            "shed_total": self.telemetry.shed_total,
            "respawns": self._total_respawns(),
            "workers_detail": (
                self.pool.worker_status() if self.pool is not None else []
            ),
            "rss_bytes": self.pool.rss_bytes() if self.pool else 0,
            "memory_pressure": (
                self._max_rss_bytes is not None
                and self.pool is not None
                and self.pool.rss_bytes() >= self._max_rss_bytes
            ),
            "recycles": self.recycles,
            "ops_log_writable": self.ops_log_writable,
            "metrics_file_writable": self.metrics_file_writable,
            "journal_writable": self.journal_writable,
            "disk_headroom": self.disk_headroom,
        }

    def _journal_tail(self, limit: int = 20) -> List[Dict[str, object]]:
        """The journal's last few records, for crash-bundle context.

        Reads at most the final 64 KiB of the file and parses tolerantly
        (a torn tail line is skipped, not fatal) — this runs inside fault
        paths, where forensics must never add a second failure.
        """
        try:
            with open(self.options.effective_journal_path(), "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                fh.seek(max(0, size - 65536))
                data = fh.read()
        except OSError:
            return []
        records: List[Dict[str, object]] = []
        for line in data.splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records[-limit:]

    def _crash_context(self) -> Dict[str, object]:
        """The daemon-side sections of a crash bundle: effective policy,
        last health snapshot, ops-log and journal tails, worker state."""
        return {
            "policy": self.policy.to_json(),
            "health": self._health_payload(),
            "ops_tail": self.ops.tail(50) if self.ops is not None else [],
            "journal_tail": self._journal_tail(),
            "pool": (
                {
                    "alive": self.pool.alive_workers,
                    "workers_detail": self.pool.worker_status(),
                }
                if self.pool is not None else None
            ),
        }

    def _stats_payload(self) -> Dict[str, object]:
        """The live-telemetry payload: everything in memory, no blocking
        I/O — safe to build on the accept-loop thread."""
        snap = self.telemetry.snapshot()
        return {
            "type": "stats",
            "status": "draining" if self.draining else "ok",
            "served": self.served,
            "queued": len(self.queue),
            "in_flight": 1 if self.current is not None else 0,
            "workers": self.pool.alive_workers if self.pool else 0,
            "workers_detail": (
                self.pool.worker_status() if self.pool is not None else []
            ),
            "uptime_ms": round(
                (time.monotonic() - self._started_at) * 1000.0, 3
            ),
            "latency_ms": snap["latency_ms"],
            "queue_wait_ms": snap["queue_wait_ms"],
            "worker_utilization": snap["worker_utilization"],
            "shed_total": snap["shed_total"],
            "shed_memory": self.shed_memory,
            "respawns": self._total_respawns(),
            "recycles": self.recycles,
            "rss_bytes": self.pool.rss_bytes() if self.pool else 0,
            "ops_seq": self.ops.seq if self.ops is not None else 0,
        }

    def _events_payload(self, frame: Dict[str, object]) -> Dict[str, object]:
        try:
            tail = int(frame.get("tail", 20))
        except (TypeError, ValueError):
            tail = 20
        events = self.ops.tail(tail) if self.ops is not None else []
        return {
            "type": "events",
            "seq": self.ops.seq if self.ops is not None else 0,
            "events": events,
        }

    def _on_frame(self, conn: _Conn, frame: Dict[str, object]) -> None:
        kind = frame.get("type")
        if kind == "batch":
            self._admit(conn, frame)
        elif kind == "health":
            self._inc("server.health")
            self._respond(conn, self._health_payload())
        elif kind == "stats":
            self._inc("server.stats")
            self._respond(conn, self._stats_payload())
        elif kind == "events":
            self._inc("server.events")
            self._respond(conn, self._events_payload(frame))
        elif kind == "debug-bundle":
            # `fg debug bundle`: force a "manual" crash bundle from the
            # live daemon — same document a real fault would produce.
            self._inc("server.debug_bundle")
            bundle = flightrec.build_bundle(
                "manual", {"requested": "debug-bundle"},
                context=self._crash_context(),
            )
            path = None
            directory = flightrec.bundle_directory()
            if directory:
                try:
                    path = flightrec.write_bundle(bundle, directory)
                except OSError:
                    path = None
            if self.ops is not None:
                self.ops.emit("debug-bundle", path=path)
            self._respond(conn, {"type": "debug-bundle", "path": path,
                                 "bundle": bundle})
        elif kind == "shutdown":
            # Socket-initiated drain: same semantics as SIGTERM.
            self.draining = True
            self._respond(conn, {"type": "shutdown", "draining": True})
        else:
            self._inc("server.errors")
            self._respond(conn, {
                "type": "error",
                "message": f"unknown request type {kind!r}",
            })

    # -- connection lifecycle (main thread) ---------------------------------

    def _accept(self) -> None:
        try:
            sock, _ = self.listener.accept()
        except (BlockingIOError, OSError):
            return
        sock.setblocking(False)
        conn = _Conn(sock)
        self.conns[conn.fd] = conn
        self.sel.register(sock, selectors.EVENT_READ, conn)
        self._inc("server.connections")

    def _update_events(self, conn: _Conn) -> None:
        if conn.closed:
            return
        events = selectors.EVENT_READ
        if conn.outbuf:
            events |= selectors.EVENT_WRITE
        self.sel.modify(conn.sock, events, conn)

    def _respond(self, conn: _Conn, payload: Dict[str, object]) -> None:
        if conn.closed:
            return
        conn.outbuf += proto.encode_frame(payload)
        self._flush_conn(conn)

    def _flush_conn(self, conn: _Conn) -> None:
        while conn.outbuf and not conn.closed:
            try:
                sent = conn.sock.send(conn.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._drop_conn(conn, "send-failed")
                return
            if sent == 0:
                self._drop_conn(conn, "send-failed")
                return
            conn.outbuf = conn.outbuf[sent:]
        self._update_events(conn)

    def _on_readable(self, conn: _Conn) -> None:
        while not conn.closed:
            try:
                chunk = conn.sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._drop_conn(conn, "recv-failed")
                return
            if chunk == b"":
                self._drop_conn(conn, "client-disconnected")
                return
            conn.last_activity = time.monotonic()
            try:
                for frame in conn.reader.feed(chunk):
                    self._on_frame(conn, frame)
            except proto.FrameError:
                # Unrecoverably hostile bytes (oversized length prefix):
                # the protocol's junk-resync already ate what it could.
                self._drop_conn(conn, "protocol-error")
                return

    def _drop_conn(self, conn: _Conn, reason: str) -> None:
        """Close a connection, cancelling its queued requests and
        orphaning its in-flight one (the batch still completes and is
        journaled; only the response is dropped)."""
        if conn.closed:
            return
        conn.closed = True
        if reason == "client-disconnected":
            self._inc("server.disconnects")
        for req in conn.requests:
            req.conn = None
            with self.cond:
                queued = req in self.queue
                if queued:
                    self.queue.remove(req)
            if queued:
                self._journal_append(cancel_record(req.id, reason))
                self._inc("server.cancelled")
        conn.requests = []
        try:
            self.sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        self.conns.pop(conn.fd, None)

    def _close_idle(self) -> None:
        """Slow-loris defense: reap connections that sit idle — stalled
        mid-frame or never completing a request — while owning no admitted
        request."""
        now = time.monotonic()
        for conn in list(self.conns.values()):
            if conn.requests or conn.outbuf:
                continue
            if now - conn.last_activity >= self.options.idle_timeout_s:
                self._inc("server.idle_closed")
                self._drop_conn(conn, "idle-timeout")

    # -- results ------------------------------------------------------------

    def _flush_results(self) -> None:
        while self.results:
            req, response = self.results.popleft()
            self._inc("server.completed")
            if req.resumed:
                self._inc("server.resumed")
            conn = req.conn
            if conn is None or conn.closed:
                continue  # orphaned: work journaled, response dropped
            if req in conn.requests:
                conn.requests.remove(req)
            self._respond(conn, response)

    # -- live telemetry sinks ------------------------------------------------

    def _note_drain(self) -> None:
        """Log the drain transition exactly once (signal handlers only set
        the flag; the event is recorded here on the main loop)."""
        if self.draining and not self._drain_logged:
            self._drain_logged = True
            if self.ops is not None:
                self.ops.emit("drain")

    def _note_metrics_unwritable(self, error: str) -> None:
        if self.metrics_file_writable:
            self.metrics_file_writable = False
            if self.ops is not None:
                self.ops.emit(
                    "metrics-file-unwritable",
                    path=self.options.metrics_file, error=error,
                )

    def _maybe_write_metrics(self) -> None:
        """Write the Prometheus snapshot when due (atomic tmp+rename, so a
        scraper never reads a torn file).

        Metrics stay advisory — a failure never takes the daemon down —
        but it is no longer *silent*: the first failed snapshot emits a
        ``metrics-file-unwritable`` event and flips the health flag, and
        the first successful one after that emits the recovery.
        """
        if self.options.metrics_file is None:
            return
        now = time.monotonic()
        if now < self._metrics_due:
            return
        self._metrics_due = now + max(0.05, self.options.metrics_interval_s)
        if not diskguard.has_headroom(
            self.options.metrics_file, need_bytes=65536
        ):
            self._note_metrics_unwritable("below disk-headroom floor")
            return
        tmp = self.options.metrics_file + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(prometheus_text(self._stats_payload()))
            os.replace(tmp, self.options.metrics_file)
        except OSError as exc:
            self._note_metrics_unwritable(str(exc))
        else:
            if not self.metrics_file_writable:
                self.metrics_file_writable = True
                if self.ops is not None:
                    self.ops.emit(
                        "metrics-file-recovered",
                        path=self.options.metrics_file,
                    )

    #: Seconds between disk-headroom probes of the durable writers' home.
    DISK_CHECK_INTERVAL_S = 1.0

    def _maybe_check_disk(self) -> None:
        """Watch free space under the journal (the durable writers all
        live next to the socket by default): below the diskguard floor,
        emit one ``disk-pressure`` event and flip the health flag; emit
        the recovery when headroom returns."""
        now = time.monotonic()
        if now < self._disk_due:
            return
        self._disk_due = now + self.DISK_CHECK_INTERVAL_S
        path = self.options.effective_journal_path()
        headroom = diskguard.has_headroom(path)
        if headroom == self.disk_headroom:
            return
        self.disk_headroom = headroom
        if self.ops is not None:
            free = diskguard.free_bytes(path)
            self.ops.emit(
                "disk-pressure" if not headroom else "disk-recovered",
                path=path, free_bytes=free,
                floor_bytes=diskguard.floor_bytes(),
            )

    def _maybe_write_blackbox(self) -> None:
        """Persist the live "blackbox" bundle when due.

        SIGKILL defeats every in-process hook (excepthook, atexit,
        faulthandler), so the daemon keeps a current ``hard-death``
        bundle on disk at all times: a fixed name, rewritten atomically
        on a cadence, and deleted again on clean exit — if the file is
        still there after the process is gone, it *is* the crash bundle.
        """
        directory = flightrec.bundle_directory()
        if directory is None:
            return
        now = time.monotonic()
        if now < self._blackbox_due:
            return
        self._blackbox_due = now + max(
            0.05, self.options.blackbox_interval_s
        )
        bundle = flightrec.build_bundle(
            "hard-death",
            {"note": "live blackbox snapshot (removed on clean drain; "
                     "still present after the process is gone means the "
                     "daemon was killed without draining)"},
            context=self._crash_context(),
        )
        try:
            self._blackbox_path = flightrec.write_bundle(
                bundle, directory, name=f"live-{os.getpid()}.bundle.json"
            )
        except OSError:
            pass  # forensics are advisory; never take the daemon down

    def _remove_blackbox(self) -> None:
        if self._blackbox_path is not None:
            try:
                os.remove(self._blackbox_path)
            except OSError:
                pass
            self._blackbox_path = None

    # -- the loop -----------------------------------------------------------

    def _next_timeout(self) -> Optional[float]:
        now = time.monotonic()
        candidates = []
        for conn in self.conns.values():
            if conn.requests or conn.outbuf:
                continue
            candidates.append(
                conn.last_activity + self.options.idle_timeout_s - now
            )
        if self.draining:
            candidates.append(0.1)  # poll the exit condition while draining
        if self.options.metrics_file is not None:
            candidates.append(self._metrics_due - now)
        if flightrec.bundle_directory() is not None:
            candidates.append(self._blackbox_due - now)
        candidates.append(self._disk_due - now)
        if not candidates:
            return None
        return max(0.0, min(candidates))

    def _drained(self) -> bool:
        if not self.draining:
            return False
        with self.cond:
            busy = bool(self.queue) or self.current is not None
        return (not busy and not self.results
                and all(not c.outbuf for c in self.conns.values()))

    def _bind(self) -> None:
        path = self.options.socket_path
        if os.path.exists(path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.settimeout(0.25)
                probe.connect(path)
            except OSError:
                os.unlink(path)  # stale socket from a killed daemon
            else:
                raise ServeError(f"a daemon is already serving on {path}")
            finally:
                probe.close()
        self.listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            self.listener.bind(path)
        except OSError as exc:
            self.listener.close()
            self.listener = None
            raise ServeError(f"cannot bind {path}: {exc}") from exc
        self.listener.listen(16)
        self.listener.setblocking(False)

    def serve(self) -> Dict[str, object]:
        """Run the daemon until drained (or, under ``resume_only``, until
        the replayed requests finish).  Returns the exit summary."""
        self._started_at = time.monotonic()
        # The flight recorder's hard-death net covers the whole lifetime,
        # including startup failures; the daemon always has a crash dir
        # (``--crash-dir`` or ``<socket>.crash``).
        flightrec.arm(
            self.options.effective_crash_dir(),
            context_provider=self._crash_context,
        )
        try:
            self.ops = OpsLog(
                self.options.effective_ops_log_path(),
                max_bytes=self.options.ops_log_max_bytes,
            )
        except OSError as exc:
            # Degrade to the in-memory ring, but *loudly*: a warning
            # event plus ``ops_log_writable: false`` in every health
            # payload — an operator should not discover the missing
            # JSONL mirror only when they need it.
            self.ops = OpsLog(None)
            self.ops_log_writable = False
            self.ops.emit(
                "ops-log-unwritable",
                path=self.options.effective_ops_log_path(),
                error=str(exc),
            )
        unfinished = self._prepare_journal()
        self.pool = PersistentPool(
            self.policy, tracer=self.tracer, ops=self.ops,
        )
        try:
            # Eager warm-up: the daemon's reason to exist is amortizing
            # worker spin-up, so pay it before the first request arrives.
            self.pool.ensure()
            if unfinished:
                self.ops.emit("resume", requests=len(unfinished))
            for record in unfinished:
                req = self._replay_request(record)
                self.queue.append(req)
            if self.options.resume_only:
                # No socket, no threads: run the replay set inline.
                while self.queue:
                    req = self.queue.popleft()
                    response = self._run_request(req)
                    self.results.append((req, response))
                self._flush_results()
                return self._summary()
            self._bind()
            self._wake_r, self._wake_w = os.pipe()
            os.set_blocking(self._wake_r, False)
            self.sel = selectors.DefaultSelector()
            self.sel.register(self.listener, selectors.EVENT_READ, None)
            self.sel.register(self._wake_r, selectors.EVENT_READ, "wake")
            executor = threading.Thread(
                target=self._executor, name="fg-serve-executor", daemon=True,
            )
            with self.cond:
                if self.queue:
                    self.cond.notify()
            executor.start()
            self.ready.set()
            with notify_on_termination(self._on_signal):
                while not self._drained():
                    for key, mask in self.sel.select(self._next_timeout()):
                        if key.data is None:
                            self._accept()
                        elif key.data == "wake":
                            try:
                                os.read(self._wake_r, 4096)
                            except OSError:
                                pass
                        elif mask & selectors.EVENT_READ:
                            self._on_readable(key.data)
                        elif mask & selectors.EVENT_WRITE:
                            self._flush_conn(key.data)
                    self._flush_results()
                    self._close_idle()
                    self._note_drain()
                    self._maybe_write_metrics()
                    self._maybe_write_blackbox()
                    self._maybe_check_disk()
            with self.cond:
                self.stopping = True
                self.cond.notify_all()
            executor.join(timeout=10.0)
            if executor.is_alive():
                # A wedged drain is itself a fault: record what was still
                # in flight before the interpreter tears the thread down.
                flightrec.dump(
                    "drain-failure",
                    {"queued": len(self.queue),
                     "in_flight": (
                         self.current.id if self.current is not None
                         else None
                     )},
                    context=self._crash_context(),
                )
            # One final snapshot so the file reflects the drained state.
            self._metrics_due = 0.0
            self._maybe_write_metrics()
            return self._summary()
        finally:
            self._teardown()

    def _summary(self) -> Dict[str, object]:
        return {
            "served": self.served,
            "resumed": {
                str(rid): digest
                for rid, digest in sorted(self.resumed_digests.items())
            },
            "truncated_bytes": self.truncated_bytes,
        }

    def _teardown(self) -> None:
        for conn in list(self.conns.values()):
            self._drop_conn(conn, "server-exit")
        if self.sel is not None:
            self.sel.close()
            self.sel = None
        if self.listener is not None:
            try:
                self.listener.close()
            except OSError:
                pass
            self.listener = None
            try:
                os.unlink(self.options.socket_path)
            except OSError:
                pass
        for fd in (self._wake_r, self._wake_w):
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._wake_r = self._wake_w = -1
        if self.pool is not None:
            self.pool.close()
        if self.journal is not None:
            self.journal.close()
        if self.ops is not None:
            self.ops.close()
        # Clean exit: retract the live blackbox bundle and stand the
        # atexit hard-death guard down.  A SIGKILLed daemon reaches
        # neither, which is exactly what leaves its bundle behind.  The
        # crash dir is process-global state; un-configure it so a later
        # in-process Server (tests) doesn't dump into this one's dir.
        self._remove_blackbox()
        flightrec.configure(None)
        flightrec.disarm()
