"""Scoped POSIX signal handling for the service front ends.

Two consumers with different needs:

- ``fg batch`` wants SIGTERM to behave like Ctrl-C: raise
  :class:`KeyboardInterrupt` at the next bytecode boundary so the pool
  supervisor's ``finally`` blocks run — workers are killed and reaped, the
  selector is closed, nothing leaks.  Without a handler, SIGTERM's default
  disposition kills the coordinator *without* unwinding, orphaning every
  worker process (:func:`raise_on_termination`).

- ``fg serve`` wants SIGTERM/SIGINT to *request a graceful drain* — stop
  accepting, finish in-flight work, exit 0 — which is a flag and a wakeup,
  not an exception (:func:`notify_on_termination`).

Both are context managers that restore the previous dispositions on exit,
and both degrade to no-ops off the main thread (CPython only delivers
signals to the main thread; a worker thread calling these must not
clobber process-wide state).
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Tuple

#: The termination signals the service front ends intercept.
TERMINATION_SIGNALS: Tuple[int, ...] = (signal.SIGTERM, signal.SIGINT)


class TerminationRequested(KeyboardInterrupt):
    """Raised by :func:`raise_on_termination` when SIGTERM arrives.

    A :class:`KeyboardInterrupt` subclass on purpose: every drain path that
    already handles Ctrl-C handles SIGTERM identically, and it stays
    outside ``except Exception`` containment walls.
    """

    def __init__(self, signum: int):
        super().__init__(f"termination signal {signum}")
        self.signum = signum


def _on_main_thread() -> bool:
    return threading.current_thread() is threading.main_thread()


@contextmanager
def raise_on_termination(
    signals: Tuple[int, ...] = TERMINATION_SIGNALS,
) -> Iterator[None]:
    """Within the scope, SIGTERM (and SIGINT) raise
    :class:`TerminationRequested` instead of killing the process.

    The exception unwinds through the batch coordinator, whose ``finally``
    blocks shut the worker pool down — kill, reap, close — so an
    interrupted ``fg batch`` leaves no orphan processes behind.  Previous
    handlers are restored on exit; off the main thread this is a no-op.
    """
    if not _on_main_thread():
        yield
        return

    def handler(signum, frame):
        raise TerminationRequested(signum)

    previous = {}
    for signum in signals:
        previous[signum] = signal.signal(signum, handler)
    try:
        yield
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)


@contextmanager
def notify_on_termination(
    callback: Callable[[int], None],
    signals: Tuple[int, ...] = TERMINATION_SIGNALS,
) -> Iterator[None]:
    """Within the scope, termination signals invoke ``callback(signum)``
    instead of killing the process.

    The callback runs in the main thread's signal context — it should only
    set flags and poke wakeup pipes (the ``fg serve`` drain request), never
    do real work.  Previous handlers are restored on exit; off the main
    thread this is a no-op.
    """
    if not _on_main_thread():
        yield
        return

    def handler(signum, frame):
        callback(signum)

    previous = {}
    for signum in signals:
        previous[signum] = signal.signal(signum, handler)
    try:
        yield
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
