"""Child entry point for ``isolate="subprocess"`` batch workers.

Protocol: one JSON task on stdin, one JSON result on stdout.  The parent
(:func:`repro.service.worker.run_attempt_subprocess`) enforces the deadline
by killing this process, so nothing here watches the clock beyond the
cooperative deadline already folded into the task's limits.

The task carries the chaos faults to replay — declarative
:class:`~repro.service.faults.FaultSpec` entries plus serialized ambient
exceptions — because the parent's thread-local fault table does not cross
the process boundary by itself.  An injected fault that escapes
``check_source`` crashes this process exactly like a genuine bug would
(traceback on stderr, nonzero exit); the parent contains either as a
``CrashReport``.  The pipeline contract is unchanged inside the wall:
diagnosed programs exit 0 with their report in the result.
"""

from __future__ import annotations

import json
import sys


def main() -> int:
    from repro.diagnostics.limits import Limits
    from repro.pipeline import check_source, install_faults
    from repro.service.faults import FaultSpec, deserialize_exception_faults
    from repro.service.worker import outcome_projection

    payload = json.load(sys.stdin)
    limits_data = payload.get("limits")
    limits = Limits(**limits_data) if limits_data is not None else None
    faults = deserialize_exception_faults(
        payload.get("exception_faults", ())
    )
    hang_s = payload.get("hang_s", 0.5)
    for spec_data in payload.get("fault_specs", ()):
        spec = FaultSpec.from_json(spec_data)
        faults[spec.stage] = spec.materialize(hang_s, in_subprocess=True)

    with install_faults(faults):
        outcome = check_source(
            payload["text"],
            payload["filename"],
            prelude=payload.get("prelude", False),
            ext=payload.get("ext", False),
            max_errors=payload.get("max_errors", 20),
            limits=limits,
            verify=payload.get("verify", False),
            evaluate=payload.get("evaluate", False),
        )
    status, diagnostics, severities, rendered = outcome_projection(outcome)
    json.dump(
        {
            "status": status,
            "diagnostics": diagnostics,
            "severities": severities,
            "rendered": rendered,
        },
        sys.stdout,
    )
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
