"""Child entry points for isolated batch workers (one-shot and pool).

Two modes share one task codec:

**One-shot** (``isolate="subprocess"``; no arguments): one JSON task on
stdin, one *framed* result on the claimed stdout
(:func:`repro.service.proto.shield_stdout` — a stray ``print`` from
checked code or the pipeline lands on stderr, never inside the result
stream).  The parent (:func:`repro.service.worker.run_attempt_subprocess`)
enforces the deadline by killing this process.

**Persistent** (``--serve``; spawned by :mod:`repro.service.pool`): the
worker warms up once — imports the whole pipeline and pre-checks the
prelude so warm attempts skip that cost — then loops over framed tasks on
a dedicated task pipe, writing framed results and periodic heartbeats to
a dedicated result pipe.  A heartbeat thread keeps ticking while a task
runs, so the supervisor can tell "busy" from "wedged".  Exceptions inside
a task are contained *by the worker* (a structured ``"crash"`` result;
the worker survives for the next task); only process-killing faults —
``os._exit``, SIGKILL, C-level crashes — take the worker down, and those
are the supervisor's business (the ``worker-lost`` fault kind).

The task payload carries the chaos faults to replay — declarative
:class:`~repro.service.faults.FaultSpec` entries plus serialized ambient
exceptions — because the parent's thread-local fault table does not cross
the process boundary by itself.  The pipeline contract is unchanged inside
the wall: diagnosed programs produce a ``"diagnostics"`` result, not a
crash.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time


def run_task(payload: dict) -> dict:
    """Execute one check task; always returns a result dict, never raises.

    The shared task codec for both isolation modes: builds the limits and
    fault table from the payload, runs :func:`~repro.pipeline.check_source`
    under them, and projects the outcome (or the contained crash) to the
    JSON-ready result shape.
    """
    from repro.diagnostics.limits import Limits
    from repro.service.faults import FaultSpec, deserialize_exception_faults
    from repro.service.worker import build_task_instrumentation

    limits_data = payload.get("limits")
    limits = Limits(**limits_data) if limits_data is not None else None
    faults = deserialize_exception_faults(
        payload.get("exception_faults", ())
    )
    hang_s = payload.get("hang_s", 0.5)
    for spec_data in payload.get("fault_specs", ()):
        spec = FaultSpec.from_json(spec_data)
        faults[spec.stage] = spec.materialize(hang_s, in_subprocess=True)

    # A telemetry stanza in the task frame turns on *real* per-task
    # instrumentation inside the worker; the result ships what it saw back
    # across the process boundary (wire spans + the local clock bracket
    # for offset normalization).  Absent stanza → zero overhead.
    telemetry = payload.get("telemetry") or None
    instrumentation = build_task_instrumentation(telemetry)

    start = time.perf_counter()
    start_ns = time.perf_counter_ns()
    try:
        return _run_task_inner(
            payload, limits, faults, instrumentation, telemetry,
            start, start_ns,
        )
    finally:
        # Always-on forensics: one coarse span per task so the flight ring
        # has worker history even with instrumentation off (the common
        # case) — it is what ships back in the result's flightrec stanza.
        from repro.observability import flightrec

        flightrec.record_span(
            "worker.task", start_ns, time.perf_counter_ns(),
            {"file": payload.get("filename", "<input>"),
             "attempt": payload.get("attempt")},
        )


def _run_task_inner(payload, limits, faults, instrumentation, telemetry,
                    start, start_ns) -> dict:
    from repro.pipeline import check_source, install_faults
    from repro.service.worker import (
        crash_report_from_exception,
        outcome_projection,
        telemetry_result,
    )

    try:
        with install_faults(faults):
            outcome = check_source(
                payload["text"],
                payload.get("filename", "<input>"),
                prelude=payload.get("prelude", False),
                ext=payload.get("ext", False),
                max_errors=payload.get("max_errors", 20),
                limits=limits,
                verify=payload.get("verify", False),
                evaluate=payload.get("evaluate", False),
                instrumentation=instrumentation,
            )
    except BaseException as exc:  # noqa: BLE001 — the containment wall
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            # Deliberate kills must stay process-killing (the "kill" chaos
            # kind and real signals), not be flattened into a result.
            raise
        crash = crash_report_from_exception(exc)
        return {
            # A MemoryError under the per-worker rlimit is the governor's
            # own fault kind: contained, transient, retried on a fresh
            # worker with a clean heap.
            "status": (
                "memory" if isinstance(exc, MemoryError) else "crash"
            ),
            "diagnostics": [],
            "severities": {},
            "rendered": "",
            "crash": crash.to_json(),
            "duration_ms": round((time.perf_counter() - start) * 1e3, 3),
            "telemetry": telemetry_result(
                instrumentation, telemetry, start_ns,
                time.perf_counter_ns(),
            ),
        }
    status, diagnostics, severities, rendered = outcome_projection(outcome)
    return {
        "status": status,
        "diagnostics": diagnostics,
        "severities": severities,
        "rendered": rendered,
        "crash": None,
        "duration_ms": round((time.perf_counter() - start) * 1e3, 3),
        "telemetry": telemetry_result(
            instrumentation, telemetry, start_ns, time.perf_counter_ns(),
        ),
    }


def warm_up(prelude: bool, ext: bool) -> float:
    """Import the pipeline and pre-check a trivial prelude program.

    Run once at worker spawn so every later attempt starts warm: module
    imports, the parser tables, and — with ``prelude=True`` — a full parse
    and typecheck of the standard concept library.  Returns the wall time
    in ms; never raises (a failing warm-up just means cold attempts).
    """
    start = time.perf_counter()
    try:
        from repro.pipeline import check_source

        check_source("iadd(1, 2)", "<warmup>", prelude=prelude, ext=ext)
    except Exception:  # noqa: BLE001 — warm-up is best-effort
        pass
    return round((time.perf_counter() - start) * 1e3, 3)


def main() -> int:
    """One-shot mode: task on stdin, one framed result on claimed stdout."""
    from repro.observability import flightrec
    from repro.service import proto

    flightrec.arm()  # bundle directory (if any) comes from $FG_CRASH_DIR
    result_fd = proto.shield_stdout()
    payload = json.load(sys.stdin)
    if payload.get("max_mem_mb") is not None:
        # The one-shot child governs itself: the rlimit turns a runaway
        # allocation into a contained MemoryError ("memory" result)
        # instead of a kernel OOM kill of an anonymous process.
        from repro.service.resources import apply_memory_limit

        apply_memory_limit(payload["max_mem_mb"])
    result = run_task(payload)
    result["flightrec"] = flightrec.recorder().wire_tail()
    proto.write_frame_fd(result_fd, result)
    flightrec.disarm()
    return 0


def serve(task_fd: int, result_fd: int, heartbeat_ms: float,
          max_mem_mb=None) -> int:
    """Persistent mode: loop over framed tasks until shutdown or EOF."""
    from repro.observability import flightrec
    from repro.service import proto
    from repro.service.resources import apply_memory_limit, sample_rss_bytes

    flightrec.arm()  # bundle directory (if any) comes from $FG_CRASH_DIR
    proto.shield_stdout()  # stray stdout writes can never reach a pipe
    apply_memory_limit(max_mem_mb)
    write_lock = threading.Lock()
    stop = threading.Event()

    def send(message: dict) -> None:
        with write_lock:
            proto.write_frame_fd(result_fd, message)

    def heartbeat() -> None:
        while not stop.wait(heartbeat_ms / 1000.0):
            # The black box also rides heartbeats, so a worker killed
            # before its first result still leaves its ring with the
            # supervisor.  Snapshotting races task-thread appends; a
            # torn snapshot is dropped, never a dead heartbeat.
            try:
                tail = flightrec.recorder().wire_tail()
            except RuntimeError:
                tail = None
            message = {"type": "heartbeat", "pid": os.getpid()}
            # Self-sampled RSS rides every heartbeat so the supervisor
            # can recycle bloated workers without touching /proc itself.
            rss = sample_rss_bytes()
            if rss is not None:
                message["rss_bytes"] = rss
            if tail is not None:
                message["flightrec"] = tail
            try:
                send(message)
            except OSError:
                return

    threading.Thread(
        target=heartbeat, daemon=True, name="fg-pool-heartbeat"
    ).start()

    try:
        while True:
            frame = proto.read_frame_fd(task_fd)
            if frame is None:
                flightrec.disarm()
                return 0  # supervisor closed the task pipe
            kind = frame.get("type")
            if kind == "init":
                warm_ms = warm_up(
                    frame.get("prelude", False), frame.get("ext", False)
                )
                send({
                    "type": "hello",
                    "pid": os.getpid(),
                    "warm_ms": warm_ms,
                })
            elif kind == "task":
                result = run_task(frame)
                result["type"] = "result"
                result["id"] = frame.get("id")
                result["attempt"] = frame.get("attempt")
                # The worker's black box rides every result frame: when
                # this process is later SIGKILLed mid-task, the
                # supervisor still holds its last-known ring.
                result["flightrec"] = flightrec.recorder().wire_tail()
                send(result)
            elif kind == "shutdown":
                flightrec.disarm()
                return 0
            # Unknown frame types are ignored: forward compatibility.
    except (OSError, proto.FrameError):
        # A dead supervisor (broken pipes) is a clean exit, not a crash.
        flightrec.disarm()
        return 0
    finally:
        stop.set()


def _parse_serve_args(argv) -> dict:
    options = {"heartbeat_ms": 100.0, "max_mem_mb": None}
    it = iter(argv)
    for arg in it:
        if arg == "--task-fd":
            options["task_fd"] = int(next(it))
        elif arg == "--result-fd":
            options["result_fd"] = int(next(it))
        elif arg == "--heartbeat-ms":
            options["heartbeat_ms"] = float(next(it))
        elif arg == "--max-mem-mb":
            options["max_mem_mb"] = float(next(it))
        else:
            raise SystemExit(f"subproc --serve: unknown argument {arg!r}")
    if "task_fd" not in options or "result_fd" not in options:
        raise SystemExit("subproc --serve: --task-fd and --result-fd "
                         "are required")
    return options


if __name__ == "__main__":
    if "--serve" in sys.argv[1:]:
        args = [a for a in sys.argv[1:] if a != "--serve"]
        opts = _parse_serve_args(args)
        sys.exit(serve(
            opts["task_fd"], opts["result_fd"], opts["heartbeat_ms"],
            max_mem_mb=opts["max_mem_mb"],
        ))
    sys.exit(main())
