"""Isolated execution of one check attempt: thread watchdog or subprocess.

Two containment walls, chosen by ``BatchPolicy.isolate``:

- **Watchdogged thread** (the default): the attempt runs on a daemon
  thread; the watchdog joins it for ``deadline_ms`` and, on expiry,
  *abandons* it and reports a deadline fault.  The abandoned thread is
  harmless — it holds no shared mutable state (fault tables are
  thread-local, budgets are per-run, and
  :func:`~repro.diagnostics.limits.scoped_recursion_limit` restores are
  guarded) and the cooperative deadline in :class:`~repro.diagnostics.Budget`
  usually reels it in shortly after.  Any non-``Diagnostic`` exception the
  attempt raises is contained as a :class:`~repro.service.report.CrashReport`.

- **Subprocess** (``isolate="subprocess"``): the attempt runs in a fresh
  interpreter via :mod:`repro.service.subproc`; deadline expiry kills the
  child, and interpreter-killing failures — C-level recursion faults, OOM
  kills, ``os._exit`` — surface as a crash report carrying the child's wait
  status instead of taking the batch down.

:func:`run_with_deadline` is the shared watchdog primitive; the single-file
``fg check --deadline-ms`` reuses it directly.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.service.faults import FaultSpec
from repro.service.report import CrashReport

#: How many trailing traceback/stderr lines a crash report keeps.
TRACEBACK_TAIL = 8


@dataclass
class AttemptResult:
    """What one isolated attempt produced (internal to the service)."""

    status: str  # "ok" | "diagnostics" | "timeout" | "memory" | "crash"
    diagnostics: List[Dict[str, object]] = field(default_factory=list)
    severities: Dict[str, int] = field(default_factory=dict)
    rendered: str = ""
    crash: Optional[CrashReport] = None
    duration_ms: float = 0.0
    #: What the worker's own instrumentation saw (spans/metrics/explain +
    #: clock bracket), when the task frame requested telemetry.  Never part
    #: of the report JSON — merged into coordinator instrumentation only.
    telemetry: Optional[Dict[str, object]] = None


def telemetry_request(instrumentation, *, trace_id: Optional[str] = None,
                      parent_span: Optional[int] = None
                      ) -> Optional[Dict[str, object]]:
    """The task-frame telemetry stanza, or ``None`` when every channel is
    off (the common case — workers then build no instrumentation at all).

    ``trace_id`` and ``parent_span`` stamp the dispatch for cross-process
    correlation: the worker echoes the id back in its result telemetry and
    the coordinator grafts the span tree under ``parent_span``.
    """
    if instrumentation is None:
        return None
    request: Dict[str, object] = {
        "trace": bool(getattr(instrumentation.tracer, "enabled", False)),
        "stats": instrumentation.metrics is not None,
        "explain": instrumentation.explain is not None,
    }
    if not any(request.values()):
        return None
    if trace_id is not None:
        request["trace_id"] = trace_id
    if parent_span is not None:
        request["parent_span"] = parent_span
    return request


def build_task_instrumentation(telemetry: Optional[Dict[str, object]]):
    """A fresh per-attempt :class:`~repro.observability.Instrumentation`
    matching a task frame's telemetry stanza (``None`` when absent)."""
    if not telemetry:
        return None
    from repro.observability import (
        ExplainLog, Instrumentation, MetricsRegistry, NULL_TRACER, Tracer,
    )

    return Instrumentation(
        tracer=Tracer() if telemetry.get("trace") else NULL_TRACER,
        metrics=MetricsRegistry() if telemetry.get("stats") else None,
        explain=ExplainLog() if telemetry.get("explain") else None,
    )


def telemetry_result(instrumentation, telemetry: Optional[Dict[str, object]],
                     start_ns: int, end_ns: int
                     ) -> Optional[Dict[str, object]]:
    """Project what one attempt's instrumentation saw into the JSON-safe
    result-frame stanza (spans in wire form, metrics snapshot, explain
    entries, plus the local ``perf_counter_ns`` clock bracket the
    coordinator needs for offset normalization)."""
    if instrumentation is None:
        return None
    from repro.observability.telemetry import spans_to_wire

    out: Dict[str, object] = {
        "pid": os.getpid(),
        "clock": {"start_ns": start_ns, "end_ns": end_ns},
    }
    if telemetry and telemetry.get("trace_id") is not None:
        out["trace_id"] = telemetry["trace_id"]
    if getattr(instrumentation.tracer, "enabled", False):
        out["spans"] = spans_to_wire(instrumentation.tracer)
    if instrumentation.metrics is not None:
        out["metrics"] = instrumentation.metrics.snapshot()
    if instrumentation.explain is not None:
        out["explain"] = instrumentation.explain.to_json()
    return out


def outcome_projection(outcome) -> Tuple[str, List[dict], Dict[str, int], str]:
    """Project a ``CheckOutcome`` to the batch report's JSON-ready shape.

    A run whose report contains a deadline diagnostic (the cooperative
    cancel fired mid-check) counts as a ``"timeout"``, not mere
    diagnostics — the retry policy treats the two very differently.
    """
    report = outcome.report
    diagnostics = report.to_json()
    severities: Dict[str, int] = {}
    for diag in report:
        severity = getattr(diag, "severity", "error")
        severities[severity] = severities.get(severity, 0) + 1
    if outcome.ok:
        status = "ok"
    elif any(getattr(d, "limit", None) == "deadline" for d in report):
        status = "timeout"
    else:
        status = "diagnostics"
    return status, diagnostics, severities, report.render()


def run_with_deadline(fn, deadline_ms: Optional[float]):
    """Run ``fn()`` under the watchdog; the shared deadline primitive.

    Returns ``("ok", value)``, ``("timeout", None)`` when the deadline
    expired first (the worker thread is abandoned), or ``("error", exc)``
    when ``fn`` raised.  The caller's thread-local fault table is installed
    in the worker thread, so ``inject_fault`` works across the boundary.
    With ``deadline_ms=None`` this degenerates to a plain guarded call on
    the current thread — no watchdog thread is spawned.
    """
    from repro.pipeline import current_faults, install_faults

    if deadline_ms is None:
        try:
            return ("ok", fn())
        except BaseException as exc:  # noqa: BLE001 — containment wall
            return ("error", exc)

    faults = current_faults()
    box: Dict[str, object] = {}

    def target():
        try:
            with install_faults(faults):
                box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 — containment wall
            box["exc"] = exc

    thread = threading.Thread(
        target=target, daemon=True, name="fg-deadline-worker"
    )
    thread.start()
    thread.join(deadline_ms / 1000.0)
    if thread.is_alive():
        return ("timeout", None)
    if "exc" in box:
        return ("error", box["exc"])
    return ("ok", box.get("value"))


def crash_report_from_exception(exc: BaseException,
                                where: str = "worker") -> CrashReport:
    frames = traceback.format_exception(type(exc), exc, exc.__traceback__)
    tail = "".join(frames).rstrip().splitlines()[-TRACEBACK_TAIL:]
    return CrashReport(
        exc_type=type(exc).__name__,
        message=str(exc),
        where=where,
        traceback=tuple(tail),
    )


def run_attempt_thread(
    text: str,
    filename: str,
    check_kwargs: Dict[str, object],
    faults: Dict[str, object],
    deadline_ms: Optional[float],
    telemetry: Optional[Dict[str, object]] = None,
) -> AttemptResult:
    """One attempt in-process, under the watchdog when a deadline is set.

    With a ``telemetry`` stanza the attempt runs under its own fresh
    instrumentation (the shared coordinator bundle is not thread-safe) and
    ships what it saw back on the result, exactly like a process worker —
    except a timed-out attempt reports nothing, since the abandoned thread
    may still be writing to its tracer.
    """
    from repro.pipeline import check_source, install_faults

    instrumentation = build_task_instrumentation(telemetry)

    def attempt():
        kwargs = check_kwargs
        if instrumentation is not None:
            kwargs = dict(check_kwargs, instrumentation=instrumentation)
        with install_faults(faults):
            return check_source(text, filename, **kwargs)

    start = time.perf_counter()
    start_ns = time.perf_counter_ns()
    kind, value = run_with_deadline(attempt, deadline_ms)
    end_ns = time.perf_counter_ns()
    duration_ms = round((time.perf_counter() - start) * 1e3, 3)
    if kind == "timeout":
        return AttemptResult(status="timeout", duration_ms=duration_ms)
    observed = telemetry_result(instrumentation, telemetry, start_ns, end_ns)
    if kind == "error":
        # A MemoryError is the governor's fault kind, not a generic crash:
        # the containment wall held, and the retry policy treats it as
        # transient (a fresh worker has a clean heap).
        status = "memory" if isinstance(value, MemoryError) else "crash"
        return AttemptResult(
            status=status,
            crash=crash_report_from_exception(value),
            duration_ms=duration_ms,
            telemetry=observed,
        )
    status, diagnostics, severities, rendered = outcome_projection(value)
    return AttemptResult(
        status=status,
        diagnostics=diagnostics,
        severities=severities,
        rendered=rendered,
        duration_ms=duration_ms,
        telemetry=observed,
    )


def _child_env() -> Dict[str, str]:
    """The child's environment, with this package's source root prepended.

    The coordinator's crash-bundle directory (``--crash-dir`` or
    ``$FG_CRASH_DIR``) is exported so worker processes arm their own
    hard-death hooks into the same directory.
    """
    import repro
    from repro.observability import flightrec

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env = dict(os.environ)
    prior = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not prior else src_root + os.pathsep + prior
    )
    crash_dir = flightrec.bundle_directory()
    if crash_dir:
        env[flightrec.ENV_CRASH_DIR] = crash_dir
    return env


def task_payload(
    text: str,
    filename: str,
    check_kwargs: Dict[str, object],
    exception_faults: List[Dict[str, str]],
    fault_specs: Tuple[FaultSpec, ...],
    hang_s: float,
    telemetry: Optional[Dict[str, object]] = None,
    max_mem_mb: Optional[float] = None,
) -> Dict[str, object]:
    """The JSON task shape both isolation walls ship to a worker process.

    ``limits`` is projected field-by-field from the dataclass, so a new
    :class:`~repro.diagnostics.limits.Limits` budget crosses the process
    boundary without this function changing.  ``telemetry`` is the
    :func:`telemetry_request` stanza (``None`` keeps workers
    instrumentation-free, the fast path).
    """
    from dataclasses import asdict

    limits = check_kwargs.get("limits")
    return {
        "telemetry": telemetry,
        "text": text,
        "filename": filename,
        "prelude": check_kwargs.get("prelude", False),
        "ext": check_kwargs.get("ext", False),
        "max_errors": check_kwargs.get("max_errors", 20),
        "verify": check_kwargs.get("verify", False),
        "evaluate": check_kwargs.get("evaluate", False),
        "limits": None if limits is None else asdict(limits),
        "exception_faults": list(exception_faults),
        "fault_specs": [spec.to_json() for spec in fault_specs],
        "hang_s": hang_s,
        "max_mem_mb": max_mem_mb,
    }


def result_to_attempt(result: Dict[str, object],
                      duration_ms: float) -> AttemptResult:
    """Lift a worker's JSON result dict into an :class:`AttemptResult`."""
    crash = result.get("crash")
    return AttemptResult(
        status=result["status"],
        diagnostics=result.get("diagnostics", []),
        severities=result.get("severities", {}),
        rendered=result.get("rendered", ""),
        crash=CrashReport(
            exc_type=crash["exc_type"],
            message=crash["message"],
            where=crash.get("where", "worker"),
            traceback=tuple(crash.get("traceback", ())),
            returncode=crash.get("returncode"),
        ) if crash else None,
        duration_ms=duration_ms,
        telemetry=result.get("telemetry"),
    )


def run_attempt_subprocess(
    text: str,
    filename: str,
    check_kwargs: Dict[str, object],
    exception_faults: List[Dict[str, str]],
    fault_specs: Tuple[FaultSpec, ...],
    hang_s: float,
    deadline_ms: Optional[float],
    telemetry: Optional[Dict[str, object]] = None,
    max_mem_mb: Optional[float] = None,
) -> AttemptResult:
    """One attempt in a fresh interpreter (see :mod:`repro.service.subproc`).

    The deadline kills the child outright; a dead child (nonzero exit,
    signal, or a result channel with no complete frame) becomes a crash
    report carrying its wait status and the tail of its stderr.  The result
    travels as a length-prefixed frame on the child's *claimed* stdout
    (:func:`repro.service.proto.shield_stdout`), so a stray ``print`` from
    checked code or the pipeline cannot corrupt it.
    """
    from repro.service import proto

    payload = task_payload(
        text, filename, check_kwargs, exception_faults, fault_specs, hang_s,
        telemetry=telemetry, max_mem_mb=max_mem_mb,
    )
    start = time.perf_counter()
    start_ns = time.perf_counter_ns()
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.service.subproc"],
            input=json.dumps(payload).encode("utf-8"),
            capture_output=True,
            timeout=deadline_ms / 1000.0 if deadline_ms is not None else None,
            env=_child_env(),
        )
    except subprocess.TimeoutExpired:
        duration_ms = round((time.perf_counter() - start) * 1e3, 3)
        return AttemptResult(status="timeout", duration_ms=duration_ms)
    duration_ms = round((time.perf_counter() - start) * 1e3, 3)
    stderr_text = proc.stderr.decode("utf-8", errors="replace")
    stderr_tail = tuple(stderr_text.rstrip().splitlines()[-TRACEBACK_TAIL:])
    if proc.returncode != 0:
        return AttemptResult(
            status="crash",
            crash=CrashReport(
                exc_type="WorkerDeath",
                message=(
                    f"subprocess worker exited with status {proc.returncode}"
                ),
                where="subprocess",
                traceback=stderr_tail,
                returncode=proc.returncode,
            ),
            duration_ms=duration_ms,
        )
    try:
        result, _ = proto.extract_frame(proc.stdout)
    except proto.FrameError:
        result = None
    if result is None:
        return AttemptResult(
            status="crash",
            crash=CrashReport(
                exc_type="WorkerProtocolError",
                message="subprocess worker produced no parseable result",
                where="subprocess",
                traceback=stderr_tail,
                returncode=proc.returncode,
            ),
            duration_ms=duration_ms,
        )
    if result.get("flightrec"):
        # Fold the one-shot worker's flight ring into the coordinator
        # recorder at receive time: a later fault dump then carries the
        # child's spans even though the child is already gone.
        from repro.observability import flightrec, fold_worker_flightrec

        fold_worker_flightrec(
            flightrec.recorder(), result["flightrec"],
            send_ns=start_ns, recv_ns=time.perf_counter_ns(),
        )
    return result_to_attempt(result, duration_ms)
