"""Concrete syntax: lexer and parsers for F_G and System F.

- :func:`parse_fg` / :func:`parse_fg_type` — the F_G surface language,
- :func:`parse_f` / :func:`parse_f_type` — the System F surface language.

Both share the lexer in :mod:`repro.syntax.lexer` and produce positioned
ASTs; errors are :class:`repro.diagnostics.ParseError` with source excerpts.
"""

from repro.syntax.lexer import Token, TokenStream, stream, tokenize
from repro.syntax.parser_f import parse_program as parse_f
from repro.syntax.parser_f import parse_type as parse_f_type
from repro.syntax.parser_fg import parse_program as parse_fg
from repro.syntax.parser_fg import parse_program_resilient as parse_fg_resilient
from repro.syntax.parser_fg import parse_type as parse_fg_type

__all__ = [
    "Token",
    "TokenStream",
    "parse_f",
    "parse_f_type",
    "parse_fg",
    "parse_fg_resilient",
    "parse_fg_type",
    "stream",
    "tokenize",
]
