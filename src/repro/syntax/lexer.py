"""Lexer shared by the F_G and System F concrete-syntax parsers.

The paper gives only abstract syntax; this concrete syntax is our engineering
addition, designed to read like the paper's listings:

.. code-block:: text

    concept Monoid<t> { refines Semigroup<t>; identity_elt : t; } in
    let accumulate = /\\t where Monoid<t>. ... in
    model Monoid<int> { identity_elt = 0; } in
    accumulate[int](ls)

Comments are ``//`` to end of line and ``/* ... */`` (non-nesting).  Note the
lexer must disambiguate ``/*``, ``//``, and the type-abstraction lambda
``/\\``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.diagnostics.errors import LexError
from repro.diagnostics.source import SourceText, Span

#: Token kinds that stand for themselves.
SYMBOLS = [
    # Longest match first.
    "/\\",
    "->",
    "==",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    "<",
    ">",
    ",",
    ";",
    ":",
    ".",
    "=",
    "*",
    "\\",
]

#: Keywords of the F_G concrete syntax (a superset of System F's).
KEYWORDS: Set[str] = {
    "concept",
    "model",
    "refines",
    "types",
    "require",
    "where",
    "in",
    "let",
    "fn",
    "forall",
    "list",
    "if",
    "then",
    "else",
    "fix",
    "type",
    "nth",
    "use",
    "overload",
    "true",
    "false",
    "int",
    "bool",
    "unit",
}


@dataclass(frozen=True)
class Token:
    """A lexical token: ``kind`` is a symbol, keyword, 'IDENT', 'NUMBER', or 'EOF'."""

    kind: str
    text: str
    span: Span

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in ("_", "'")


def tokenize(source: SourceText, reporter=None) -> List[Token]:
    """Tokenize ``source``; raises :class:`LexError` on malformed input.

    With a :class:`repro.diagnostics.DiagnosticReporter`, lex errors are
    recorded and the offending characters skipped, so one bad byte does not
    hide every token after it (error *recovery* mode).
    """
    text = source.text
    n = len(text)
    pos = 0
    tokens: List[Token] = []
    while pos < n:
        ch = text[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        if text.startswith("//", pos):
            end = text.find("\n", pos)
            pos = n if end == -1 else end + 1
            continue
        if text.startswith("/*", pos):
            end = text.find("*/", pos + 2)
            if end == -1:
                err = LexError(
                    "unterminated block comment", source.span(pos, pos + 2)
                ).attach_source(source)
                if reporter is None:
                    raise err
                reporter.error(err)
                pos = n
                continue
            pos = end + 2
            continue
        if ch.isdigit() or (
            ch == "-" and pos + 1 < n and text[pos + 1].isdigit()
        ):
            start = pos
            pos += 1
            while pos < n and text[pos].isdigit():
                pos += 1
            tokens.append(
                Token("NUMBER", text[start:pos], source.span(start, pos))
            )
            continue
        if _is_ident_start(ch):
            start = pos
            while pos < n and _is_ident_char(text[pos]):
                pos += 1
            word = text[start:pos]
            kind = word if word in KEYWORDS else "IDENT"
            tokens.append(Token(kind, word, source.span(start, pos)))
            continue
        for sym in SYMBOLS:
            if text.startswith(sym, pos):
                tokens.append(
                    Token(sym, sym, source.span(pos, pos + len(sym)))
                )
                pos += len(sym)
                break
        else:
            err = LexError(
                f"unexpected character {ch!r}", source.span(pos, pos + 1)
            ).attach_source(source)
            if reporter is None:
                raise err
            reporter.error(err)
            pos += 1
    tokens.append(Token("EOF", "", source.span(n, n)))
    return tokens


class TokenStream:
    """A cursor over a token list with one-token lookahead helpers."""

    def __init__(self, tokens: List[Token], source: SourceText):
        self._tokens = tokens
        self._pos = 0
        self.source = source

    def peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def at(self, *kinds: str) -> bool:
        return self.peek().kind in kinds

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "EOF":
            self._pos += 1
        return token

    def match(self, kind: str) -> Optional[Token]:
        if self.at(kind):
            return self.advance()
        return None

    def expect(self, kind: str, context: str = "") -> Token:
        from repro.diagnostics.errors import ParseError

        token = self.peek()
        if token.kind != kind:
            where = f" in {context}" if context else ""
            raise ParseError(
                f"expected {kind!r}{where}, found {token.kind!r}"
                + (f" ({token.text!r})" if token.text else ""),
                token.span,
            ).attach_source(self.source)
        return self.advance()

    def error(self, message: str):
        from repro.diagnostics.errors import ParseError

        raise ParseError(message, self.peek().span).attach_source(self.source)

    def save(self) -> int:
        return self._pos

    def restore(self, state: int) -> None:
        self._pos = state


def stream(text: str, filename: str = "<input>", reporter=None) -> TokenStream:
    """Tokenize ``text`` into a :class:`TokenStream`.

    ``reporter`` enables lexer error recovery (see :func:`tokenize`).
    """
    source = SourceText(text, filename)
    return TokenStream(tokenize(source, reporter), source)
