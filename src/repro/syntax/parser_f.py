"""Recursive-descent parser for the System F concrete syntax.

The System F surface language is the F_G one minus concepts, models, where
clauses, and associated types; type abstraction binds plain variables and
tuples/``nth`` appear explicitly (they are the dictionary representation).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.syntax.lexer import TokenStream, stream
from repro.systemf import ast as F


def parse_program(text: str, filename: str = "<input>") -> F.Term:
    """Parse a complete System F program (one expression)."""
    ts = stream(text, filename)
    term = _expr(ts)
    ts.expect("EOF", "end of program")
    return term


def parse_type(text: str, filename: str = "<type>") -> F.Type:
    """Parse a single System F type."""
    ts = stream(text, filename)
    t = _type(ts)
    ts.expect("EOF", "end of type")
    return t


# -- types -------------------------------------------------------------------


def _type(ts: TokenStream) -> F.Type:
    if ts.at("forall"):
        ts.advance()
        names = [ts.expect("IDENT", "type parameter").text]
        while ts.match(","):
            names.append(ts.expect("IDENT", "type parameter").text)
        ts.expect(".", "forall type")
        return F.TForall(tuple(names), _type(ts))
    if ts.at("fn"):
        return _fn_type(ts)
    if ts.at("list"):
        ts.advance()
        return F.TList(_type_atom(ts))
    return _type_atom(ts)


def _fn_type(ts: TokenStream) -> F.TFn:
    ts.expect("fn")
    ts.expect("(", "fn type")
    params: List[F.Type] = []
    if not ts.at(")"):
        params.append(_type(ts))
        while ts.match(","):
            params.append(_type(ts))
    ts.expect(")", "fn type")
    ts.expect("->", "fn type")
    return F.TFn(tuple(params), _type(ts))


def _type_atom(ts: TokenStream) -> F.Type:
    token = ts.peek()
    if token.kind == "int":
        ts.advance()
        return F.INT
    if token.kind == "bool":
        ts.advance()
        return F.BOOL
    if token.kind == "unit":
        ts.advance()
        return F.TTuple(())
    if token.kind == "fn":
        return _fn_type(ts)
    if token.kind == "list":
        ts.advance()
        return F.TList(_type_atom(ts))
    if token.kind == "forall":
        return _type(ts)
    if token.kind == "IDENT":
        ts.advance()
        return F.TVar(token.text)
    if token.kind == "(":
        ts.advance()
        first = _type(ts)
        if ts.at("*"):
            items = [first]
            while ts.match("*"):
                if ts.at(")"):  # trailing '*' marks a 1-tuple: (t *)
                    break
                items.append(_type(ts))
            ts.expect(")", "tuple type")
            return F.TTuple(tuple(items))
        ts.expect(")", "parenthesized type")
        return first
    ts.error(f"expected a type, found {token.kind!r}")
    raise AssertionError("unreachable")


# -- terms ---------------------------------------------------------------------


def _expr(ts: TokenStream) -> F.Term:
    token = ts.peek()
    if token.kind == "let":
        span = ts.advance().span
        name = ts.expect("IDENT", "let binding").text
        ts.expect("=", "let binding")
        bound = _expr(ts)
        ts.expect("in", "let binding")
        return F.Let(span=span, name=name, bound=bound, body=_expr(ts))
    if token.kind == "\\":
        span = ts.advance().span
        params: List[Tuple[str, F.Type]] = []
        while True:
            name = ts.expect("IDENT", "lambda parameter").text
            ts.expect(":", "lambda parameter")
            params.append((name, _type(ts)))
            if not ts.match(","):
                break
        ts.expect(".", "lambda")
        return F.Lam(span=span, params=tuple(params), body=_expr(ts))
    if token.kind == "/\\":
        span = ts.advance().span
        names = [ts.expect("IDENT", "type parameter").text]
        while ts.match(","):
            names.append(ts.expect("IDENT", "type parameter").text)
        ts.expect(".", "type abstraction")
        return F.TyLam(span=span, vars=tuple(names), body=_expr(ts))
    if token.kind == "if":
        span = ts.advance().span
        cond = _expr(ts)
        ts.expect("then", "if expression")
        then = _expr(ts)
        ts.expect("else", "if expression")
        return F.If(span=span, cond=cond, then=then, else_=_expr(ts))
    return _postfix(ts)


def _postfix(ts: TokenStream) -> F.Term:
    term = _atom(ts)
    while True:
        if ts.at("("):
            span = ts.advance().span
            args: List[F.Term] = []
            if not ts.at(")"):
                args.append(_expr(ts))
                while ts.match(","):
                    args.append(_expr(ts))
            ts.expect(")", "application")
            term = F.App(span=span, fn=term, args=tuple(args))
        elif ts.at("["):
            span = ts.advance().span
            types = [_type(ts)]
            while ts.match(","):
                types.append(_type(ts))
            ts.expect("]", "type application")
            term = F.TyApp(span=span, fn=term, args=tuple(types))
        else:
            return term


def _atom(ts: TokenStream) -> F.Term:
    token = ts.peek()
    if token.kind == "NUMBER":
        ts.advance()
        return F.IntLit(span=token.span, value=int(token.text))
    if token.kind == "true":
        ts.advance()
        return F.BoolLit(span=token.span, value=True)
    if token.kind == "false":
        ts.advance()
        return F.BoolLit(span=token.span, value=False)
    if token.kind == "nth":
        ts.advance()
        tuple_ = _postfix(ts)
        index = ts.expect("NUMBER", "nth")
        return F.Nth(span=token.span, tuple_=tuple_, index=int(index.text))
    if token.kind == "fix":
        # `fix` binds tighter than application.
        ts.advance()
        return F.Fix(span=token.span, fn=_atom(ts))
    if token.kind == "IDENT":
        ts.advance()
        return F.Var(span=token.span, name=token.text)
    if token.kind == "(":
        ts.advance()
        first = _expr(ts)
        if ts.at(","):
            items = [first]
            while ts.match(","):
                if ts.at(")"):
                    break
                items.append(_expr(ts))
            ts.expect(")", "tuple")
            return F.Tuple_(span=token.span, items=tuple(items))
        ts.expect(")", "parenthesized expression")
        return first
    if token.kind in ("\\", "/\\", "if", "let"):
        return _expr(ts)
    ts.error(f"expected an expression, found {token.kind!r}")
    raise AssertionError("unreachable")
