"""Recursive-descent parser for the F_G concrete syntax.

Grammar sketch (terms)::

    expr      ::= 'let' IDENT '=' expr 'in' expr
                | 'type' IDENT '=' type 'in' expr
                | 'concept' conceptdef 'in' expr
                | 'model' modeldef 'in' expr
                | '\\' params '.' expr                      -- lambda
                | '/\\' tyvars [ 'where' clauses ] '.' expr -- generic fn
                | 'if' expr 'then' expr 'else' expr
                | 'fix' postfix
                | postfix
    postfix   ::= atom { '(' args ')' | '[' types ']' }
    atom      ::= NUMBER | 'true' | 'false' | IDENT
                | IDENT '<' types '>' '.' IDENT             -- member access
                | '(' expr { ',' expr } ')'                 -- parens / tuple
                | 'nth' atom NUMBER

and (types)::

    type      ::= 'forall' tyvars [ 'where' clauses ] '.' type
                | 'fn' '(' types ')' '->' type
                | 'list' typeatom
                | typeatom
    typeatom  ::= 'int' | 'bool' | 'unit' | IDENT
                | IDENT '<' types '>' '.' IDENT             -- associated type
                | '(' type { '*' type } ')'

A where clause is a comma- (or semicolon-) separated list; each item is a
concept requirement ``C<types>`` or a same-type constraint ``type == type``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.diagnostics.errors import ParseError
from repro.diagnostics.reporter import DiagnosticReport, DiagnosticReporter
from repro.fg import ast as G
from repro.syntax.lexer import TokenStream, stream


def parse_program(text: str, filename: str = "<input>") -> G.Term:
    """Parse a complete F_G program (one expression)."""
    ts = stream(text, filename)
    term = _expr(ts)
    ts.expect("EOF", "end of program")
    return term


#: Token kinds at which the resilient parser resynchronizes after an error:
#: statement-ish separators and the keywords that begin a fresh declaration.
SYNC_TOKENS = frozenset((";", "}", "in", "let", "model", "concept"))


def parse_program_resilient(
    text: str,
    filename: str = "<input>",
    max_errors: int = 20,
    reporter: Optional[DiagnosticReporter] = None,
) -> Tuple[Optional[G.Term], DiagnosticReport]:
    """Parse with error recovery: report several parse errors in one run.

    On a parse error the parser skips ahead to a synchronization token
    (``;``, ``}``, ``in``, ``let``, ``model``, ``concept``) and resumes, so
    one syntax error does not hide the rest of the program's problems.
    Returns the last successfully parsed expression (``None`` when nothing
    parsed) together with the collected :class:`DiagnosticReport`.  The
    returned term is best-effort; callers must consult ``report.ok`` before
    trusting it.
    """
    if reporter is None:
        reporter = DiagnosticReporter(max_errors=max_errors)
    ts = stream(text, filename, reporter)
    term: Optional[G.Term] = None
    while True:
        try:
            term = _expr(ts)
            ts.expect("EOF", "end of program")
            break
        except ParseError as err:
            reporter.error(err)
            if reporter.at_limit or not _resynchronize(ts):
                break
    return term, reporter.finish()


def _resynchronize(ts: TokenStream) -> bool:
    """Skip to the next point a fresh expression can start; False at EOF.

    Always consumes at least one token so a failed parse cannot loop
    forever at the same position.  Separators (``;``, ``}``, ``in``) are
    consumed; declaration keywords (``let``, ``model``, ``concept``) are
    left in place — they begin the re-parsed expression.
    """
    ts.advance()
    while not ts.at("EOF"):
        kind = ts.peek().kind
        if kind in (";", "}", "in"):
            ts.advance()
            return not ts.at("EOF")
        if kind in ("let", "model", "concept"):
            return True
        ts.advance()
    return False


def parse_type(text: str, filename: str = "<type>") -> G.FGType:
    """Parse a single F_G type."""
    ts = stream(text, filename)
    t = _type(ts)
    ts.expect("EOF", "end of type")
    return t


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


def _type(ts: TokenStream) -> G.FGType:
    if ts.at("forall"):
        return _forall_type(ts)
    if ts.at("fn"):
        return _fn_type(ts)
    if ts.at("list"):
        ts.advance()
        return G.TList(_type_atom(ts))
    return _type_atom(ts)


def _forall_type(ts: TokenStream) -> G.TForall:
    ts.expect("forall")
    vars_ = _tyvar_list(ts)
    reqs, sames = _where_clauses(ts)
    ts.expect(".", "forall type")
    body = _type(ts)
    return G.TForall(vars_, reqs, sames, body)


def _fn_type(ts: TokenStream) -> G.TFn:
    ts.expect("fn")
    ts.expect("(", "fn type")
    params: List[G.FGType] = []
    if not ts.at(")"):
        params.append(_type(ts))
        while ts.match(","):
            params.append(_type(ts))
    ts.expect(")", "fn type")
    ts.expect("->", "fn type")
    return G.TFn(tuple(params), _type(ts))


def _type_atom(ts: TokenStream) -> G.FGType:
    token = ts.peek()
    if token.kind == "int":
        ts.advance()
        return G.INT
    if token.kind == "bool":
        ts.advance()
        return G.BOOL
    if token.kind == "unit":
        ts.advance()
        return G.TTuple(())
    if token.kind == "fn":
        return _fn_type(ts)
    if token.kind == "list":
        ts.advance()
        return G.TList(_type_atom(ts))
    if token.kind == "forall":
        return _forall_type(ts)
    if token.kind == "IDENT":
        ts.advance()
        if ts.at("<"):
            args = _type_args(ts)
            ts.expect(".", "associated type")
            member = ts.expect("IDENT", "associated type").text
            return G.TAssoc(token.text, args, member)
        return G.TVar(token.text)
    if token.kind == "(":
        ts.advance()
        first = _type(ts)
        if ts.at("*"):
            items = [first]
            while ts.match("*"):
                if ts.at(")"):  # trailing '*' marks a 1-tuple: (t *)
                    break
                items.append(_type(ts))
            ts.expect(")", "tuple type")
            return G.TTuple(tuple(items))
        ts.expect(")", "parenthesized type")
        return first
    ts.error(f"expected a type, found {token.kind!r}")
    raise AssertionError("unreachable")


def _type_args(ts: TokenStream) -> Tuple[G.FGType, ...]:
    ts.expect("<", "type arguments")
    args = [_type(ts)]
    while ts.match(","):
        args.append(_type(ts))
    ts.expect(">", "type arguments")
    return tuple(args)


def _tyvar_list(ts: TokenStream) -> Tuple[str, ...]:
    names = [ts.expect("IDENT", "type parameter").text]
    while ts.match(","):
        names.append(ts.expect("IDENT", "type parameter").text)
    return tuple(names)


def _where_clauses(
    ts: TokenStream,
) -> Tuple[Tuple[G.ConceptReq, ...], Tuple[G.SameType, ...]]:
    """Parse ``where C<t>, ...; tau == tau', ...`` (empty if absent)."""
    reqs: List[G.ConceptReq] = []
    sames: List[G.SameType] = []
    if not ts.match("where"):
        return (), ()
    while True:
        left = _requirement_or_type(ts)
        if ts.match("=="):
            right = _type(ts)
            sames.append(G.SameType(_as_type(ts, left), right))
        else:
            if not isinstance(left, G.ConceptReq):
                ts.error(
                    "expected a concept requirement C<...> or a same-type "
                    "constraint tau == tau in where clause"
                )
            reqs.append(left)
        if not (ts.match(",") or ts.match(";")):
            break
    return tuple(reqs), tuple(sames)


def _requirement_or_type(ts: TokenStream) -> G.FGType:
    """A where-clause item: ``C<types>`` (maybe ``.member``) or any type.

    A ``.`` after ``C<types>`` is ambiguous: it may select an associated
    type (left side of a same-type constraint) or terminate the whole where
    clause.  We take it as an associated type only when ``== `` follows —
    terms can never begin with ``ident ==``, so this lookahead is safe.
    """
    if ts.at("IDENT") and ts.peek(1).kind == "<":
        name = ts.advance().text
        args = _type_args(ts)
        if (
            ts.at(".")
            and ts.peek(1).kind == "IDENT"
            and ts.peek(2).kind == "=="
        ):
            ts.advance()
            member = ts.expect("IDENT", "associated type").text
            return G.TAssoc(name, args, member)
        return G.ConceptReq(name, args)
    return _type(ts)


def _as_type(ts: TokenStream, t: G.FGType) -> G.FGType:
    if isinstance(t, G.ConceptReq):
        ts.error(f"concept requirement {t} cannot appear in a same-type constraint")
    return t


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


def _expr(ts: TokenStream) -> G.Term:
    token = ts.peek()
    if token.kind == "let":
        return _let(ts)
    if token.kind == "type":
        return _type_alias(ts)
    if token.kind == "concept":
        return _concept(ts)
    if token.kind == "model":
        return _model(ts)
    if token.kind == "use":
        return _use_models(ts)
    if token.kind == "overload":
        return _overload(ts)
    if token.kind == "\\":
        return _lambda(ts)
    if token.kind == "/\\":
        return _tylambda(ts)
    if token.kind == "if":
        return _if(ts)
    return _postfix(ts)


def _let(ts: TokenStream) -> G.Term:
    span = ts.expect("let").span
    name = ts.expect("IDENT", "let binding").text
    ts.expect("=", "let binding")
    bound = _expr(ts)
    ts.expect("in", "let binding")
    body = _expr(ts)
    return G.Let(span=span, name=name, bound=bound, body=body)


def _type_alias(ts: TokenStream) -> G.Term:
    span = ts.expect("type").span
    name = ts.expect("IDENT", "type alias").text
    ts.expect("=", "type alias")
    aliased = _type(ts)
    ts.expect("in", "type alias")
    body = _expr(ts)
    return G.TypeAlias(span=span, name=name, aliased=aliased, body=body)


def _lambda(ts: TokenStream) -> G.Term:
    span = ts.expect("\\").span
    params: List[Tuple[str, G.FGType]] = []
    while True:
        name = ts.expect("IDENT", "lambda parameter").text
        ts.expect(":", "lambda parameter")
        params.append((name, _type(ts)))
        if not ts.match(","):
            break
    ts.expect(".", "lambda")
    return G.Lam(span=span, params=tuple(params), body=_expr(ts))


def _tylambda(ts: TokenStream) -> G.Term:
    span = ts.expect("/\\").span
    vars_ = _tyvar_list(ts)
    reqs, sames = _where_clauses(ts)
    ts.expect(".", "type abstraction")
    return G.TyLam(
        span=span,
        vars=vars_,
        requirements=reqs,
        same_types=sames,
        body=_expr(ts),
    )


def _if(ts: TokenStream) -> G.Term:
    span = ts.expect("if").span
    cond = _expr(ts)
    ts.expect("then", "if expression")
    then = _expr(ts)
    ts.expect("else", "if expression")
    else_ = _expr(ts)
    return G.If(span=span, cond=cond, then=then, else_=else_)


def _postfix(ts: TokenStream) -> G.Term:
    term = _atom(ts)
    while True:
        if ts.at("("):
            span = ts.advance().span
            args: List[G.Term] = []
            if not ts.at(")"):
                args.append(_expr(ts))
                while ts.match(","):
                    args.append(_expr(ts))
            ts.expect(")", "application")
            term = G.App(span=span, fn=term, args=tuple(args))
        elif ts.at("["):
            span = ts.advance().span
            types = [_type(ts)]
            while ts.match(","):
                types.append(_type(ts))
            ts.expect("]", "instantiation")
            term = G.TyApp(span=span, fn=term, args=tuple(types))
        else:
            return term


def _atom(ts: TokenStream) -> G.Term:
    token = ts.peek()
    if token.kind == "NUMBER":
        ts.advance()
        return G.IntLit(span=token.span, value=int(token.text))
    if token.kind == "true":
        ts.advance()
        return G.BoolLit(span=token.span, value=True)
    if token.kind == "false":
        ts.advance()
        return G.BoolLit(span=token.span, value=False)
    if token.kind == "nth":
        ts.advance()
        tuple_ = _postfix(ts)
        index = ts.expect("NUMBER", "nth")
        return G.Nth(span=token.span, tuple_=tuple_, index=int(index.text))
    if token.kind == "fix":
        # `fix` binds tighter than application: fix (\f. ...)(x) applies
        # the fixpoint to x.
        ts.advance()
        return G.Fix(span=token.span, fn=_atom(ts))
    if token.kind == "IDENT":
        ts.advance()
        if ts.at("<"):
            args = _type_args(ts)
            ts.expect(".", "member access")
            member = ts.expect("IDENT", "member access").text
            return G.MemberAccess(
                span=token.span, concept=token.text, args=args, member=member
            )
        return G.Var(span=token.span, name=token.text)
    if token.kind == "(":
        ts.advance()
        first = _expr(ts)
        if ts.at(","):
            items = [first]
            while ts.match(","):
                if ts.at(")"):  # allow a trailing comma for 1-tuples
                    break
                items.append(_expr(ts))
            ts.expect(")", "tuple")
            return G.Tuple_(span=token.span, items=tuple(items))
        ts.expect(")", "parenthesized expression")
        return first
    # Allow a lambda/type-abstraction/if directly in argument position.
    if token.kind in ("\\", "/\\", "if", "let"):
        return _expr(ts)
    ts.error(f"expected an expression, found {token.kind!r}")
    raise AssertionError("unreachable")


# ---------------------------------------------------------------------------
# Concept and model declarations
# ---------------------------------------------------------------------------


def _concept(ts: TokenStream) -> G.Term:
    span = ts.expect("concept").span
    name = ts.expect("IDENT", "concept declaration").text
    ts.expect("<", "concept parameters")
    params = _tyvar_list(ts)
    ts.expect(">", "concept parameters")
    ts.expect("{", "concept body")
    assoc: List[str] = []
    refines: List[G.ConceptReq] = []
    members: List[Tuple[str, G.FGType]] = []
    sames: List[G.SameType] = []
    nested: List[G.ConceptReq] = []
    defaults: List[Tuple[str, G.Term]] = []
    while not ts.at("}"):
        if ts.match("types"):
            assoc.append(ts.expect("IDENT", "associated type").text)
            while ts.match(","):
                assoc.append(ts.expect("IDENT", "associated type").text)
            ts.expect(";", "associated types")
        elif ts.match("refines"):
            rname = ts.expect("IDENT", "refinement").text
            args = _type_args(ts)
            refines.append(G.ConceptReq(rname, args))
            ts.expect(";", "refinement")
        elif ts.match("require"):
            # `require C<taus>;` is a nested requirement (paper section 6);
            # `require tau == tau;` is a same-type requirement.
            if ts.at("IDENT") and ts.peek(1).kind == "<":
                rname = ts.advance().text
                rargs = _type_args(ts)
                if ts.at(";"):
                    nested.append(G.ConceptReq(rname, rargs))
                else:
                    ts.expect(".", "requirement")
                    member = ts.expect("IDENT", "associated type").text
                    left = G.TAssoc(rname, rargs, member)
                    ts.expect("==", "same-type requirement")
                    sames.append(G.SameType(left, _type(ts)))
            else:
                left = _type(ts)
                ts.expect("==", "same-type requirement")
                sames.append(G.SameType(left, _type(ts)))
            ts.expect(";", "requirement")
        else:
            mname = ts.expect("IDENT", "concept member").text
            ts.expect(":", "concept member")
            members.append((mname, _type(ts)))
            if ts.match("="):  # member default (section 6 extension)
                defaults.append((mname, _expr(ts)))
            ts.expect(";", "concept member")
    ts.expect("}", "concept body")
    ts.expect("in", "concept declaration")
    body = _expr(ts)
    cdef = G.ConceptDef(
        name,
        params,
        tuple(assoc),
        tuple(refines),
        tuple(members),
        tuple(sames),
        tuple(nested),
        tuple(defaults),
    )
    return G.ConceptExpr(span=span, concept=cdef, body=body)


def _model(ts: TokenStream) -> G.Term:
    span = ts.expect("model").span
    # Extension forms (section 6):
    #   model NAME = C<taus> { ... } in e     -- named model
    #   model forall t... [where ...]. C<taus> { ... } in e
    if ts.at("forall"):
        return _param_model(ts, span)
    if ts.at("IDENT") and ts.peek(1).kind == "=":
        return _named_model(ts, span)
    mdef = _model_def(ts)
    ts.expect("in", "model declaration")
    body = _expr(ts)
    return G.ModelExpr(span=span, model=mdef, body=body)


def _model_def(ts: TokenStream) -> G.ModelDef:
    """Parse ``C<taus> { types s = t; member = e; ... }``."""
    name = ts.expect("IDENT", "model declaration").text
    args = _type_args(ts)
    ts.expect("{", "model body")
    type_assignments: List[Tuple[str, G.FGType]] = []
    member_defs: List[Tuple[str, G.Term]] = []
    while not ts.at("}"):
        if ts.match("types"):
            while True:
                tname = ts.expect("IDENT", "type assignment").text
                ts.expect("=", "type assignment")
                type_assignments.append((tname, _type(ts)))
                if not ts.match(","):
                    break
            ts.expect(";", "type assignment")
        else:
            mname = ts.expect("IDENT", "member definition").text
            ts.expect("=", "member definition")
            member_defs.append((mname, _expr(ts)))
            ts.expect(";", "member definition")
    ts.expect("}", "model body")
    return G.ModelDef(name, args, tuple(type_assignments), tuple(member_defs))


def _named_model(ts: TokenStream, span) -> G.Term:
    from repro.extensions.ast import NamedModelExpr

    name = ts.expect("IDENT", "named model").text
    ts.expect("=", "named model")
    mdef = _model_def(ts)
    ts.expect("in", "named model")
    return NamedModelExpr(span=span, name=name, model=mdef, body=_expr(ts))


def _param_model(ts: TokenStream, span) -> G.Term:
    from repro.extensions.ast import ParamModelExpr

    ts.expect("forall", "parameterized model")
    vars_ = _tyvar_list(ts)
    reqs, sames = _where_clauses(ts)
    ts.expect(".", "parameterized model")
    mdef = _model_def(ts)
    ts.expect("in", "parameterized model")
    return ParamModelExpr(
        span=span,
        vars=vars_,
        requirements=reqs,
        same_types=sames,
        model=mdef,
        body=_expr(ts),
    )


def _overload(ts: TokenStream) -> G.Term:
    from repro.extensions.ast import OverloadExpr

    span = ts.expect("overload").span
    name = ts.expect("IDENT", "overload").text
    ts.expect("{", "overload")
    alternatives: List[G.Term] = []
    while not ts.at("}"):
        alternatives.append(_expr(ts))
        ts.expect(";", "overload alternative")
    ts.expect("}", "overload")
    ts.expect("in", "overload")
    return OverloadExpr(
        span=span,
        name=name,
        alternatives=tuple(alternatives),
        body=_expr(ts),
    )


def _use_models(ts: TokenStream) -> G.Term:
    from repro.extensions.ast import UseModelsExpr

    span = ts.expect("use").span
    names = [ts.expect("IDENT", "use").text]
    while ts.match(","):
        names.append(ts.expect("IDENT", "use").text)
    ts.expect("in", "use")
    return UseModelsExpr(span=span, names=tuple(names), body=_expr(ts))
