"""System F: the target language of the F_G translation (paper Figure 2).

Public surface:

- :mod:`repro.systemf.ast` — types and terms,
- :func:`type_of` — the typechecker (used to verify Theorems 1 and 2),
- :func:`evaluate` — a call-by-value evaluator,
- :func:`pretty_type` / :func:`pretty_term` — concrete-syntax printers,
- :data:`BUILTIN_TYPES` — the primitive constants the paper's examples use.
"""

from repro.systemf.ast import (
    BOOL,
    INT,
    App,
    BoolLit,
    Fix,
    If,
    IntLit,
    Lam,
    Let,
    Nth,
    TBase,
    TFn,
    TForall,
    TList,
    TTuple,
    TVar,
    Term,
    Tuple_,
    TyApp,
    TyLam,
    Type,
    Var,
    free_type_vars,
    fresh_type_var,
    substitute,
    types_equal,
)
from repro.systemf.builtins import BUILTIN_TYPES, make_prim_values
from repro.systemf.eval import Env, evaluate
from repro.systemf.pretty import pretty_term, pretty_type
from repro.systemf.typecheck import TypeEnv, type_of

__all__ = [
    "App",
    "BOOL",
    "BUILTIN_TYPES",
    "BoolLit",
    "Env",
    "Fix",
    "If",
    "INT",
    "IntLit",
    "Lam",
    "Let",
    "Nth",
    "TBase",
    "TFn",
    "TForall",
    "TList",
    "TTuple",
    "TVar",
    "Term",
    "Tuple_",
    "TyApp",
    "TyLam",
    "Type",
    "TypeEnv",
    "Var",
    "evaluate",
    "free_type_vars",
    "fresh_type_var",
    "make_prim_values",
    "pretty_term",
    "pretty_type",
    "substitute",
    "type_of",
    "types_equal",
]
