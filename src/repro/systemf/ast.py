"""Abstract syntax of System F (paper Figure 2), mildly extended.

The paper's Figure 2 gives types ``t | fn(t...)->t | t x ... x t | forall t. t``
and terms ``x | f(f) | \\y:t. f | /\\t. f | f[t] | let | tuples | nth``.  The
paper's running examples additionally use integer and boolean literals,
``if``, a fixpoint operator, and list primitives (``cons``, ``car`` ...), so
we include those directly: literals, ``If`` and ``Fix`` as term forms, and the
list primitives as polymorphic constants bound in the initial environment
(see :mod:`repro.systemf.builtins`).

All nodes are immutable dataclasses carrying an optional source span.
Multi-parameter functions and type abstractions are primitive, exactly as the
paper uses them to ease the F_G translation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.diagnostics.source import Span


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """Base class of System F types."""


@dataclass(frozen=True)
class TVar(Type):
    """A type variable ``t``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TBase(Type):
    """A base type such as ``int`` or ``bool``."""

    name: str

    def __str__(self) -> str:
        return self.name


#: The base type of integers.
INT = TBase("int")
#: The base type of booleans.
BOOL = TBase("bool")


@dataclass(frozen=True)
class TList(Type):
    """The list type constructor ``list t``."""

    elem: Type

    def __str__(self) -> str:
        return f"list {self.elem}"


@dataclass(frozen=True)
class TFn(Type):
    """A multi-parameter function type ``fn(t1, ..., tn) -> t``."""

    params: Tuple[Type, ...]
    result: Type

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"fn({params}) -> {self.result}"


@dataclass(frozen=True)
class TTuple(Type):
    """A product type ``t1 * ... * tn`` (used for dictionaries)."""

    items: Tuple[Type, ...]

    def __str__(self) -> str:
        if not self.items:
            return "unit"
        return "(" + " * ".join(_paren_tuple_item(i) for i in self.items) + ")"


@dataclass(frozen=True)
class TForall(Type):
    """A polymorphic type ``forall t1, ..., tn. t``."""

    vars: Tuple[str, ...]
    body: Type

    def __str__(self) -> str:
        return f"forall {', '.join(self.vars)}. {self.body}"


def _paren_tuple_item(t: Type) -> str:
    if isinstance(t, (TFn, TForall)):
        return f"({t})"
    return str(t)


# ---------------------------------------------------------------------------
# Type operations: free variables, substitution, alpha-equality
# ---------------------------------------------------------------------------

_fresh_counter = itertools.count()


def fresh_type_var(base: str = "t") -> str:
    """A globally fresh type-variable name derived from ``base``."""
    return f"{base}%{next(_fresh_counter)}"


def free_type_vars(t: Type) -> frozenset:
    """The set of type-variable names occurring free in ``t``."""
    if isinstance(t, TVar):
        return frozenset((t.name,))
    if isinstance(t, TBase):
        return frozenset()
    if isinstance(t, TList):
        return free_type_vars(t.elem)
    if isinstance(t, TFn):
        result = free_type_vars(t.result)
        for p in t.params:
            result |= free_type_vars(p)
        return result
    if isinstance(t, TTuple):
        result = frozenset()
        for item in t.items:
            result |= free_type_vars(item)
        return result
    if isinstance(t, TForall):
        return free_type_vars(t.body) - frozenset(t.vars)
    raise AssertionError(f"unknown type node: {t!r}")


def substitute(t: Type, subst: Dict[str, Type]) -> Type:
    """Capture-avoiding simultaneous substitution of types for type variables."""
    if not subst:
        return t
    if isinstance(t, TVar):
        return subst.get(t.name, t)
    if isinstance(t, TBase):
        return t
    if isinstance(t, TList):
        return TList(substitute(t.elem, subst))
    if isinstance(t, TFn):
        return TFn(
            tuple(substitute(p, subst) for p in t.params),
            substitute(t.result, subst),
        )
    if isinstance(t, TTuple):
        return TTuple(tuple(substitute(item, subst) for item in t.items))
    if isinstance(t, TForall):
        # Drop shadowed bindings; rename binders that would capture.
        inner = {k: v for k, v in subst.items() if k not in t.vars}
        if not inner:
            return t
        captured = frozenset()
        for v in inner.values():
            captured |= free_type_vars(v)
        new_vars = []
        renaming: Dict[str, Type] = {}
        for var in t.vars:
            if var in captured:
                fresh = fresh_type_var(var.split("%")[0])
                renaming[var] = TVar(fresh)
                new_vars.append(fresh)
            else:
                new_vars.append(var)
        body = substitute(t.body, renaming) if renaming else t.body
        return TForall(tuple(new_vars), substitute(body, inner))
    raise AssertionError(f"unknown type node: {t!r}")


def types_equal(a: Type, b: Type) -> bool:
    """Alpha-equivalence of System F types."""
    return _alpha_eq(a, b, {}, {})


def _alpha_eq(a: Type, b: Type, env_a: Dict[str, int], env_b: Dict[str, int]) -> bool:
    if isinstance(a, TVar) and isinstance(b, TVar):
        ia, ib = env_a.get(a.name), env_b.get(b.name)
        if ia is None and ib is None:
            return a.name == b.name
        return ia == ib and ia is not None
    if isinstance(a, TBase) and isinstance(b, TBase):
        return a.name == b.name
    if isinstance(a, TList) and isinstance(b, TList):
        return _alpha_eq(a.elem, b.elem, env_a, env_b)
    if isinstance(a, TFn) and isinstance(b, TFn):
        if len(a.params) != len(b.params):
            return False
        return all(
            _alpha_eq(pa, pb, env_a, env_b) for pa, pb in zip(a.params, b.params)
        ) and _alpha_eq(a.result, b.result, env_a, env_b)
    if isinstance(a, TTuple) and isinstance(b, TTuple):
        if len(a.items) != len(b.items):
            return False
        return all(_alpha_eq(x, y, env_a, env_b) for x, y in zip(a.items, b.items))
    if isinstance(a, TForall) and isinstance(b, TForall):
        if len(a.vars) != len(b.vars):
            return False
        depth = len(env_a)
        new_a = dict(env_a)
        new_b = dict(env_b)
        for i, (va, vb) in enumerate(zip(a.vars, b.vars)):
            new_a[va] = depth + i
            new_b[vb] = depth + i
        return _alpha_eq(a.body, b.body, new_a, new_b)
    return False


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Term:
    """Base class of System F terms."""

    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Var(Term):
    """A term variable reference."""

    name: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntLit(Term):
    """An integer literal."""

    value: int = 0

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BoolLit(Term):
    """A boolean literal."""

    value: bool = False

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class Lam(Term):
    """A multi-parameter lambda ``\\x1:t1, ..., xn:tn. body``."""

    params: Tuple[Tuple[str, Type], ...] = ()
    body: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class App(Term):
    """A (multi-argument) application ``f(e1, ..., en)``."""

    fn: Term = None  # type: ignore[assignment]
    args: Tuple[Term, ...] = ()


@dataclass(frozen=True)
class TyLam(Term):
    """A type abstraction ``/\\t1, ..., tn. body``."""

    vars: Tuple[str, ...] = ()
    body: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class TyApp(Term):
    """A type application ``e[t1, ..., tn]``."""

    fn: Term = None  # type: ignore[assignment]
    args: Tuple[Type, ...] = ()


@dataclass(frozen=True)
class Let(Term):
    """``let x = e1 in e2`` (paper's LET rule)."""

    name: str = ""
    bound: Term = None  # type: ignore[assignment]
    body: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Tuple_(Term):
    """A tuple ``(e1, ..., en)`` — the dictionary representation."""

    items: Tuple[Term, ...] = ()


@dataclass(frozen=True)
class Nth(Term):
    """Tuple projection ``nth e i`` (0-based, as in the paper)."""

    tuple_: Term = None  # type: ignore[assignment]
    index: int = 0


@dataclass(frozen=True)
class If(Term):
    """Conditional ``if c then e1 else e2``."""

    cond: Term = None  # type: ignore[assignment]
    then: Term = None  # type: ignore[assignment]
    else_: Term = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Fix(Term):
    """Fixpoint ``fix e`` where ``e : fn(A) -> A`` and ``A`` is a function type."""

    fn: Term = None  # type: ignore[assignment]
