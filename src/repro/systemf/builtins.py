"""Primitive constants available to System F (and F_G) programs.

The paper's examples freely use ``iadd``, ``imult``, ``cons[int]``,
``car[t]``, ``null[t]`` and friends.  We bind them in the initial typing
environment as (possibly polymorphic) constants and give them runtime
implementations in the evaluator's initial value environment.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.diagnostics.errors import EvalError
from repro.systemf.ast import BOOL, INT, TFn, TForall, TList, TVar, Type


def _binop_int() -> Type:
    return TFn((INT, INT), INT)


def _cmp_int() -> Type:
    return TFn((INT, INT), BOOL)


#: Types of every builtin constant, keyed by name.
BUILTIN_TYPES: Dict[str, Type] = {
    # Integer arithmetic.
    "iadd": _binop_int(),
    "isub": _binop_int(),
    "imult": _binop_int(),
    "idiv": _binop_int(),
    "imod": _binop_int(),
    "ineg": TFn((INT,), INT),
    "imin": _binop_int(),
    "imax": _binop_int(),
    # Integer comparisons.
    "ilt": _cmp_int(),
    "ile": _cmp_int(),
    "igt": _cmp_int(),
    "ige": _cmp_int(),
    "ieq": _cmp_int(),
    "ineq": _cmp_int(),
    # Booleans.
    "band": TFn((BOOL, BOOL), BOOL),
    "bor": TFn((BOOL, BOOL), BOOL),
    "bnot": TFn((BOOL,), BOOL),
    "beq": TFn((BOOL, BOOL), BOOL),
    # Polymorphic list primitives.
    "nil": TForall(("t",), TList(TVar("t"))),
    "cons": TForall(("t",), TFn((TVar("t"), TList(TVar("t"))), TList(TVar("t")))),
    "car": TForall(("t",), TFn((TList(TVar("t")),), TVar("t"))),
    "cdr": TForall(("t",), TFn((TList(TVar("t")),), TList(TVar("t")))),
    "null": TForall(("t",), TFn((TList(TVar("t")),), BOOL)),
}


class PrimValue:
    """A runtime builtin: a Python callable plus its arity.

    ``arity == 0`` marks constants such as the (type-applied) ``nil``.
    """

    __slots__ = ("name", "arity", "fn")

    def __init__(self, name: str, arity: int, fn: Callable):
        self.name = name
        self.arity = arity
        self.fn = fn

    def __repr__(self) -> str:
        return f"<prim {self.name}>"


def _car(ls: List) -> object:
    if not ls:
        raise EvalError("car of empty list")
    return ls[0]


def _cdr(ls: List) -> List:
    if not ls:
        raise EvalError("cdr of empty list")
    return ls[1:]


def _idiv(a: int, b: int) -> int:
    if b == 0:
        raise EvalError("integer division by zero")
    return int(a / b) if (a < 0) != (b < 0) and a % b != 0 else a // b


def _imod(a: int, b: int) -> int:
    if b == 0:
        raise EvalError("integer modulo by zero")
    return a - b * (_idiv(a, b))


#: Runtime implementations, keyed by name; arity mirrors the type above.
BUILTIN_IMPLS: Dict[str, Tuple[int, Callable]] = {
    "iadd": (2, lambda a, b: a + b),
    "isub": (2, lambda a, b: a - b),
    "imult": (2, lambda a, b: a * b),
    "idiv": (2, _idiv),
    "imod": (2, _imod),
    "ineg": (1, lambda a: -a),
    "imin": (2, min),
    "imax": (2, max),
    "ilt": (2, lambda a, b: a < b),
    "ile": (2, lambda a, b: a <= b),
    "igt": (2, lambda a, b: a > b),
    "ige": (2, lambda a, b: a >= b),
    "ieq": (2, lambda a, b: a == b),
    "ineq": (2, lambda a, b: a != b),
    "band": (2, lambda a, b: a and b),
    "bor": (2, lambda a, b: a or b),
    "bnot": (1, lambda a: not a),
    "beq": (2, lambda a, b: a == b),
    "nil": (0, lambda: []),
    "cons": (2, lambda x, ls: [x] + ls),
    "car": (1, _car),
    "cdr": (1, _cdr),
    "null": (1, lambda ls: len(ls) == 0),
}


def make_prim_values() -> Dict[str, PrimValue]:
    """A fresh map from builtin name to :class:`PrimValue`."""
    return {
        name: PrimValue(name, arity, fn)
        for name, (arity, fn) in BUILTIN_IMPLS.items()
    }


assert set(BUILTIN_TYPES) == set(BUILTIN_IMPLS), "builtin tables out of sync"
