"""Call-by-value big-step evaluator for System F.

Types are erased at runtime except that type abstractions are values
(``TyLam`` suspends evaluation of its body, matching System F's CBV
semantics).  Dictionaries are plain tuples, so running a translated F_G
program exercises the dictionary-passing representation of Figure 7 directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.diagnostics.errors import EvalError
from repro.diagnostics.limits import Budget, Limits, resource_scope
from repro.systemf import ast as F
from repro.systemf.builtins import PrimValue, make_prim_values


class Closure:
    """A lambda value: parameters, body, and captured environment."""

    __slots__ = ("params", "body", "env")

    def __init__(self, params, body, env):
        self.params = params
        self.body = body
        self.env = env

    def __repr__(self) -> str:
        names = ", ".join(name for name, _ in self.params)
        return f"<closure ({names})>"


class TyClosure:
    """A type-abstraction value; the body is evaluated on type application."""

    __slots__ = ("vars", "body", "env")

    def __init__(self, vars_, body, env):
        self.vars = vars_
        self.body = body
        self.env = env

    def __repr__(self) -> str:
        return f"<tyclosure [{', '.join(self.vars)}]>"


class FixThunk:
    """The value of ``fix g``: unrolls one step each time it is applied."""

    __slots__ = ("fn_value",)

    def __init__(self, fn_value):
        self.fn_value = fn_value

    def __repr__(self) -> str:
        return "<fix>"


Value = Union[int, bool, List, tuple, Closure, TyClosure, FixThunk, PrimValue]


class Env:
    """A persistent runtime environment (linked frames)."""

    __slots__ = ("_frame", "_parent")

    def __init__(self, frame: Dict[str, Value], parent: Optional["Env"] = None):
        self._frame = frame
        self._parent = parent

    @classmethod
    def initial(cls) -> "Env":
        return cls(dict(make_prim_values()))

    def lookup(self, name: str) -> Value:
        env: Optional[Env] = self
        while env is not None:
            if name in env._frame:
                return env._frame[name]
            env = env._parent
        raise EvalError(f"unbound variable at runtime: '{name}'")

    def bind(self, name: str, value: Value) -> "Env":
        return Env({name: value}, self)

    def bind_many(self, pairs) -> "Env":
        return Env(dict(pairs), self)


#: Shared no-op budget for callers that don't meter their evaluation.
_UNMETERED = Budget(Limits(max_eval_steps=None))


def evaluate(
    term: F.Term,
    env: Optional[Env] = None,
    *,
    limits: Optional[Limits] = None,
    budget: Optional[Budget] = None,
) -> Value:
    """Evaluate ``term`` to a value in ``env`` (defaults to builtins).

    The evaluator is a straightforward recursive interpreter; each level of
    object-language recursion costs several Python frames, so the call runs
    under a *scoped* (restored on exit) raised recursion limit, and a stack
    overflow surfaces as a :class:`ResourceLimitError` diagnostic.  With
    ``limits.max_eval_steps`` set, every evaluation step spends fuel and a
    runaway program stops with the same diagnostic instead of looping.
    """
    if budget is None:
        budget = Budget(limits)
    if env is None:
        env = Env.initial()
    with resource_scope(budget.limits, getattr(term, "span", None)):
        return _eval(term, env, budget)


def apply_value(
    fn_value: Value, args: List[Value], span=None,
    budget: Optional[Budget] = None,
) -> Value:
    """Apply a function value to already-evaluated arguments."""
    if budget is None:
        budget = _UNMETERED
    while isinstance(fn_value, FixThunk):
        fn_value = _apply_once(fn_value.fn_value, [fn_value], span, budget)
    return _apply_once(fn_value, args, span, budget)


def _apply_once(
    fn_value: Value, args: List[Value], span=None,
    budget: Budget = _UNMETERED,
) -> Value:
    if isinstance(fn_value, Closure):
        if len(fn_value.params) != len(args):
            raise EvalError(
                f"runtime arity mismatch: expected {len(fn_value.params)} "
                f"argument(s), got {len(args)}",
                span,
            )
        pairs = [
            (name, value)
            for (name, _), value in zip(fn_value.params, args)
        ]
        return _eval(fn_value.body, fn_value.env.bind_many(pairs), budget)
    if isinstance(fn_value, PrimValue):
        if fn_value.arity != len(args):
            raise EvalError(
                f"primitive '{fn_value.name}' expects {fn_value.arity} "
                f"argument(s), got {len(args)}",
                span,
            )
        return fn_value.fn(*args)
    raise EvalError(f"cannot apply non-function value {fn_value!r}", span)


def _eval(term: F.Term, env: Env, budget: Budget = _UNMETERED) -> Value:
    budget.spend_fuel(term.span)

    if isinstance(term, F.Var):
        return env.lookup(term.name)

    if isinstance(term, F.IntLit):
        return term.value

    if isinstance(term, F.BoolLit):
        return term.value

    if isinstance(term, F.Lam):
        return Closure(term.params, term.body, env)

    if isinstance(term, F.App):
        fn_value = _eval(term.fn, env, budget)
        args = [_eval(arg, env, budget) for arg in term.args]
        return apply_value(fn_value, args, term.span, budget)

    if isinstance(term, F.TyLam):
        return TyClosure(term.vars, term.body, env)

    if isinstance(term, F.TyApp):
        fn_value = _eval(term.fn, env, budget)
        if isinstance(fn_value, TyClosure):
            return _eval(fn_value.body, fn_value.env, budget)
        if isinstance(fn_value, PrimValue) and fn_value.arity == 0:
            # A fully type-applied polymorphic constant such as nil[int].
            return fn_value.fn()
        if isinstance(fn_value, PrimValue):
            # Polymorphic primitives like cons[t] erase to themselves.
            return fn_value
        raise EvalError(
            f"cannot type-apply non-polymorphic value {fn_value!r}", term.span
        )

    if isinstance(term, F.Let):
        bound = _eval(term.bound, env, budget)
        return _eval(term.body, env.bind(term.name, bound), budget)

    if isinstance(term, F.Tuple_):
        return tuple(_eval(item, env, budget) for item in term.items)

    if isinstance(term, F.Nth):
        tuple_value = _eval(term.tuple_, env, budget)
        if not isinstance(tuple_value, tuple):
            raise EvalError(
                f"nth applied to non-tuple {tuple_value!r}", term.span
            )
        if not 0 <= term.index < len(tuple_value):
            raise EvalError(
                f"tuple index {term.index} out of range", term.span
            )
        return tuple_value[term.index]

    if isinstance(term, F.If):
        cond = _eval(term.cond, env, budget)
        if not isinstance(cond, bool):
            raise EvalError(f"if condition is not a boolean: {cond!r}", term.span)
        return _eval(term.then if cond else term.else_, env, budget)

    if isinstance(term, F.Fix):
        return FixThunk(_eval(term.fn, env, budget))

    raise AssertionError(f"unknown term node: {term!r}")
