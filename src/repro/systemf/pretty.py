"""Pretty printer for System F types and terms.

Output is designed to be readable in test failures and to round-trip through
:mod:`repro.syntax.parser_f` (the System F concrete-syntax parser).
"""

from __future__ import annotations

from repro.systemf import ast as F


def pretty_type(t: F.Type) -> str:
    """Render a System F type as concrete syntax."""
    return _ptype(t)


def _ptype(t: F.Type) -> str:
    if isinstance(t, (F.TVar, F.TBase)):
        return t.name
    if isinstance(t, F.TList):
        return f"list {_ptype_atom(t.elem)}"
    if isinstance(t, F.TFn):
        params = ", ".join(_ptype(p) for p in t.params)
        return f"fn({params}) -> {_ptype(t.result)}"
    if isinstance(t, F.TTuple):
        if not t.items:
            return "unit"
        if len(t.items) == 1:
            return f"({_ptype_atom(t.items[0])} *)"
        return "(" + " * ".join(_ptype_atom(i) for i in t.items) + ")"
    if isinstance(t, F.TForall):
        return f"forall {', '.join(t.vars)}. {_ptype(t.body)}"
    raise AssertionError(f"unknown type node: {t!r}")


def _ptype_atom(t: F.Type) -> str:
    if isinstance(t, (F.TVar, F.TBase, F.TTuple, F.TList)):
        return _ptype(t)
    return f"({_ptype(t)})"


def pretty_term(term: F.Term, indent: int = 0) -> str:
    """Render a System F term as concrete syntax."""
    return _pterm(term, indent)


def _pterm(term: F.Term, ind: int) -> str:
    pad = "  " * ind
    if isinstance(term, F.Var):
        return term.name
    if isinstance(term, F.IntLit):
        return str(term.value)
    if isinstance(term, F.BoolLit):
        return "true" if term.value else "false"
    if isinstance(term, F.Lam):
        params = ", ".join(f"{n} : {_ptype(t)}" for n, t in term.params)
        return f"(\\{params}. {_pterm(term.body, ind)})"
    if isinstance(term, F.App):
        args = ", ".join(_pterm(a, ind) for a in term.args)
        return f"{_pterm_atom(term.fn, ind)}({args})"
    if isinstance(term, F.TyLam):
        return f"(/\\{', '.join(term.vars)}. {_pterm(term.body, ind)})"
    if isinstance(term, F.TyApp):
        args = ", ".join(_ptype(a) for a in term.args)
        return f"{_pterm_atom(term.fn, ind)}[{args}]"
    if isinstance(term, F.Let):
        return (
            f"let {term.name} = {_pterm(term.bound, ind + 1)} in\n"
            f"{pad}{_pterm(term.body, ind)}"
        )
    if isinstance(term, F.Tuple_):
        items = ", ".join(_pterm(i, ind) for i in term.items)
        return f"({items},)" if len(term.items) == 1 else f"({items})"
    if isinstance(term, F.Nth):
        return f"(nth {_pterm_atom(term.tuple_, ind)} {term.index})"
    if isinstance(term, F.If):
        return (
            f"if {_pterm(term.cond, ind)} "
            f"then {_pterm(term.then, ind)} "
            f"else {_pterm(term.else_, ind)}"
        )
    if isinstance(term, F.Fix):
        return f"fix {_pterm_atom(term.fn, ind)}"
    raise AssertionError(f"unknown term node: {term!r}")


def _pterm_atom(term: F.Term, ind: int) -> str:
    if isinstance(term, (F.Var, F.IntLit, F.BoolLit, F.Tuple_, F.Nth)):
        return _pterm(term, ind)
    if isinstance(term, (F.App, F.TyApp)):
        return _pterm(term, ind)
    return f"({_pterm(term, ind)})"
