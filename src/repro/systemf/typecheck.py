"""Typechecker for System F.

Standard rules (the paper omits them as such), including the LET rule the
paper spells out, plus rules for the literal/If/Fix extensions.  This checker
doubles as the verifier for Theorems 1 and 2: every translated F_G program is
re-checked here, independently of the F_G checker.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.diagnostics.errors import TypeError_
from repro.systemf import ast as F
from repro.systemf.builtins import BUILTIN_TYPES


class TypeEnv:
    """An immutable System F typing environment.

    Tracks term-variable types and the set of type variables in scope.
    Extension returns a new environment; sharing makes this cheap.
    """

    __slots__ = ("_vars", "_tyvars")

    def __init__(
        self,
        vars_: Optional[Dict[str, F.Type]] = None,
        tyvars: FrozenSet[str] = frozenset(),
    ):
        self._vars = dict(BUILTIN_TYPES) if vars_ is None else vars_
        self._tyvars = tyvars

    @classmethod
    def initial(cls) -> "TypeEnv":
        """The initial environment: builtins in scope, no type variables."""
        return cls()

    def lookup(self, name: str) -> Optional[F.Type]:
        return self._vars.get(name)

    def bind(self, name: str, type_: F.Type) -> "TypeEnv":
        new_vars = dict(self._vars)
        new_vars[name] = type_
        return TypeEnv(new_vars, self._tyvars)

    def bind_tyvars(self, names) -> "TypeEnv":
        return TypeEnv(self._vars, self._tyvars | frozenset(names))

    def has_tyvar(self, name: str) -> bool:
        return name in self._tyvars

    @property
    def tyvars(self) -> FrozenSet[str]:
        return self._tyvars


def check_type_wf(t: F.Type, env: TypeEnv, span=None) -> None:
    """Raise :class:`TypeError_` unless every free type variable is in scope."""
    unbound = F.free_type_vars(t) - env.tyvars
    if unbound:
        names = ", ".join(sorted(unbound))
        raise TypeError_(f"unbound type variable(s): {names}", span)


def type_of(term: F.Term, env: Optional[TypeEnv] = None) -> F.Type:
    """The type of ``term`` in ``env`` (defaults to the builtin environment)."""
    if env is None:
        env = TypeEnv.initial()
    return _check(term, env)


def _check(term: F.Term, env: TypeEnv) -> F.Type:
    if isinstance(term, F.Var):
        t = env.lookup(term.name)
        if t is None:
            raise TypeError_(f"unbound variable '{term.name}'", term.span)
        return t

    if isinstance(term, F.IntLit):
        return F.INT

    if isinstance(term, F.BoolLit):
        return F.BOOL

    if isinstance(term, F.Lam):
        inner = env
        for name, ptype in term.params:
            check_type_wf(ptype, env, term.span)
            inner = inner.bind(name, ptype)
        result = _check(term.body, inner)
        return F.TFn(tuple(pt for _, pt in term.params), result)

    if isinstance(term, F.App):
        fn_type = _check(term.fn, env)
        if not isinstance(fn_type, F.TFn):
            raise TypeError_(
                f"cannot apply non-function of type {fn_type}", term.span
            )
        if len(fn_type.params) != len(term.args):
            raise TypeError_(
                f"arity mismatch: function expects {len(fn_type.params)} "
                f"argument(s), got {len(term.args)}",
                term.span,
            )
        for i, (arg, expected) in enumerate(zip(term.args, fn_type.params)):
            actual = _check(arg, env)
            if not F.types_equal(actual, expected):
                raise TypeError_(
                    f"argument {i + 1} has type {actual}, expected {expected}",
                    arg.span or term.span,
                )
        return fn_type.result

    if isinstance(term, F.TyLam):
        if len(set(term.vars)) != len(term.vars):
            raise TypeError_("duplicate type parameter", term.span)
        body_type = _check(term.body, env.bind_tyvars(term.vars))
        return F.TForall(term.vars, body_type)

    if isinstance(term, F.TyApp):
        fn_type = _check(term.fn, env)
        if not isinstance(fn_type, F.TForall):
            raise TypeError_(
                f"cannot type-apply non-polymorphic term of type {fn_type}",
                term.span,
            )
        if len(fn_type.vars) != len(term.args):
            raise TypeError_(
                f"type-arity mismatch: expected {len(fn_type.vars)} type "
                f"argument(s), got {len(term.args)}",
                term.span,
            )
        for arg in term.args:
            check_type_wf(arg, env, term.span)
        subst = dict(zip(fn_type.vars, term.args))
        return F.substitute(fn_type.body, subst)

    if isinstance(term, F.Let):
        bound_type = _check(term.bound, env)
        return _check(term.body, env.bind(term.name, bound_type))

    if isinstance(term, F.Tuple_):
        return F.TTuple(tuple(_check(item, env) for item in term.items))

    if isinstance(term, F.Nth):
        tuple_type = _check(term.tuple_, env)
        if not isinstance(tuple_type, F.TTuple):
            raise TypeError_(
                f"nth applied to non-tuple of type {tuple_type}", term.span
            )
        if not 0 <= term.index < len(tuple_type.items):
            raise TypeError_(
                f"tuple index {term.index} out of range for {tuple_type}",
                term.span,
            )
        return tuple_type.items[term.index]

    if isinstance(term, F.If):
        cond_type = _check(term.cond, env)
        if not F.types_equal(cond_type, F.BOOL):
            raise TypeError_(
                f"if condition has type {cond_type}, expected bool", term.span
            )
        then_type = _check(term.then, env)
        else_type = _check(term.else_, env)
        if not F.types_equal(then_type, else_type):
            raise TypeError_(
                f"if branches disagree: {then_type} vs {else_type}", term.span
            )
        return then_type

    if isinstance(term, F.Fix):
        fn_type = _check(term.fn, env)
        if (
            not isinstance(fn_type, F.TFn)
            or len(fn_type.params) != 1
            or not F.types_equal(fn_type.params[0], fn_type.result)
        ):
            raise TypeError_(
                f"fix expects fn(A) -> A, got {fn_type}", term.span
            )
        if not isinstance(fn_type.result, F.TFn):
            raise TypeError_(
                "fix is restricted to function-typed fixpoints "
                f"(got {fn_type.result})",
                term.span,
            )
        return fn_type.result

    raise AssertionError(f"unknown term node: {term!r}")
