"""Helpers for testing F_G programs (used by the test suite; public API).

These wrap the parse/typecheck/translate/evaluate pipeline with the calls a
test (or a downstream user's test) makes constantly, plus the deterministic
mutation fuzzer behind the crash-resilience suite
(``tests/properties/test_crash_resilience.py``): :func:`mutate_source`
corrupts a known-good program at the token level and :func:`run_fuzz`
asserts the fault-tolerant pipeline never lets anything but a
:class:`~repro.diagnostics.Diagnostic` escape.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.diagnostics.errors import Diagnostic, TypeError_
from repro.diagnostics.limits import Limits
from repro.fg import ast as G
from repro.fg import evaluate as _fg_evaluate
from repro.fg import typecheck as _fg_typecheck
from repro.fg import verify_translation as _verify
from repro.syntax import parse_fg
from repro.systemf import ast as F


def run_src(source: str):
    """Parse, typecheck, translate, and evaluate F_G source."""
    return _fg_evaluate(parse_fg(source))


def check_src(source: str) -> Tuple[G.FGType, F.Term]:
    """Parse and typecheck F_G source; returns (fg_type, sf_term)."""
    return _fg_typecheck(parse_fg(source))


def verify_src(source: str):
    """Theorem 1/2 check on F_G source; returns (fg_type, sf_type)."""
    return _verify(parse_fg(source))


def reject_src(source: str) -> TypeError_:
    """Assert the F_G source is ill-typed; returns the error for inspection."""
    try:
        check_src(source)
    except TypeError_ as err:
        return err
    raise AssertionError(f"expected a type error, but program checked:\n{source}")


# ---------------------------------------------------------------------------
# Crash-resilience fuzzing
# ---------------------------------------------------------------------------

#: Known-good seed programs the mutation fuzzer corrupts.  Each exercises a
#: different slice of the language: concepts/models, where clauses,
#: associated types, same-type constraints, scoped models, fix/recursion.
FUZZ_SEEDS: Tuple[str, ...] = (
    r"""
concept Semigroup<t> { binary_op : fn(t, t) -> t; } in
concept Monoid<t> { refines Semigroup<t>; identity_elt : t; } in
let accumulate = /\t where Monoid<t>.
  fix (\accum : fn(list t) -> t.
    \ls : list t.
      if null[t](ls) then Monoid<t>.identity_elt
      else Monoid<t>.binary_op(car[t](ls), accum(cdr[t](ls)))) in
model Semigroup<int> { binary_op = iadd; } in
model Monoid<int> { identity_elt = 0; } in
accumulate[int](cons[int](1, cons[int](2, nil[int])))
""",
    r"""
concept Container<c> {
  types elem;
  empty : fn(c) -> bool;
  front : fn(c) -> elem;
} in
model Container<list int> {
  types elem = int;
  empty = null[int];
  front = car[int];
} in
let peek = /\c where Container<c>.
  \xs : c. Container<c>.front(xs) in
peek[list int](cons[int](7, nil[int]))
""",
    r"""
concept Eq<t> { eq : fn(t, t) -> bool; } in
model Eq<int> { eq = ieq; } in
let both = /\t, u where Eq<t>, Eq<u>, t == u.
  \x : t. \y : u. Eq<t>.eq(x, y) in
both[int, int](3)(3)
""",
    r"""
type pair = (int * bool) in
let first = \p : pair. (nth p 0) in
let swap = \p : pair. ((nth p 1), (nth p 0)) in
first((41, true))
""",
    r"""
let compose = /\a, b, c. \f : fn(b) -> c. \g : fn(a) -> b.
  \x : a. f(g(x)) in
let inc = \x : int. iadd(x, 1) in
compose[int, int, int](inc)(inc)(40)
""",
)


#: Replacement pool for token-swap mutations: keywords and symbols that
#: steer the parser into every construct's error paths.
_SWAP_POOL: Tuple[str, ...] = (
    "let", "in", "concept", "model", "where", "refines", "types", "fix",
    "if", "then", "else", "fn", "forall", "list", "nth", "use", "type",
    "(", ")", "{", "}", "[", "]", "<", ">", ";", ",", ".", "=", "==",
    "->", "/\\", "\\", ":", "*", "x", "t", "0", "999999999", "true",
)


def mutate_source(source: str, rng: random.Random) -> str:
    """One deterministic token-level mutation of ``source``.

    Operators (chosen by ``rng``): token deletion, token duplication,
    swapping a token for another token of the program, replacing a token
    with a random keyword/symbol, and span-preserving corruption (the token
    is overwritten in place, keeping every later position stable, which
    exercises diagnostics' position math on mangled input).
    """
    from repro.diagnostics.source import SourceText
    from repro.syntax.lexer import tokenize

    try:
        tokens = [t for t in tokenize(SourceText(source)) if t.kind != "EOF"]
    except Diagnostic:
        tokens = []
    if not tokens:
        return source + rng.choice(("(", ")", "\x00", "let", "@"))
    tok = tokens[rng.randrange(len(tokens))]
    start, end = tok.span.start.offset, tok.span.end.offset
    op = rng.randrange(5)
    if op == 0:  # delete
        return source[:start] + source[end:]
    if op == 1:  # duplicate
        return source[:end] + " " + source[start:end] + source[end:]
    if op == 2:  # swap with another token from the same program
        other = tokens[rng.randrange(len(tokens))]
        return source[:start] + other.text + source[end:]
    if op == 3:  # replace with a random keyword/symbol
        return source[:start] + rng.choice(_SWAP_POOL) + source[end:]
    # span-preserving corruption: same length, garbage content
    width = max(1, end - start)
    junk = "".join(rng.choice("~#$@!?%^&|") for _ in range(width))
    return source[:start] + junk[: end - start] + source[end:]


def run_fuzz(
    mutants: int = 500,
    seed: int = 0,
    *,
    verify: bool = True,
    limits: Optional[Limits] = None,
    max_errors: int = 20,
    trace: bool = False,
) -> Dict[str, object]:
    """Push ``mutants`` corrupted programs through the checking pipeline.

    Deterministic for a given ``(mutants, seed)``.  Each mutant runs
    lex → parse → typecheck → translate (→ verify); the contract under test
    is that :func:`repro.pipeline.check_source` *never* raises — every
    failure mode must surface as a diagnostic in the outcome's report.  On
    violation, raises :class:`AssertionError` carrying the reproducing
    mutant.  Returns counters (mutants run, still-well-typed, diagnosed)
    plus ``report_digest``, a SHA-256 over every mutant's rendered report.

    With ``trace=True`` each mutant runs under full instrumentation (fresh
    tracer, metrics, and explain log).  Instrumentation must be invisible
    to the language: the digest with ``trace=True`` equals the digest with
    ``trace=False`` (``tests/observability/test_fuzz_invariance.py``).

    Every mutant's trip through the pipeline is also wall-clock timed and
    summarized under ``stats["timing"]`` (total plus per-iteration
    mean/median/stddev/min/max seconds) so fuzz throughput can feed the
    bench-record regression gate
    (:func:`repro.observability.regress.fuzz_benchmark_row`).
    """
    import hashlib
    import statistics
    import time

    from repro.pipeline import check_source

    rng = random.Random(seed)
    iter_seconds: List[float] = []
    if limits is None:
        # Tight budgets keep pathological mutants fast while still proving
        # they surface as ResourceLimitError diagnostics.
        limits = Limits(max_check_depth=500, max_eval_steps=200_000)
    stats: Dict[str, object] = {"mutants": 0, "ok": 0, "diagnosed": 0}
    digest = hashlib.sha256()
    for k in range(mutants):
        base = FUZZ_SEEDS[k % len(FUZZ_SEEDS)]
        mutant = mutate_source(base, rng)
        for _ in range(rng.randrange(3)):  # 0-2 extra stacked mutations
            mutant = mutate_source(mutant, rng)
        instrumentation = None
        if trace:
            from repro.observability import (
                ExplainLog, Instrumentation, MetricsRegistry, Tracer,
            )

            instrumentation = Instrumentation(
                tracer=Tracer(), metrics=MetricsRegistry(),
                explain=ExplainLog(),
            )
        iter_start = time.perf_counter()
        try:
            outcome = check_source(
                mutant,
                "<fuzz>",
                ext=bool(k % 2),
                max_errors=max_errors,
                limits=limits,
                verify=verify,
                instrumentation=instrumentation,
            )
        except Exception as exc:  # noqa: BLE001 — the property under test
            raise AssertionError(
                f"non-Diagnostic exception escaped the pipeline "
                f"(fuzz seed={seed}, iteration={k}, trace={trace}, "
                f"{type(exc).__name__}: {exc})\nmutant:\n{mutant}"
            ) from exc
        iter_seconds.append(time.perf_counter() - iter_start)
        stats["mutants"] += 1
        if outcome.ok:
            stats["ok"] += 1
        else:
            stats["diagnosed"] += 1
        digest.update(outcome.report.render().encode("utf-8"))
        digest.update(b"\x00")
    stats["report_digest"] = digest.hexdigest()
    if iter_seconds:
        stats["timing"] = {
            "total_s": sum(iter_seconds),
            "iter_mean_s": statistics.fmean(iter_seconds),
            "iter_median_s": statistics.median(iter_seconds),
            "iter_stddev_s": (
                statistics.stdev(iter_seconds)
                if len(iter_seconds) > 1 else 0.0
            ),
            "iter_min_s": min(iter_seconds),
            "iter_max_s": max(iter_seconds),
        }
    return stats
