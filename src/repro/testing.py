"""Helpers for testing F_G programs (used by the test suite; public API).

These wrap the parse/typecheck/translate/evaluate pipeline with the calls a
test (or a downstream user's test) makes constantly.
"""

from __future__ import annotations

from typing import Tuple

from repro.diagnostics.errors import TypeError_
from repro.fg import ast as G
from repro.fg import evaluate as _fg_evaluate
from repro.fg import typecheck as _fg_typecheck
from repro.fg import verify_translation as _verify
from repro.syntax import parse_fg
from repro.systemf import ast as F


def run_src(source: str):
    """Parse, typecheck, translate, and evaluate F_G source."""
    return _fg_evaluate(parse_fg(source))


def check_src(source: str) -> Tuple[G.FGType, F.Term]:
    """Parse and typecheck F_G source; returns (fg_type, sf_term)."""
    return _fg_typecheck(parse_fg(source))


def verify_src(source: str):
    """Theorem 1/2 check on F_G source; returns (fg_type, sf_type)."""
    return _verify(parse_fg(source))


def reject_src(source: str) -> TypeError_:
    """Assert the F_G source is ill-typed; returns the error for inspection."""
    try:
        check_src(source)
    except TypeError_ as err:
        return err
    raise AssertionError(f"expected a type error, but program checked:\n{source}")
