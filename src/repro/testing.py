"""Helpers for testing F_G programs (used by the test suite; public API).

These wrap the parse/typecheck/translate/evaluate pipeline with the calls a
test (or a downstream user's test) makes constantly, plus the deterministic
mutation fuzzer behind the crash-resilience suite
(``tests/properties/test_crash_resilience.py``): :func:`mutate_source`
corrupts a known-good program at the token level and :func:`run_fuzz`
asserts the fault-tolerant pipeline never lets anything but a
:class:`~repro.diagnostics.Diagnostic` escape.

:func:`run_chaos` is the batch-level counterpart — **chaos mode**: a
deterministic fault schedule (stage × fault-kind × file-index, derived from
one seed) is injected into a :func:`repro.service.check_batch` run, and the
harness asserts the batch always terminates, never loses a file's result,
and reports every injected fault exactly once.

:func:`run_server_chaos` lifts chaos mode to the ``fg serve`` daemon:
each round stands up a real daemon and attacks it with the
:data:`SERVER_CHAOS_KINDS` — a client that disconnects with requests
queued, a slow-loris connection that stalls mid-frame, and a SIGKILL of
the daemon itself mid-batch followed by a journal resume — asserting the
daemon survives (or recovers) every one and that the canonical report
digests are identical across rounds *and* across the crash boundary.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.diagnostics.errors import Diagnostic, TypeError_
from repro.diagnostics.limits import Limits
from repro.fg import ast as G
from repro.fg import evaluate as _fg_evaluate
from repro.fg import typecheck as _fg_typecheck
from repro.fg import verify_translation as _verify
from repro.syntax import parse_fg
from repro.systemf import ast as F


def run_src(source: str):
    """Parse, typecheck, translate, and evaluate F_G source."""
    return _fg_evaluate(parse_fg(source))


def check_src(source: str) -> Tuple[G.FGType, F.Term]:
    """Parse and typecheck F_G source; returns (fg_type, sf_term)."""
    return _fg_typecheck(parse_fg(source))


def verify_src(source: str):
    """Theorem 1/2 check on F_G source; returns (fg_type, sf_type)."""
    return _verify(parse_fg(source))


def reject_src(source: str) -> TypeError_:
    """Assert the F_G source is ill-typed; returns the error for inspection."""
    try:
        check_src(source)
    except TypeError_ as err:
        return err
    raise AssertionError(f"expected a type error, but program checked:\n{source}")


# ---------------------------------------------------------------------------
# Crash-resilience fuzzing
# ---------------------------------------------------------------------------

#: Known-good seed programs the mutation fuzzer corrupts.  Each exercises a
#: different slice of the language: concepts/models, where clauses,
#: associated types, same-type constraints, scoped models, fix/recursion.
FUZZ_SEEDS: Tuple[str, ...] = (
    r"""
concept Semigroup<t> { binary_op : fn(t, t) -> t; } in
concept Monoid<t> { refines Semigroup<t>; identity_elt : t; } in
let accumulate = /\t where Monoid<t>.
  fix (\accum : fn(list t) -> t.
    \ls : list t.
      if null[t](ls) then Monoid<t>.identity_elt
      else Monoid<t>.binary_op(car[t](ls), accum(cdr[t](ls)))) in
model Semigroup<int> { binary_op = iadd; } in
model Monoid<int> { identity_elt = 0; } in
accumulate[int](cons[int](1, cons[int](2, nil[int])))
""",
    r"""
concept Container<c> {
  types elem;
  empty : fn(c) -> bool;
  front : fn(c) -> elem;
} in
model Container<list int> {
  types elem = int;
  empty = null[int];
  front = car[int];
} in
let peek = /\c where Container<c>.
  \xs : c. Container<c>.front(xs) in
peek[list int](cons[int](7, nil[int]))
""",
    r"""
concept Eq<t> { eq : fn(t, t) -> bool; } in
model Eq<int> { eq = ieq; } in
let both = /\t, u where Eq<t>, Eq<u>, t == u.
  \x : t. \y : u. Eq<t>.eq(x, y) in
both[int, int](3)(3)
""",
    r"""
type pair = (int * bool) in
let first = \p : pair. (nth p 0) in
let swap = \p : pair. ((nth p 1), (nth p 0)) in
first((41, true))
""",
    r"""
let compose = /\a, b, c. \f : fn(b) -> c. \g : fn(a) -> b.
  \x : a. f(g(x)) in
let inc = \x : int. iadd(x, 1) in
compose[int, int, int](inc)(inc)(40)
""",
)


#: Replacement pool for token-swap mutations: keywords and symbols that
#: steer the parser into every construct's error paths.
_SWAP_POOL: Tuple[str, ...] = (
    "let", "in", "concept", "model", "where", "refines", "types", "fix",
    "if", "then", "else", "fn", "forall", "list", "nth", "use", "type",
    "(", ")", "{", "}", "[", "]", "<", ">", ";", ",", ".", "=", "==",
    "->", "/\\", "\\", ":", "*", "x", "t", "0", "999999999", "true",
)


def mutate_source(source: str, rng: random.Random) -> str:
    """One deterministic token-level mutation of ``source``.

    Operators (chosen by ``rng``): token deletion, token duplication,
    swapping a token for another token of the program, replacing a token
    with a random keyword/symbol, and span-preserving corruption (the token
    is overwritten in place, keeping every later position stable, which
    exercises diagnostics' position math on mangled input).
    """
    from repro.diagnostics.source import SourceText
    from repro.syntax.lexer import tokenize

    try:
        tokens = [t for t in tokenize(SourceText(source)) if t.kind != "EOF"]
    except Diagnostic:
        tokens = []
    if not tokens:
        return source + rng.choice(("(", ")", "\x00", "let", "@"))
    tok = tokens[rng.randrange(len(tokens))]
    start, end = tok.span.start.offset, tok.span.end.offset
    op = rng.randrange(5)
    if op == 0:  # delete
        return source[:start] + source[end:]
    if op == 1:  # duplicate
        return source[:end] + " " + source[start:end] + source[end:]
    if op == 2:  # swap with another token from the same program
        other = tokens[rng.randrange(len(tokens))]
        return source[:start] + other.text + source[end:]
    if op == 3:  # replace with a random keyword/symbol
        return source[:start] + rng.choice(_SWAP_POOL) + source[end:]
    # span-preserving corruption: same length, garbage content
    width = max(1, end - start)
    junk = "".join(rng.choice("~#$@!?%^&|") for _ in range(width))
    return source[:start] + junk[: end - start] + source[end:]


def run_fuzz(
    mutants: int = 500,
    seed: int = 0,
    *,
    verify: bool = True,
    limits: Optional[Limits] = None,
    max_errors: int = 20,
    trace: bool = False,
) -> Dict[str, object]:
    """Push ``mutants`` corrupted programs through the checking pipeline.

    Deterministic for a given ``(mutants, seed)``.  Each mutant runs
    lex → parse → typecheck → translate (→ verify); the contract under test
    is that :func:`repro.pipeline.check_source` *never* raises — every
    failure mode must surface as a diagnostic in the outcome's report.  On
    violation, raises :class:`AssertionError` carrying the reproducing
    mutant.  Returns counters (mutants run, still-well-typed, diagnosed)
    plus ``report_digest``, a SHA-256 over every mutant's rendered report.

    With ``trace=True`` each mutant runs under full instrumentation (fresh
    tracer, metrics, and explain log).  Instrumentation must be invisible
    to the language: the digest with ``trace=True`` equals the digest with
    ``trace=False`` (``tests/observability/test_fuzz_invariance.py``).

    Every mutant's trip through the pipeline is also wall-clock timed and
    summarized under ``stats["timing"]`` (total plus per-iteration
    mean/median/stddev/min/max seconds) so fuzz throughput can feed the
    bench-record regression gate
    (:func:`repro.observability.regress.fuzz_benchmark_row`).
    """
    import hashlib
    import statistics
    import time

    from repro.pipeline import check_source

    rng = random.Random(seed)
    iter_seconds: List[float] = []
    if limits is None:
        # Tight budgets keep pathological mutants fast while still proving
        # they surface as ResourceLimitError diagnostics.
        limits = Limits(max_check_depth=500, max_eval_steps=200_000)
    stats: Dict[str, object] = {"mutants": 0, "ok": 0, "diagnosed": 0}
    digest = hashlib.sha256()
    for k in range(mutants):
        base = FUZZ_SEEDS[k % len(FUZZ_SEEDS)]
        mutant = mutate_source(base, rng)
        for _ in range(rng.randrange(3)):  # 0-2 extra stacked mutations
            mutant = mutate_source(mutant, rng)
        instrumentation = None
        if trace:
            from repro.observability import (
                ExplainLog, Instrumentation, MetricsRegistry, Tracer,
            )

            instrumentation = Instrumentation(
                tracer=Tracer(), metrics=MetricsRegistry(),
                explain=ExplainLog(),
            )
        iter_start = time.perf_counter()
        try:
            outcome = check_source(
                mutant,
                "<fuzz>",
                ext=bool(k % 2),
                max_errors=max_errors,
                limits=limits,
                verify=verify,
                instrumentation=instrumentation,
            )
        except Exception as exc:  # noqa: BLE001 — the property under test
            raise AssertionError(
                f"non-Diagnostic exception escaped the pipeline "
                f"(fuzz seed={seed}, iteration={k}, trace={trace}, "
                f"{type(exc).__name__}: {exc})\nmutant:\n{mutant}"
            ) from exc
        iter_seconds.append(time.perf_counter() - iter_start)
        stats["mutants"] += 1
        if outcome.ok:
            stats["ok"] += 1
        else:
            stats["diagnosed"] += 1
        digest.update(outcome.report.render().encode("utf-8"))
        digest.update(b"\x00")
    stats["report_digest"] = digest.hexdigest()
    if iter_seconds:
        stats["timing"] = {
            "total_s": sum(iter_seconds),
            "iter_mean_s": statistics.fmean(iter_seconds),
            "iter_median_s": statistics.median(iter_seconds),
            "iter_stddev_s": (
                statistics.stdev(iter_seconds)
                if len(iter_seconds) > 1 else 0.0
            ),
            "iter_min_s": min(iter_seconds),
            "iter_max_s": max(iter_seconds),
        }
    return stats


# ---------------------------------------------------------------------------
# Chaos mode: deterministic fault schedules over the batch service
# ---------------------------------------------------------------------------

def chaos_schedule(
    n_files: int,
    seed: int = 0,
    *,
    stages: Tuple[str, ...] = ("parse", "check"),
    kinds: Tuple[str, ...] = ("crash", "hang"),
    hang_s: float = 1.5,
    worker_kills: int = 0,
    memhogs: int = 0,
):
    """A deterministic fault schedule for ``n_files`` inputs.

    Roughly half the files get exactly one fault each — a random stage ×
    kind, firing either on every attempt (a deterministic fault the circuit
    breaker must handle) or only on attempt 0 (a transient fault a retry
    outruns).  With ``worker_kills > 0`` (pool mode), that many distinct
    files additionally get a :class:`~repro.service.WorkerKillSpec`: at the
    dispatch of the file's first attempt, SIGKILL the worker that received
    it.  With ``memhogs > 0``, up to that many of the *unfaulted* files get
    a transient (attempt-0) ``"memhog"`` fault — a runaway allocation the
    memory governor must contain as a ``"memory"`` outcome and a retry on a
    fresh worker must outrun.  Pure function of
    ``(n_files, seed, stages, kinds, worker_kills, memhogs)``.
    """
    from repro.service import FaultSchedule, FaultSpec, WorkerKillSpec

    rng = random.Random(seed)
    n_faulted = max(1, n_files // 2)
    indices = sorted(rng.sample(range(n_files), n_faulted))
    specs = tuple(
        FaultSpec(
            index=index,
            stage=rng.choice(stages),
            kind=rng.choice(kinds),
            attempts=rng.choice((None, frozenset({0}))),
        )
        for index in indices
    )
    if memhogs:
        # Memhogs land on files with no other fault, so the contract for
        # each attempt stays unambiguous (one scheduled fault, one
        # expected status).
        spare = [i for i in range(n_files) if i not in set(indices)]
        specs += tuple(
            FaultSpec(
                index=index,
                stage=rng.choice(stages),
                kind="memhog",
                attempts=frozenset({0}),
            )
            for index in sorted(rng.sample(spare, min(memhogs, len(spare))))
        )
    kills: Tuple = ()
    if worker_kills:
        kills = tuple(
            WorkerKillSpec(index=index)
            for index in sorted(
                rng.sample(range(n_files), min(worker_kills, n_files))
            )
        )
    return FaultSchedule(specs=specs, hang_s=hang_s, kills=kills)


def run_chaos(
    rounds: int = 2,
    seed: int = 0,
    *,
    files: Optional[List[Tuple[str, str]]] = None,
    jobs: int = 2,
    deadline_ms: float = 400.0,
    retries: int = 1,
    quarantine_after: int = 3,
    isolate: str = "none",
    pool_workers: int = 2,
    max_respawns: int = 4,
    worker_kills: int = 0,
    memhogs: int = 0,
    max_worker_mem_mb: Optional[float] = None,
    recycle_after_tasks: Optional[int] = None,
) -> Dict[str, object]:
    """Chaos mode: run a batch under an injected fault schedule, ``rounds``
    times, asserting the containment contract every time.

    Asserts (raising :class:`AssertionError` with the violating detail):

    - **termination with no lost results** — every input yields exactly one
      outcome, whatever was injected into it;
    - **every injected fault is reported exactly once** — each (file,
      attempt) the schedule targeted carries exactly its scheduled fault
      tags in its attempt record, and the attempt's status matches the
      fault kind (``crash``/``kill`` → crash with the injected marker;
      ``hang`` → deadline miss; a scheduled worker kill → a ``worker-lost``
      crash, which preempts any stage fault on the same attempt because
      the supervisor kills at dispatch, before the stage runs);
    - **determinism** — the canonical (timing-stripped) report bytes are
      identical across all ``rounds``.

    ``worker_kills`` requires ``isolate="pool"`` and schedules that many
    worker SIGKILLs (see :func:`chaos_schedule`).  Keep ``max_respawns``
    at or above the total number of scheduled worker deaths when asserting
    determinism: once the budget runs out, *where* the pool degrades to
    in-process execution depends on timing.

    ``memhogs`` schedules that many transient ``"memhog"`` faults (runaway
    allocations contained as ``"memory"`` outcomes and outrun by a retry);
    ``max_worker_mem_mb``/``recycle_after_tasks`` pass the memory governor
    through to the policy.  The governor knobs are stripped from the
    canonical digest, so ``report_digest`` is identical with the governor
    on or off — the invariance tests pin exactly that.

    Returns the final round's counters plus ``report_digest`` (SHA-256 of
    the canonical report) and, in pool mode, the supervisor's ``pool``
    stats block.
    """
    import hashlib

    from repro.service import BatchPolicy, RetryPolicy, check_batch

    if worker_kills and isolate != "pool":
        raise ValueError("worker_kills requires isolate='pool'")
    if files is None:
        files = [(f"<chaos{i}>", src) for i, src in enumerate(FUZZ_SEEDS)]
    schedule = chaos_schedule(
        len(files), seed, hang_s=max(0.2, deadline_ms * 3 / 1000.0),
        worker_kills=worker_kills, memhogs=memhogs,
    )
    policy = BatchPolicy(
        jobs=jobs,
        deadline_ms=deadline_ms,
        retry=RetryPolicy(max_retries=retries),
        quarantine_after=quarantine_after,
        isolate=isolate,
        pool_workers=pool_workers,
        max_respawns=max_respawns,
        max_worker_mem_mb=max_worker_mem_mb,
        recycle_after_tasks=recycle_after_tasks,
    )
    digests = []
    report = None
    for _ in range(rounds):
        report = check_batch(files, policy, fault_schedule=schedule)
        _assert_chaos_contract(report, files, schedule)
        digests.append(
            hashlib.sha256(report.canonical_json().encode()).hexdigest()
        )
    assert len(set(digests)) == 1, (
        f"chaos batch is nondeterministic across {rounds} rounds "
        f"(seed={seed}): digests {digests}"
    )
    rollup = report.rollup()
    return {
        "files": rollup["files"],
        "ok": rollup["ok"],
        "diagnostics": rollup["diagnostics"],
        "timeout": rollup["timeout"],
        "memory": rollup["memory"],
        "crash": rollup["crash"],
        "quarantined": rollup["quarantined"],
        "retries": rollup["retries"],
        "injected_specs": len(schedule.specs),
        "injected_kills": len(schedule.kills),
        "report_digest": digests[0],
        "pool": report.pool,
    }


def _assert_chaos_contract(report, files, schedule) -> None:
    """The chaos-mode invariants for one batch report."""
    assert len(report.files) == len(files), (
        f"batch lost results: {len(files)} inputs, "
        f"{len(report.files)} outcomes"
    )
    assert [o.index for o in report.files] == list(range(len(files))), (
        "batch outcomes out of order or missing indexes"
    )
    for outcome in report.files:
        assert outcome.attempts, f"{outcome.file}: no attempt was recorded"
        for record in outcome.attempts:
            expected = tuple(
                spec.tag for spec in
                schedule.for_attempt(outcome.index, record.attempt)
            )
            assert record.injected == expected, (
                f"{outcome.file} attempt {record.attempt}: injected faults "
                f"reported as {record.injected}, scheduled {expected}"
            )
            # The fault must actually have *fired*: an attempt with an
            # injected crash/kill ends as a crash carrying the chaos
            # marker; an injected hang ends as a deadline miss.  A
            # scheduled worker kill preempts everything — the supervisor
            # SIGKILLs at dispatch, so the attempt is a worker-lost crash
            # no matter what stage faults were also installed.
            killed = any(
                kill.applies(outcome.index, record.attempt)
                for kill in schedule.kills
            )
            if killed:
                assert record.status == "crash", (
                    f"{outcome.file} attempt {record.attempt}: scheduled "
                    f"worker kill not reported (status={record.status})"
                )
                assert record.fault == "worker-lost", (
                    f"{outcome.file} attempt {record.attempt}: scheduled "
                    f"worker kill recorded as {record.fault!r}, expected "
                    "'worker-lost'"
                )
                continue
            kinds = {tag.split(":", 1)[1] for tag in expected}
            if kinds & {"crash", "kill"}:
                assert record.status == "crash", (
                    f"{outcome.file} attempt {record.attempt}: injected "
                    f"crash not reported (status={record.status})"
                )
            elif "memhog" in kinds:
                assert record.status == "memory", (
                    f"{outcome.file} attempt {record.attempt}: injected "
                    f"memhog not contained as a memory fault "
                    f"(status={record.status})"
                )
                assert record.fault == "memory", (
                    f"{outcome.file} attempt {record.attempt}: memhog "
                    f"recorded as {record.fault!r}, expected 'memory'"
                )
            elif "hang" in kinds:
                assert record.status == "timeout", (
                    f"{outcome.file} attempt {record.attempt}: injected "
                    f"hang did not miss the deadline "
                    f"(status={record.status})"
                )
            else:
                assert record.status in ("ok", "diagnostics"), (
                    f"{outcome.file} attempt {record.attempt}: failed "
                    f"({record.status}) with no fault injected"
                )


# ---------------------------------------------------------------------------
# Server chaos: fault kinds aimed at the fg serve daemon itself
# ---------------------------------------------------------------------------

#: Chaos kinds for :func:`run_server_chaos`.  Unlike :data:`CHAOS_KINDS`
#: (which target a *worker attempt*), these target the daemon: kill the
#: daemon process mid-batch and resume from the journal; disconnect a
#: client with requests queued; stall a connection mid-frame forever;
#: run a batch whose scheduled runaway allocation ("memhog") the memory
#: governor must contain as a ``"memory"`` outcome without poisoning the
#: warm pool.
SERVER_CHAOS_KINDS: Tuple[str, ...] = (
    "daemon-kill", "client-disconnect", "slow-loris", "memhog",
)


def _serve_forever(policy, options):  # pragma: no cover — forked child
    """Fork target for the daemon-kill kind: serve until SIGKILLed."""
    from repro.service import Server

    Server(policy, options).serve()


def _read_accepted(sock, timeout: float = 10.0):
    """Read frames off ``sock`` until one ``accepted`` arrives."""
    from repro.service import proto

    sock.settimeout(timeout)
    reader = proto.FrameReader()
    while True:
        chunk = sock.recv(65536)
        if chunk == b"":
            raise AssertionError("daemon closed before accepting request")
        for frame in reader.feed(chunk):
            if frame.get("type") == "accepted":
                return frame
            if frame.get("type") == "error":
                raise AssertionError(f"daemon rejected request: {frame}")


def _await_eof(sock, timeout: float) -> bool:
    """True if the daemon closes ``sock`` within ``timeout`` seconds."""
    sock.settimeout(timeout)
    try:
        while True:
            if sock.recv(65536) == b"":
                return True
    except OSError:
        return False


def run_server_chaos(
    rounds: int = 2,
    seed: int = 0,
    *,
    kinds: Tuple[str, ...] = SERVER_CHAOS_KINDS,
    pool_workers: int = 2,
    deadline_ms: float = 600.0,
) -> Dict[str, object]:
    """Chaos mode for the ``fg serve`` daemon, ``rounds`` times over.

    Each round runs two daemons against the same request mix:

    1. An **in-process** daemon absorbs the ``client-disconnect`` kind (a
       client submits two slow batches, reads both ``accepted`` frames,
       and vanishes — the queued one must be cancelled, the in-flight one
       orphaned without poisoning the pool) and the ``slow-loris`` kind
       (a connection sends half a frame and stalls — the idle reaper must
       close it).  It then serves a clean batch and a chaos-hang batch
       whose report digests are the round's baseline, and drains via a
       ``shutdown`` request.
    2. A **forked** daemon takes the ``daemon-kill`` kind: the same hang
       batch is submitted, SIGKILL lands once health shows it in flight,
       and a ``resume_only`` replay of the journal must re-run it to a
       digest **byte-identical to the uninterrupted baseline** from the
       in-process daemon.

    Asserts daemon survival after every fault, the cancellation/idle-close
    metrics, and digest equality across rounds and across the crash.
    Returns the final round's digests and metric counts.
    """
    import multiprocessing
    import os
    import signal
    import tempfile
    import threading
    import time

    from repro.observability import Instrumentation, MetricsRegistry, Tracer
    from repro.service import (
        BatchPolicy,
        ConnectionLost,
        FaultSchedule,
        FaultSpec,
        ServeOptions,
        Server,
        check_remote,
        health,
        proto,
        request_shutdown,
    )
    from repro.service.client import connect

    unknown = set(kinds) - set(SERVER_CHAOS_KINDS)
    if unknown:
        raise ValueError(f"unknown server chaos kinds: {sorted(unknown)}")
    rng = random.Random(seed)
    files = [(f"<srvchaos{i}>", src) for i, src in enumerate(FUZZ_SEEDS)]
    # Pool-mode hangs only die by the supervisor's hard kill at
    # deadline + grace, so the hang must comfortably outlast both.
    hang_s = deadline_ms * 3 / 1000.0
    hang_schedule = FaultSchedule(
        specs=(FaultSpec(
            index=rng.randrange(len(files)), stage="check", kind="hang",
        ),),
        hang_s=hang_s,
    )
    slow_schedule = FaultSchedule(
        specs=(FaultSpec(index=0, stage="check", kind="hang"),),
        hang_s=hang_s,
    )
    memhog_schedule = FaultSchedule(
        specs=(FaultSpec(
            index=rng.randrange(len(files)), stage="check", kind="memhog",
            attempts=frozenset({0}),
        ),),
        hang_s=hang_s,
    )
    policy = BatchPolicy(
        deadline_ms=deadline_ms, isolate="pool", pool_workers=pool_workers,
    )
    results: List[Dict[str, object]] = []
    for _ in range(rounds):
        outcome: Dict[str, object] = {}
        with tempfile.TemporaryDirectory(
            prefix="fgsc", dir="/tmp"  # AF_UNIX paths must stay short
        ) as tmp:
            # ---- phase 1: in-process daemon -----------------------------
            metrics = MetricsRegistry()
            instrumentation = Instrumentation(
                tracer=Tracer(), metrics=metrics,
            )
            options = ServeOptions(
                socket_path=os.path.join(tmp, "fg.sock"),
                idle_timeout_s=(
                    0.4 if "slow-loris" in kinds else 10.0
                ),
            )
            server = Server(policy, options, instrumentation)
            summary_box: List[Dict[str, object]] = []
            thread = threading.Thread(
                target=lambda: summary_box.append(server.serve()),
                daemon=True,
            )
            thread.start()
            assert server.ready.wait(20.0), "daemon never became ready"
            loris = None
            if "slow-loris" in kinds:
                loris = connect(options.socket_path)
                # Half a health frame, then silence.
                loris.sendall(
                    proto.encode_frame({"type": "health"})[:5]
                )
            if "client-disconnect" in kinds:
                ghost = connect(options.socket_path)
                payload = proto.encode_frame({
                    "type": "batch",
                    "sources": [list(files[0])],
                    "schedule": slow_schedule.to_json(),
                })
                # Two slow requests: the executor is serial, so by the
                # time both are accepted at most one is in flight and the
                # other is provably still queued — its cancellation on
                # disconnect is deterministic.
                ghost.sendall(payload + payload)
                _read_accepted(ghost)
                _read_accepted(ghost)
                ghost.close()
                # The orphaned in-flight request still runs to completion;
                # wait it out so the baseline batches below don't queue
                # behind it into their own queue-wait deadline.
                settle = time.monotonic() + 30.0
                while time.monotonic() < settle:
                    snap = health(options.socket_path)
                    if not snap["queued"] and not snap["in_flight"]:
                        break
                    time.sleep(0.05)
                else:
                    raise AssertionError(
                        "ghost requests never drained after disconnect"
                    )
            clean = check_remote(
                options.socket_path, files, timeout=120.0,
            )
            assert clean.get("type") == "report", (
                f"clean batch did not complete after faults: {clean}"
            )
            hang = check_remote(
                options.socket_path, files,
                schedule_json=hang_schedule.to_json(), timeout=120.0,
            )
            assert hang.get("type") == "report", (
                f"hang batch did not complete: {hang}"
            )
            if "memhog" in kinds:
                mem = check_remote(
                    options.socket_path, files,
                    schedule_json=memhog_schedule.to_json(), timeout=120.0,
                )
                assert mem.get("type") == "report", (
                    f"memhog batch did not complete: {mem}"
                )
                mem_statuses = [
                    entry["status"]
                    for entry in mem["report"]["files"]
                ]
                assert "memory" in mem_statuses, (
                    f"memhog fault was not contained as a memory outcome: "
                    f"{mem_statuses}"
                )
                outcome["memhog_digest"] = mem["digest"]
            snapshot = health(options.socket_path)
            assert snapshot.get("status") == "ok", (
                f"daemon unhealthy after faults: {snapshot}"
            )
            if loris is not None:
                assert _await_eof(loris, 15.0), (
                    "slow-loris connection was never idle-closed"
                )
                loris.close()
            request_shutdown(options.socket_path)
            thread.join(timeout=30.0)
            assert not thread.is_alive(), "daemon failed to drain"
            assert summary_box, "daemon exited without a summary"
            if "client-disconnect" in kinds:
                assert metrics.counter("server.disconnects") >= 1, (
                    "client disconnect was not detected"
                )
                assert metrics.counter("server.cancelled") >= 1, (
                    "queued request of a vanished client was not cancelled"
                )
            if "slow-loris" in kinds:
                assert metrics.counter("server.idle_closed") >= 1, (
                    "slow-loris connection not reaped by the idle timeout"
                )
            outcome["clean_digest"] = clean["digest"]
            outcome["hang_digest"] = hang["digest"]
            outcome["served"] = summary_box[0]["served"]
            outcome["metrics"] = {
                name: metrics.counter(name)
                for name in (
                    "server.requests", "server.disconnects",
                    "server.cancelled", "server.idle_closed",
                )
            }
            # ---- phase 2: daemon-kill + journal resume ------------------
            if "daemon-kill" in kinds:
                kill_sock = os.path.join(tmp, "kill.sock")
                kill_journal = os.path.join(tmp, "kill.journal")
                ctx = multiprocessing.get_context("fork")
                child = ctx.Process(
                    target=_serve_forever,
                    args=(policy, ServeOptions(
                        socket_path=kill_sock, journal_path=kill_journal,
                    )),
                    daemon=True,
                )
                child.start()
                deadline = time.monotonic() + 20.0
                while time.monotonic() < deadline:
                    try:
                        health(kill_sock, timeout=1.0)
                        break
                    except Exception:
                        time.sleep(0.05)
                else:
                    raise AssertionError("forked daemon never came up")
                errors: List[BaseException] = []

                def _doomed_client() -> None:
                    try:
                        check_remote(
                            kill_sock, files,
                            schedule_json=hang_schedule.to_json(),
                            timeout=120.0,
                        )
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)

                doomed = threading.Thread(target=_doomed_client, daemon=True)
                doomed.start()
                deadline = time.monotonic() + 20.0
                while time.monotonic() < deadline:
                    if health(kill_sock, timeout=1.0).get("in_flight"):
                        break
                    time.sleep(0.02)
                else:
                    raise AssertionError("request never went in flight")
                os.kill(child.pid, signal.SIGKILL)
                child.join(timeout=10.0)
                doomed.join(timeout=30.0)
                assert errors and isinstance(errors[0], ConnectionLost), (
                    f"killed daemon should drop the client with "
                    f"ConnectionLost, got {errors!r}"
                )
                resume_summary = Server(policy, ServeOptions(
                    socket_path=kill_sock, journal_path=kill_journal,
                    resume_only=True,
                )).serve()
                resumed = resume_summary["resumed"]
                assert len(resumed) == 1, (
                    f"expected exactly one resumed request: {resume_summary}"
                )
                (resumed_digest,) = resumed.values()
                assert resumed_digest == outcome["hang_digest"], (
                    "resumed report digest diverged from the uninterrupted "
                    f"run: {resumed_digest} != {outcome['hang_digest']}"
                )
                outcome["resumed_digest"] = resumed_digest
        results.append(outcome)
    digest_keys = [k for k in results[0] if k.endswith("_digest")]
    for key in digest_keys:
        values = [r[key] for r in results]
        assert len(set(values)) == 1, (
            f"server chaos is nondeterministic across {rounds} rounds: "
            f"{key} = {values}"
        )
    final = dict(results[-1])
    final["rounds"] = rounds
    final["kinds"] = list(kinds)
    return final
