"""Command-line tooling for the F_G implementation."""
