"""The ``fg`` command-line driver.

Subcommands::

    fg run FILE          typecheck, translate, and evaluate an F_G program
    fg check FILE        typecheck only; print the program's type
    fg translate FILE    print the System F translation
    fg verify FILE       run the executable Theorem 1/2 check
    fg runf FILE         typecheck and evaluate a *System F* program
    fg profile FILE      hot-path profile + per-stage peak memory for a run
    fg bench             run the built-in benchmark suite; write/compare
                         versioned BENCH_<tag>.json records
    fg batch FILES...    check many files under the fault-isolated batch
                         service: worker pool, deadlines, retries,
                         crash containment, quarantine
    fg serve             long-lived Unix-socket daemon fronting a warm
                         worker pool: bounded admission, graceful drain
                         on SIGTERM, crash-safe request journal
                         (--resume replays unfinished requests)
    fg client FILES...   submit a batch to a running daemon (or --health
                         / --shutdown); 'fg client stats' prints the
                         daemon's live latency/queue-wait percentiles and
                         'fg client events' tails its operational log
    fg doctor BUNDLE     triage a repro/crash-bundle v1: what died, its
                         last spans/ops events, metric anomalies, and
                         the traceback (--serve-socket pulls a live one)
    fg debug bundle      force a crash bundle out of a live daemon

``--prelude`` wraps the program with the standard concept library and ``-e``
takes the program from the command line instead of a file.

The driver is fault-tolerant: parse and type errors are collected (up to
``--max-errors``) instead of stopping at the first one, ``--fuel``/``--depth``
bound runaway programs, and ``--json`` emits machine-readable diagnostics.

Observability (see docs/OBSERVABILITY.md): ``--trace[=FILE]`` records a span
tree for the run (printed as text, or written as Chrome ``trace_event`` JSON
for ``.json`` files / compact JSONL for ``.jsonl``), ``--stats`` reports
stage timings and checker/evaluator counters, and ``--explain`` prints the
model-resolution log — every candidate model per scope and why it was
rejected.  ``--profile`` (or the ``fg profile`` subcommand) aggregates the
span stream into a deterministic time-per-callsite table and accounts peak
memory per pipeline stage.  Under ``--json`` the envelope gains
``"stats"``, ``"explain"``, and ``"profile"`` keys (schema in
docs/DIAGNOSTICS.md).  For ``fg batch`` and ``fg serve`` these flags cross
the isolation wall: workers record their own spans, metrics, and explain
entries, ship them back in the result frame, and the coordinator stitches
them into one merged clock-normalized trace (one Chrome pid lane per
worker process).

``fg bench`` writes a versioned run record (benchmark medians, metrics,
profile, memory — ``BENCH_<tag>.json``) and ``fg bench --compare OLD.json
[NEW.json]`` renders a verdict table (ok/regressed/improved/new/missing),
exiting 1 on regression — the CI perf gate.

``fg batch`` (see docs/DIAGNOSTICS.md for the report schema) runs many
checks under ``repro.service``: ``--jobs N`` workers, ``--deadline-ms T``
per-task watchdog, ``--retries K`` with a deterministic backoff schedule,
``--isolate`` for worker processes that contain interpreter-killing
failures (``subprocess`` = fresh interpreter per attempt; ``pool`` = a
supervised pool of persistent prelude-warmed workers with heartbeats,
respawn, and work stealing — ``--pool-workers``/``--max-respawns``), and a
circuit breaker (``--quarantine-after N``).  ``--chaos`` injects a
deterministic fault schedule and ``--kill-worker`` SIGKILLs pool workers
mid-batch (the CI chaos-smoke hooks).

Exit codes: **0** success, **1** the program has diagnostics, **2** usage
error (bad flags, unreadable file), **3** internal error (a bug in this
implementation — never the input program's fault), **4** deadline exceeded
(only with ``--deadline-ms``; for ``fg batch``, deadline exhaustion — at
least one file timed out and none crashed; for ``fg client``, the request
was shed because its deadline expired while queued), **5** partial failure
(``fg batch`` only: crash containment engaged for at least one file while
the rest of the batch completed), **6** overload (``fg client`` only: the
daemon shed the request at admission — queue full or draining — with a
deterministic ``retry_after_ms`` hint), **130** interrupted (``fg batch``:
SIGTERM/SIGINT arrived; workers were killed and reaped before exit).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.diagnostics.errors import Diagnostic
from repro.diagnostics.limits import DEFAULT_LIMITS, Limits
from repro.diagnostics.reporter import DiagnosticReport, diagnostic_to_dict
from repro.fg import pretty_type as fg_pretty_type
from repro.syntax import parse_f
from repro.systemf import evaluate as f_evaluate
from repro.systemf import pretty_term as f_pretty_term
from repro.systemf import pretty_type as f_pretty_type
from repro.systemf import type_of as f_type_of

#: Exit codes of the ``fg`` driver (documented contract).  4 and 5 extend
#: the original 0–3 contract for deadlines and batch partial failure; they
#: are defined next to the batch report so the service and the CLI agree.
EXIT_OK = 0
EXIT_DIAGNOSTICS = 1
EXIT_USAGE = 2
EXIT_INTERNAL = 3
#: ``fg batch``/``fg serve``: a termination signal arrived and the worker
#: pool was shut down cleanly before exit (128 + SIGINT, the shell idiom).
EXIT_INTERRUPTED = 130
from repro.service.report import (  # noqa: E402
    EXIT_DEADLINE, EXIT_OVERLOAD, EXIT_PARTIAL,
)

_INTERNAL_BANNER = (
    "fg: internal error — this is a bug in the F_G implementation, "
    "not in your program"
)


def _read_program(args: argparse.Namespace) -> str:
    if args.expr is not None:
        return args.expr
    if args.file == "-":
        return sys.stdin.read()
    with open(args.file) as handle:
        return handle.read()


def _render(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, list):
        return "[" + ", ".join(_render(v) for v in value) + "]"
    if isinstance(value, tuple):
        return "(" + ", ".join(_render(v) for v in value) + ")"
    return str(value)


def _limits(args: argparse.Namespace) -> Limits:
    return Limits(
        max_check_depth=(
            args.depth if args.depth is not None
            else DEFAULT_LIMITS.max_check_depth
        ),
        max_eval_steps=args.fuel,
        deadline_ms=getattr(args, "deadline_ms", None),
    )


def _wants_profile(args: argparse.Namespace) -> bool:
    return getattr(args, "profile", False) or args.command == "profile"


def _instrumentation(args: argparse.Namespace):
    """Build an Instrumentation from the observability flags (or None).

    ``--profile`` (and the ``profile`` subcommand) needs the full span
    stream plus the memory accountant; ``--trace``/``--stats``/``--explain``
    each switch on exactly their own instrument.
    """
    profiling = _wants_profile(args)
    if (args.trace is None and not args.stats and not args.explain
            and not profiling):
        return None
    from repro.observability import (
        ExplainLog, Instrumentation, MemoryAccountant, MetricsRegistry,
        NULL_TRACER, Tracer,
    )

    return Instrumentation(
        tracer=(Tracer() if args.trace is not None or profiling
                else NULL_TRACER),
        metrics=MetricsRegistry() if args.stats or profiling else None,
        explain=ExplainLog() if args.explain else None,
        memory=MemoryAccountant() if profiling else None,
    )


def _write_trace(inst, args: argparse.Namespace) -> None:
    if inst is None or args.trace is None:
        return
    from repro.observability.exporters import (
        chrome_trace_json, render_tree, to_jsonl,
    )

    dest = args.trace
    if dest == "-":
        print(render_tree(inst.tracer), file=sys.stderr)
        return
    if dest.endswith(".jsonl"):
        payload = to_jsonl(inst.tracer)
    elif dest.endswith(".json"):
        payload = chrome_trace_json(inst.tracer)
    else:
        payload = render_tree(inst.tracer)
    with open(dest, "w") as handle:
        handle.write(payload + "\n")


def _render_stats(stats) -> str:
    lines = []
    timings = stats.get("timings_ms", {})
    if timings:
        lines.append("-- timings (ms):")
        for stage, ms in timings.items():
            lines.append(f"   {stage:<12} {ms}")
    counters = stats.get("counters", {})
    if counters:
        lines.append("-- counters:")
        for name, value in counters.items():
            lines.append(f"   {name:<32} {value}")
    histograms = stats.get("histograms", {})
    if histograms:
        lines.append("-- histograms:")
        for name, h in histograms.items():
            lines.append(
                f"   {name:<32} count={h['count']} min={h['min']} "
                f"max={h['max']} mean={h['mean']:.2f}"
            )
    return "\n".join(lines) if lines else "-- no stats recorded"


def _profile_payload(inst) -> dict:
    """The ``"profile"`` envelope value: hotspot table + per-stage memory."""
    from repro.observability import profile_tracer

    payload = profile_tracer(inst.tracer).to_json()
    if inst.memory is not None:
        payload["memory_peak_kb"] = inst.memory.peaks_kb()
    return payload


def _json_extras(args: argparse.Namespace, stats, explain, inst=None):
    extras = {}
    if args.stats and stats is not None:
        extras["stats"] = stats
    if args.explain and explain is not None:
        extras["explain"] = explain.to_json()
    if inst is not None and _wants_profile(args):
        extras["profile"] = _profile_payload(inst)
    return extras


def _emit_observability(args: argparse.Namespace, stats, explain,
                        inst=None) -> None:
    """Human-readable --stats/--explain/--profile output, on stderr."""
    if args.json:
        return
    if args.explain and explain is not None:
        print("-- model resolution log:", file=sys.stderr)
        print(explain.render(), file=sys.stderr)
    if args.stats and stats is not None:
        print(_render_stats(stats), file=sys.stderr)
    if inst is not None and _wants_profile(args) and args.command != "profile":
        from repro.observability import format_profile, profile_tracer

        print(format_profile(profile_tracer(inst.tracer), inst.memory),
              file=sys.stderr)


def _emit_report(
    report: DiagnosticReport, args: argparse.Namespace, extras=None
) -> None:
    if args.json:
        envelope = {"diagnostics": [diagnostic_to_dict(d) for d in report]}
        envelope.update(extras or {})
        print(json.dumps(envelope, indent=2))
    else:
        rendered = report.render()
        if rendered:
            print(rendered, file=sys.stderr)


def _deadline_tripped(report) -> bool:
    return any(getattr(d, "limit", None) == "deadline" for d in report)


def _run_fg_command(args: argparse.Namespace) -> int:
    from repro.pipeline import check_source

    inst = _instrumentation(args)
    text = _read_program(args)

    def run_check():
        return check_source(
            text,
            args.file or "<cmdline>",
            prelude=args.prelude,
            ext=args.ext,
            max_errors=args.max_errors,
            limits=_limits(args),
            evaluate=(args.command in ("run", "profile")),
            verify=(args.command == "verify"),
            instrumentation=inst,
        )

    if args.deadline_ms is not None:
        # The same watchdog the batch service uses: the check runs on an
        # abandoned-on-expiry worker thread, with the cooperative deadline
        # (folded into the limits above) cancelling metered work in-band.
        from repro.service import run_with_deadline

        kind, value = run_with_deadline(run_check, args.deadline_ms)
        if kind == "timeout":
            print(
                f"fg: deadline exceeded after {args.deadline_ms}ms",
                file=sys.stderr,
            )
            return EXIT_DEADLINE
        if kind == "error":
            raise value
        outcome = value
    else:
        outcome = run_check()
    _write_trace(inst, args)
    extras = _json_extras(args, outcome.stats, outcome.explain, inst)
    if not outcome.ok:
        _emit_report(outcome.report, args, extras)
        _emit_observability(args, outcome.stats, outcome.explain, inst)
        if args.deadline_ms is not None and _deadline_tripped(outcome.report):
            return EXIT_DEADLINE
        return EXIT_DIAGNOSTICS
    if args.command == "profile":
        from repro.observability import format_profile, profile_tracer

        if args.json:
            envelope = {"diagnostics": []}
            envelope.update(extras)
            print(json.dumps(envelope, indent=2))
        else:
            print(format_profile(profile_tracer(inst.tracer), inst.memory))
            if outcome.stats is not None:
                timings = outcome.stats.get("timings_ms", {})
                if timings:
                    print("-- timings (ms):")
                    for stage, ms in timings.items():
                        print(f"   {stage:<12} {ms}")
        return EXIT_OK
    if args.command == "check":
        if args.json:
            envelope = {
                "diagnostics": [],
                "type": fg_pretty_type(outcome.type_),
            }
            envelope.update(extras)
            print(json.dumps(envelope, indent=2))
        else:
            print(fg_pretty_type(outcome.type_))
    elif args.command == "translate":
        print(f_pretty_term(outcome.translation))
    elif args.command == "verify":
        print(f"F_G type:      {fg_pretty_type(outcome.type_)}")
        print("translation preserves typing: OK")
    else:  # run
        if args.json:
            envelope = {"diagnostics": [], "value": _render(outcome.value)}
            envelope.update(extras)
            print(json.dumps(envelope, indent=2))
        else:
            print(_render(outcome.value))
    _emit_observability(args, outcome.stats, outcome.explain, inst)
    return EXIT_OK


def _run_runf(args: argparse.Namespace) -> int:
    import time

    from repro.diagnostics.limits import Budget

    inst = _instrumentation(args)
    text = _read_program(args)
    if inst is None:
        term = parse_f(text, args.file or "<cmdline>")
        f_type_of(term)
        print(_render(f_evaluate(term, limits=_limits(args))))
        return EXIT_OK
    # System F programs have no models, so --explain has nothing to record;
    # stage spans, timings, and eval.steps still apply.
    timings = {}
    tracer = inst.tracer
    budget = Budget(_limits(args))
    total_start = time.perf_counter_ns()
    with tracer.span("pipeline.runf", filename=args.file or "<cmdline>"):
        for stage, work in [
            ("parse", lambda: parse_f(text, args.file or "<cmdline>")),
        ]:
            start = time.perf_counter_ns()
            with tracer.span(f"pipeline.{stage}"):
                term = work()
            timings[stage] = round((time.perf_counter_ns() - start) / 1e6, 3)
        start = time.perf_counter_ns()
        with tracer.span("pipeline.check"):
            f_type_of(term)
        timings["check"] = round((time.perf_counter_ns() - start) / 1e6, 3)
        start = time.perf_counter_ns()
        with tracer.span("pipeline.evaluate"):
            value = f_evaluate(term, budget=budget)
        timings["evaluate"] = round(
            (time.perf_counter_ns() - start) / 1e6, 3
        )
    timings["total"] = round((time.perf_counter_ns() - total_start) / 1e6, 3)
    stats = {"timings_ms": timings}
    if inst.metrics is not None:
        inst.metrics.inc("eval.steps", budget.steps_taken)
        stats.update(inst.metrics.snapshot())
    print(_render(value))
    _write_trace(inst, args)
    _emit_observability(args, stats, inst.explain, inst)
    return EXIT_OK


def _run_bench(args: argparse.Namespace) -> int:
    """``fg bench``: run/record the built-in suite and gate on trajectory."""
    from pathlib import Path

    from repro.observability import regress

    compare = args.compare or []
    if len(compare) > 2:
        print("fg bench: --compare takes at most two records "
              "(OLD.json [NEW.json])", file=sys.stderr)
        return EXIT_USAGE
    try:
        old = regress.load_record(compare[0]) if compare else None
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"fg bench: cannot load {compare[0]}: {err}", file=sys.stderr)
        return EXIT_USAGE

    if len(compare) == 2:
        # Pure file-vs-file comparison: no benchmarks run.
        try:
            new = regress.load_record(compare[1])
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"fg bench: cannot load {compare[1]}: {err}",
                  file=sys.stderr)
            return EXIT_USAGE
        comparison = regress.compare_records(
            old, new, threshold=args.threshold
        )
        if args.json:
            print(json.dumps(comparison.to_json(), indent=2))
        else:
            print(comparison.render())
        return comparison.exit_code

    tag = args.tag or regress.default_tag()
    progress = None if args.json else (
        lambda msg: print(f"-- {msg}", file=sys.stderr)
    )
    rows, instrumented = regress.run_bench_suite(
        rounds=args.rounds, fuzz_mutants=args.fuzz_mutants,
        isolation_rounds=args.isolation_rounds,
        progress=progress,
    )
    record = regress.build_record(tag, rows, **instrumented)
    out_path = Path(args.out) if args.out else \
        regress.record_path(tag, Path.cwd())
    regress.write_record(record, out_path)

    payload = {"record": str(out_path), "tag": tag, "benchmarks": rows}
    comparison = None
    if old is not None:
        comparison = regress.compare_records(
            old, record, threshold=args.threshold
        )
        payload["comparison"] = comparison.to_json()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"-- wrote {out_path}")
        for row in rows:
            median = row.get("median_s")
            rendered = f"{median * 1e3:.3f}ms" if median else "-"
            print(f"   {row['name']:<42} median {rendered}")
        if comparison is not None:
            print(comparison.render())
    return comparison.exit_code if comparison is not None else EXIT_OK


def _collect_batch_files(paths) -> list:
    """Expand the FILES arguments: directories become their ``*.fg`` trees
    (sorted, so batch input order is deterministic)."""
    from pathlib import Path

    files = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found = sorted(p for p in path.rglob("*.fg") if p.is_file())
            if not found:
                raise FileNotFoundError(f"no .fg files under {raw}")
            files.extend(str(p) for p in found)
        else:
            files.append(raw)
    return files


def _run_batch(args: argparse.Namespace) -> int:
    """``fg batch``: the fault-isolated batch checking service."""
    from dataclasses import replace

    from repro.service import (
        BatchPolicy, FaultSchedule, RetryPolicy, WorkerKillSpec, check_batch,
    )

    try:
        paths = _collect_batch_files(args.files)
    except (OSError, FileNotFoundError) as err:
        print(f"fg batch: {err}", file=sys.stderr)
        return EXIT_USAGE
    sources = []
    for path in paths:
        try:
            with open(path) as handle:
                sources.append((path, handle.read()))
        except OSError as err:
            print(
                f"fg batch: cannot read {path}: {err.strerror or err}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        except UnicodeDecodeError as err:
            print(
                f"fg batch: cannot read {path}: not valid UTF-8 ({err})",
                file=sys.stderr,
            )
            return EXIT_USAGE

    if args.kill_worker and args.isolate != "pool":
        print(
            "fg batch: --kill-worker requires --isolate=pool "
            "(there are no workers to kill otherwise)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    schedule = None
    if args.chaos or args.kill_worker:
        hang_s = (
            args.deadline_ms * 3 / 1000.0
            if args.deadline_ms is not None else 0.5
        )
        try:
            schedule = FaultSchedule.parse(
                ",".join(args.chaos or ()), hang_s=hang_s
            )
            if args.kill_worker:
                schedule = replace(schedule, kills=tuple(
                    WorkerKillSpec.parse(spec) for spec in args.kill_worker
                ))
        except ValueError as err:
            print(f"fg batch: {err}", file=sys.stderr)
            return EXIT_USAGE
    try:
        policy = BatchPolicy(
            jobs=args.jobs,
            deadline_ms=args.deadline_ms,
            retry=RetryPolicy(
                max_retries=args.retries,
                backoff_base_ms=args.backoff_ms,
            ),
            quarantine_after=args.quarantine_after,
            isolate=args.isolate if args.isolate else "none",
            pool_workers=args.pool_workers,
            max_respawns=args.max_respawns,
            heartbeat_ms=args.heartbeat_ms,
            max_worker_mem_mb=args.max_worker_mem_mb,
            recycle_rss_mb=args.recycle_rss_mb,
            recycle_after_tasks=args.recycle_after_tasks,
            prelude=args.prelude,
            ext=args.ext,
            max_errors=args.max_errors,
            limits=Limits(
                max_check_depth=(
                    args.depth if args.depth is not None
                    else DEFAULT_LIMITS.max_check_depth
                ),
                max_eval_steps=args.fuel,
            ),
            verify=args.verify,
        )
    except ValueError as err:
        print(f"fg batch: {err}", file=sys.stderr)
        return EXIT_USAGE

    if args.crash_dir:
        # Forensics dumps (worker loss, deadline kills, contained
        # crashes) land here; workers inherit it via $FG_CRASH_DIR.
        from repro.observability import flightrec

        flightrec.configure(args.crash_dir)
    inst = _instrumentation(args)
    report = check_batch(
        sources, policy, instrumentation=inst, fault_schedule=schedule,
    )
    _write_trace(inst, args)
    stats = None
    if inst is not None and inst.metrics is not None:
        stats = inst.metrics.snapshot()
    explain = inst.explain if inst is not None else None
    if args.json:
        envelope = report.to_json()
        if args.stats and stats is not None:
            envelope["stats"] = stats
        if args.explain and explain is not None:
            envelope["explain"] = explain.to_json()
        print(json.dumps(envelope, indent=2))
    else:
        print(report.render())
        if args.explain and explain is not None:
            print("-- model resolution log:", file=sys.stderr)
            print(explain.render(), file=sys.stderr)
        if args.stats and stats is not None:
            print(_render_stats(stats), file=sys.stderr)
    return report.exit_code


def _run_serve(args: argparse.Namespace) -> int:
    """``fg serve``: the resilient socket daemon over a warm worker pool."""
    from repro.service import (
        BatchPolicy, RetryPolicy, ServeError, ServeOptions, Server,
    )

    try:
        policy = BatchPolicy(
            deadline_ms=args.deadline_ms,
            retry=RetryPolicy(
                max_retries=args.retries,
                backoff_base_ms=args.backoff_ms,
            ),
            quarantine_after=args.quarantine_after,
            isolate="pool",
            pool_workers=args.pool_workers,
            max_respawns=args.max_respawns,
            heartbeat_ms=args.heartbeat_ms,
            max_worker_mem_mb=args.max_worker_mem_mb,
            recycle_rss_mb=args.recycle_rss_mb,
            recycle_after_tasks=args.recycle_after_tasks,
            prelude=args.prelude,
            ext=args.ext,
            max_errors=args.max_errors,
            verify=args.verify,
        )
        options = ServeOptions(
            socket_path=args.socket,
            journal_path=args.journal,
            max_queue=args.max_queue,
            retry_after_base_ms=args.retry_after_ms,
            idle_timeout_s=args.idle_timeout_ms / 1000.0,
            resume=args.resume,
            resume_only=args.resume_only,
            metrics_file=args.metrics_file,
            metrics_interval_s=args.metrics_interval_ms / 1000.0,
            ops_log_path=args.ops_log,
            crash_dir=args.crash_dir,
            max_rss_mb=args.max_rss_mb,
            ops_log_max_bytes=args.ops_log_max_bytes,
        )
    except ValueError as err:
        print(f"fg serve: {err}", file=sys.stderr)
        return EXIT_USAGE
    inst = _instrumentation(args)
    if not args.resume_only:
        print(f"fg serve: serving on {args.socket}", file=sys.stderr)
    try:
        summary = Server(policy, options, instrumentation=inst).serve()
    except ServeError as err:
        print(f"fg serve: {err}", file=sys.stderr)
        return EXIT_USAGE
    _write_trace(inst, args)
    if args.json or args.resume_only:
        print(json.dumps(summary, indent=2))
    else:
        print(
            f"fg serve: drained after serving {summary['served']} "
            "request(s)",
            file=sys.stderr,
        )
    if args.stats and inst is not None and inst.metrics is not None:
        print(_render_stats(inst.metrics.snapshot()), file=sys.stderr)
    return EXIT_OK


def _client_keyword(args: argparse.Namespace):
    """``fg client stats|events`` keyword dispatch.

    A real file that happens to be named ``stats`` still gets checked:
    the keyword only wins when no such path exists.
    """
    import os

    if (len(args.files) == 1 and args.files[0] in ("stats", "events")
            and not os.path.exists(args.files[0])):
        return args.files[0]
    return None


def _render_server_stats(payload: dict) -> str:
    """Human view of a daemon ``stats`` snapshot."""
    lines = [
        "fg serve: {status}  served={served} queued={queued} "
        "in_flight={in_flight} uptime_ms={uptime}".format(
            status=payload.get("status", "?"),
            served=payload.get("served", 0),
            queued=payload.get("queued", 0),
            in_flight=payload.get("in_flight", 0),
            uptime=payload.get("uptime_ms", 0),
        )
    ]
    def ms(value) -> str:
        return f"{float(value or 0.0):.2f}"

    for key in ("latency_ms", "queue_wait_ms"):
        snap = payload.get(key) or {}
        lines.append(
            f"   {key:<16} p50={ms(snap.get('p50'))} "
            f"p95={ms(snap.get('p95'))} p99={ms(snap.get('p99'))} "
            f"max={ms(snap.get('max'))} (n={snap.get('count', 0)})"
        )
    lines.append(
        "   utilization      {:.1%}  shed={}  respawns={}".format(
            float(payload.get("worker_utilization", 0.0) or 0.0),
            payload.get("shed_total", 0),
            payload.get("respawns", 0),
        )
    )
    for worker in payload.get("workers_detail") or ():
        state = (
            "retired" if worker.get("retired")
            else "alive" if worker.get("alive") else "down"
        )
        lines.append(
            f"   worker[{worker.get('slot')}]  {state:<8} "
            f"pid={worker.get('pid')} tasks={worker.get('tasks_done', 0)}"
        )
    return "\n".join(lines)


def _run_client_stats(args: argparse.Namespace) -> int:
    """``fg client stats [--json|--watch]``."""
    import time as time_mod

    from repro.service import stats as remote_stats

    try:
        while True:
            payload = remote_stats(args.socket, timeout=args.timeout)
            if args.json:
                print(json.dumps(payload, indent=2))
            else:
                print(_render_server_stats(payload))
            if not args.watch:
                return EXIT_OK
            sys.stdout.flush()
            time_mod.sleep(args.interval_ms / 1000.0)
    except KeyboardInterrupt:
        return EXIT_OK


def _run_client_events(args: argparse.Namespace) -> int:
    """``fg client events [--tail N]``."""
    from repro.service import events as remote_events

    payload = remote_events(args.socket, tail=args.tail,
                            timeout=args.timeout)
    if args.json:
        print(json.dumps(payload, indent=2))
        return EXIT_OK
    for event in payload.get("events", ()):
        extra = " ".join(
            f"{key}={value}" for key, value in sorted(event.items())
            if key not in ("seq", "ts_ms", "event")
        )
        line = f"[{event.get('seq'):>4}] {event.get('event')}"
        print(line + (f"  {extra}" if extra else ""))
    return EXIT_OK


def _run_client(args: argparse.Namespace) -> int:
    """``fg client``: submit to a daemon, or probe/drain it."""
    from repro.service import (
        ClientError, FaultSchedule, ServerUnavailable, check_remote,
        health, request_shutdown,
    )

    keyword = _client_keyword(args)
    try:
        if keyword == "stats":
            return _run_client_stats(args)
        if keyword == "events":
            return _run_client_events(args)
        if args.health:
            print(json.dumps(health(args.socket, timeout=args.timeout),
                             indent=2))
            return EXIT_OK
        if args.shutdown:
            request_shutdown(args.socket, timeout=args.timeout)
            print("fg client: daemon draining", file=sys.stderr)
            return EXIT_OK

        if not args.files:
            print("fg client: FILES are required (or --health/--shutdown/"
                  "stats/events)",
                  file=sys.stderr)
            return EXIT_USAGE
        try:
            paths = _collect_batch_files(args.files)
            sources = []
            for path in paths:
                with open(path) as handle:
                    sources.append((path, handle.read()))
        except (OSError, UnicodeDecodeError) as err:
            print(f"fg client: cannot read input: {err}", file=sys.stderr)
            return EXIT_USAGE
        overrides = {}
        if args.deadline_ms is not None:
            overrides["deadline_ms"] = args.deadline_ms
        if args.prelude:
            overrides["prelude"] = True
        if args.ext:
            overrides["ext"] = True
        if args.verify:
            overrides["verify"] = True
        if args.retries is not None:
            overrides["retry"] = {"max_retries": args.retries}
        schedule_json = None
        if args.chaos:
            # Same hang scaling as fg batch: an injected hang must outlast
            # the deadline (plus the supervisor's kill grace) to matter.
            hang_s = (
                args.deadline_ms * 3 / 1000.0
                if args.deadline_ms is not None else 0.5
            )
            try:
                schedule_json = FaultSchedule.parse(
                    ",".join(args.chaos), hang_s=hang_s
                ).to_json()
            except ValueError as err:
                print(f"fg client: {err}", file=sys.stderr)
                return EXIT_USAGE
        response = check_remote(
            args.socket, sources,
            policy_overrides=overrides or None,
            schedule_json=schedule_json,
            timeout=args.timeout,
        )
    except ServerUnavailable as err:
        print(f"fg client: {err}", file=sys.stderr)
        return EXIT_USAGE
    except ClientError as err:
        print(f"fg client: {err}", file=sys.stderr)
        return EXIT_INTERNAL

    kind = response.get("type")
    if kind == "report":
        if args.json:
            envelope = dict(response["report"])
            envelope["digest"] = response.get("digest")
            print(json.dumps(envelope, indent=2))
        else:
            print(_render_remote_report(response["report"]))
        return int(response.get("exit_code", EXIT_INTERNAL))
    if kind in ("overload", "draining"):
        print(
            f"fg client: daemon {kind}; retry after "
            f"{response.get('retry_after_ms', 0)}ms",
            file=sys.stderr,
        )
        return EXIT_OVERLOAD
    if kind == "shed":
        print(
            f"fg client: request shed ({response.get('reason', 'unknown')})",
            file=sys.stderr,
        )
        return EXIT_DEADLINE
    if kind == "error":
        print(f"fg client: {response.get('message', 'error')}",
              file=sys.stderr)
        return (
            EXIT_INTERNAL if response.get("internal") else EXIT_USAGE
        )
    print(f"fg client: unexpected response {kind!r}", file=sys.stderr)
    return EXIT_INTERNAL


#: ``fg doctor``'s one-line reading of each fault kind in the taxonomy.
_DOCTOR_CLASSIFICATION = {
    "crash-report": "a checked file crashed its worker (contained: the "
                    "rest of the batch completed)",
    "worker-lost": "a pool worker process vanished mid-attempt "
                   "(killed externally or died hard)",
    "memory": "a worker tripped its per-worker memory budget (contained "
              "as a retryable 'memory' fault; the seat was recycled)",
    "deadline-kill": "the supervisor hard-killed a worker that ran past "
                     "its deadline",
    "respawn-exhausted": "the pool's respawn budget was spent and a "
                         "worker seat was retired",
    "daemon-exception": "an unhandled exception escaped a daemon request "
                        "(a bug in the server, not the input)",
    "drain-failure": "the daemon's graceful drain did not finish before "
                     "the shutdown timeout",
    "hard-death": "the process died without reaching a clean exit "
                  "(SIGKILL, native fault, or uncaught exception)",
    "manual": "bundle forced via fg debug bundle — not a fault",
}


def _doctor_metric_rows(samples: list) -> list:
    """Fold the bundle's metric ring into per-name summary rows, flagging
    names whose peak sits far above their own rolling median."""
    by_name: dict = {}
    for sample in samples:
        value = sample.get("value")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            by_name.setdefault(sample.get("name"), []).append(float(value))
    rows = []
    for name, values in sorted(by_name.items()):
        ordered = sorted(values)
        median = ordered[len(ordered) // 2]
        peak = ordered[-1]
        rows.append({
            "name": name,
            "count": len(ordered),
            "median": median,
            "max": peak,
            # With fewer than 4 samples "anomalous" is noise, not signal.
            "anomalous": (len(ordered) >= 4 and median > 0
                          and peak > 3.0 * median),
        })
    return rows


def _doctor_triage(bundle: dict, tail: int) -> dict:
    """The machine-readable triage: what died, its last activity, and
    which metrics look out of family."""
    from repro.observability import flightrec

    fault = bundle.get("fault") or {}
    kind = fault.get("kind", "unknown")
    rings = bundle.get("rings") or {}
    spans = []
    for span in (rings.get("spans") or [])[-tail:]:
        start = span.get("start_ns") or 0
        end = span.get("end_ns") or 0
        spans.append({
            "name": span.get("name"),
            "duration_ms": round((end - start) / 1e6, 3),
            "attrs": span.get("attrs"),
        })
    ops = bundle.get("ops_tail") or rings.get("ops") or []
    metrics = _doctor_metric_rows(rings.get("metrics") or [])
    return {
        "fault_kind": kind,
        "classification": _DOCTOR_CLASSIFICATION.get(
            kind, "unknown fault kind (not in the taxonomy)"
        ),
        "detail": fault.get("detail") or {},
        "pid": bundle.get("pid"),
        "created_ts_ms": bundle.get("created_ts_ms"),
        "argv": bundle.get("argv") or [],
        "last_spans": spans,
        "ops_tail": ops[-tail:],
        "metrics": metrics,
        "metric_anomalies": [r for r in metrics if r["anomalous"]],
        "traceback": bundle.get("traceback") or [],
        "schema_problems": flightrec.validate_bundle(bundle),
    }


def _render_triage(triage: dict, path) -> str:
    import time as time_mod

    lines = [
        f"fg doctor: {triage['fault_kind']} — {triage['classification']}"
    ]
    created = triage.get("created_ts_ms")
    when = (
        time_mod.strftime(
            "%Y-%m-%d %H:%M:%S", time_mod.localtime(created / 1000.0)
        )
        if isinstance(created, (int, float)) and created else "?"
    )
    lines.append(
        f"   bundle: {path or '<live daemon>'}  "
        f"pid={triage.get('pid')}  created={when}"
    )
    detail = triage.get("detail") or {}
    if detail:
        rendered = " ".join(
            f"{key}={value}" for key, value in sorted(detail.items())
        )
        lines.append(f"   detail: {rendered}")
    spans = triage.get("last_spans") or []
    lines.append(f"-- last {len(spans)} span(s):")
    for span in spans:
        attrs = span.get("attrs") or {}
        extra = " ".join(
            f"{k}={v}" for k, v in sorted(attrs.items()) if v is not None
        )
        lines.append(
            f"   {span.get('name'):<28} {span.get('duration_ms'):>10.3f}ms"
            + (f"  {extra}" if extra else "")
        )
    if not spans:
        lines.append("   (ring empty — recorder off or nothing ran)")
    ops = triage.get("ops_tail") or []
    if ops:
        lines.append(f"-- last {len(ops)} ops event(s):")
        for event in ops:
            extra = " ".join(
                f"{key}={value}" for key, value in sorted(event.items())
                if key not in ("seq", "ts_ms", "event")
            )
            lines.append(
                f"   [{event.get('seq', '?'):>4}] {event.get('event')}"
                + (f"  {extra}" if extra else "")
            )
    anomalies = triage.get("metric_anomalies") or []
    if anomalies:
        lines.append("-- metric anomalies (max > 3x median):")
        for row in anomalies:
            lines.append(
                f"   {row['name']:<32} median={row['median']:.3f} "
                f"max={row['max']:.3f} (n={row['count']})"
            )
    else:
        lines.append("-- metric anomalies: none")
    trace = triage.get("traceback") or []
    if trace:
        lines.append("-- traceback:")
        for chunk in trace[-10:]:
            for text in str(chunk).rstrip("\n").splitlines():
                lines.append(f"   {text}")
    problems = triage.get("schema_problems") or []
    if problems:
        lines.append("-- schema problems:")
        for problem in problems:
            lines.append(f"   {problem}")
    return "\n".join(lines)


def _run_doctor(args: argparse.Namespace) -> int:
    """``fg doctor``: render human triage from a crash bundle (a file, the
    newest bundle in a directory, or one pulled from a live daemon)."""
    import os

    from repro.observability import flightrec

    path = None
    if args.serve_socket:
        from repro.service import ClientError, debug_bundle

        try:
            response = debug_bundle(args.serve_socket, timeout=args.timeout)
        except ClientError as err:
            print(f"fg doctor: {err}", file=sys.stderr)
            return EXIT_USAGE
        bundle = response.get("bundle")
        path = response.get("path")
        if not isinstance(bundle, dict):
            print("fg doctor: daemon returned no bundle", file=sys.stderr)
            return EXIT_INTERNAL
    else:
        target = args.bundle
        if target is None:
            print("fg doctor: a BUNDLE file/directory or --serve-socket "
                  "is required", file=sys.stderr)
            return EXIT_USAGE
        if os.path.isdir(target):
            path = flightrec.latest_bundle(target)
            if path is None:
                print(f"fg doctor: no *.bundle.json under {target}",
                      file=sys.stderr)
                return EXIT_USAGE
        else:
            path = target
        try:
            bundle = flightrec.read_bundle(path)
        except (OSError, ValueError) as err:
            print(f"fg doctor: cannot read {path}: {err}", file=sys.stderr)
            return EXIT_USAGE
    triage = _doctor_triage(bundle, args.tail)
    if args.json:
        print(json.dumps({"path": path, "triage": triage,
                          "bundle": bundle}, indent=2))
    else:
        print(_render_triage(triage, path))
    return EXIT_OK


def _run_debug(args: argparse.Namespace) -> int:
    """``fg debug bundle``: force a crash bundle out of a live daemon."""
    from repro.service import ClientError, ServerUnavailable, debug_bundle

    try:
        response = debug_bundle(args.socket, timeout=args.timeout)
    except ServerUnavailable as err:
        print(f"fg debug: {err}", file=sys.stderr)
        return EXIT_USAGE
    except ClientError as err:
        print(f"fg debug: {err}", file=sys.stderr)
        return EXIT_INTERNAL
    bundle = response.get("bundle")
    path = response.get("path")
    if args.out:
        try:
            with open(args.out, "w") as handle:
                json.dump(bundle, handle, indent=2)
                handle.write("\n")
        except OSError as err:
            print(f"fg debug: cannot write {args.out}: {err}",
                  file=sys.stderr)
            return EXIT_USAGE
        path = args.out
    if args.json:
        print(json.dumps({"path": path, "bundle": bundle}, indent=2))
    elif path:
        print(f"fg debug: bundle written to {path}")
    else:
        print("fg debug: daemon has no crash dir; use --out FILE to keep "
              "the bundle", file=sys.stderr)
    return EXIT_OK


def _render_remote_report(report_json: dict) -> str:
    """Human view of a wire-format batch report (mirrors
    ``BatchReport.render`` closely enough for eyeballs)."""
    lines = []
    for outcome in report_json.get("files", ()):
        label = outcome["status"]
        if label == "diagnostics":
            label = f"error({outcome.get('severities', {}).get('error', 0)})"
        lines.append(f"{label:<12} {outcome['file']}")
    roll = report_json.get("rollup", {})
    if roll:
        lines.append(
            "-- rollup: "
            + " ".join(f"{k}={roll[k]}" for k in
                       ("files", "ok", "diagnostics", "timeout", "memory",
                        "crash", "quarantined", "retries") if k in roll)
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="fg",
        description="System F_G: concepts for generic programming "
        "(Siek & Lumsdaine, PLDI 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("repl", help="start an interactive F_G session")
    bench = sub.add_parser(
        "bench",
        help="run the built-in benchmark suite, write a versioned "
        "BENCH_<tag>.json record, and/or compare records (perf gate)",
    )
    bench.add_argument(
        "--compare",
        nargs="+",
        metavar="RECORD",
        help="compare against RECORD (runs the suite first), or compare "
        "two records OLD.json NEW.json without running; exits 1 on "
        "regression",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="X",
        help="regression threshold as a median ratio (default 1.5)",
    )
    bench.add_argument(
        "--rounds", type=int, default=5, metavar="N",
        help="timing rounds per benchmark (default 5)",
    )
    bench.add_argument(
        "--fuzz-mutants", type=int, default=25, metavar="N",
        help="mutants for the fuzz-throughput benchmark (default 25; "
        "0 disables it)",
    )
    bench.add_argument(
        "--isolation-rounds", type=int, default=2, metavar="N",
        help="rounds for the subprocess-vs-pool batch isolation "
        "comparison over examples/fg (default 2; 0 skips it — it spawns "
        "real worker processes)",
    )
    bench.add_argument(
        "--tag", default=None,
        help="record tag (default: $BENCH_TAG, else today's date)",
    )
    bench.add_argument(
        "--out", default=None, metavar="FILE",
        help="record output path (default BENCH_<tag>.json in the cwd)",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="emit the record summary and verdict table as JSON",
    )
    batch = sub.add_parser(
        "batch",
        help="check many F_G files under the fault-isolated batch service: "
        "worker pool, per-task deadlines, retries with deterministic "
        "backoff, crash containment, and circuit-breaker quarantine",
    )
    batch.add_argument(
        "files", nargs="+", metavar="FILE",
        help="files to check; a directory expands to its *.fg tree",
    )
    batch.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker pool size (default 1)",
    )
    batch.add_argument(
        "--deadline-ms", type=float, default=None, metavar="T",
        help="per-task wall-clock deadline; a miss is a retryable fault",
    )
    batch.add_argument(
        "--retries", type=int, default=0, metavar="K",
        help="retry budget per file for transient faults (deadline misses, "
        "crashes — never type errors; default 0)",
    )
    batch.add_argument(
        "--backoff-ms", type=float, default=0.0, metavar="B",
        help="base of the deterministic exponential backoff schedule "
        "(default 0: retry immediately)",
    )
    batch.add_argument(
        "--quarantine-after", type=int, default=3, metavar="N",
        help="circuit breaker: quarantine a file after N consecutive "
        "failures (default 3)",
    )
    batch.add_argument(
        "--isolate", nargs="?", const="subprocess", default=None,
        choices=["subprocess", "pool"], metavar="MODE",
        help="contain interpreter-killing failures (C-level faults, OOM "
        "kills) in worker processes: 'subprocess' (the default when the "
        "flag is bare) forks a fresh interpreter per attempt; 'pool' "
        "supervises persistent prelude-warmed workers with heartbeats, "
        "respawn on worker loss, and work stealing",
    )
    batch.add_argument(
        "--pool-workers", type=int, default=2, metavar="N",
        help="persistent workers under --isolate=pool (default 2)",
    )
    batch.add_argument(
        "--max-respawns", type=int, default=4, metavar="N",
        help="pool-wide respawn budget for lost workers; once spent, dead "
        "slots retire and the pool degrades gracefully (default 4)",
    )
    batch.add_argument(
        "--heartbeat-ms", type=float, default=100.0, metavar="T",
        help="pool worker heartbeat period (default 100)",
    )
    batch.add_argument(
        "--max-worker-mem-mb", type=float, default=None, metavar="M",
        help="per-worker memory budget (RLIMIT_AS, falling back to "
        "RLIMIT_DATA): a runaway allocation becomes a contained, "
        "retryable 'memory' fault instead of a kernel OOM kill",
    )
    batch.add_argument(
        "--recycle-rss-mb", type=float, default=None, metavar="M",
        help="pool-mode RSS high-water mark: a worker whose "
        "heartbeat-sampled RSS crosses it is gracefully recycled "
        "between tasks (never mid-attempt, never charged to "
        "--max-respawns)",
    )
    batch.add_argument(
        "--recycle-after-tasks", type=int, default=None, metavar="N",
        help="pool-mode task cap per worker process: recycle a worker "
        "after it completes N tasks (leak hygiene for long batches)",
    )
    batch.add_argument(
        "--verify", action="store_true",
        help="also run the Theorem 1/2 translation check per file",
    )
    batch.add_argument(
        "--chaos", action="append", default=None, metavar="SPEC",
        help="inject a deterministic fault schedule (testing hook): "
        "INDEX:STAGE:KIND[:ATTEMPTS][,...] with KIND one of crash|hang|"
        "kill|noise|memhog and ATTEMPTS N, A-B, or * (default)",
    )
    batch.add_argument(
        "--kill-worker", action="append", default=None, metavar="SPEC",
        help="chaos hook for --isolate=pool: SIGKILL a worker at the "
        "dispatch of INDEX[:ATTEMPT[:WORKER]] (default attempt 0, default "
        "worker: whichever received the dispatch)",
    )
    batch.add_argument(
        "--crash-dir", default=None, metavar="DIR",
        help="write crash-forensics bundles (flight-recorder rings, pool "
        "state, tracebacks) here on worker loss, deadline kills, and "
        "contained crashes; defaults to $FG_CRASH_DIR, unset = disabled",
    )
    batch.add_argument(
        "--prelude", action="store_true",
        help="wrap each program with the standard concept library",
    )
    batch.add_argument(
        "--ext", action="store_true",
        help="enable the section 6 extensions",
    )
    batch.add_argument(
        "--max-errors", type=int, default=20, metavar="N",
        help="per-file collected-error cap (default 20)",
    )
    batch.add_argument(
        "--fuel", type=int, default=None, metavar="N",
        help="per-file evaluation step budget",
    )
    batch.add_argument(
        "--depth", type=int, default=None, metavar="N",
        help="per-file typechecker nesting budget",
    )
    batch.add_argument(
        "--json", action="store_true",
        help="emit the BatchReport envelope as JSON on stdout",
    )
    batch.add_argument(
        "--stats", action="store_true",
        help="report batch counters (retries, timeouts, quarantines)",
    )
    batch.add_argument(
        "--trace", nargs="?", const="-", default=None, metavar="FILE",
        help="record the merged span trace: coordinator spans plus every "
        "worker's spans stitched under them (clock-normalized across the "
        "process boundary; .json = Chrome trace_event with one pid lane "
        "per worker process)",
    )
    batch.add_argument(
        "--explain", action="store_true",
        help="print the model-resolution log; entries recorded inside "
        "workers are shipped back through the isolation wall",
    )
    batch.set_defaults(profile=False)
    serve = sub.add_parser(
        "serve",
        help="run the resilient batch daemon: a Unix-socket front end over "
        "a persistent warm worker pool, with bounded admission, graceful "
        "SIGTERM drain, and a crash-safe request journal",
    )
    serve.add_argument(
        "--socket", required=True, metavar="PATH",
        help="Unix-domain socket path to listen on",
    )
    serve.add_argument(
        "--journal", default=None, metavar="FILE",
        help="request journal path (default: <socket>.journal)",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="replay the journal on startup and re-run unfinished requests "
        "before serving (after a crash/SIGKILL); without it a stale "
        "journal is rotated to <journal>.bak",
    )
    serve.add_argument(
        "--resume-only", action="store_true",
        help="replay and re-run unfinished requests, print the digest "
        "summary as JSON, and exit without binding the socket",
    )
    serve.add_argument(
        "--max-queue", type=int, default=8, metavar="N",
        help="admission bound: requests beyond N queued are shed with an "
        "overload response (default 8)",
    )
    serve.add_argument(
        "--retry-after-ms", type=int, default=100, metavar="T",
        help="base of the deterministic retry_after_ms overload hint "
        "(default 100)",
    )
    serve.add_argument(
        "--idle-timeout-ms", type=float, default=10_000.0, metavar="T",
        help="slow-loris defense: close connections idle this long with "
        "no admitted request (default 10000)",
    )
    serve.add_argument(
        "--pool-workers", type=int, default=2, metavar="N",
        help="persistent warm workers (default 2)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None, metavar="T",
        help="server-side per-task deadline; composes with each request's "
        "own deadline as the minimum",
    )
    serve.add_argument(
        "--retries", type=int, default=0, metavar="K",
        help="default retry budget per file (default 0)",
    )
    serve.add_argument(
        "--backoff-ms", type=float, default=0.0, metavar="B",
        help="base of the deterministic backoff schedule (default 0)",
    )
    serve.add_argument(
        "--quarantine-after", type=int, default=3, metavar="N",
        help="circuit breaker threshold (default 3)",
    )
    serve.add_argument(
        "--max-respawns", type=int, default=4, metavar="N",
        help="per-batch respawn budget for lost workers (default 4)",
    )
    serve.add_argument(
        "--heartbeat-ms", type=float, default=100.0, metavar="T",
        help="pool worker heartbeat period (default 100)",
    )
    serve.add_argument(
        "--max-worker-mem-mb", type=float, default=None, metavar="M",
        help="per-worker memory budget (RLIMIT_AS, falling back to "
        "RLIMIT_DATA): a runaway allocation becomes a contained, "
        "retryable 'memory' fault instead of a kernel OOM kill",
    )
    serve.add_argument(
        "--recycle-rss-mb", type=float, default=None, metavar="M",
        help="worker RSS high-water mark: a worker whose "
        "heartbeat-sampled RSS crosses it is gracefully recycled "
        "between tasks (never charged to --max-respawns)",
    )
    serve.add_argument(
        "--recycle-after-tasks", type=int, default=None, metavar="N",
        help="recycle a worker process after it completes N tasks "
        "(leak hygiene for long-lived daemons)",
    )
    serve.add_argument(
        "--max-rss-mb", type=float, default=None, metavar="M",
        help="aggregate worker-RSS admission budget: while the pool's "
        "sampled RSS total is at or over it, new batch requests are "
        "shed with reason 'memory-pressure' and a retry_after_ms hint",
    )
    serve.add_argument(
        "--ops-log-max-bytes", type=int, default=None, metavar="N",
        help="rotate the ops log to <file>.1 when it reaches N bytes "
        "(one backup generation; default: never rotate)",
    )
    serve.add_argument(
        "--prelude", action="store_true",
        help="wrap each program with the standard concept library",
    )
    serve.add_argument(
        "--ext", action="store_true",
        help="enable the section 6 extensions",
    )
    serve.add_argument(
        "--verify", action="store_true",
        help="also run the Theorem 1/2 translation check per file",
    )
    serve.add_argument(
        "--max-errors", type=int, default=20, metavar="N",
        help="per-file collected-error cap (default 20)",
    )
    serve.add_argument(
        "--json", action="store_true",
        help="emit the exit summary as JSON",
    )
    serve.add_argument(
        "--stats", action="store_true",
        help="report server.* and batch counters on drain",
    )
    serve.add_argument(
        "--trace", nargs="?", const="-", default=None, metavar="FILE",
        help="record the daemon's merged span trace (worker spans "
        "stitched under each request, one Chrome pid lane per worker)",
    )
    serve.add_argument(
        "--metrics-file", default=None, metavar="PATH",
        help="write a Prometheus text-format snapshot of the live "
        "telemetry to PATH (atomic replace) every --metrics-interval-ms",
    )
    serve.add_argument(
        "--metrics-interval-ms", type=float, default=2000.0, metavar="T",
        help="metrics-file refresh period (default 2000)",
    )
    serve.add_argument(
        "--ops-log", default=None, metavar="FILE",
        help="operational event log (append-only JSONL; default: "
        "<socket>.ops.jsonl)",
    )
    serve.add_argument(
        "--crash-dir", default=None, metavar="DIR",
        help="crash-bundle directory for the flight recorder's forensics "
        "(default: <socket>.crash); the daemon also keeps a live "
        "'blackbox' bundle here that survives a SIGKILL",
    )
    serve.set_defaults(explain=False, profile=False)
    cli = sub.add_parser(
        "client",
        help="submit F_G files to a running fg serve daemon, probe it "
        "(--health, or the stats / events subcommands), or --shutdown it",
    )
    cli.add_argument(
        "files", nargs="*", metavar="FILE",
        help="files to check (a directory expands to its *.fg tree); or "
        "the keyword 'stats' (live latency/queue-wait percentiles, "
        "utilization, shed and respawn totals) or 'events' (the tail of "
        "the daemon's operational event log)",
    )
    cli.add_argument(
        "--socket", required=True, metavar="PATH",
        help="the daemon's Unix-domain socket path",
    )
    cli.add_argument(
        "--health", action="store_true",
        help="print the daemon's health snapshot and exit",
    )
    cli.add_argument(
        "--shutdown", action="store_true",
        help="ask the daemon to drain gracefully and exit",
    )
    cli.add_argument(
        "--deadline-ms", type=float, default=None, metavar="T",
        help="request deadline: per-task bound (min with the server's) "
        "and the queue-wait bound — expiry while queued sheds the "
        "request (exit 4)",
    )
    cli.add_argument(
        "--retries", type=int, default=None, metavar="K",
        help="override the server's per-file retry budget",
    )
    cli.add_argument(
        "--prelude", action="store_true",
        help="wrap each program with the standard concept library",
    )
    cli.add_argument(
        "--ext", action="store_true",
        help="enable the section 6 extensions",
    )
    cli.add_argument(
        "--verify", action="store_true",
        help="also run the Theorem 1/2 translation check per file",
    )
    cli.add_argument(
        "--chaos", action="append", default=None, metavar="SPEC",
        help="attach a deterministic fault schedule to the request "
        "(testing hook; same syntax as fg batch --chaos)",
    )
    cli.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="client-side socket timeout in seconds (default: none)",
    )
    cli.add_argument(
        "--json", action="store_true",
        help="emit the report envelope (plus its digest) — or the "
        "stats/events payload — as JSON",
    )
    cli.add_argument(
        "--tail", type=int, default=20, metavar="N",
        help="with the events subcommand: how many events (default 20)",
    )
    cli.add_argument(
        "--watch", action="store_true",
        help="with the stats subcommand: refresh until interrupted",
    )
    cli.add_argument(
        "--interval-ms", type=float, default=1000.0, metavar="T",
        help="refresh period for --watch (default 1000)",
    )
    doctor = sub.add_parser(
        "doctor",
        help="triage a repro/crash-bundle v1: what died, its last spans "
        "and ops events, metric anomalies, and the traceback",
    )
    doctor.add_argument(
        "bundle", nargs="?", metavar="BUNDLE",
        help="a *.bundle.json file, or a crash directory (the newest "
        "bundle wins)",
    )
    doctor.add_argument(
        "--serve-socket", default=None, metavar="PATH",
        help="pull a live bundle from the daemon on this socket instead "
        "of reading one from disk",
    )
    doctor.add_argument(
        "--tail", type=int, default=10, metavar="N",
        help="how many spans / ops events to show (default 10)",
    )
    doctor.add_argument(
        "--timeout", type=float, default=10.0, metavar="S",
        help="socket timeout for --serve-socket (default 10)",
    )
    doctor.add_argument(
        "--json", action="store_true",
        help="emit the triage plus the full bundle as JSON",
    )
    debug = sub.add_parser(
        "debug",
        help="debugging hooks against a live daemon ('fg debug bundle' "
        "forces a crash bundle over the socket)",
    )
    debug.add_argument(
        "what", choices=["bundle"], metavar="WHAT",
        help="'bundle': force a manual crash bundle from the daemon",
    )
    debug.add_argument(
        "--socket", required=True, metavar="PATH",
        help="the daemon's Unix-domain socket path",
    )
    debug.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the returned bundle document to FILE",
    )
    debug.add_argument(
        "--timeout", type=float, default=10.0, metavar="S",
        help="client-side socket timeout (default 10)",
    )
    debug.add_argument(
        "--json", action="store_true",
        help="emit the bundle (and its daemon-side path) as JSON",
    )
    for name, help_ in [
        ("run", "typecheck, translate, and evaluate an F_G program"),
        ("check", "typecheck an F_G program and print its type"),
        ("translate", "print an F_G program's System F translation"),
        ("verify", "check that translation preserves typing (Theorems 1/2)"),
        ("runf", "typecheck and evaluate a System F program"),
        ("profile", "run an F_G program under the deterministic profiler: "
         "hot-path table + per-stage peak memory"),
    ]:
        cmd = sub.add_parser(name, help=help_)
        cmd.add_argument("file", nargs="?", help="program file ('-' = stdin)")
        cmd.add_argument(
            "-e", "--expr", help="program text given on the command line"
        )
        cmd.add_argument(
            "--prelude",
            action="store_true",
            help="wrap the program with the standard concept library",
        )
        cmd.add_argument(
            "--ext",
            action="store_true",
            help="enable the section 6 extensions (named/parameterized "
            "models, member defaults)",
        )
        cmd.add_argument(
            "--max-errors",
            type=int,
            default=20,
            metavar="N",
            help="stop after N collected errors (default 20)",
        )
        cmd.add_argument(
            "--fuel",
            type=int,
            default=None,
            metavar="N",
            help="bound evaluation to N steps (default: unbounded)",
        )
        cmd.add_argument(
            "--depth",
            type=int,
            default=None,
            metavar="N",
            help="bound typechecker nesting depth (default "
            f"{DEFAULT_LIMITS.max_check_depth})",
        )
        cmd.add_argument(
            "--deadline-ms",
            type=float,
            default=None,
            metavar="T",
            help="wall-clock deadline for the run (watchdog + cooperative "
            "cancellation); exit code 4 when exceeded",
        )
        cmd.add_argument(
            "--json",
            action="store_true",
            help="emit diagnostics as JSON on stdout",
        )
        cmd.add_argument(
            "--trace",
            nargs="?",
            const="-",
            default=None,
            metavar="FILE",
            help="record a span trace; print it (no FILE) or write "
            "Chrome trace JSON (*.json) / JSONL (*.jsonl) / text",
        )
        cmd.add_argument(
            "--stats",
            action="store_true",
            help="report stage timings and checker/evaluator counters",
        )
        cmd.add_argument(
            "--explain",
            action="store_true",
            help="log every model resolution: candidates per scope and "
            "why each was rejected",
        )
        cmd.add_argument(
            "--profile",
            action="store_true",
            help="aggregate the span stream into a per-callsite "
            "inclusive/exclusive time table and account peak memory "
            "per pipeline stage",
        )
    args = parser.parse_args(argv)
    if args.command == "repl":
        from repro.tools.repl import main as repl_main

        return repl_main()
    if args.command == "bench":
        if args.threshold is None:
            from repro.observability.regress import DEFAULT_THRESHOLD

            args.threshold = DEFAULT_THRESHOLD
        try:
            return _run_bench(args)
        except Exception:
            import traceback

            print(_INTERNAL_BANNER, file=sys.stderr)
            traceback.print_exc()
            return EXIT_INTERNAL
    if args.command == "batch":
        if args.max_errors < 1:
            parser.error("--max-errors must be at least 1")
        try:
            # SIGTERM behaves like Ctrl-C for the whole batch: the raise
            # unwinds through the coordinator so the pool supervisor's
            # finally blocks kill and reap every worker before exit.
            from repro.service import raise_on_termination

            with raise_on_termination():
                return _run_batch(args)
        except KeyboardInterrupt:
            print("fg batch: interrupted — workers shut down",
                  file=sys.stderr)
            return EXIT_INTERRUPTED
        except Exception:
            # Total failure: a bug in the batch driver itself — distinct
            # from partial failure (5), which the report's exit code covers.
            import traceback

            print(_INTERNAL_BANNER, file=sys.stderr)
            traceback.print_exc()
            return EXIT_INTERNAL
    if args.command == "serve":
        try:
            return _run_serve(args)
        except Exception:
            import traceback

            print(_INTERNAL_BANNER, file=sys.stderr)
            traceback.print_exc()
            return EXIT_INTERNAL
    if args.command == "client":
        try:
            return _run_client(args)
        except Exception:
            import traceback

            print(_INTERNAL_BANNER, file=sys.stderr)
            traceback.print_exc()
            return EXIT_INTERNAL
    if args.command == "doctor":
        try:
            return _run_doctor(args)
        except BrokenPipeError:
            return EXIT_OK  # downstream pager/head closed the pipe
        except Exception:
            import traceback

            print(_INTERNAL_BANNER, file=sys.stderr)
            traceback.print_exc()
            return EXIT_INTERNAL
    if args.command == "debug":
        try:
            return _run_debug(args)
        except BrokenPipeError:
            return EXIT_OK
        except Exception:
            import traceback

            print(_INTERNAL_BANNER, file=sys.stderr)
            traceback.print_exc()
            return EXIT_INTERNAL
    if args.file is None and args.expr is None:
        parser.error("a FILE or -e EXPR is required")
    if args.max_errors < 1:
        parser.error("--max-errors must be at least 1")
    try:
        if args.command == "runf":
            return _run_runf(args)
        return _run_fg_command(args)
    except OSError as err:
        # A missing or unreadable input file is a usage error, reported as
        # one clean line — no traceback.
        name = getattr(err, "filename", None) or args.file or "<input>"
        print(f"fg: cannot read {name}: {err.strerror or err}", file=sys.stderr)
        return EXIT_USAGE
    except UnicodeDecodeError as err:
        # A file that is not valid UTF-8 is bad input, not an internal bug.
        name = args.file or "<input>"
        print(f"fg: cannot read {name}: not valid UTF-8 ({err})", file=sys.stderr)
        return EXIT_USAGE
    except Diagnostic as err:
        # Fail-fast paths (runf) still honor the exit-code contract.
        print(err, file=sys.stderr)
        if getattr(err, "limit", None) == "deadline":
            return EXIT_DEADLINE
        return EXIT_DIAGNOSTICS
    except Exception:
        import traceback

        print(_INTERNAL_BANNER, file=sys.stderr)
        traceback.print_exc()
        return EXIT_INTERNAL


if __name__ == "__main__":
    sys.exit(main())
