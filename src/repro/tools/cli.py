"""The ``fg`` command-line driver.

Subcommands::

    fg run FILE          typecheck, translate, and evaluate an F_G program
    fg check FILE        typecheck only; print the program's type
    fg translate FILE    print the System F translation
    fg verify FILE       run the executable Theorem 1/2 check
    fg runf FILE         typecheck and evaluate a *System F* program

``--prelude`` wraps the program with the standard concept library and ``-e``
takes the program from the command line instead of a file.
"""

from __future__ import annotations

import argparse
import sys

from repro.diagnostics.errors import Diagnostic
from repro.fg import evaluate as fg_evaluate
from repro.fg import pretty_type as fg_pretty_type
from repro.fg import typecheck as fg_typecheck
from repro.fg import verify_translation
from repro.syntax import parse_f, parse_fg
from repro.systemf import evaluate as f_evaluate
from repro.systemf import pretty_term as f_pretty_term
from repro.systemf import pretty_type as f_pretty_type
from repro.systemf import type_of as f_type_of


def _read_program(args: argparse.Namespace) -> str:
    if args.expr is not None:
        return args.expr
    if args.file == "-":
        return sys.stdin.read()
    with open(args.file) as handle:
        return handle.read()


def _fg_term(args: argparse.Namespace):
    text = _read_program(args)
    if args.prelude:
        from repro.prelude import wrap

        text = wrap(text)
    return parse_fg(text, args.file or "<cmdline>")


def _render(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, list):
        return "[" + ", ".join(_render(v) for v in value) + "]"
    if isinstance(value, tuple):
        return "(" + ", ".join(_render(v) for v in value) + ")"
    return str(value)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="fg",
        description="System F_G: concepts for generic programming "
        "(Siek & Lumsdaine, PLDI 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("repl", help="start an interactive F_G session")
    for name, help_ in [
        ("run", "typecheck, translate, and evaluate an F_G program"),
        ("check", "typecheck an F_G program and print its type"),
        ("translate", "print an F_G program's System F translation"),
        ("verify", "check that translation preserves typing (Theorems 1/2)"),
        ("runf", "typecheck and evaluate a System F program"),
    ]:
        cmd = sub.add_parser(name, help=help_)
        cmd.add_argument("file", nargs="?", help="program file ('-' = stdin)")
        cmd.add_argument(
            "-e", "--expr", help="program text given on the command line"
        )
        cmd.add_argument(
            "--prelude",
            action="store_true",
            help="wrap the program with the standard concept library",
        )
        cmd.add_argument(
            "--ext",
            action="store_true",
            help="enable the section 6 extensions (named/parameterized "
            "models, member defaults)",
        )
    args = parser.parse_args(argv)
    if args.command == "repl":
        from repro.tools.repl import main as repl_main

        return repl_main()
    if args.file is None and args.expr is None:
        parser.error("a FILE or -e EXPR is required")
    try:
        if args.command == "runf":
            term = parse_f(_read_program(args), args.file or "<cmdline>")
            f_type_of(term)
            print(_render(f_evaluate(term)))
            return 0
        term = _fg_term(args)
        if args.ext:
            from repro import extensions as ext

            check_fn, eval_fn, verify_fn = (
                ext.typecheck, ext.evaluate, ext.verify_translation
            )
        else:
            check_fn, eval_fn, verify_fn = (
                fg_typecheck, fg_evaluate, verify_translation
            )
        if args.command == "check":
            fg_type, _ = check_fn(term)
            print(fg_pretty_type(fg_type))
        elif args.command == "translate":
            _, sf_term = check_fn(term)
            print(f_pretty_term(sf_term))
        elif args.command == "verify":
            fg_type, sf_type = verify_fn(term)
            print(f"F_G type:      {fg_pretty_type(fg_type)}")
            print(f"System F type: {f_pretty_type(sf_type)}")
            print("translation preserves typing: OK")
        else:  # run
            print(_render(eval_fn(term)))
        return 0
    except Diagnostic as err:
        print(err, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
