"""The ``fg`` command-line driver.

Subcommands::

    fg run FILE          typecheck, translate, and evaluate an F_G program
    fg check FILE        typecheck only; print the program's type
    fg translate FILE    print the System F translation
    fg verify FILE       run the executable Theorem 1/2 check
    fg runf FILE         typecheck and evaluate a *System F* program

``--prelude`` wraps the program with the standard concept library and ``-e``
takes the program from the command line instead of a file.

The driver is fault-tolerant: parse and type errors are collected (up to
``--max-errors``) instead of stopping at the first one, ``--fuel``/``--depth``
bound runaway programs, and ``--json`` emits machine-readable diagnostics.

Exit codes: **0** success, **1** the program has diagnostics, **2** usage
error (bad flags, unreadable file), **3** internal error (a bug in this
implementation — never the input program's fault).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.diagnostics.errors import Diagnostic
from repro.diagnostics.limits import DEFAULT_LIMITS, Limits
from repro.diagnostics.reporter import DiagnosticReport, diagnostic_to_dict
from repro.fg import pretty_type as fg_pretty_type
from repro.syntax import parse_f
from repro.systemf import evaluate as f_evaluate
from repro.systemf import pretty_term as f_pretty_term
from repro.systemf import pretty_type as f_pretty_type
from repro.systemf import type_of as f_type_of

#: Exit codes of the ``fg`` driver (documented contract).
EXIT_OK = 0
EXIT_DIAGNOSTICS = 1
EXIT_USAGE = 2
EXIT_INTERNAL = 3

_INTERNAL_BANNER = (
    "fg: internal error — this is a bug in the F_G implementation, "
    "not in your program"
)


def _read_program(args: argparse.Namespace) -> str:
    if args.expr is not None:
        return args.expr
    if args.file == "-":
        return sys.stdin.read()
    with open(args.file) as handle:
        return handle.read()


def _render(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, list):
        return "[" + ", ".join(_render(v) for v in value) + "]"
    if isinstance(value, tuple):
        return "(" + ", ".join(_render(v) for v in value) + ")"
    return str(value)


def _limits(args: argparse.Namespace) -> Limits:
    return Limits(
        max_check_depth=(
            args.depth if args.depth is not None
            else DEFAULT_LIMITS.max_check_depth
        ),
        max_eval_steps=args.fuel,
    )


def _emit_report(report: DiagnosticReport, args: argparse.Namespace) -> None:
    if args.json:
        print(json.dumps(
            {"diagnostics": [diagnostic_to_dict(d) for d in report]},
            indent=2,
        ))
    else:
        rendered = report.render()
        if rendered:
            print(rendered, file=sys.stderr)


def _run_fg_command(args: argparse.Namespace) -> int:
    from repro.pipeline import check_source

    text = _read_program(args)
    outcome = check_source(
        text,
        args.file or "<cmdline>",
        prelude=args.prelude,
        ext=args.ext,
        max_errors=args.max_errors,
        limits=_limits(args),
        evaluate=(args.command == "run"),
        verify=(args.command == "verify"),
    )
    if not outcome.ok:
        _emit_report(outcome.report, args)
        return EXIT_DIAGNOSTICS
    if args.command == "check":
        if args.json:
            print(json.dumps(
                {
                    "diagnostics": [],
                    "type": fg_pretty_type(outcome.type_),
                },
                indent=2,
            ))
        else:
            print(fg_pretty_type(outcome.type_))
    elif args.command == "translate":
        print(f_pretty_term(outcome.translation))
    elif args.command == "verify":
        print(f"F_G type:      {fg_pretty_type(outcome.type_)}")
        print("translation preserves typing: OK")
    else:  # run
        print(_render(outcome.value))
    return EXIT_OK


def _run_runf(args: argparse.Namespace) -> int:
    term = parse_f(_read_program(args), args.file or "<cmdline>")
    f_type_of(term)
    print(_render(f_evaluate(term, limits=_limits(args))))
    return EXIT_OK


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="fg",
        description="System F_G: concepts for generic programming "
        "(Siek & Lumsdaine, PLDI 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("repl", help="start an interactive F_G session")
    for name, help_ in [
        ("run", "typecheck, translate, and evaluate an F_G program"),
        ("check", "typecheck an F_G program and print its type"),
        ("translate", "print an F_G program's System F translation"),
        ("verify", "check that translation preserves typing (Theorems 1/2)"),
        ("runf", "typecheck and evaluate a System F program"),
    ]:
        cmd = sub.add_parser(name, help=help_)
        cmd.add_argument("file", nargs="?", help="program file ('-' = stdin)")
        cmd.add_argument(
            "-e", "--expr", help="program text given on the command line"
        )
        cmd.add_argument(
            "--prelude",
            action="store_true",
            help="wrap the program with the standard concept library",
        )
        cmd.add_argument(
            "--ext",
            action="store_true",
            help="enable the section 6 extensions (named/parameterized "
            "models, member defaults)",
        )
        cmd.add_argument(
            "--max-errors",
            type=int,
            default=20,
            metavar="N",
            help="stop after N collected errors (default 20)",
        )
        cmd.add_argument(
            "--fuel",
            type=int,
            default=None,
            metavar="N",
            help="bound evaluation to N steps (default: unbounded)",
        )
        cmd.add_argument(
            "--depth",
            type=int,
            default=None,
            metavar="N",
            help="bound typechecker nesting depth (default "
            f"{DEFAULT_LIMITS.max_check_depth})",
        )
        cmd.add_argument(
            "--json",
            action="store_true",
            help="emit diagnostics as JSON on stdout",
        )
    args = parser.parse_args(argv)
    if args.command == "repl":
        from repro.tools.repl import main as repl_main

        return repl_main()
    if args.file is None and args.expr is None:
        parser.error("a FILE or -e EXPR is required")
    if args.max_errors < 1:
        parser.error("--max-errors must be at least 1")
    try:
        if args.command == "runf":
            return _run_runf(args)
        return _run_fg_command(args)
    except OSError as err:
        # A missing or unreadable input file is a usage error, reported as
        # one clean line — no traceback.
        name = getattr(err, "filename", None) or args.file or "<input>"
        print(f"fg: cannot read {name}: {err.strerror or err}", file=sys.stderr)
        return EXIT_USAGE
    except UnicodeDecodeError as err:
        # A file that is not valid UTF-8 is bad input, not an internal bug.
        name = args.file or "<input>"
        print(f"fg: cannot read {name}: not valid UTF-8 ({err})", file=sys.stderr)
        return EXIT_USAGE
    except Diagnostic as err:
        # Fail-fast paths (runf) still honor the exit-code contract.
        print(err, file=sys.stderr)
        return EXIT_DIAGNOSTICS
    except Exception:
        import traceback

        print(_INTERNAL_BANNER, file=sys.stderr)
        traceback.print_exc()
        return EXIT_INTERNAL


if __name__ == "__main__":
    sys.exit(main())
