r"""An interactive REPL for F_G.

F_G is expression-oriented — concepts, models, and lets scope over a body —
so the REPL accumulates declarations as an ever-growing prefix and evaluates
each expression against it:

.. code-block:: text

    fg> concept Magma<t> { op : fn(t, t) -> t; }
    fg> model Magma<int> { op = iadd; }
    fg> let twice = /\t where Magma<t>. \x : t. Magma<t>.op(x, x)
    fg> twice[int](21)
    42 : int

Commands: ``:type e``, ``:translate e``, ``:errors e``, ``:explain e``,
``:profile e``, ``:decls``, ``:clear``, ``:prelude``, ``:ext``,
``:fuel N``, ``:maxerrors N``, ``:stats``, ``:trace on|off``, ``:quit``.
Incomplete input (unexpected end of file) continues on the next line.

Observability: the session carries one
:class:`~repro.observability.MetricsRegistry` that every check and
evaluation writes into — ``:stats`` shows the running totals.  ``:trace
on`` appends a span tree to each evaluation's output; ``:explain e`` runs
the model-resolution explain log over an expression; ``:profile e`` runs
``e`` through the full pipeline under the deterministic profiler and
prints the hot-path table plus per-stage peak memory (see
docs/OBSERVABILITY.md).

The core logic lives in :class:`Repl`, which is side-effect free and
drivable from tests; :func:`main` wraps it in a stdin loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.diagnostics.errors import Diagnostic, ParseError
from repro.fg import pretty_type
from repro.observability import Instrumentation, MetricsRegistry
from repro.syntax import parse_fg
from repro.systemf import evaluate as f_evaluate
from repro.systemf import pretty_term as f_pretty_term

#: Keywords that begin a declaration the REPL should accumulate.
_DECL_KEYWORDS = ("concept", "model", "let", "type", "use", "overload")


def _render(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, list):
        return "[" + ", ".join(_render(v) for v in value) + "]"
    if isinstance(value, tuple):
        return "(" + ", ".join(_render(v) for v in value) + ")"
    return str(value)


@dataclass
class Repl:
    """REPL state: accumulated declarations plus mode flags."""

    use_ext: bool = False
    decls: List[str] = field(default_factory=list)
    fuel: Optional[int] = None
    max_errors: int = 20
    trace_on: bool = False
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    _pending: str = ""

    # -- plumbing ---------------------------------------------------------

    def _checker_module(self):
        if self.use_ext:
            from repro import extensions

            return extensions
        import repro.fg as core

        return core

    def _program(self, expr: str) -> str:
        return "\n".join(self.decls + [expr])

    def _check(self, expr: str, tracer=None):
        term = parse_fg(self._program(expr), "<repl>")
        inst = Instrumentation(metrics=self.metrics) if tracer is None else \
            Instrumentation(tracer=tracer, metrics=self.metrics)
        return self._checker_module().typecheck(term, instrumentation=inst)

    # -- the interface ---------------------------------------------------------

    @property
    def pending(self) -> bool:
        """True when the REPL is waiting for a continuation line."""
        return bool(self._pending)

    def interrupt(self) -> None:
        """Discard any pending continuation input (Ctrl-C)."""
        self._pending = ""

    def feed(self, line: str) -> Optional[str]:
        """Process one input line; returns the text to display (or None).

        Raises ``SystemExit`` on ``:quit``.
        """
        text = (self._pending + "\n" + line) if self._pending else line
        self._pending = ""
        stripped = text.strip()
        if not stripped:
            return None
        if stripped.startswith(":"):
            return self._command(stripped)
        if self._brackets_open(stripped):
            self._pending = text
            return None
        try:
            return self._evaluate_or_declare(stripped)
        except ParseError as err:
            if self._looks_incomplete(err):
                self._pending = text
                return None
            return str(err)
        except Diagnostic as err:
            return str(err)
        except SystemExit:
            raise
        except Exception:
            # A non-Diagnostic exception is a bug in the implementation;
            # report it without killing the session.
            import traceback

            return (
                "-- internal error (a bug in the F_G implementation, not "
                "your program):\n" + traceback.format_exc().rstrip()
            )

    @staticmethod
    def _looks_incomplete(err: ParseError) -> bool:
        # Only input that *ran out* is a continuation — "expected 'EOF',
        # found X" means the program is complete but wrong.
        return "found 'EOF'" in err.message

    @staticmethod
    def _brackets_open(text: str) -> bool:
        """True when {, (, or [ are unbalanced (input clearly continues)."""
        from repro.diagnostics.source import SourceText
        from repro.syntax.lexer import tokenize

        try:
            tokens = tokenize(SourceText(text))
        except Diagnostic:
            return False  # let the parser report it
        depth = 0
        for token in tokens:
            if token.kind in ("{", "(", "["):
                depth += 1
            elif token.kind in ("}", ")", "]"):
                depth -= 1
        return depth > 0

    def _complete_expression(self, text: str) -> bool:
        """True when ``text`` already parses as a whole program on its own.

        ``let x = 1 in iadd(x, 1)`` is a complete expression to evaluate;
        a bare ``let x = 1`` is a declaration prefix to accumulate.
        """
        try:
            parse_fg(self._program(text), "<repl>")
        except Diagnostic:
            return False
        return True

    def _evaluate_or_declare(self, text: str) -> str:
        first_word = text.split(None, 1)[0] if text.split() else ""
        first_word = first_word.split("(")[0]
        if first_word in _DECL_KEYWORDS and not self._complete_expression(text):
            import re

            ends_with_in = re.search(r"\bin\s*$", text) is not None
            candidate = text if ends_with_in else text + " in"
            # Validate by checking a trivial body under the new prefix.
            probe = "\n".join(self.decls + [candidate, "0"])
            term = parse_fg(probe, "<repl>")
            self._checker_module().typecheck(
                term, instrumentation=Instrumentation(metrics=self.metrics)
            )
            self.decls.append(candidate)
            return f"-- declared ({first_word})"
        tracer = None
        if self.trace_on:
            from repro.observability import Tracer

            tracer = Tracer()
        fg_type, sf = self._check(text, tracer=tracer)
        from repro.diagnostics.limits import Budget, Limits

        budget = Budget(Limits(max_eval_steps=self.fuel))
        value = f_evaluate(sf, budget=budget)
        self.metrics.inc("eval.steps", budget.steps_taken)
        out = f"{_render(value)} : {pretty_type(fg_type)}"
        if tracer is not None:
            from repro.observability.exporters import render_tree

            out += "\n-- trace:\n" + render_tree(tracer)
        return out

    def _command(self, text: str) -> str:
        parts = text.split(None, 1)
        command = parts[0]
        arg = parts[1] if len(parts) > 1 else ""
        if command in (":q", ":quit"):
            raise SystemExit(0)
        if command == ":type":
            if not arg:
                return "usage: :type <expr>"
            fg_type, _ = self._check(arg)
            return pretty_type(fg_type)
        if command == ":translate":
            if not arg:
                return "usage: :translate <expr>"
            _, sf = self._check(arg)
            return f_pretty_term(sf)
        if command == ":errors":
            if not arg:
                return "usage: :errors <expr>"
            from repro.pipeline import check_source

            outcome = check_source(
                self._program(arg), "<repl>", ext=self.use_ext,
                max_errors=self.max_errors,
            )
            if outcome.ok:
                return "-- no errors"
            return outcome.report.render()
        if command == ":explain":
            if not arg:
                return "usage: :explain <expr>"
            from repro.observability import ExplainLog
            from repro.pipeline import check_source

            log = ExplainLog()
            outcome = check_source(
                self._program(arg), "<repl>", ext=self.use_ext,
                max_errors=self.max_errors,
                instrumentation=Instrumentation(
                    metrics=self.metrics, explain=log
                ),
            )
            parts = []
            if not outcome.ok:
                parts.append(outcome.report.render())
            parts.append("-- model resolution log:")
            parts.append(log.render())
            return "\n".join(parts)
        if command == ":profile":
            if not arg:
                return "usage: :profile <expr>"
            from repro.observability import (
                MemoryAccountant, Tracer, format_profile, profile_tracer,
            )
            from repro.pipeline import check_source

            tracer, memory = Tracer(), MemoryAccountant()
            outcome = check_source(
                self._program(arg), "<repl>", ext=self.use_ext,
                max_errors=self.max_errors, evaluate=True,
                instrumentation=Instrumentation(
                    tracer=tracer, metrics=self.metrics, memory=memory,
                ),
            )
            parts = []
            if not outcome.ok:
                parts.append(outcome.report.render())
            parts.append(format_profile(profile_tracer(tracer), memory))
            return "\n".join(parts)
        if command == ":stats":
            return self.metrics.render()
        if command == ":trace":
            if arg == "on":
                self.trace_on = True
                return "-- trace on (span tree after each evaluation)"
            if arg == "off":
                self.trace_on = False
                return "-- trace off"
            state = "on" if self.trace_on else "off"
            return f"-- trace: {state} (set with :trace on|off)"
        if command == ":fuel":
            if not arg:
                current = "unbounded" if self.fuel is None else str(self.fuel)
                return f"-- fuel: {current} (set with :fuel N, clear with :fuel off)"
            if arg in ("off", "none"):
                self.fuel = None
                return "-- fuel: unbounded"
            try:
                self.fuel = max(1, int(arg))
            except ValueError:
                return "usage: :fuel N (or :fuel off)"
            return f"-- fuel: {self.fuel}"
        if command == ":maxerrors":
            if not arg:
                return f"-- max errors: {self.max_errors}"
            try:
                self.max_errors = max(1, int(arg))
            except ValueError:
                return "usage: :maxerrors N"
            return f"-- max errors: {self.max_errors}"
        if command == ":decls":
            if not self.decls:
                return "-- no declarations"
            return "\n".join(self.decls)
        if command == ":clear":
            self.decls = []
            return "-- cleared"
        if command == ":prelude":
            from repro.prelude import PRELUDE

            self.decls.insert(0, PRELUDE)
            return "-- prelude loaded"
        if command == ":ext":
            self.use_ext = not self.use_ext
            state = "on" if self.use_ext else "off"
            return f"-- extensions {state}"
        if command == ":help":
            return (
                "declarations (concept/model/let/type/use/overload) "
                "accumulate; expressions evaluate.\n"
                "commands: :type e, :translate e, :errors e, :explain e, "
                ":profile e, :decls, :clear, :prelude, :ext, :fuel N, "
                ":maxerrors N, :stats, :trace on|off, :quit"
            )
        return f"unknown command {command} (try :help)"


def main() -> int:
    repl = Repl()
    print("F_G repl — Siek & Lumsdaine, PLDI 2005 (:help for help)")
    while True:
        prompt = "... " if repl.pending else "fg> "
        try:
            line = input(prompt)
        except EOFError:
            print()
            return 0
        except KeyboardInterrupt:
            repl.interrupt()
            print()
            continue
        try:
            output = repl.feed(line)
        except SystemExit:
            return 0
        if output is not None:
            print(output)


if __name__ == "__main__":
    raise SystemExit(main())
