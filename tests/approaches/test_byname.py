"""Unit tests for the Cforall-like by-name-lookup mini-language (Figure 1d)."""

import pytest

from repro.approaches import byname as D
from repro.approaches.figure1 import byname_program
from repro.diagnostics.errors import TypeError_


class TestFigure1d:
    def test_square_int(self):
        assert D.run(byname_program()) == 16

    def test_type_is_int(self):
        assert D.check(byname_program()) == D.INT


class TestByNameLookup:
    def test_lookup_finds_exact_signature(self):
        checker = D.Checker(byname_program())
        sig = D.FnSig("mult", (D.INT, D.INT), D.INT)
        assert checker.find_function(sig).name == "mult"

    def test_lookup_fails_without_function(self):
        base = byname_program()
        program = D.Program(
            specs=base.specs, functions=(), foralls=base.foralls,
            main=base.main,
        )
        with pytest.raises(TypeError_) as err:
            D.check(program)
        assert "by-name lookup failed" in str(err.value)

    def test_retroactive_by_declaration(self):
        """Declaring the operation anywhere makes the type usable."""
        assert D.run(byname_program()) == 16

    def test_wrong_signature_not_found(self):
        base = byname_program()
        # A unary `mult` exists, but the spec needs binary.
        unary = D.FuncDecl("mult", (("x", D.INT),), D.INT, body=D.Var("x"))
        program = D.Program(
            specs=base.specs, functions=(unary,), foralls=base.foralls,
            main=base.main,
        )
        with pytest.raises(TypeError_):
            D.check(program)


class TestOverloading:
    def test_overloads_coexist(self):
        f_int = D.FuncDecl(
            "describe", (("x", D.INT),), D.INT, body=D.Var("x")
        )
        f_bool = D.FuncDecl(
            "describe", (("x", D.BOOL),), D.INT, body=D.IntLit(99)
        )
        program = D.Program(
            functions=(f_int, f_bool),
            main=D.Call("describe", (D.BoolLit(True),)),
        )
        assert D.run(program) == 99

    def test_duplicate_overload_rejected(self):
        f1 = D.FuncDecl("f", (("x", D.INT),), D.INT, body=D.Var("x"))
        f2 = D.FuncDecl("f", (("y", D.INT),), D.INT, body=D.IntLit(0))
        with pytest.raises(TypeError_) as err:
            D.check(D.Program(functions=(f1, f2)))
        assert "duplicate overload" in str(err.value)

    def test_no_matching_overload(self):
        f_int = D.FuncDecl("g", (("x", D.INT),), D.INT, body=D.Var("x"))
        program = D.Program(
            functions=(f_int,), main=D.Call("g", (D.BoolLit(True),))
        )
        with pytest.raises(TypeError_) as err:
            D.check(program)
        assert "no function 'g'" in str(err.value)


class TestImplicitInstantiation:
    def test_inferred_from_argument(self):
        assert D.run(byname_program()) == 16

    def test_selected_operation_travels_with_call(self):
        """Two instantiations of square at different operation sets."""
        number = D.Spec(
            "number", "U",
            (D.FnSig("mult", (D.TVar("U"), D.TVar("U")), D.TVar("U")),),
        )
        mult_int = D.FuncDecl(
            "mult", (("x", D.INT), ("y", D.INT)), D.INT, builtin="mul"
        )
        mult_bool = D.FuncDecl(
            "mult", (("x", D.BOOL), ("y", D.BOOL)), D.BOOL,
            body=D.Call("band_impl", (D.Var("x"), D.Var("y"))),
        )
        band_impl = D.FuncDecl(
            "band_impl", (("a", D.BOOL), ("b", D.BOOL)), D.BOOL,
            body=D.If(D.Var("a"), D.Var("b"), D.BoolLit(False)),
        )
        square = D.ForallFunc(
            "square", ("T",), (D.Assertion("number", "T"),),
            (("x", D.TVar("T")),), D.TVar("T"),
            D.Call("mult", (D.Var("x"), D.Var("x"))),
        )
        program = D.Program(
            specs=(number,),
            functions=(mult_int, mult_bool, band_impl),
            foralls=(square,),
            main=D.Let(
                "a", D.Call("square", (D.IntLit(5),)),
                D.Var("a"),
            ),
        )
        assert D.run(program) == 25

    def test_forall_calling_forall(self):
        number = D.Spec(
            "number", "U",
            (D.FnSig("mult", (D.TVar("U"), D.TVar("U")), D.TVar("U")),),
        )
        mult_int = D.FuncDecl(
            "mult", (("x", D.INT), ("y", D.INT)), D.INT, builtin="mul"
        )
        square = D.ForallFunc(
            "square", ("T",), (D.Assertion("number", "T"),),
            (("x", D.TVar("T")),), D.TVar("T"),
            D.Call("mult", (D.Var("x"), D.Var("x"))),
        )
        fourth = D.ForallFunc(
            "fourth", ("T",), (D.Assertion("number", "T"),),
            (("x", D.TVar("T")),), D.TVar("T"),
            D.Call("square", (D.Call("square", (D.Var("x"),)),)),
        )
        program = D.Program(
            specs=(number,), functions=(mult_int,),
            foralls=(square, fourth),
            main=D.Call("fourth", (D.IntLit(2),)),
        )
        assert D.run(program) == 16

    def test_assertion_unsatisfied_inside_forall(self):
        number = D.Spec(
            "number", "U",
            (D.FnSig("mult", (D.TVar("U"), D.TVar("U")), D.TVar("U")),),
        )
        square = D.ForallFunc(
            "square", ("T",), (D.Assertion("number", "T"),),
            (("x", D.TVar("T")),), D.TVar("T"),
            D.Call("mult", (D.Var("x"), D.Var("x"))),
        )
        # naked has no assertion, so square(x) inside it must fail.
        naked = D.ForallFunc(
            "naked", ("T",), (),
            (("x", D.TVar("T")),), D.TVar("T"),
            D.Call("square", (D.Var("x"),)),
        )
        program = D.Program(
            specs=(number,), foralls=(square, naked), main=D.IntLit(0)
        )
        with pytest.raises(TypeError_) as err:
            D.check(program)
        assert "not satisfiable" in str(err.value) or "not in scope" in str(err.value)
