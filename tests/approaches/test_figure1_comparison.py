"""Figure 1 across all five languages, plus the comparison table probes."""

from repro.approaches.comparison import (
    LANGUAGES,
    build_table,
    format_table,
    verify_table,
)
from repro.approaches.figure1 import run_all


class TestFigure1:
    def test_all_five_compute_sixteen(self):
        results = run_all()
        assert set(results) == {
            "subtyping", "typeclasses", "structural", "byname", "fg"
        }
        assert all(v == 16 for v in results.values()), results


class TestComparisonTable:
    def test_every_probe_passes(self):
        verify_table()

    def test_fg_dominates_on_concept_features(self):
        rows = {r.feature: r for r in build_table()}
        for feature in [
            "scoped-conformance",
            "multi-type-constraints",
            "associated-types",
            "same-type-constraints",
            "constraint-composition",
        ]:
            row = rows[feature]
            assert row.support["fg"] is True
            for lang in LANGUAGES:
                if lang != "fg":
                    assert row.support[lang] is False, (feature, lang)

    def test_fg_lacks_implicit_instantiation(self):
        # Honest reproduction: the paper lists this as future work.
        rows = {r.feature: r for r in build_table()}
        assert rows["implicit-instantiation"].support["fg"] is False

    def test_subtyping_not_retroactive(self):
        rows = {r.feature: r for r in build_table()}
        assert rows["retroactive-modeling"].support["subtyping"] is False

    def test_table_renders(self):
        text = format_table()
        assert "scoped-conformance" in text
        assert "fg" in text.splitlines()[0]
        # Same number of columns in every row.
        assert len({len(line.split("  ")) for line in text.splitlines()[2:]}) >= 1
