"""Unit tests for the CLU-like structural-matching mini-language (Figure 1c)."""

import pytest

from repro.approaches import structural as C
from repro.approaches.figure1 import structural_program
from repro.diagnostics.errors import TypeError_


class TestFigure1c:
    def test_square_int(self):
        assert C.run(structural_program()) == 16

    def test_type_is_int(self):
        assert C.check(structural_program()) == C.INT


class TestStructuralMembership:
    def test_int_in_number(self):
        checker = C.Checker(structural_program())
        checker.check_membership(C.INT, "number")  # must not raise

    def test_bool_not_in_number(self):
        checker = C.Checker(structural_program())
        with pytest.raises(TypeError_) as err:
            checker.check_membership(C.BOOL, "number")
        assert "no operation 'mul'" in str(err.value)

    def test_wrong_signature_not_member(self):
        # A cluster with a `mul` of the wrong shape is not in `number`.
        base = structural_program()
        bad = C.Cluster(
            "weird",
            (
                C.ClusterOp(
                    "mul",
                    (("a", C.TCluster("weird")),),  # unary!
                    C.TCluster("weird"),
                    body=C.Var("a"),
                ),
            ),
        )
        program = C.Program(
            type_sets=base.type_sets, clusters=(bad,), procs=base.procs,
            main=base.main,
        )
        checker = C.Checker(program)
        with pytest.raises(TypeError_) as err:
            checker.check_membership(C.TCluster("weird"), "number")
        assert "signature" in str(err.value)

    def test_accidental_structural_match_admitted(self):
        """The structural pitfall: any same-shaped `mul` is admitted."""
        base = structural_program()
        accidental = C.Cluster(
            "dim",
            (
                C.ClusterOp(
                    "mul",
                    (("a", C.TCluster("dim")), ("b", C.TCluster("dim"))),
                    C.TCluster("dim"),
                    body=C.Var("a"),
                ),
            ),
        )
        program = C.Program(
            type_sets=base.type_sets, clusters=(accidental,),
            procs=base.procs, main=base.main,
        )
        C.Checker(program).check_membership(C.TCluster("dim"), "number")


class TestExplicitInstantiation:
    def test_missing_type_args_rejected(self):
        base = structural_program()
        program = C.Program(
            type_sets=base.type_sets, procs=base.procs,
            main=C.ProcCall("square", (), (C.IntLit(4),)),
        )
        with pytest.raises(TypeError_) as err:
            C.check(program)
        assert "type argument" in str(err.value)

    def test_membership_checked_at_instantiation(self):
        base = structural_program()
        program = C.Program(
            type_sets=base.type_sets, procs=base.procs,
            main=C.ProcCall("square", (C.BOOL,), (C.BoolLit(True),)),
        )
        with pytest.raises(TypeError_):
            C.check(program)

    def test_nested_generic_propagates_where(self):
        # fourth = proc[t] where t in number: calls square[t] — legal
        # because t carries the same clause.
        base = structural_program()
        fourth = C.Proc(
            "fourth",
            type_params=("t",),
            where=(C.WhereClause("t", "number"),),
            params=(("a", C.TVar("t")),),
            ret=C.TVar("t"),
            body=C.ProcCall(
                "square", (C.TVar("t"),),
                (C.ProcCall("square", (C.TVar("t"),), (C.Var("a"),)),),
            ),
        )
        program = C.Program(
            type_sets=base.type_sets,
            procs=base.procs + (fourth,),
            main=C.ProcCall("fourth", (C.INT,), (C.IntLit(2),)),
        )
        assert C.run(program) == 16

    def test_nested_generic_without_where_rejected(self):
        base = structural_program()
        bad = C.Proc(
            "bad",
            type_params=("t",),
            where=(),  # no clause: t not known to be in number
            params=(("a", C.TVar("t")),),
            ret=C.TVar("t"),
            body=C.ProcCall("square", (C.TVar("t"),), (C.Var("a"),)),
        )
        program = C.Program(
            type_sets=base.type_sets, procs=base.procs + (bad,),
            main=C.IntLit(0),
        )
        with pytest.raises(TypeError_) as err:
            C.check(program)
        assert "not known to be in type set" in str(err.value)


class TestOpCalls:
    def test_dollar_call_on_concrete_type(self):
        program = C.Program(
            main=C.OpCall(C.INT, "add", (C.IntLit(40), C.IntLit(2)))
        )
        assert C.run(program) == 42

    def test_dollar_call_unknown_op(self):
        program = C.Program(
            main=C.OpCall(C.INT, "frobnicate", (C.IntLit(1),))
        )
        with pytest.raises(TypeError_):
            C.check(program)

    def test_user_cluster_op_body(self):
        counter = C.Cluster(
            "ctr",
            (
                C.ClusterOp(
                    "bump2",
                    (("a", C.INT),),
                    C.INT,
                    body=C.OpCall(C.INT, "add", (C.Var("a"), C.IntLit(2))),
                ),
            ),
        )
        program = C.Program(
            clusters=(counter,),
            main=C.OpCall(C.TCluster("ctr"), "bump2", (C.IntLit(40),)),
        )
        assert C.run(program) == 42

    def test_duplicate_cluster_rejected(self):
        with pytest.raises(TypeError_):
            C.Checker(
                C.Program(clusters=(C.INT_CLUSTER,))
            )
