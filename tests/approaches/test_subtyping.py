"""Unit tests for the subtype-bounds mini-language (Figure 1a)."""

import pytest

from repro.approaches import subtyping as S
from repro.approaches.figure1 import subtyping_program
from repro.diagnostics.errors import TypeError_


def number_interface():
    return S.Interface(
        "Number", ("U",), (S.MethodSig("mult", (S.TVar("U"),), S.TVar("U")),)
    )


class TestFigure1a:
    def test_square_bigint(self):
        assert S.run(subtyping_program()) == 16

    def test_type_is_int(self):
        assert S.check(subtyping_program()) == S.INT


class TestSubtyping:
    def test_class_subtype_of_implemented_interface(self):
        checker = S.Checker(subtyping_program())
        assert checker.is_subtype(
            S.TName("BigInt"), S.TName("Number", (S.TName("BigInt"),))
        )

    def test_not_subtype_of_unrelated(self):
        checker = S.Checker(subtyping_program())
        assert not checker.is_subtype(
            S.TName("BigInt"), S.TName("Number", (S.INT,))
        )

    def test_reflexive(self):
        checker = S.Checker(subtyping_program())
        assert checker.is_subtype(S.INT, S.INT)


class TestConformanceChecking:
    def test_missing_method_rejected(self):
        cls = S.ClassDecl(
            "Bad",
            implements=(S.TName("Number", (S.TName("Bad"),)),),
            fields=(("value", S.INT),),
            methods=(),
        )
        program = S.Program(
            interfaces=(number_interface(),), classes=(cls,), main=S.IntLit(0)
        )
        with pytest.raises(TypeError_) as err:
            S.check(program)
        assert "does not implement" in str(err.value)

    def test_wrong_signature_rejected(self):
        cls = S.ClassDecl(
            "Bad",
            implements=(S.TName("Number", (S.TName("Bad"),)),),
            fields=(("value", S.INT),),
            methods=(
                S.Method("mult", (("x", S.INT),), S.INT, S.Var("x")),
            ),
        )
        program = S.Program(
            interfaces=(number_interface(),), classes=(cls,), main=S.IntLit(0)
        )
        with pytest.raises(TypeError_) as err:
            S.check(program)
        assert "wrong signature" in str(err.value)


class TestBounds:
    def test_unbounded_param_cannot_call_methods(self):
        func = S.GenericFunc(
            "f",
            type_params=(S.TypeParam("T"),),
            params=(("x", S.TVar("T")),),
            ret=S.TVar("T"),
            body=S.MethodCall(S.Var("x"), "mult", (S.Var("x"),)),
        )
        program = S.Program(functions=(func,), main=S.IntLit(0))
        with pytest.raises(TypeError_) as err:
            S.check(program)
        assert "no bound" in str(err.value)

    def test_bound_not_satisfied(self):
        base = subtyping_program()
        # int is not a subtype of Number<int>.
        program = S.Program(
            interfaces=base.interfaces,
            classes=base.classes,
            functions=base.functions,
            main=S.Call("square", (S.IntLit(4),)),
        )
        with pytest.raises(TypeError_):
            S.check(program)

    def test_explicit_type_args_accepted(self):
        base = subtyping_program()
        program = S.Program(
            interfaces=base.interfaces,
            classes=base.classes,
            functions=base.functions,
            main=S.FieldAccess(
                S.Call(
                    "square",
                    (S.New("BigInt", (S.IntLit(3),)),),
                    type_args=(S.TName("BigInt"),),
                ),
                "value",
            ),
        )
        assert S.run(program) == 9


class TestInference:
    def test_inferred_from_argument(self):
        base = subtyping_program()
        assert S.run(base) == 16  # no explicit type args in figure1

    def test_uninferable_rejected(self):
        func = S.GenericFunc(
            "weird",
            type_params=(S.TypeParam("T"),),
            params=(("x", S.INT),),
            ret=S.INT,
            body=S.Var("x"),
        )
        program = S.Program(
            functions=(func,), main=S.Call("weird", (S.IntLit(1),))
        )
        with pytest.raises(TypeError_) as err:
            S.check(program)
        assert "cannot infer" in str(err.value)


class TestEvaluation:
    def test_vtable_dispatch(self):
        # Two classes implementing the same interface dispatch differently.
        iface = number_interface()
        doubler = S.ClassDecl(
            "Doubler",
            implements=(S.TName("Number", (S.TName("Doubler"),)),),
            fields=(("value", S.INT),),
            methods=(
                S.Method(
                    "mult",
                    (("x", S.TName("Doubler")),),
                    S.TName("Doubler"),
                    S.New(
                        "Doubler",
                        (S.PrimOp("add", (
                            S.FieldAccess(S.Var("this"), "value"),
                            S.FieldAccess(S.Var("x"), "value"),
                        )),),
                    ),
                ),
            ),
        )
        square = S.GenericFunc(
            "square",
            type_params=(S.TypeParam("T", S.TName("Number", (S.TVar("T"),))),),
            params=(("x", S.TVar("T")),),
            ret=S.TVar("T"),
            body=S.MethodCall(S.Var("x"), "mult", (S.Var("x"),)),
        )
        program = S.Program(
            interfaces=(iface,),
            classes=(doubler,),
            functions=(square,),
            main=S.FieldAccess(
                S.Call("square", (S.New("Doubler", (S.IntLit(4),)),)), "value"
            ),
        )
        assert S.run(program) == 8

    def test_let_and_if(self):
        program = S.Program(
            main=S.Let(
                "x",
                S.IntLit(5),
                S.If(
                    S.PrimOp("lt", (S.Var("x"), S.IntLit(10))),
                    S.PrimOp("mul", (S.Var("x"), S.Var("x"))),
                    S.IntLit(0),
                ),
            )
        )
        assert S.run(program) == 25
