"""Unit tests for the type-class mini-language (Figure 1b)."""

import pytest

from repro.approaches import typeclasses as B
from repro.approaches.figure1 import typeclasses_program
from repro.diagnostics.errors import TypeError_


class TestFigure1b:
    def test_square_int(self):
        assert B.run(typeclasses_program()) == 16

    def test_type_is_int(self):
        assert B.check(typeclasses_program()) == B.INT


class TestGlobalInstances:
    def test_overlapping_instances_rejected(self):
        base = typeclasses_program()
        dup = B.InstanceDecl("Number", B.INT, (("mult", B.Var("primMulInt")),))
        program = B.Program(
            classes=base.classes,
            instances=base.instances + (dup,),
            functions=base.functions,
            main=base.main,
        )
        with pytest.raises(TypeError_) as err:
            B.check(program)
        assert "overlapping" in str(err.value)

    def test_missing_instance_at_use(self):
        base = typeclasses_program()
        program = B.Program(
            classes=base.classes,
            instances=(),  # no Number Int
            functions=base.functions,
            main=base.main,
        )
        with pytest.raises(TypeError_) as err:
            B.check(program)
        assert "no instance" in str(err.value)

    def test_instance_of_unknown_class(self):
        with pytest.raises(TypeError_):
            B.check(
                B.Program(
                    instances=(B.InstanceDecl("Nope", B.INT, ()),),
                )
            )

    def test_instance_wrong_methods(self):
        cls = B.ClassDecl("C", "u", (("op", B.TVar("u")),))
        inst = B.InstanceDecl("C", B.INT, ())
        with pytest.raises(TypeError_) as err:
            B.check(B.Program(classes=(cls,), instances=(inst,)))
        assert "must define" in str(err.value)

    def test_instance_method_wrong_type(self):
        cls = B.ClassDecl("C", "u", (("op", B.TVar("u")),))
        inst = B.InstanceDecl("C", B.INT, (("op", B.BoolLit(True)),))
        with pytest.raises(TypeError_) as err:
            B.check(B.Program(classes=(cls,), instances=(inst,)))
        assert "expected Int" in str(err.value)


class TestMethodNamespace:
    def test_shared_method_name_rejected(self):
        """Section 2: in Haskell two classes in one module may not share a
        member name (unlike F_G concepts)."""
        c1 = B.ClassDecl("A", "u", (("op", B.TVar("u")),))
        c2 = B.ClassDecl("B", "u", (("op", B.TVar("u")),))
        with pytest.raises(TypeError_) as err:
            B.check(B.Program(classes=(c1, c2)))
        assert "global namespace" in str(err.value)


class TestConstraints:
    def test_constraint_resolved_at_instantiation(self):
        assert B.run(typeclasses_program()) == 16

    def test_unconstrained_tyvar_method_call_rejected(self):
        number = B.ClassDecl(
            "Number", "u",
            (("mult", B.TFn((B.TVar("u"), B.TVar("u")), B.TVar("u"))),),
        )
        bad = B.FuncDecl(
            "bad",
            type_params=("t",),
            constraints=(),  # forgot Number t
            params=(("x", B.TVar("t")),),
            ret=B.TVar("t"),
            body=B.Call(B.MethodRef("mult"), (B.Var("x"), B.Var("x"))),
        )
        with pytest.raises(TypeError_) as err:
            B.check(B.Program(classes=(number,), functions=(bad,)))
        assert "no constraint" in str(err.value)

    def test_constrained_generic_calls_generic(self):
        """A constrained function calling another, passing its dictionary."""
        number = B.ClassDecl(
            "Number", "u",
            (("mult", B.TFn((B.TVar("u"), B.TVar("u")), B.TVar("u"))),),
        )
        prim = B.FuncDecl(
            "primMulInt", (), (), (("a", B.INT), ("b", B.INT)), B.INT,
            B.PrimOp("mul", (B.Var("a"), B.Var("b"))),
        )
        inst = B.InstanceDecl("Number", B.INT, (("mult", B.Var("primMulInt")),))
        square = B.FuncDecl(
            "square", ("t",), (B.Constraint("Number", "t"),),
            (("x", B.TVar("t")),), B.TVar("t"),
            B.Call(B.MethodRef("mult"), (B.Var("x"), B.Var("x"))),
        )
        fourth = B.FuncDecl(
            "fourth", ("t",), (B.Constraint("Number", "t"),),
            (("x", B.TVar("t")),), B.TVar("t"),
            B.Call(B.Var("square"), (B.Call(B.Var("square"), (B.Var("x"),)),)),
        )
        program = B.Program(
            classes=(number,),
            instances=(inst,),
            functions=(prim, square, fourth),
            main=B.Call(B.Var("fourth"), (B.IntLit(2),)),
        )
        assert B.run(program) == 16

    def test_recursive_generic_function(self):
        number = B.ClassDecl(
            "Number", "u",
            (("mult", B.TFn((B.TVar("u"), B.TVar("u")), B.TVar("u"))),),
        )
        prim = B.FuncDecl(
            "primMulInt", (), (), (("a", B.INT), ("b", B.INT)), B.INT,
            B.PrimOp("mul", (B.Var("a"), B.Var("b"))),
        )
        inst = B.InstanceDecl("Number", B.INT, (("mult", B.Var("primMulInt")),))
        # power-of-two by repeated squaring of 2 (structure test only).
        square = B.FuncDecl(
            "square", ("t",), (B.Constraint("Number", "t"),),
            (("x", B.TVar("t")),), B.TVar("t"),
            B.Call(B.MethodRef("mult"), (B.Var("x"), B.Var("x"))),
        )
        program = B.Program(
            classes=(number,), instances=(inst,),
            functions=(prim, square),
            main=B.Call(B.Var("square"), (B.Call(B.Var("square"), (B.IntLit(2),)),)),
        )
        assert B.run(program) == 16


class TestListInstances:
    def test_list_head_instance(self):
        eq = B.ClassDecl(
            "MyEq", "u", (("eqq", B.TFn((B.TVar("u"), B.TVar("u")), B.BOOL)),)
        )
        prim = B.FuncDecl(
            "eqIntList", (), (),
            (("a", B.TList(B.INT)), ("b", B.TList(B.INT))), B.BOOL,
            B.BoolLit(True),
        )
        inst = B.InstanceDecl("MyEq", B.TList(B.INT), (("eqq", B.Var("eqIntList")),))
        program = B.Program(
            classes=(eq,), instances=(inst,), functions=(prim,),
            main=B.Call(
                B.MethodRef("eqq"),
                (
                    B.ListLit((B.IntLit(1),), B.INT),
                    B.ListLit((B.IntLit(2),), B.INT),
                ),
            ),
        )
        assert B.run(program) is True
