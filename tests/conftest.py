"""Shared helpers for the test suite."""

import pytest

from repro.diagnostics.errors import TypeError_
from repro.fg import evaluate as fg_evaluate
from repro.fg import typecheck as fg_typecheck
from repro.fg import verify_translation
from repro.syntax import parse_fg


def run_src(source: str):
    """Parse, typecheck, translate, and evaluate F_G source."""
    return fg_evaluate(parse_fg(source))


def check_src(source: str):
    """Parse and typecheck F_G source; returns (fg_type, sf_term)."""
    return fg_typecheck(parse_fg(source))


def verify_src(source: str):
    """Theorem 1/2 check on F_G source; returns (fg_type, sf_type)."""
    return verify_translation(parse_fg(source))


def reject_src(source: str) -> TypeError_:
    """Assert the F_G source is ill-typed; returns the error."""
    with pytest.raises(TypeError_) as excinfo:
        check_src(source)
    return excinfo.value


@pytest.fixture
def prelude_run():
    from repro.prelude import run

    return run


@pytest.fixture
def prelude_check():
    from repro.prelude import typecheck

    return typecheck
