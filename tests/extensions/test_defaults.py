"""Concept-member defaults (section 6: 'defaults for concept members')."""

import pytest

from repro import extensions as ext
from repro.diagnostics.errors import TypeError_

EQ = r"""
concept Eq<t> {
  eq : fn(t, t) -> bool;
  neq : fn(t, t) -> bool = \x : t, y : t. bnot(Eq<t>.eq(x, y));
} in
"""


def reject(src: str) -> TypeError_:
    with pytest.raises(TypeError_) as err:
        ext.check(src)
    return err.value


class TestDefaults:
    def test_default_fills_missing_member(self):
        result = ext.run(EQ + r"""
        model Eq<int> { eq = ieq; } in
        (Eq<int>.neq(1, 2), Eq<int>.neq(3, 3))
        """)
        assert result == (True, False)

    def test_explicit_override_wins(self):
        result = ext.run(EQ + r"""
        model Eq<int> {
          eq = ieq;
          neq = \x : int, y : int. false;
        } in
        Eq<int>.neq(1, 2)
        """)
        assert result is False

    def test_default_per_model(self):
        # The default is instantiated per model: bool's neq uses bool's eq.
        result = ext.run(EQ + r"""
        model Eq<int> { eq = ieq; } in
        model Eq<bool> { eq = beq; } in
        (Eq<int>.neq(1, 1), Eq<bool>.neq(true, false))
        """)
        assert result == (False, True)

    def test_missing_member_without_default_still_fails(self):
        err = reject(EQ + "model Eq<int> { } in 0")
        assert "eq" in err.message

    def test_default_used_in_generic_function(self):
        result = ext.run(EQ + r"""
        let distinct3 = /\t where Eq<t>. \a : t, b : t, c : t.
          band(Eq<t>.neq(a, b), band(Eq<t>.neq(b, c), Eq<t>.neq(a, c))) in
        model Eq<int> { eq = ieq; } in
        (distinct3[int](1, 2, 3), distinct3[int](1, 2, 1))
        """)
        assert result == (True, False)

    def test_chained_defaults_use_earlier_members(self):
        result = ext.run(r"""
        concept Ord<t> {
          lt : fn(t, t) -> bool;
          gt : fn(t, t) -> bool = \x : t, y : t. Ord<t>.lt(y, x);
          lte : fn(t, t) -> bool = \x : t, y : t. bnot(Ord<t>.gt(x, y));
        } in
        model Ord<int> { lt = ilt; } in
        (Ord<int>.gt(3, 2), Ord<int>.lte(2, 2), Ord<int>.lte(3, 2))
        """)
        assert result == (True, True, False)

    def test_default_referencing_later_member_rejected(self):
        err = reject(r"""
        concept Bad<t> {
          first : fn(t) -> t = \x : t. Bad<t>.second(x);
          second : fn(t) -> t;
        } in
        model Bad<int> { second = \x : int. x; } in
        0
        """)
        assert "not yet defined" in err.message or "earlier members" in err.message

    def test_default_wrong_type_rejected(self):
        err = reject(r"""
        concept C<t> {
          op : fn(t) -> t = \x : t. true;
        } in
        model C<int> { } in 0
        """)
        assert "has type" in err.message

    def test_default_for_unknown_member_rejected(self):
        from repro.fg import ast as G

        cdef = G.ConceptDef(
            "C", ("t",),
            members=(("op", G.TFn((G.TVar("t"),), G.TVar("t"))),),
            defaults=(("nope", G.IntLit(value=1)),),
        )
        with pytest.raises(TypeError_) as err:
            ext.typecheck(G.ConceptExpr(concept=cdef, body=G.IntLit(value=0)))
        assert "unknown member" in err.value.message

    def test_core_checker_rejects_defaults(self):
        from repro import fg_check

        with pytest.raises(TypeError_) as err:
            fg_check(EQ + "0")
        assert "extensions" in err.value.message

    def test_defaults_with_assoc_types(self):
        result = ext.run(r"""
        concept Pointed<c> {
          types value;
          get : fn(c) -> value;
          get_twice : fn(c) -> (value * value)
            = \x : c. (Pointed<c>.get(x), Pointed<c>.get(x));
        } in
        model Pointed<list int> {
          types value = int;
          get = \ls : list int. car[int](ls);
        } in
        Pointed<list int>.get_twice(cons[int](7, nil[int]))
        """)
        assert result == (7, 7)

    def test_verify_translation_with_defaults(self):
        ext.verify(EQ + r"""
        model Eq<int> { eq = ieq; } in
        Eq<int>.neq(1, 2)
        """)
