"""Named models and scoped adoption (section 6: 'named models')."""

import pytest

from repro import extensions as ext
from repro.diagnostics.errors import TypeError_

HEADER = r"""
concept Monoid<t> { op : fn(t, t) -> t; id : t; } in
let fold3 = /\t where Monoid<t>. \a : t, b : t, c : t.
  Monoid<t>.op(a, Monoid<t>.op(b, c)) in
"""


def reject(src: str) -> TypeError_:
    with pytest.raises(TypeError_) as err:
        ext.check(src)
    return err.value


class TestNamedModels:
    def test_use_selects_model(self):
        result = ext.run(HEADER + r"""
        model add = Monoid<int> { op = iadd; id = 0; } in
        model mul = Monoid<int> { op = imult; id = 1; } in
        (use add in fold3[int](1, 2, 3), use mul in fold3[int](2, 3, 4))
        """)
        assert result == (6, 24)

    def test_named_model_not_implicit(self):
        err = reject(HEADER + r"""
        model add = Monoid<int> { op = iadd; id = 0; } in
        fold3[int](1, 2, 3)
        """)
        assert "no model of Monoid<int>" in err.message

    def test_use_unknown_name(self):
        err = reject(HEADER + "use nothing in 0")
        assert "unknown named model" in err.message

    def test_duplicate_name_rejected(self):
        err = reject(HEADER + r"""
        model m = Monoid<int> { op = iadd; id = 0; } in
        model m = Monoid<int> { op = imult; id = 1; } in
        0
        """)
        assert "already defined" in err.message

    def test_named_model_checked_at_declaration(self):
        err = reject(HEADER + r"""
        model bad = Monoid<int> { op = ilt; id = 0; } in
        0
        """)
        assert "has type" in err.message

    def test_inner_use_shadows_outer(self):
        result = ext.run(HEADER + r"""
        model add = Monoid<int> { op = iadd; id = 0; } in
        model mul = Monoid<int> { op = imult; id = 1; } in
        use add in
        (fold3[int](1, 2, 3), use mul in fold3[int](1, 2, 3))
        """)
        assert result == (6, 6)

    def test_use_multiple_names(self):
        result = ext.run(r"""
        concept A<t> { fa : fn(t) -> t; } in
        concept B<t> { fb : fn(t) -> t; } in
        model ma = A<int> { fa = \x : int. iadd(x, 1); } in
        model mb = B<int> { fb = \x : int. imult(x, 2); } in
        use ma, mb in A<int>.fa(B<int>.fb(10))
        """)
        assert result == 21

    def test_named_model_with_assoc_types(self):
        result = ext.run(r"""
        concept Iterator<I> {
          types elt;
          curr : fn(I) -> elt;
        } in
        model li = Iterator<list int> {
          types elt = int;
          curr = \ls : list int. car[int](ls);
        } in
        use li in iadd(Iterator<list int>.curr(cons[int](41, nil[int])), 1)
        """)
        assert result == 42

    def test_verify_translation(self):
        ext.verify(HEADER + r"""
        model add = Monoid<int> { op = iadd; id = 0; } in
        use add in fold3[int](1, 2, 3)
        """)

    def test_core_checker_rejects_extension_nodes(self):
        from repro import fg_check

        with pytest.raises(TypeError_) as err:
            fg_check(
                "concept C<t> { } in model m = C<int> { } in 0"
            )
        assert "extensions" in err.value.message
