"""Parameterized models (section 6: Haskell's parameterized instances)."""

import pytest

from repro import extensions as ext
from repro.diagnostics.errors import TypeError_

MONOID = r"""
concept Monoid<t> { op : fn(t, t) -> t; id : t; } in
let mconcat = /\t where Monoid<t>.
  fix (\mc : fn(list t) -> t. \ls : list t.
    if null[t](ls) then Monoid<t>.id
    else Monoid<t>.op(car[t](ls), mc(cdr[t](ls)))) in
"""

LIST_MONOID = r"""
model forall t. Monoid<list t> {
  op = fix (\app : fn(list t, list t) -> list t.
    \a : list t, b : list t.
      if null[t](a) then b
      else cons[t](car[t](a), app(cdr[t](a), b)));
  id = nil[t];
} in
"""


def reject(src: str) -> TypeError_:
    with pytest.raises(TypeError_) as err:
        ext.check(src)
    return err.value


class TestParamModels:
    def test_list_monoid_concat(self):
        result = ext.run(MONOID + LIST_MONOID + r"""
        mconcat[list int](
          cons[list int](cons[int](1, nil[int]),
            cons[list int](cons[int](2, cons[int](3, nil[int])),
              nil[list int])))
        """)
        assert result == [1, 2, 3]

    def test_instantiates_at_any_element_type(self):
        result = ext.run(MONOID + LIST_MONOID + r"""
        mconcat[list bool](
          cons[list bool](cons[bool](true, nil[bool]),
            cons[list bool](cons[bool](false, nil[bool]), nil[list bool])))
        """)
        assert result == [True, False]

    def test_nested_instantiation(self):
        # Monoid<list (list int)> resolves through the same family.
        result = ext.run(MONOID + LIST_MONOID + r"""
        mconcat[list list int](
          cons[list list int](
            cons[list int](cons[int](7, nil[int]), nil[list int]),
            nil[list list int]))
        """)
        assert result == [[7]]

    def test_member_access_through_family(self):
        result = ext.run(MONOID + LIST_MONOID + r"""
        Monoid<list int>.op(cons[int](1, nil[int]), cons[int](2, nil[int]))
        """)
        assert result == [1, 2]

    def test_plain_model_preferred_when_present(self):
        # An inner plain model shadows the family.
        result = ext.run(MONOID + LIST_MONOID + r"""
        model Monoid<list int> {
          op = \a : list int, b : list int. a;
          id = nil[int];
        } in
        Monoid<list int>.op(cons[int](1, nil[int]), cons[int](2, nil[int]))
        """)
        assert result == [1]

    def test_no_match_for_other_types(self):
        err = reject(MONOID + LIST_MONOID + "mconcat[int](nil[int])")
        assert "no model of Monoid<int>" in err.message

    def test_param_must_appear_in_head(self):
        err = reject(r"""
        concept C<t> { pick : t; } in
        model forall a. C<int> { pick = 0; } in
        0
        """)
        assert "do not appear" in err.message


class TestConstrainedFamilies:
    SETUP = r"""
    concept Semigroup<t> { op : fn(t, t) -> t; } in
    let twice = /\t where Semigroup<t>. \x : t. Semigroup<t>.op(x, x) in
    model Semigroup<int> { op = iadd; } in
    model forall t where Semigroup<t>. Semigroup<list t> {
      op = fix (\z : fn(list t, list t) -> list t.
        \a : list t, b : list t.
          if null[t](a) then nil[t]
          else if null[t](b) then nil[t]
          else cons[t](Semigroup<t>.op(car[t](a), car[t](b)),
                       z(cdr[t](a), cdr[t](b))));
    } in
    """

    def test_elementwise_semigroup(self):
        result = ext.run(
            self.SETUP + "twice[list int](cons[int](1, cons[int](2, nil[int])))"
        )
        assert result == [2, 4]

    def test_recursive_constraint_resolution(self):
        # list (list int) requires Semigroup<list int> requires Semigroup<int>.
        result = ext.run(
            self.SETUP
            + "twice[list list int](cons[list int](cons[int](3, nil[int]), "
            "nil[list int]))"
        )
        assert result == [[6]]

    def test_unsatisfied_inner_constraint(self):
        err = reject(r"""
        concept Semigroup<t> { op : fn(t, t) -> t; } in
        model forall t where Semigroup<t>. Semigroup<list t> {
          op = \a : list t, b : list t. a;
        } in
        Semigroup<list bool>.op(nil[bool], nil[bool])
        """)
        # No Semigroup<bool> anywhere, so the family cannot fire.
        assert "no model of Semigroup<list bool>" in err.message

    def test_verify_translation(self):
        ext.verify(
            self.SETUP + "twice[list int](cons[int](5, nil[int]))"
        )


class TestParamModelsWithAssocTypes:
    def test_iterator_family_for_lists(self):
        src = r"""
        concept Iterator<I> {
          types elt;
          next : fn(I) -> I;
          curr : fn(I) -> elt;
          at_end : fn(I) -> bool;
        } in
        model forall t. Iterator<list t> {
          types elt = t;
          next = \ls : list t. cdr[t](ls);
          curr = \ls : list t. car[t](ls);
          at_end = \ls : list t. null[t](ls);
        } in
        iadd(Iterator<list int>.curr(cons[int](41, nil[int])), 1)
        """
        assert ext.run(src) == 42

    def test_family_assoc_in_generic_context(self):
        src = r"""
        concept Iterator<I> {
          types elt;
          curr : fn(I) -> elt;
        } in
        concept Show<t> { show : fn(t) -> int; } in
        model forall t. Iterator<list t> {
          types elt = t;
          curr = \ls : list t. car[t](ls);
        } in
        model Show<int> { show = \x : int. x; } in
        Show<Iterator<list int>.elt>.show(7)
        """
        assert ext.run(src) == 7
