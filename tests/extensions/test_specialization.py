"""Algorithm specialization (section 6: dispatch on where clauses)."""

import pytest

from repro import extensions as ext
from repro.diagnostics.errors import TypeError_

HEADER = r"""
concept Iterator<I> {
  next : fn(I) -> I;
} in
concept RandomAccessIterator<I> {
  refines Iterator<I>;
  advance_by : fn(I, int) -> I;
} in
overload advance {
  /\I where Iterator<I>. \it : I, n : int.
    (fix (\go : fn(I, int) -> I. \j : I, k : int.
      if ile(k, 0) then j else go(Iterator<I>.next(j), isub(k, 1))))(it, n);
  /\I where RandomAccessIterator<I>. \it : I, n : int.
    RandomAccessIterator<I>.advance_by(it, n);
} in
model Iterator<list int> { next = \l : list int. cdr[int](l); } in
model Iterator<int> { next = \p : int. iadd(p, 1); } in
model RandomAccessIterator<int> { advance_by = \p : int, n : int. iadd(p, n); } in
"""


def reject(src: str) -> TypeError_:
    with pytest.raises(TypeError_) as err:
        ext.check(src)
    return err.value


class TestSpecialization:
    def test_most_specific_wins(self):
        # int has the RandomAccess model, so the O(1) alternative fires.
        assert ext.run(HEADER + "advance[int](100, 7)") == 107

    def test_general_version_for_forward_iterators(self):
        result = ext.run(
            HEADER + "car[int](advance[list int]"
            "(cons[int](1, cons[int](2, cons[int](3, nil[int]))), 2))"
        )
        assert result == 3

    def test_both_dispatches_in_one_program(self):
        result = ext.run(HEADER + r"""
        ( advance[int](0, 5),
          car[int](advance[list int](cons[int](9, nil[int]), 0)) )
        """)
        assert result == (5, 9)

    def test_no_applicable_alternative(self):
        err = reject(HEADER + "advance[bool](true, 1)")
        assert "no alternative" in err.message

    def test_ambiguous_alternatives_rejected(self):
        src = r"""
        concept A<t> { fa : fn(t) -> t; } in
        concept B<t> { fb : fn(t) -> t; } in
        overload f {
          /\t where A<t>. \x : t. A<t>.fa(x);
          /\t where B<t>. \x : t. B<t>.fb(x);
        } in
        model A<int> { fa = \x : int. x; } in
        model B<int> { fb = \x : int. x; } in
        f[int](1)
        """
        err = reject(src)
        assert "ambiguous" in err.message

    def test_disjoint_alternatives_disambiguated_by_models(self):
        # Same alternatives, but only one concept is modeled at int.
        src = r"""
        concept A<t> { fa : fn(t) -> t; } in
        concept B<t> { fb : fn(t) -> t; } in
        overload f {
          /\t where A<t>. \x : t. A<t>.fa(x);
          /\t where B<t>. \x : t. B<t>.fb(x);
        } in
        model A<int> { fa = \x : int. iadd(x, 1); } in
        f[int](1)
        """
        assert ext.run(src) == 2

    def test_overload_name_not_a_value(self):
        err = reject(HEADER + "advance")
        assert "unbound" in err.message

    def test_scoped_models_shift_dispatch(self):
        # Adding the RandomAccess model in an inner scope changes which
        # alternative an identical instantiation selects.
        src = r"""
        concept Iterator<I> { next : fn(I) -> I; } in
        concept RA<I> { refines Iterator<I>; jump : fn(I, int) -> I; } in
        overload adv {
          /\I where Iterator<I>. \it : I, n : int. 0;
          /\I where RA<I>. \it : I, n : int. 1;
        } in
        model Iterator<int> { next = \p : int. iadd(p, 1); } in
        ( adv[int](0, 0),
          model RA<int> { jump = \p : int, n : int. iadd(p, n); } in
          adv[int](0, 0) )
        """
        assert ext.run(src) == (0, 1)

    def test_verify_translation(self):
        ext.verify(HEADER + "advance[int](3, 4)")

    def test_empty_overload_rejected(self):
        err = reject("overload f { } in 0")
        assert "at least one" in err.message

    def test_non_generic_alternative_rejected(self):
        err = reject(r"overload f { \x : int. x; } in 0")
        assert "not a generic function" in err.message
