"""Associated types and same-type constraints (paper section 5)."""

from repro.fg import pretty_type
from repro.testing import check_src, reject_src, run_src, verify_src

ITER = r"""
concept Iterator<Iter> {
  types elt;
  next : fn(Iter) -> Iter;
  curr : fn(Iter) -> elt;
  at_end : fn(Iter) -> bool;
} in
"""

LIST_INT_ITER = r"""
model Iterator<list int> {
  types elt = int;
  next = \ls : list int. cdr[int](ls);
  curr = \ls : list int. car[int](ls);
  at_end = \ls : list int. null[int](ls);
} in
"""

MONOID = r"""
concept Semigroup<t> { binary_op : fn(t, t) -> t; } in
concept Monoid<t> { refines Semigroup<t>; identity_elt : t; } in
"""

INT_MONOID = r"""
model Semigroup<int> { binary_op = iadd; } in
model Monoid<int> { identity_elt = 0; } in
"""


class TestAssociatedTypeBasics:
    def test_model_must_assign_assoc(self):
        err = reject_src(ITER + r"""
        model Iterator<list int> {
          next = \ls : list int. cdr[int](ls);
          curr = \ls : list int. car[int](ls);
          at_end = \ls : list int. null[int](ls);
        } in 0
        """)
        assert "missing: elt" in err.message

    def test_model_rejects_unknown_assoc(self):
        err = reject_src(r"""
        concept C<t> { } in
        model C<int> { types s = int; } in 0
        """)
        assert "unexpected: s" in err.message

    def test_assoc_resolves_through_model(self):
        # Iterator<list int>.elt is int, so curr's result feeds iadd.
        src = ITER + LIST_INT_ITER + r"""
        iadd(Iterator<list int>.curr(cons[int](41, nil[int])), 1)
        """
        assert run_src(src) == 42

    def test_assoc_type_in_annotation(self):
        src = ITER + LIST_INT_ITER + r"""
        (\x : Iterator<list int>.elt. iadd(x, 1))(41)
        """
        assert run_src(src) == 42

    def test_assoc_type_without_model_rejected(self):
        err = reject_src(ITER + r"(\x : Iterator<bool>.elt. x)")
        assert "no model of" in err.message

    def test_assoc_unknown_member(self):
        err = reject_src(ITER + LIST_INT_ITER + r"(\x : Iterator<list int>.nope. x)(1)")
        assert "no associated type" in err.message

    def test_member_type_mentions_assoc(self):
        # The checker substitutes the assignment when checking members.
        err = reject_src(ITER + r"""
        model Iterator<list int> {
          types elt = bool;
          next = \ls : list int. cdr[int](ls);
          curr = \ls : list int. car[int](ls);
          at_end = \ls : list int. null[int](ls);
        } in 0
        """)
        # curr returns int but elt was assigned bool.
        assert "curr" in err.message


class TestGenericOverIterators:
    ACCUM = ITER + MONOID + r"""
    let accumulate = /\Iter where Iterator<Iter>, Monoid<Iterator<Iter>.elt>.
      fix (\accum : fn(Iter) -> Iterator<Iter>.elt.
        \it : Iter.
          if Iterator<Iter>.at_end(it)
          then Monoid<Iterator<Iter>.elt>.identity_elt
          else Monoid<Iterator<Iter>.elt>.binary_op(
                 Iterator<Iter>.curr(it),
                 accum(Iterator<Iter>.next(it)))) in
    """ + LIST_INT_ITER + INT_MONOID

    def test_accumulate_over_iterator(self):
        src = self.ACCUM + "accumulate[list int](cons[int](40, cons[int](2, nil[int])))"
        assert run_src(src) == 42
        verify_src(src)

    def test_result_type_resolves_to_int(self):
        fg_type, _ = check_src(
            self.ACCUM + "accumulate[list int](cons[int](1, nil[int]))"
        )
        assert pretty_type(fg_type) == "int"

    def test_extra_type_param_in_translation(self):
        """Section 5.2: the translation adds a type parameter per associated
        type — accumulate[list int] becomes accumulate[list int, int]."""
        from repro.systemf import ast as F

        _, sf = check_src(
            self.ACCUM + "accumulate[list int](cons[int](1, nil[int]))"
        )
        tyapps = []

        def walk(t):
            if isinstance(t, F.TyApp):
                tyapps.append(t)
            for field in ("fn", "bound", "body", "then", "else_", "cond", "tuple_"):
                child = getattr(t, field, None)
                if isinstance(child, F.Term):
                    walk(child)
            for field in ("args", "items"):
                for child in getattr(t, field, ()) or ():
                    if isinstance(child, F.Term):
                        walk(child)
            if isinstance(t, F.Lam):
                walk(t.body)
            if isinstance(t, F.TyLam):
                walk(t.body)
            if isinstance(t, F.Fix):
                walk(t.fn)

        walk(sf)
        accum_apps = [
            t for t in tyapps
            if isinstance(t.fn, F.Var) and t.fn.name == "accumulate"
        ]
        assert accum_apps, "no instantiation of accumulate found"
        # One explicit type argument (list int) plus one for elt (int).
        assert len(accum_apps[0].args) == 2
        assert accum_apps[0].args == (F.TList(F.INT), F.INT)


class TestSameTypeConstraints:
    MERGE_HEADER = ITER + r"""
    concept OutputIterator<Out, t> { put : fn(Out, t) -> Out; } in
    concept LessThanComparable<t> { less : fn(t, t) -> bool; } in
    """

    def test_merge_program(self):
        src = self.MERGE_HEADER + r"""
        let merge2 = /\Iter1, Iter2
            where Iterator<Iter1>, Iterator<Iter2>;
                  Iterator<Iter1>.elt == Iterator<Iter2>.elt.
          \i1 : Iter1, i2 : Iter2.
            if Iterator<Iter1>.at_end(i1) then Iterator<Iter2>.curr(i2)
            else Iterator<Iter1>.curr(i1) in
        """ + LIST_INT_ITER + r"""
        merge2[list int, list int](nil[int], cons[int](9, nil[int]))
        """
        assert run_src(src) == 9
        verify_src(src)

    def test_same_type_constraint_checked_at_instantiation(self):
        src = self.MERGE_HEADER + r"""
        model Iterator<list int> {
          types elt = int;
          next = \ls : list int. cdr[int](ls);
          curr = \ls : list int. car[int](ls);
          at_end = \ls : list int. null[int](ls);
        } in
        model Iterator<list bool> {
          types elt = bool;
          next = \ls : list bool. cdr[bool](ls);
          curr = \ls : list bool. car[bool](ls);
          at_end = \ls : list bool. null[bool](ls);
        } in
        let first_of = /\Iter1, Iter2
            where Iterator<Iter1>, Iterator<Iter2>;
                  Iterator<Iter1>.elt == Iterator<Iter2>.elt.
          \i1 : Iter1. Iterator<Iter1>.curr(i1) in
        first_of[list int, list bool](cons[int](1, nil[int]))
        """
        err = reject_src(src)
        assert "same-type constraint violated" in err.message

    def test_same_type_makes_elements_interchangeable(self):
        # Inside the body, elt(Iter1) and elt(Iter2) are one type.
        src = self.MERGE_HEADER + r"""
        let pick = /\I1, I2
            where Iterator<I1>, Iterator<I2>;
                  Iterator<I1>.elt == Iterator<I2>.elt.
          \a : I1, b : I2, flag : bool.
            if flag then Iterator<I1>.curr(a) else Iterator<I2>.curr(b) in
        """ + LIST_INT_ITER + r"""
        (pick[list int, list int](cons[int](1, nil[int]), cons[int](2, nil[int]), true),
         pick[list int, list int](cons[int](1, nil[int]), cons[int](2, nil[int]), false))
        """
        assert run_src(src) == (1, 2)
        verify_src(src)

    def test_without_same_type_constraint_rejected(self):
        # Same body, but no constraint: the branches have different types.
        src = self.MERGE_HEADER + r"""
        let pick = /\I1, I2 where Iterator<I1>, Iterator<I2>.
          \a : I1, b : I2, flag : bool.
            if flag then Iterator<I1>.curr(a) else Iterator<I2>.curr(b) in
        0
        """
        err = reject_src(src)
        assert "disagree" in err.message

    def test_full_merge_from_paper(self):
        src = self.MERGE_HEADER + r"""
        let copy = /\Iter, Out where Iterator<Iter>, OutputIterator<Out, Iterator<Iter>.elt>.
          fix (\cp : fn(Iter, Out) -> Out.
            \it : Iter, out : Out.
              if Iterator<Iter>.at_end(it) then out
              else cp(Iterator<Iter>.next(it),
                      OutputIterator<Out, Iterator<Iter>.elt>.put(out, Iterator<Iter>.curr(it)))) in
        let merge = /\Iter1, Iter2, Out
            where Iterator<Iter1>, Iterator<Iter2>,
                  OutputIterator<Out, Iterator<Iter1>.elt>,
                  LessThanComparable<Iterator<Iter1>.elt>;
                  Iterator<Iter1>.elt == Iterator<Iter2>.elt.
          fix (\m : fn(Iter1, Iter2, Out) -> Out.
            \i1 : Iter1, i2 : Iter2, out : Out.
              if Iterator<Iter1>.at_end(i1) then copy[Iter2, Out](i2, out)
              else if Iterator<Iter2>.at_end(i2) then copy[Iter1, Out](i1, out)
              else if LessThanComparable<Iterator<Iter1>.elt>.less(
                        Iterator<Iter1>.curr(i1), Iterator<Iter2>.curr(i2))
              then m(Iterator<Iter1>.next(i1), i2,
                     OutputIterator<Out, Iterator<Iter1>.elt>.put(out, Iterator<Iter1>.curr(i1)))
              else m(i1, Iterator<Iter2>.next(i2),
                     OutputIterator<Out, Iterator<Iter1>.elt>.put(out, Iterator<Iter2>.curr(i2)))) in
        """ + LIST_INT_ITER + r"""
        model OutputIterator<list int, int> {
          put = \out : list int, x : int. cons[int](x, out);
        } in
        model LessThanComparable<int> { less = ilt; } in
        let rev = fix (\r : fn(list int, list int) -> list int.
          \ls : list int, acc : list int.
            if null[int](ls) then acc
            else r(cdr[int](ls), cons[int](car[int](ls), acc))) in
        rev(merge[list int, list int, list int](
              cons[int](1, cons[int](4, nil[int])),
              cons[int](2, cons[int](3, nil[int])),
              nil[int]), nil[int])
        """
        assert run_src(src) == [1, 2, 3, 4]
        verify_src(src)


class TestTwoIteratorsShareFreshVar:
    def test_translation_uses_one_representative(self):
        """Section 5.2: after the same-type constraint both dictionaries
        mention the first fresh element variable (elt1), so the inner
        TyLam binds exactly vars + 2 assoc slots."""
        from repro.systemf import ast as F

        src = ITER + r"""
        let both = /\I1, I2
            where Iterator<I1>, Iterator<I2>;
                  Iterator<I1>.elt == Iterator<I2>.elt.
          \a : I1. a in
        0
        """
        _, sf = check_src(src)

        found = []

        def walk(t):
            if isinstance(t, F.TyLam):
                found.append(t)
            for attr in ("fn", "bound", "body", "then", "else_", "cond", "tuple_"):
                child = getattr(t, attr, None)
                if isinstance(child, F.Term):
                    walk(child)
            for attr in ("args", "items"):
                for child in getattr(t, attr, ()) or ():
                    if isinstance(child, F.Term):
                        walk(child)

        walk(sf)
        inner = [t for t in found if len(t.vars) == 4]
        assert inner, "expected a TyLam binding I1, I2 and two elt slots"
        lam = inner[0].body
        assert isinstance(lam, F.Lam)
        # Both dictionary types use the same (first) fresh variable.
        elt1 = inner[0].vars[2]
        d1, d2 = lam.params[0][1], lam.params[1][1]
        assert isinstance(d1, F.TTuple) and isinstance(d2, F.TTuple)
        # curr : fn(I) -> elt1 in both dictionaries.
        assert d1.items[1].result == F.TVar(elt1)
        assert d2.items[1].result == F.TVar(elt1)
