"""F_G typechecker: CPT, MDL, MEM rules and refinement (paper sections 3-4)."""

from repro.fg import pretty_type
from repro.testing import check_src, reject_src, run_src, verify_src

MONOID = r"""
concept Semigroup<t> { binary_op : fn(t, t) -> t; } in
concept Monoid<t> { refines Semigroup<t>; identity_elt : t; } in
"""

INT_MODELS = r"""
model Semigroup<int> { binary_op = iadd; } in
model Monoid<int> { identity_elt = 0; } in
"""


class TestConceptDeclaration:
    def test_simple_concept_scopes(self):
        assert run_src(MONOID + INT_MODELS + "Monoid<int>.identity_elt") == 0

    def test_unknown_refined_concept(self):
        err = reject_src("concept C<t> { refines Nope<t>; } in 0")
        assert "unknown concept" in err.message

    def test_duplicate_concept_in_scope(self):
        err = reject_src(
            "concept C<t> { } in concept C<u> { } in 0"
        )
        assert "already defined" in err.message

    def test_duplicate_params(self):
        err = reject_src("concept C<t, t> { } in 0")
        assert "duplicate" in err.message

    def test_duplicate_member_names(self):
        err = reject_src("concept C<t> { op : t; op : t; } in 0")
        assert "duplicate" in err.message

    def test_member_type_uses_unknown_var(self):
        err = reject_src("concept C<t> { op : fn(u) -> t; } in 0")
        assert "unbound type variable" in err.message

    def test_concept_escape_rejected(self):
        # Returning a generic function whose where clause mentions the
        # locally declared concept leaks it (CPT premise: c not in CV(t)).
        err = reject_src(
            r"concept C<t> { op : fn(t) -> t; } in"
            r" /\t where C<t>. \x : t. C<t>.op(x)"
        )
        assert "escapes" in err.message

    def test_concept_ok_when_result_is_ground(self):
        src = (
            r"concept C<t> { op : fn(t) -> t; } in"
            r" model C<int> { op = \x : int. imult(x, 3); } in"
            r" (/\t where C<t>. \x : t. C<t>.op(x))[int](14)"
        )
        assert run_src(src) == 42

    def test_multi_param_concept(self):
        src = r"""
        concept Convert<a, b> { convert : fn(a) -> b; } in
        model Convert<int, bool> { convert = \x : int. ineq(x, 0); } in
        Convert<int, bool>.convert(42)
        """
        assert run_src(src) is True


class TestModelDeclaration:
    def test_model_of_unknown_concept(self):
        err = reject_src("model Nope<int> { } in 0")
        assert "unknown concept" in err.message

    def test_model_arity_mismatch(self):
        err = reject_src(
            "concept C<a, b> { } in model C<int> { } in 0"
        )
        assert "2 type argument" in err.message

    def test_model_missing_member(self):
        err = reject_src(
            "concept C<t> { op : t; } in model C<int> { } in 0"
        )
        assert "missing: op" in err.message

    def test_model_extra_member(self):
        err = reject_src(
            "concept C<t> { } in model C<int> { op = 1; } in 0"
        )
        assert "unexpected: op" in err.message

    def test_model_member_wrong_type(self):
        err = reject_src(
            "concept C<t> { op : fn(t, t) -> t; } in"
            " model C<int> { op = ilt; } in 0"
        )
        assert "has type" in err.message

    def test_model_requires_refined_model(self):
        err = reject_src(
            MONOID + "model Monoid<int> { identity_elt = 0; } in 0"
        )
        assert "no model of Semigroup<int>" in err.message

    def test_model_duplicate_member_def(self):
        err = reject_src(
            "concept C<t> { op : t; } in"
            " model C<int> { op = 1; op = 2; } in 0"
        )
        assert "duplicate" in err.message

    def test_refined_members_accessible_through_derived(self):
        # Monoid<int>.binary_op reaches Semigroup's member via the path.
        assert run_src(MONOID + INT_MODELS + "Monoid<int>.binary_op(40, 2)") == 42

    def test_member_access_without_model(self):
        err = reject_src(MONOID + "Monoid<int>.identity_elt")
        assert "no model of Monoid<int>" in err.message

    def test_member_access_unknown_member(self):
        err = reject_src(MONOID + INT_MODELS + "Monoid<int>.nope")
        assert "no member" in err.message

    def test_deep_refinement_chain(self):
        src = r"""
        concept A<t> { fa : fn(t) -> t; } in
        concept B<t> { refines A<t>; fb : fn(t) -> t; } in
        concept C<t> { refines B<t>; fc : fn(t) -> t; } in
        model A<int> { fa = \x : int. iadd(x, 1); } in
        model B<int> { fb = \x : int. imult(x, 2); } in
        model C<int> { fc = \x : int. isub(x, 3); } in
        C<int>.fa(C<int>.fb(C<int>.fc(24)))
        """
        assert run_src(src) == 43

    def test_diamond_refinement(self):
        src = r"""
        concept Top<t> { base : t; } in
        concept Left<t> { refines Top<t>; } in
        concept Right<t> { refines Top<t>; } in
        concept Bottom<t> { refines Left<t>; refines Right<t>; } in
        model Top<int> { base = 7; } in
        model Left<int> { } in
        model Right<int> { } in
        model Bottom<int> { } in
        Bottom<int>.base
        """
        assert run_src(src) == 7

    def test_model_result_scoping(self):
        # Using the model only inside its scope is fine.
        src = MONOID + INT_MODELS + "Monoid<int>.binary_op(1, 2)"
        verify_src(src)


class TestGenericFunctions:
    def test_accumulate_figure5(self):
        src = MONOID + r"""
        let accumulate = /\t where Monoid<t>.
          fix (\accum : fn(list t) -> t.
            \ls : list t.
              if null[t](ls) then Monoid<t>.identity_elt
              else Monoid<t>.binary_op(car[t](ls), accum(cdr[t](ls)))) in
        """ + INT_MODELS + "accumulate[int](cons[int](1, cons[int](2, nil[int])))"
        assert run_src(src) == 3
        verify_src(src)

    def test_instantiation_needs_model(self):
        src = MONOID + r"""
        let f = /\t where Monoid<t>. \x : t. x in
        f[int](1)
        """
        err = reject_src(src)
        assert "no model of" in err.message

    def test_generic_type_display(self):
        # Returning the generic function itself from the concept scope would
        # leak the concept (CPT), so check its type against an environment
        # where the concepts pre-exist.
        from repro.fg import ast as G
        from repro.fg import type_of
        from repro.fg.env import Env
        from repro.syntax import parse_fg

        env = Env.initial()
        env = env.add_concept(
            G.ConceptDef(
                "Semigroup", ("t",),
                members=(("binary_op", G.TFn((G.TVar("t"), G.TVar("t")), G.TVar("t"))),),
            )
        )
        env = env.add_concept(
            G.ConceptDef(
                "Monoid", ("t",),
                refines=(G.ConceptReq("Semigroup", (G.TVar("t"),)),),
                members=(("identity_elt", G.TVar("t")),),
            )
        )
        term = parse_fg(r"/\t where Monoid<t>. \x : t. Monoid<t>.binary_op(x, x)")
        assert (
            pretty_type(type_of(term, env))
            == "forall t where Monoid<t>. fn(t) -> t"
        )

    def test_returning_generic_from_concept_scope_escapes(self):
        err = reject_src(
            MONOID + r"/\t where Monoid<t>. \x : t. Monoid<t>.binary_op(x, x)"
        )
        assert "escapes" in err.message

    def test_where_clause_requires_known_concept(self):
        err = reject_src(r"/\t where Nope<t>. 1")
        assert "unknown concept" in err.message

    def test_generic_function_passed_generically(self):
        # Instantiating a generic function inside another generic function:
        # the proxy model satisfies the requirement.
        src = MONOID + r"""
        let double = /\t where Semigroup<t>. \x : t. Semigroup<t>.binary_op(x, x) in
        let quadruple = /\t where Monoid<t>. \x : t. double[t](double[t](x)) in
        """ + INT_MODELS + "quadruple[int](10)"
        assert run_src(src) == 40
        verify_src(src)

    def test_multi_constraint(self):
        src = r"""
        concept Eq<t> { eq : fn(t, t) -> bool; } in
        concept Ord<t> { lt : fn(t, t) -> bool; } in
        let before_or_same = /\t where Eq<t>, Ord<t>.
          \a : t, b : t. bor(Ord<t>.lt(a, b), Eq<t>.eq(a, b)) in
        model Eq<int> { eq = ieq; } in
        model Ord<int> { lt = ilt; } in
        (before_or_same[int](1, 2), before_or_same[int](2, 2),
         before_or_same[int](3, 2))
        """
        assert run_src(src) == (True, True, False)

    def test_same_member_name_in_two_concepts(self):
        # Unlike Haskell (section 2), two concepts may share a member name.
        src = r"""
        concept A<t> { op : fn(t) -> t; } in
        concept B<t> { op : fn(t) -> t; } in
        model A<int> { op = \x : int. iadd(x, 1); } in
        model B<int> { op = \x : int. imult(x, 2); } in
        (A<int>.op(10), B<int>.op(10))
        """
        assert run_src(src) == (11, 20)
