"""Unit tests for the congruence-closure type-equality engine (section 5)."""

import pytest

from repro.diagnostics.errors import TypeError_
from repro.fg import ast as G
from repro.fg.congruence import CongruenceSolver, solver_for_equalities

A = G.TVar("a")
B = G.TVar("b")
C = G.TVar("c")
INT = G.INT
BOOL = G.BOOL


def assoc(concept, arg, member="elt"):
    return G.TAssoc(concept, (arg,), member)


class TestBasicEquality:
    def test_reflexive(self):
        s = CongruenceSolver()
        assert s.equal(A, A)
        assert s.equal(INT, INT)

    def test_distinct_without_equalities(self):
        s = CongruenceSolver()
        assert not s.equal(A, B)
        assert not s.equal(INT, BOOL)

    def test_merge_makes_equal(self):
        s = CongruenceSolver()
        s.merge(A, B)
        assert s.equal(A, B)
        assert s.equal(B, A)

    def test_transitivity(self):
        s = CongruenceSolver()
        s.merge(A, B)
        s.merge(B, C)
        assert s.equal(A, C)

    def test_merge_ground(self):
        s = CongruenceSolver()
        s.merge(A, INT)
        assert s.equal(A, INT)
        assert not s.equal(A, BOOL)


class TestCongruence:
    def test_constructor_congruence(self):
        # a = b  implies  list a = list b.
        s = CongruenceSolver()
        s.merge(A, B)
        assert s.equal(G.TList(A), G.TList(B))

    def test_fn_congruence(self):
        s = CongruenceSolver()
        s.merge(A, B)
        assert s.equal(G.TFn((A,), A), G.TFn((B,), B))

    def test_congruence_new_terms_after_merge(self):
        # Terms first interned *after* the merge still see the congruence.
        s = CongruenceSolver()
        s.merge(A, B)
        assert s.equal(G.TFn((G.TList(A), A), BOOL), G.TFn((G.TList(B), B), BOOL))

    def test_congruence_propagates_up(self):
        # list a = list b was asserted directly; then fn over them.
        s = CongruenceSolver()
        s.merge(G.TList(A), G.TList(B))
        assert s.equal(G.TFn((G.TList(A),), INT), G.TFn((G.TList(B),), INT))

    def test_no_injectivity(self):
        # list a = list b does NOT imply a = b (uninterpreted symbols).
        s = CongruenceSolver()
        s.merge(G.TList(A), G.TList(B))
        assert not s.equal(A, B)

    def test_assoc_congruence(self):
        # a = b implies Iterator<a>.elt = Iterator<b>.elt.
        s = CongruenceSolver()
        s.merge(A, B)
        assert s.equal(assoc("Iterator", A), assoc("Iterator", B))

    def test_assoc_member_distinguishes(self):
        s = CongruenceSolver()
        s.merge(A, B)
        assert not s.equal(
            G.TAssoc("Iterator", (A,), "elt"),
            G.TAssoc("Iterator", (B,), "other"),
        )

    def test_merge_chain_through_parents(self):
        # The classic: f(a)=a and a=b gives f(f(b)) = b.
        fa = G.TList(A)
        s = CongruenceSolver()
        s.merge(fa, A)
        s.merge(A, B)
        assert s.equal(G.TList(G.TList(B)), B)

    def test_arity_distinguishes(self):
        s = CongruenceSolver()
        assert not s.equal(G.TTuple((A,)), G.TTuple((A, A)))


class TestRepresentatives:
    def test_ground_preferred_over_var(self):
        s = CongruenceSolver()
        s.merge(A, INT)
        assert s.representative(A) == INT

    def test_var_preferred_over_assoc(self):
        s = CongruenceSolver()
        s.merge(G.TVar("elt1"), assoc("Iterator", A))
        assert s.representative(assoc("Iterator", A)) == G.TVar("elt1")

    def test_paper_merge_example_first_var_wins(self):
        # elt1 = It<a>.elt; elt2 = It<b>.elt; It<a>.elt = It<b>.elt
        # => the representative of all four is elt1 (interned first).
        s = CongruenceSolver()
        s.merge(G.TVar("elt1"), assoc("Iterator", A))
        s.merge(G.TVar("elt2"), assoc("Iterator", B))
        s.merge(assoc("Iterator", A), assoc("Iterator", B))
        for t in [G.TVar("elt1"), G.TVar("elt2"),
                  assoc("Iterator", A), assoc("Iterator", B)]:
            assert s.representative(t) == G.TVar("elt1")

    def test_representatives_rewrite_children(self):
        s = CongruenceSolver()
        s.merge(G.TVar("elt"), assoc("Iterator", A))
        t = G.TFn((assoc("Iterator", A),), G.TList(assoc("Iterator", A)))
        assert s.representative(t) == G.TFn(
            (G.TVar("elt"),), G.TList(G.TVar("elt"))
        )

    def test_ground_resolution_through_assoc(self):
        s = CongruenceSolver()
        s.merge(assoc("Iterator", G.TList(INT)), INT)
        t = G.TFn((G.TList(INT),), assoc("Iterator", G.TList(INT)))
        assert s.representative(t) == G.TFn((G.TList(INT),), INT)

    def test_untouched_type_is_itself(self):
        s = CongruenceSolver()
        t = G.TFn((A, B), G.TList(C))
        assert s.representative(t) == t

    def test_recursive_equation_has_finite_representative(self):
        # a = list a: the class contains `a` itself, so extraction picks the
        # finite member rather than looping (the cost search skips cycles).
        s = CongruenceSolver()
        s.merge(A, G.TList(A))
        assert s.representative(A) == A
        assert s.representative(G.TList(A)) == A
        assert s.representative(G.TList(G.TList(A))) == A

    def test_deterministic_across_solvers(self):
        def build():
            s = CongruenceSolver()
            s.merge(G.TVar("x"), assoc("C", A))
            s.merge(G.TVar("y"), assoc("C", B))
            s.merge(assoc("C", A), assoc("C", B))
            return s.representative(G.TVar("y"))

        assert build() == build()


class TestForallOpacity:
    def test_alpha_equal_foralls_equal(self):
        t1 = G.TForall(("a",), (), (), G.TFn((A,), A))
        t2 = G.TForall(("b",), (), (), G.TFn((B,), B))
        s = CongruenceSolver()
        assert s.equal(t1, t2)

    def test_different_foralls_unequal(self):
        t1 = G.TForall(("a",), (), (), A)
        t2 = G.TForall(("a",), (), (), G.TList(A))
        s = CongruenceSolver()
        assert not s.equal(t1, t2)

    def test_forall_requirements_part_of_identity(self):
        req = G.ConceptReq("Monoid", (A,))
        t1 = G.TForall(("a",), (req,), (), A)
        t2 = G.TForall(("a",), (), (), A)
        s = CongruenceSolver()
        assert not s.equal(t1, t2)

    def test_forall_representative_returns_original(self):
        t = G.TForall(("a",), (), (), G.TFn((A,), A))
        s = CongruenceSolver()
        assert s.representative(t) == t


class TestSolverForEqualities:
    def test_builds_and_remembers(self):
        s = solver_for_equalities(((A, INT), (B, A)))
        assert s.equal(B, INT)
        assert s.equalities == ((A, INT), (B, A))

    def test_empty(self):
        s = solver_for_equalities(())
        assert not s.equal(A, B)
