"""Error quality: positions, excerpts, and actionable messages."""

import pytest

from repro.diagnostics.errors import Diagnostic, ParseError, TypeError_
from repro.diagnostics.source import Position, SourceText, Span
from repro.syntax import parse_fg
from repro.fg import typecheck


def error_for(src: str) -> TypeError_:
    with pytest.raises(TypeError_) as excinfo:
        typecheck(parse_fg(src))
    return excinfo.value


class TestSourceText:
    def test_position_at(self):
        src = SourceText("ab\ncd\nef")
        assert src.position_at(0) == Position(1, 1, 0)
        assert src.position_at(3) == Position(2, 1, 3)
        assert src.position_at(7) == Position(3, 2, 7)

    def test_line(self):
        src = SourceText("ab\ncd")
        assert src.line(1) == "ab"
        assert src.line(2) == "cd"
        assert src.line(3) == ""

    def test_excerpt_caret_width(self):
        src = SourceText("let oops = 1 in x")
        span = src.span(4, 8)
        excerpt = src.excerpt(span)
        assert "oops" in excerpt
        assert excerpt.count("^") == 4

    def test_span_merge(self):
        src = SourceText("abcdef")
        a = src.span(0, 2)
        b = src.span(4, 6)
        merged = a.merge(b)
        assert merged.start.offset == 0
        assert merged.end.offset == 6


class TestErrorPositions:
    def test_type_error_carries_position(self):
        err = error_for("let x = 1 in\niadd(x, true)")
        assert err.span is not None
        assert err.span.start.line == 2

    def test_unbound_variable_points_at_use(self):
        err = error_for("let x = 1 in\n  missing_thing")
        assert err.span.start.line == 2

    def test_model_error_points_at_model(self):
        err = error_for(
            "concept C<t> { op : t; } in\n\nmodel C<int> { } in 0"
        )
        assert err.span.start.line == 3

    def test_str_includes_kind(self):
        err = error_for("nope")
        assert "type error" in str(err)

    def test_parse_error_excerpt(self):
        with pytest.raises(ParseError) as excinfo:
            parse_fg("let x =\n  in x")
        rendered = str(excinfo.value)
        assert "in x" in rendered  # the excerpt line
        assert "^" in rendered


class TestMessageQuality:
    def test_missing_model_names_concept_and_args(self):
        err = error_for(
            "concept Ord<t> { lt : fn(t, t) -> bool; } in Ord<int>.lt"
        )
        assert "Ord<int>" in err.message

    def test_model_member_mismatch_names_both_types(self):
        err = error_for(
            "concept C<t> { op : fn(t, t) -> t; } in"
            " model C<int> { op = ilt; } in 0"
        )
        assert "fn(int, int) -> bool" in err.message
        assert "fn(int, int) -> int" in err.message

    def test_same_type_violation_shows_representatives(self):
        src = r"""
        concept It<I> { types elt; curr : fn(I) -> elt; } in
        model It<list int> { types elt = int; curr = \l : list int. car[int](l); } in
        model It<list bool> { types elt = bool; curr = \l : list bool. car[bool](l); } in
        let f = /\a, b where It<a>, It<b>; It<a>.elt == It<b>.elt. 0 in
        f[list int, list bool]
        """
        err = error_for(src)
        assert "left is int" in err.message
        assert "right is bool" in err.message

    def test_diagnostic_is_exception(self):
        assert issubclass(TypeError_, Diagnostic)
        assert issubclass(Diagnostic, Exception)


class TestExcerptEdgeCases:
    def test_end_of_file_span(self):
        src = SourceText("let x = 1")
        span = src.span(9, 9)  # one past the last character
        excerpt = src.excerpt(span)
        assert "let x = 1" in excerpt
        assert "^" in excerpt

    def test_span_past_end_is_clamped(self):
        src = SourceText("ab")
        span = src.span(50, 60)
        assert span.end.offset == 2
        assert src.excerpt(span)  # no IndexError, still renders

    def test_multi_line_span_underlines_first_line(self):
        src = SourceText("let x =\n  oops\nin x")
        span = src.span(4, 14)  # from 'x' through 'oops'
        excerpt = src.excerpt(span)
        lines = excerpt.splitlines()
        assert "let x =" in lines[0]
        assert "oops" not in lines[0].replace("let x =", "")
        # Underline runs from the caret to the end of the first line.
        assert lines[1].count("^") >= 1

    def test_tabs_before_caret_stay_aligned(self):
        src = SourceText("\t\tbad")
        span = src.span(2, 5)  # the word 'bad'
        excerpt = src.excerpt(span)
        display, underline = excerpt.splitlines()
        assert "\t" not in display  # tabs expanded for display
        assert underline.index("^") == display.index("bad")
        assert underline.count("^") == 3

    def test_empty_source(self):
        src = SourceText("")
        assert src.excerpt(src.span(0, 0)) == ""
        assert src.line(1) == ""
        assert src.position_at(0) == Position(1, 1, 0)

    def test_synthetic_span_renders_empty(self):
        from repro.diagnostics.source import SYNTHETIC

        src = SourceText("anything")
        assert src.excerpt(SYNTHETIC) == ""
        assert SYNTHETIC.filename == "<synthetic>"

    def test_excerpt_caret_width_single_line(self):
        src = SourceText("iadd(1, true)")
        span = src.span(8, 12)
        excerpt = src.excerpt(span)
        assert excerpt.count("^") == 4
