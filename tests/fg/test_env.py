"""Unit tests for the persistent F_G environment (the paper's Gamma)."""

from repro.fg import ast as G
from repro.fg.env import Env, ModelInfo, SolverCache


def simple_concept(name="C"):
    return G.ConceptDef(name, ("t",), members=(("op", G.TVar("t")),))


class TestPersistence:
    def test_bind_var_does_not_mutate(self):
        env = Env.initial()
        env2 = env.bind_var("x", G.INT)
        assert env.lookup_var("x") is None
        assert env2.lookup_var("x") == G.INT

    def test_tyvars(self):
        env = Env.initial().bind_tyvars(("a", "b"))
        assert env.has_tyvar("a")
        assert env.has_tyvar("b")
        assert not env.has_tyvar("c")

    def test_concepts(self):
        env = Env.initial()
        env2 = env.add_concept(simple_concept())
        assert env.lookup_concept("C") is None
        assert env2.lookup_concept("C").name == "C"

    def test_models_innermost_first(self):
        env = Env.initial().add_concept(simple_concept())
        outer = ModelInfo("C", (G.INT,), "d1", (), {})
        inner = ModelInfo("C", (G.INT,), "d2", (), {})
        env = env.add_model(outer).add_model(inner)
        assert env.models_of("C")[0].dict_var == "d2"
        assert env.models_of("C")[1].dict_var == "d1"

    def test_equalities_accumulate(self):
        env = Env.initial().add_equality(G.TVar("a"), G.INT)
        env2 = env.add_equality(G.TVar("b"), G.BOOL)
        assert len(env.equalities) == 1
        assert len(env2.equalities) == 2

    def test_extras_scoped(self):
        env = Env.initial()
        env2 = env.with_extra("key", {"m": 1})
        assert env.extra("key") is None
        assert env2.extra("key") == {"m": 1}

    def test_builtins_present(self):
        env = Env.initial()
        assert env.lookup_var("iadd") is not None
        assert env.lookup_var("cons") is not None
        t = env.lookup_var("nil")
        assert isinstance(t, G.TForall)


class TestFreeTypeVars:
    def test_initially_empty(self):
        assert Env.initial().free_type_vars() == frozenset()

    def test_var_binding_contributes(self):
        env = Env.initial().bind_var("x", G.TVar("a"))
        assert "a" in env.free_type_vars()

    def test_model_args_contribute(self):
        env = Env.initial().add_model(
            ModelInfo("C", (G.TVar("q"),), "d", (), {})
        )
        assert "q" in env.free_type_vars()

    def test_equalities_contribute(self):
        env = Env.initial().add_equality(G.TVar("z"), G.INT)
        assert "z" in env.free_type_vars()


class TestSolverCache:
    def test_same_equalities_share_solver(self):
        cache = SolverCache()
        env = Env.initial().add_equality(G.TVar("a"), G.INT)
        s1 = cache.solver(env)
        s2 = cache.solver(env)
        assert s1 is s2

    def test_different_equalities_different_solver(self):
        cache = SolverCache()
        env1 = Env.initial().add_equality(G.TVar("a"), G.INT)
        env2 = env1.add_equality(G.TVar("b"), G.BOOL)
        assert cache.solver(env1) is not cache.solver(env2)

    def test_solver_reflects_equalities(self):
        cache = SolverCache()
        env = Env.initial().add_equality(G.TVar("a"), G.INT)
        assert cache.solver(env).equal(G.TVar("a"), G.INT)
