"""Unit tests for the direct F_G interpreter."""

import pytest

from repro.diagnostics.errors import EvalError
from repro.fg import interpret, type_of
from repro.syntax import parse_fg


def run(src: str):
    term = parse_fg(src)
    type_of(term)  # the interpreter assumes well-typed input
    return interpret(term)


class TestBasics:
    def test_arithmetic(self):
        assert run("iadd(40, 2)") == 42

    def test_lambda(self):
        assert run(r"(\x : int. imult(x, x))(7)") == 49

    def test_let_if_fix(self):
        src = r"""
        let fact = fix (\f : fn(int) -> int.
          \n : int. if ile(n, 1) then 1 else imult(n, f(isub(n, 1)))) in
        fact(5)
        """
        assert run(src) == 120

    def test_tuples(self):
        assert run("(nth (1, true) 1)") is True

    def test_polymorphism(self):
        assert run(r"(/\t. \x : t. x)[int](3)") == 3

    def test_lists(self):
        assert run("car[int](cons[int](9, nil[int]))") == 9


class TestModelsAtRuntime:
    def test_member_access(self):
        src = r"""
        concept C<t> { op : fn(t, t) -> t; } in
        model C<int> { op = iadd; } in
        C<int>.op(40, 2)
        """
        assert run(src) == 42

    def test_scoped_models(self):
        src = r"""
        concept C<t> { pick : t; } in
        model C<int> { pick = 1; } in
        (C<int>.pick, model C<int> { pick = 2; } in C<int>.pick)
        """
        assert run(src) == (1, 2)

    def test_instantiation_site_lookup(self):
        # Figure 6 semantics: the dictionary is chosen where [int] occurs.
        src = r"""
        concept C<t> { op : fn(t, t) -> t; } in
        let twice = /\t where C<t>. \x : t. C<t>.op(x, x) in
        let f = model C<int> { op = iadd; } in twice[int] in
        let g = model C<int> { op = imult; } in twice[int] in
        (f(5), g(5))
        """
        assert run(src) == (10, 25)

    def test_refined_member_through_derived(self):
        src = r"""
        concept A<t> { base : t; } in
        concept B<t> { refines A<t>; } in
        model A<int> { base = 7; } in
        model B<int> { } in
        B<int>.base
        """
        assert run(src) == 7

    def test_assoc_type_resolution(self):
        src = r"""
        concept It<I> { types elt; curr : fn(I) -> elt; } in
        model It<list int> { types elt = int; curr = \l : list int. car[int](l); } in
        iadd(It<list int>.curr(cons[int](41, nil[int])), 1)
        """
        assert run(src) == 42

    def test_generic_with_assoc_requirement(self):
        src = r"""
        concept It<I> { types elt; curr : fn(I) -> elt; } in
        concept M<t> { op : fn(t, t) -> t; } in
        let f = /\I where It<I>, M<It<I>.elt>.
          \x : I. M<It<I>.elt>.op(It<I>.curr(x), It<I>.curr(x)) in
        model It<list int> { types elt = int; curr = \l : list int. car[int](l); } in
        model M<int> { op = imult; } in
        f[list int](cons[int](6, nil[int]))
        """
        assert run(src) == 36

    def test_missing_model_is_dynamic_error(self):
        # Skipping the typecheck: the interpreter reports its own error.
        src = r"""
        concept C<t> { pick : t; } in
        C<int>.pick
        """
        with pytest.raises(EvalError):
            interpret(parse_fg(src))

    def test_type_alias(self):
        src = r"""
        concept C<t> { pick : t; } in
        model C<int> { pick = 5; } in
        type n = int in
        C<n>.pick
        """
        assert run(src) == 5

    def test_defaults_at_runtime(self):
        # The interpreter honors concept-member defaults directly.
        from repro import extensions as ext

        src = r"""
        concept Eq<t> {
          eq : fn(t, t) -> bool;
          neq : fn(t, t) -> bool = \x : t, y : t. bnot(Eq<t>.eq(x, y));
        } in
        model Eq<int> { eq = ieq; } in
        Eq<int>.neq(1, 2)
        """
        term = parse_fg(src)
        ext.type_of(term)
        assert interpret(term) is True
