"""Resource guards: depth/fuel budgets and the scoped recursion limit."""

import sys

import pytest

from repro.diagnostics.limits import (
    Budget,
    Limits,
    ResourceLimitError,
    resource_scope,
    scoped_recursion_limit,
)
from repro.fg import evaluate as fg_evaluate
from repro.fg import typecheck, typecheck_all
from repro.fg.congruence import CongruenceSolver
from repro.fg.interp import interpret
from repro.pipeline import check_source
from repro.syntax import parse_fg
from repro.systemf.eval import evaluate as sf_evaluate

DIVERGING = (
    "let loop = fix (\\f : fn(int) -> int. \\n : int. f(n)) in loop(0)"
)


class TestDepthBudget:
    def test_deep_type_application_is_a_limit_error(self):
        # The acceptance case: a 10k-deep type application must surface as
        # a catchable diagnostic, never a Python RecursionError/crash.
        deep = "(\\x : int. x)" + "[int]" * 10_000
        term = parse_fg(deep)
        with pytest.raises(ResourceLimitError) as excinfo:
            typecheck(term)
        assert excinfo.value.limit in ("depth", "stack")
        assert isinstance(excinfo.value, Exception)

    def test_deep_nesting_in_collecting_mode(self):
        deep = "(\\x : int. x)" + "[int]" * 10_000
        _, _, report = typecheck_all(parse_fg(deep))
        assert not report.ok
        assert any(d.kind == "resource limit" for d in report)

    def test_depth_budget_is_configurable(self):
        src = "iadd(" * 300 + "1" + ", 1)" * 300
        with pytest.raises(ResourceLimitError):
            typecheck(parse_fg(src), limits=Limits(max_check_depth=100))
        # The same program checks fine under the default budget.
        t, _ = typecheck(parse_fg(src))
        assert str(t) == "int"

    def test_budget_counter_stays_consistent_after_trip(self):
        budget = Budget(Limits(max_check_depth=2))
        budget.enter_depth()
        budget.enter_depth()
        with pytest.raises(ResourceLimitError):
            budget.enter_depth()
        # The failed enter did not leak a level: two leaves rebalance.
        budget.leave_depth()
        budget.leave_depth()
        budget.enter_depth()  # does not raise


class TestFuelBudget:
    def test_fg_evaluation_fuel(self):
        with pytest.raises(ResourceLimitError) as excinfo:
            fg_evaluate(parse_fg(DIVERGING), limits=Limits(max_eval_steps=500))
        assert excinfo.value.limit == "fuel"

    def test_interpreter_fuel(self):
        with pytest.raises(ResourceLimitError) as excinfo:
            interpret(parse_fg(DIVERGING), limits=Limits(max_eval_steps=500))
        assert excinfo.value.limit == "fuel"

    def test_systemf_fuel(self):
        _, sf = typecheck(parse_fg(DIVERGING))
        with pytest.raises(ResourceLimitError) as excinfo:
            sf_evaluate(sf, limits=Limits(max_eval_steps=500))
        assert excinfo.value.limit == "fuel"

    def test_fuel_default_is_unlimited(self):
        value = fg_evaluate(parse_fg("iadd(20, 22)"))
        assert getattr(value, "value", value) == 42

    def test_enough_fuel_still_finishes(self):
        value = fg_evaluate(
            parse_fg("iadd(20, 22)"), limits=Limits(max_eval_steps=10_000)
        )
        assert getattr(value, "value", value) == 42


class TestCongruenceBudget:
    def test_node_cap_trips_as_limit_error(self):
        solver = CongruenceSolver(max_nodes=8)
        import repro.fg.ast as G

        ty = G.INT
        for _ in range(20):
            ty = G.TFn((ty,), ty)
        with pytest.raises(ResourceLimitError) as excinfo:
            solver.intern(ty)
        assert excinfo.value.limit == "congruence"


class TestRecursionLimitInvariant:
    def test_public_api_leaves_recursion_limit_alone(self):
        before = sys.getrecursionlimit()
        parse_fg("iadd(1, 2)")
        typecheck(parse_fg("iadd(1, 2)"))
        typecheck_all(parse_fg("let a = missing in 0"))
        fg_evaluate(parse_fg("iadd(1, 2)"))
        interpret(parse_fg("iadd(1, 2)"))
        check_source("iadd(1, 2)", "<t>", evaluate=True, verify=True)
        assert sys.getrecursionlimit() == before

    def test_restored_even_when_the_body_raises(self):
        before = sys.getrecursionlimit()
        with pytest.raises(ResourceLimitError):
            typecheck(
                parse_fg("iadd(" * 300 + "1" + ", 1)" * 300),
                limits=Limits(max_check_depth=50),
            )
        assert sys.getrecursionlimit() == before

    def test_scoped_limit_raises_and_restores(self):
        before = sys.getrecursionlimit()
        with scoped_recursion_limit(before + 1_000):
            assert sys.getrecursionlimit() == before + 1_000
        assert sys.getrecursionlimit() == before

    def test_scoped_limit_never_lowers(self):
        before = sys.getrecursionlimit()
        with scoped_recursion_limit(max(1, before - 500)):
            assert sys.getrecursionlimit() == before
        assert sys.getrecursionlimit() == before

    def test_resource_scope_converts_recursion_error(self):
        def overflow():
            return overflow()

        with pytest.raises(ResourceLimitError) as excinfo:
            with resource_scope(Limits(python_stack_limit=1_000)):
                overflow()
        assert excinfo.value.limit == "stack"

    def test_no_module_import_side_effect(self):
        # Importing the evaluators must not permanently raise the limit
        # (the old implementations did sys.setrecursionlimit(50_000) at
        # import time).
        import repro.fg.interp  # noqa: F401
        import repro.systemf.eval  # noqa: F401

        assert sys.getrecursionlimit() < 50_000
